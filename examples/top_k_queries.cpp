// Paper Example 3: identifying the top-k most expensive queries.
//
// A size-limited LAT ordered by duration keeps the k most expensive query
// instances at all times; at the end of the workload its contents are
// persisted to a table (the SQLCM approach of §6.2.2(d)).
//
//   build/examples/top_k_queries
#include <cstdio>

#include "engine/database.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"

using namespace sqlcm;

int main() {
  engine::Database db;
  cm::MonitorEngine monitor(&db);

  workload::TpchConfig tpch;
  tpch.num_orders = 10'000;
  tpch.num_parts = 500;
  if (!workload::LoadTpch(&db, tpch).ok()) return 1;

  // LAT specification straight from the paper (§4.3 / Example 3): keyed by
  // query instance, limited to 10 rows ordered by duration descending.
  cm::LatSpec lat;
  lat.name = "Top10";
  lat.group_by = {{"ID", ""}};
  lat.aggregates = {{cm::LatAggFunc::kMax, "Duration", "Duration", false},
                    {cm::LatAggFunc::kFirst, "Query_Text", "Text", false}};
  lat.ordering = {{"Duration", true}};
  lat.max_rows = 10;
  if (!monitor.DefineLat(std::move(lat)).ok()) return 1;

  cm::RuleSpec rule;
  rule.name = "top10";
  rule.event = "Query.Commit";
  rule.action = "Query.Insert(Top10)";
  if (!monitor.AddRule(rule).ok()) return 1;

  // The paper's mixed workload: cheap point selects dominate; a few
  // multi-row joins are the actually expensive queries.
  workload::MixedWorkloadConfig mix;
  mix.num_point_selects = 5'000;
  mix.num_join_selects = 25;
  auto items = workload::GenerateMixedWorkload(tpch, mix);

  auto session = db.CreateSession();
  auto stats = workload::RunWorkload(session.get(), items);
  if (!stats.ok()) {
    std::fprintf(stderr, "workload: %s\n", stats.status().ToString().c_str());
    return 1;
  }

  // Persist the final answer like the paper's Persist() action does.
  if (!monitor.PersistLat("Top10", "TopQueriesReport").ok()) return 1;

  std::printf("workload: %lld statements in %.3fs\n",
              static_cast<long long>(stats->statements),
              static_cast<double>(stats->wall_micros) / 1e6);
  std::printf("%-4s %-12s %s\n", "#", "Duration(s)", "Query");
  int rank = 1;
  for (const auto& row :
       monitor.FindLat("Top10")->Snapshot(db.clock()->NowMicros())) {
    std::printf("%-4d %-12.6f %.70s\n", rank++, row[1].AsDouble(),
                row[2].ToDisplayString().c_str());
  }
  std::printf("persisted to table TopQueriesReport (%zu rows)\n",
              db.catalog()->GetTable("TopQueriesReport")->row_count());
  return 0;
}
