// Paper Example 2: detecting poor blocking behavior.
//
// Several concurrent writers update overlapping rows; one "hot" row is
// touched by a badly designed statement that holds its transaction open.
// A rule on Query.Block_Released accumulates, per blocking statement
// template, the total time it made other statements wait — the ranked
// output points straight at the hotspot.
//
//   build/examples/blocking_hotspots
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/database.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"

using namespace sqlcm;

int main() {
  engine::Database db;
  cm::MonitorEngine monitor(&db);

  // Blocking LAT: total induced wait per blocker template (paper §3 Ex. 2).
  cm::LatSpec lat;
  lat.name = "Blocking_LAT";
  lat.object_class = cm::MonitoredClass::kBlocker;
  lat.group_by = {{"Logical_Signature", "Sig"}};
  lat.aggregates = {
      {cm::LatAggFunc::kSum, "Wait_Secs", "Total_Blocked_Secs", false},
      {cm::LatAggFunc::kCount, "", "Conflicts", false},
      {cm::LatAggFunc::kFirst, "Query_Text", "Example", false}};
  if (!monitor.DefineLat(std::move(lat)).ok()) return 1;

  cm::RuleSpec rule;
  rule.name = "blocking";
  rule.event = "Query.Block_Released";
  rule.action = "Blocker.Insert(Blocking_LAT)";
  if (!monitor.AddRule(rule).ok()) return 1;

  auto setup = db.CreateSession();
  if (!setup->Execute("CREATE TABLE accounts (id INT, balance FLOAT, "
                      "PRIMARY KEY(id))").ok()) return 1;
  for (int i = 0; i < 32; ++i) {
    if (!setup->Execute("INSERT INTO accounts VALUES (" + std::to_string(i) +
                        ", 100.0)").ok()) return 1;
  }

  // The badly-behaved application: updates the hot row 0 and then holds the
  // transaction open for 20ms before committing.
  std::thread hot_writer([&db] {
    auto session = db.CreateSession();
    session->set_application("hot-app");
    for (int i = 0; i < 10; ++i) {
      if (!session->Begin().ok()) return;
      auto r = session->Execute(
          "UPDATE accounts SET balance = balance - 1 WHERE id = 0");
      if (!r.ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (!session->Commit().ok()) return;
    }
  });

  // Well-behaved writers spread across all rows but also touching row 0.
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&db, w] {
      auto session = db.CreateSession();
      session->set_application("batch-app");
      common::Random rng(static_cast<uint64_t>(w));
      for (int i = 0; i < 50; ++i) {
        const int64_t id = rng.OneIn(4) ? 0 : rng.UniformInt(1, 31);
        auto r = session->Execute(
            "UPDATE accounts SET balance = balance + 1 WHERE id = " +
            std::to_string(id));
        if (!r.ok() && !r.status().IsDeadlock()) return;
      }
    });
  }
  hot_writer.join();
  for (auto& t : writers) t.join();

  std::printf("%-18s %-10s  %s\n", "TotalBlockedSecs", "Conflicts",
              "Blocking statement");
  for (const auto& row :
       monitor.FindLat("Blocking_LAT")->Snapshot(db.clock()->NowMicros())) {
    std::printf("%-18.4f %-10lld  %.60s\n", row[1].AsDouble(),
                static_cast<long long>(row[2].int_value()),
                row[3].ToDisplayString().c_str());
  }
  return 0;
}
