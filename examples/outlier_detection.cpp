// Paper Example 1: detecting outlier invocations of a stored procedure.
//
// A stored procedure `lookup_orders` does wildly different amounts of work
// depending on its parameter (point lookup vs. wide range scan). SQLCM
// tracks the running average duration per procedure signature in a LAT and
// persists invocations that run 5x slower than the average — exactly the
// rule from §3/§5.2 of the paper.
//
//   build/examples/outlier_detection
#include <cstdio>

#include "engine/database.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"
#include "common/random.h"
#include "workload/tpch_gen.h"

using namespace sqlcm;

int main() {
  engine::Database db;
  cm::MonitorEngine monitor(&db);

  workload::TpchConfig tpch;
  tpch.num_orders = 20'000;
  tpch.num_parts = 500;
  if (auto s = workload::LoadTpch(&db, tpch); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }

  // The stored procedure: @span controls how many orders it touches.
  engine::Procedure proc;
  proc.name = "lookup_orders";
  proc.params = {"key", "span"};
  proc.body.push_back(engine::ProcStep::Sql(
      "SELECT COUNT(*) FROM lineitem WHERE l_orderkey >= @key AND "
      "l_orderkey <= @key + @span"));
  if (auto s = db.CreateProcedure(std::move(proc)); !s.ok()) {
    std::fprintf(stderr, "proc: %s\n", s.ToString().c_str());
    return 1;
  }

  // LAT from the paper (§4.3): average duration per logical signature.
  cm::LatSpec lat;
  lat.name = "Duration_LAT";
  lat.group_by = {{"Logical_Signature", "Sig"}};
  lat.aggregates = {{cm::LatAggFunc::kAvg, "Duration", "Avg_Duration", false},
                    {cm::LatAggFunc::kCount, "", "N", false}};
  if (auto s = monitor.DefineLat(std::move(lat)); !s.ok()) return 1;

  // Feed rule + the outlier rule from the paper (§5.2):
  //   Event:     Query.Commit
  //   Condition: Query.Duration > 5 * Duration_LAT.Avg_Duration
  //   Action:    Query.Persist(Outliers, ...)
  cm::RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.condition = "Query.Query_Type = 'EXEC'";
  feed.action = "Query.Insert(Duration_LAT)";
  if (!monitor.AddRule(feed).ok()) return 1;

  cm::RuleSpec outlier;
  outlier.name = "outlier";
  outlier.event = "Query.Commit";
  outlier.condition =
      "Query.Query_Type = 'EXEC' AND Duration_LAT.N > 20 AND "
      "Query.Duration > 5 * Duration_LAT.Avg_Duration";
  outlier.action =
      "Query.Persist(Outliers, ID, Query_Text, Duration); "
      "SendMail('outlier: query {Query.ID} took {Query.Duration}s', "
      "'dba@example.com')";
  if (!monitor.AddRule(outlier).ok()) return 1;

  // Workload: mostly tiny invocations, a few pathological parameter
  // combinations (the paper's "problematic combinations of parameters").
  auto session = db.CreateSession();
  common::Random rng(99);
  int invocations = 0;
  for (int i = 0; i < 400; ++i) {
    const bool pathological = i > 50 && i % 97 == 0;
    exec::ParamMap params = {
        {"key", common::Value::Int(rng.UniformInt(1, tpch.num_orders - 3000))},
        {"span", common::Value::Int(pathological ? 2500 : 2)}};
    auto result = session->Execute("EXEC lookup_orders @key, @span", &params);
    if (!result.ok()) {
      std::fprintf(stderr, "exec: %s\n", result.status().ToString().c_str());
      return 1;
    }
    ++invocations;
  }

  cm::Lat* duration_lat = monitor.FindLat("Duration_LAT");
  for (const auto& row : duration_lat->Snapshot(db.clock()->NowMicros())) {
    std::printf("template avg=%.6fs over n=%lld invocations\n",
                row[1].AsDouble(), static_cast<long long>(row[2].int_value()));
  }

  storage::Table* outliers = db.catalog()->GetTable("Outliers");
  const size_t detected = outliers != nullptr ? outliers->row_count() : 0;
  std::printf("invocations=%d detected_outliers=%zu mails=%zu\n", invocations,
              detected, monitor.capturing_mailer()->size());
  if (outliers != nullptr) {
    std::optional<common::Row> after;
    std::vector<common::Row> keys, rows;
    outliers->ScanBatch(after, 10, &keys, &rows);
    for (const auto& row : rows) {
      std::printf("  outlier id=%lld duration=%.6fs\n",
                  static_cast<long long>(row[0].int_value()),
                  row[2].AsDouble());
    }
  }
  return detected > 0 ? 0 : 2;
}
