// Quickstart: embed the engine, attach SQLCM, define a LAT and a rule, run
// some SQL, and read the monitored results back.
//
//   build/examples/quickstart
#include <cstdio>

#include "engine/database.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"

using namespace sqlcm;  // example code; the library itself never does this

int main() {
  // 1. An embedded database engine.
  engine::Database db;

  // 2. SQLCM attaches *inside* the server: every hook call below runs
  //    synchronously in the session's thread.
  cm::MonitorEngine monitor(&db);

  // 3. A light-weight aggregation table: per query template (logical
  //    signature), how often it ran and how long it took on average.
  cm::LatSpec lat;
  lat.name = "Templates";
  lat.object_class = cm::MonitoredClass::kQuery;
  lat.group_by = {{"Logical_Signature", "Sig"}};
  lat.aggregates = {{cm::LatAggFunc::kCount, "", "Runs", false},
                    {cm::LatAggFunc::kAvg, "Duration", "Avg_Secs", false},
                    {cm::LatAggFunc::kFirst, "Query_Text", "Example", false}};
  if (auto s = monitor.DefineLat(std::move(lat)); !s.ok()) {
    std::fprintf(stderr, "DefineLat: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. An ECA rule in the paper's Event / Condition / Action style.
  cm::RuleSpec rule;
  rule.name = "track-templates";
  rule.event = "Query.Commit";
  rule.condition = "";  // unconditional
  rule.action = "Query.Insert(Templates)";
  if (auto id = monitor.AddRule(rule); !id.ok()) {
    std::fprintf(stderr, "AddRule: %s\n", id.status().ToString().c_str());
    return 1;
  }

  // 5. Ordinary SQL through a session.
  auto session = db.CreateSession();
  auto run = [&](const std::string& sql) {
    auto result = session->Execute(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s -> %s\n", sql.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
  };
  run("CREATE TABLE users (id INT, name VARCHAR(32), visits INT, "
      "PRIMARY KEY(id))");
  for (int i = 0; i < 100; ++i) {
    run("INSERT INTO users VALUES (" + std::to_string(i) + ", 'user" +
        std::to_string(i) + "', " + std::to_string(i % 13) + ")");
  }
  for (int i = 0; i < 50; ++i) {
    run("SELECT name FROM users WHERE id = " + std::to_string(i * 2));
  }
  run("UPDATE users SET visits = visits + 1 WHERE id = 7");
  run("SELECT COUNT(*) FROM users WHERE visits > 5");

  // 6. Read the aggregated monitoring data back out of the LAT.
  cm::Lat* templates = monitor.FindLat("Templates");
  std::printf("%-6s %-10s  %s\n", "Runs", "AvgSecs", "Example");
  for (const auto& row : templates->Snapshot(db.clock()->NowMicros())) {
    std::printf("%-6lld %-10.6f  %.60s\n",
                static_cast<long long>(row[1].int_value()),
                row[2].is_null() ? 0.0 : row[2].double_value(),
                row[3].ToDisplayString().c_str());
  }
  std::printf("\nevents=%llu rules_fired=%llu\n",
              static_cast<unsigned long long>(monitor.events_processed()),
              static_cast<unsigned long long>(monitor.rules_fired()));
  return 0;
}
