// Paper Example 4: auditing / summarizing system usage.
//
// Queries are summarized synchronously per (application, query template) —
// frequency, average and max duration — and a Timer rule periodically
// persists the summary to a table and resets the LAT, yielding one audit
// epoch per alarm (the paper's "persist every 24 hours", scaled down to
// milliseconds here).
//
//   build/examples/auditing
#include <cstdio>
#include <thread>

#include "engine/database.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"

using namespace sqlcm;

int main() {
  engine::Database db;
  cm::MonitorEngine::Options options;
  options.start_timer_thread = true;  // background Timer.Alarm delivery
  cm::MonitorEngine monitor(&db, options);

  cm::LatSpec lat;
  lat.name = "Usage";
  lat.group_by = {{"Application", "App"}, {"Logical_Signature", "Template"}};
  lat.aggregates = {{cm::LatAggFunc::kCount, "", "Frequency", false},
                    {cm::LatAggFunc::kAvg, "Duration", "Avg_Secs", false},
                    {cm::LatAggFunc::kMax, "Duration", "Max_Secs", false},
                    {cm::LatAggFunc::kFirst, "Query_Text", "Example", false}};
  if (!monitor.DefineLat(std::move(lat)).ok()) return 1;

  cm::RuleSpec feed;
  feed.name = "usage-feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(Usage)";
  if (!monitor.AddRule(feed).ok()) return 1;

  // Asynchronous part: every 50ms, persist the summary and start a fresh
  // epoch. Timer.Alarm + Persist + Reset, as sketched in §3 Example 4.
  if (!monitor.CreateTimer("audit_epoch").ok()) return 1;
  cm::RuleSpec epoch;
  epoch.name = "audit-epoch";
  epoch.event = "audit_epoch.Alarm";
  epoch.action = "Usage.Persist(UsageAudit); Reset(Usage)";
  if (!monitor.AddRule(epoch).ok()) return 1;
  if (!monitor.SetTimer("audit_epoch", /*interval_seconds=*/0.05,
                        /*repeats=*/-1).ok()) return 1;

  auto setup = db.CreateSession();
  if (!setup->Execute("CREATE TABLE events (id INT, kind VARCHAR(16), "
                      "PRIMARY KEY(id))").ok()) return 1;

  // Two applications with different workloads, running for ~3 epochs.
  std::thread app_a([&db] {
    auto session = db.CreateSession();
    session->set_application("checkout");
    for (int i = 0; i < 300; ++i) {
      (void)session->Execute("INSERT INTO events VALUES (" +
                             std::to_string(i) + ", 'buy')");
      std::this_thread::sleep_for(std::chrono::microseconds(400));
    }
  });
  std::thread app_b([&db] {
    auto session = db.CreateSession();
    session->set_application("analytics");
    for (int i = 0; i < 60; ++i) {
      (void)session->Execute("SELECT COUNT(*) FROM events WHERE id >= 0");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  app_a.join();
  app_b.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // final epoch

  storage::Table* audit = db.catalog()->GetTable("UsageAudit");
  if (audit == nullptr) {
    std::fprintf(stderr, "no audit epochs were persisted\n");
    return 1;
  }
  std::printf("audit rows: %zu (columns: App, Template, Frequency, Avg_Secs, "
              "Max_Secs, Example, persist_ts)\n",
              audit->row_count());
  std::optional<common::Row> after;
  std::vector<common::Row> keys, rows;
  while (audit->ScanBatch(after, 64, &keys, &rows) > 0) after = keys.back();
  for (const auto& row : rows) {
    std::printf("  app=%-10s freq=%-5lld avg=%.6fs max=%.6fs ts=%lld\n",
                row[0].ToDisplayString().c_str(),
                static_cast<long long>(row[2].int_value()),
                row[3].is_null() ? 0.0 : row[3].AsDouble(),
                row[4].is_null() ? 0.0 : row[4].AsDouble(),
                static_cast<long long>(row[6].int_value()));
  }
  return audit->row_count() > 0 ? 0 : 2;
}
