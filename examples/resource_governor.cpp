// Paper Example 5: resource governing.
//
// Two server-side policies enforced purely by SQLCM rules, with no DBA in
// the loop:
//   (a) runaway-query protection: queries whose optimizer-estimated cost
//       exceeds a budget are cancelled at Query.Start, before they consume
//       resources;
//   (b) blocking governor: a Timer rule cancels any query that has been
//       blocked on a lock for longer than a threshold.
//
//   build/examples/resource_governor
#include <cstdio>
#include <thread>

#include "engine/database.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"
#include "workload/tpch_gen.h"

using namespace sqlcm;

int main() {
  engine::Database db;
  cm::MonitorEngine::Options options;
  options.start_timer_thread = true;
  cm::MonitorEngine monitor(&db, options);

  workload::TpchConfig tpch;
  tpch.num_orders = 20'000;
  tpch.num_parts = 200;
  if (!workload::LoadTpch(&db, tpch).ok()) return 1;

  // (a) Cancel queries the optimizer expects to be expensive.
  cm::RuleSpec runaway;
  runaway.name = "runaway";
  runaway.event = "Query.Start";
  runaway.condition = "Query.Estimated_Cost > 10000";
  runaway.action =
      "Query.Cancel(); "
      "SendMail('cancelled runaway query {Query.ID} (est cost "
      "{Query.Estimated_Cost})', 'dba@example.com')";
  if (!monitor.AddRule(runaway).ok()) return 1;

  auto session = db.CreateSession();
  auto cheap = session->Execute(
      "SELECT COUNT(*) FROM lineitem WHERE l_orderkey = 42");
  std::printf("cheap point query: %s\n",
              cheap.ok() ? "ran" : cheap.status().ToString().c_str());

  // An unindexable full-table predicate: huge estimated cost -> cancelled.
  auto expensive = session->Execute(
      "SELECT COUNT(*) FROM lineitem WHERE l_quantity > 0.0");
  std::printf("full-scan query:   %s\n",
              expensive.ok() ? "ran (governor failed!)"
                             : expensive.status().ToString().c_str());
  if (expensive.ok() || !expensive.status().IsCancelled()) return 2;

  // (b) Cancel queries blocked longer than 100ms, checked every 20ms.
  if (!monitor.CreateTimer("block_governor").ok()) return 1;
  cm::RuleSpec unblock;
  unblock.name = "unblock";
  unblock.event = "block_governor.Alarm";
  unblock.condition = "Blocked.Wait_Secs > 0.1";
  unblock.action = "Blocked.Cancel()";
  if (!monitor.AddRule(unblock).ok()) return 1;
  if (!monitor.SetTimer("block_governor", 0.02, -1).ok()) return 1;

  auto holder = db.CreateSession();
  if (!holder->Begin().ok()) return 1;
  if (!holder->Execute("UPDATE orders SET o_custkey = 1 WHERE o_orderkey = 1")
           .ok()) {
    return 1;
  }

  common::Status waiter_status = common::Status::OK();
  std::thread blocked([&db, &waiter_status] {
    auto waiter = db.CreateSession();
    auto result =
        waiter->Execute("UPDATE orders SET o_custkey = 2 WHERE o_orderkey = 1");
    waiter_status = result.ok() ? common::Status::OK() : result.status();
  });
  blocked.join();  // the governor cancels the waiter; holder never commits
  std::printf("blocked writer:    %s\n", waiter_status.ToString().c_str());
  if (!holder->Rollback().ok()) return 1;

  std::printf("governor mails sent: %zu\n", monitor.capturing_mailer()->size());
  return waiter_status.IsCancelled() ? 0 : 2;
}
