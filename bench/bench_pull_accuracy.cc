// E4 (paper §6.2.2, in-text): accuracy of the PULL approach as a function
// of polling rate.
//
// Paper numbers (polling the active-statement snapshot while running the
// mixed workload): of the true 10 most expensive queries, PULL missed
//   5 @ 1s polling, 7 @ 5s, 9 @ >=10s.
// This harness sweeps a wider rate range and reports hits/misses plus the
// duration-estimation error for the queries PULL did see. Because this
// engine executes the paper's statements orders of magnitude faster, the
// absolute rates differ, but the monotone relationship — slower polling
// loses more of the answer — is the claim under test.
//
//   build/bench/bench_pull_accuracy [--quick]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

#include "baselines/pull.h"
#include "engine/database.h"
#include "engine/session.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"

using namespace sqlcm;

namespace {
constexpr size_t kTopK = 10;
}

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  workload::TpchConfig tpch;
  tpch.num_orders = quick ? 5'000 : 25'000;
  tpch.num_parts = quick ? 100 : 500;

  workload::MixedWorkloadConfig mix;
  mix.num_point_selects = quick ? 4'000 : 20'000;
  mix.num_join_selects = quick ? 20 : 100;
  const auto items = workload::GenerateMixedWorkload(tpch, mix);

  std::printf("E4: PULL accuracy vs polling rate (paper: misses 5/10 @ 1s, "
              "7/10 @ 5s, 9/10 @ >=10s)\n\n");
  std::printf("%-10s %8s %10s %10s %16s\n", "rate", "polls", "seen",
              "top-10 hit", "avg underest.");

  const std::vector<std::pair<std::string, int64_t>> rates = {
      {"10ms", 10'000},   {"50ms", 50'000},   {"200ms", 200'000},
      {"1s", 1'000'000},  {"5s", 5'000'000}};

  for (const auto& [label, rate] : rates) {
    engine::Database::Options options;
    options.enable_statement_snapshot = true;
    options.enable_statement_history = true;  // ground truth
    engine::Database db(options);
    if (!workload::LoadTpch(&db, tpch).ok()) return 1;
    {
      auto session = db.CreateSession();
      auto warm = workload::RunWorkload(session.get(), items);
      if (!warm.ok()) return 1;
    }
    (void)db.DrainStatementHistory();

    baselines::PullMonitor pull(&db, {rate});
    pull.Start();
    {
      auto session = db.CreateSession();
      auto stats = workload::RunWorkload(session.get(), items);
      if (!stats.ok()) return 1;
    }
    pull.Stop();

    // Ground truth from the exact history.
    auto history = db.DrainStatementHistory();
    std::sort(history.begin(), history.end(),
              [](const auto& a, const auto& b) {
                return a.duration_micros > b.duration_micros;
              });
    std::set<uint64_t> exact_ids;
    std::unordered_map<uint64_t, int64_t> exact_duration;
    for (size_t i = 0; i < history.size(); ++i) {
      if (i < kTopK) exact_ids.insert(history[i].query_id);
      exact_duration[history[i].query_id] = history[i].duration_micros;
    }

    int hit = 0;
    for (const auto& q : pull.TopK(kTopK)) {
      if (exact_ids.count(q.query_id) != 0) ++hit;
    }
    // Duration-underestimation for everything PULL observed: polling can
    // only see a prefix of each execution.
    double underestimate_pct = 0;
    size_t measured = 0;
    for (const auto& q : pull.TopK(1'000'000)) {
      auto it = exact_duration.find(q.query_id);
      if (it == exact_duration.end() || it->second <= 0) continue;
      underestimate_pct +=
          100.0 *
          (1.0 - static_cast<double>(q.duration_micros) /
                     static_cast<double>(it->second));
      ++measured;
    }
    if (measured > 0) underestimate_pct /= static_cast<double>(measured);

    std::printf("%-10s %8llu %10zu %7d/%zu %15.1f%%\n", label.c_str(),
                static_cast<unsigned long long>(pull.polls()),
                pull.observed_count(), hit, kTopK,
                measured > 0 ? underestimate_pct : 0.0);
  }
  std::printf("\nshape check: hits trend toward zero as the polling "
              "interval grows (single-run noise of +-1 hit is expected; "
              "each poll can get lucky with one in-flight join).\n");
  return 0;
}
