// E1 (paper §6.2.1, in-text result): overhead of signature computation
// relative to query optimization time.
//
// The paper reports 0.5% for trivial single-table selections down to
// 0.011% for complex TPC-H queries — i.e. the *relative* cost decreases
// with query complexity. This harness compiles a suite of queries of
// increasing complexity many times and reports, per query class,
// signature-computation time as a percentage of optimization time.
//
//   build/bench/bench_signature_overhead
#include <cstdio>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/session.h"
#include "sql/parser.h"
#include "sqlcm/monitor_engine.h"
#include "workload/tpch_gen.h"

using namespace sqlcm;

namespace {

struct QueryClass {
  const char* label;
  std::string sql;
};

}  // namespace

int main() {
  engine::Database db;
  cm::MonitorEngine monitor(&db);

  workload::TpchConfig tpch;
  tpch.num_orders = 2'000;
  tpch.num_parts = 200;
  if (!workload::LoadTpch(&db, tpch).ok()) {
    std::fprintf(stderr, "tpch load failed\n");
    return 1;
  }

  const std::vector<QueryClass> classes = {
      {"single-table, no predicate", "SELECT l_orderkey FROM lineitem"},
      {"single-table, 1 predicate",
       "SELECT l_orderkey FROM lineitem WHERE l_orderkey = 1"},
      {"single-table, 4 predicates",
       "SELECT l_orderkey FROM lineitem WHERE l_orderkey > 1 AND "
       "l_quantity > 5 AND l_extendedprice < 900 AND l_partkey = 7"},
      {"2-way join",
       "SELECT l.l_orderkey FROM lineitem l JOIN orders o ON "
       "l.l_orderkey = o.o_orderkey WHERE o.o_totalprice > 500"},
      {"3-way join + aggregation",
       "SELECT o.o_custkey, COUNT(*) n, SUM(l.l_extendedprice) total "
       "FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey "
       "JOIN part p ON l.l_partkey = p.p_partkey "
       "WHERE l.l_quantity > 1 AND p.p_size > 5 AND o.o_totalprice > 100 "
       "GROUP BY o.o_custkey ORDER BY total DESC LIMIT 10"},
      {"5-way join + aggregation",
       "SELECT o.o_custkey, COUNT(*) n, SUM(l1.l_extendedprice) total "
       "FROM lineitem l1 JOIN orders o ON l1.l_orderkey = o.o_orderkey "
       "JOIN part p1 ON l1.l_partkey = p1.p_partkey "
       "JOIN lineitem l2 ON l2.l_orderkey = o.o_orderkey "
       "JOIN part p2 ON l2.l_partkey = p2.p_partkey "
       "WHERE l1.l_quantity > 1 AND p1.p_size > 5 AND p2.p_size < 40 AND "
       "o.o_totalprice > 100 AND l2.l_extendedprice > 20 "
       "GROUP BY o.o_custkey ORDER BY total DESC LIMIT 10"},
      {"7-way join + aggregation",
       "SELECT o.o_custkey, COUNT(*) n "
       "FROM lineitem l1 JOIN orders o ON l1.l_orderkey = o.o_orderkey "
       "JOIN part p1 ON l1.l_partkey = p1.p_partkey "
       "JOIN lineitem l2 ON l2.l_orderkey = o.o_orderkey "
       "JOIN part p2 ON l2.l_partkey = p2.p_partkey "
       "JOIN lineitem l3 ON l3.l_orderkey = o.o_orderkey "
       "JOIN part p3 ON l3.l_partkey = p3.p_partkey "
       "WHERE l1.l_quantity > 1 AND p1.p_size > 5 AND p2.p_size < 40 AND "
       "p3.p_size > 2 AND o.o_totalprice > 100 "
       "GROUP BY o.o_custkey LIMIT 10"},
  };

  constexpr int kRepetitions = 300;
  std::printf("E1: signature computation overhead relative to optimization\n");
  std::printf("(paper: 0.5%% for trivial selects -> 0.011%% for complex "
              "queries; relative cost must DECREASE with complexity)\n\n");
  std::printf("%-32s %14s %14s %10s\n", "query class", "optimize(us)",
              "signature(us)", "sig/opt %");

  double first_pct = 0, last_pct = 0;
  for (size_t c = 0; c < classes.size(); ++c) {
    const QueryClass& qc = classes[c];
    int64_t optimize_total = 0;
    int64_t signature_total = 0;
    for (int i = 0; i < kRepetitions; ++i) {
      // Vary the text so every repetition compiles fresh (cache miss).
      const std::string sql = qc.sql + " -- rep " + std::to_string(i);
      auto stmt = sql::Parser::ParseStatement(sql);
      if (!stmt.ok()) {
        std::fprintf(stderr, "parse: %s\n", stmt.status().ToString().c_str());
        return 1;
      }
      auto plan = db.Compile(sql, **stmt);
      if (!plan.ok()) {
        std::fprintf(stderr, "compile: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      optimize_total += (*plan)->optimize_micros;
      signature_total += (*plan)->signature_micros;
    }
    const double opt_us =
        static_cast<double>(optimize_total) / kRepetitions;
    const double sig_us =
        static_cast<double>(signature_total) / kRepetitions;
    const double pct = opt_us > 0 ? 100.0 * sig_us / opt_us : 0;
    if (c == 0) first_pct = pct;
    if (c + 1 == classes.size()) last_pct = pct;
    std::printf("%-32s %14.2f %14.3f %9.3f%%\n", qc.label, opt_us, sig_us,
                pct);
  }
  std::printf("\nshape check: relative overhead decreases with complexity: "
              "%s (%.3f%% -> %.3f%%)\n",
              last_pct < first_pct ? "YES" : "NO", first_pct, last_pct);
  return 0;
}
