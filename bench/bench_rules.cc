// E6 (supporting §5): rule-engine microbenchmarks — per-invocation cost of
// condition evaluation as a function of condition complexity (the paper
// claims overhead "does not vary significantly between rules of different
// complexity") and the cost of LAT-referencing conditions.
//
// On top of the google-benchmark micro suite, the binary carries the
// predicate-index acceptance harness (docs/PERFORMANCE.md §"Predicate
// index & learned ordering"): a 120-rule Query.Commit workload whose
// conditions are drawn Zipf-skewed from a small shared pool — every rule
// is `<expensive LAT-arithmetic conjunct> AND <cheap always-false
// rejector>`, authored worst-case-first — measured three ways over an
// identical TPC-H point-select stream:
//
//   naive    Options::predicate_index = false (historical per-rule path)
//   indexed  shared index on, learned ordering off (authoring order)
//   learned  index + UCB1-learned cheapest-rejector-first ordering
//
// The final stdout line is a machine-readable `BENCH_JSON
// {"bench":"rule_predicate_index",...}` row with per-mode wall time,
// added-us-per-query and condition-eval throughput. The binary exits
// non-zero if learned-over-naive speedup falls below the 2.0x acceptance
// floor, so CI enforces the bar via the exit code.
//
//   build/bench/bench_rules [--quick] [--micro-only] [gbench flags...]
//
//   --quick       2k-query predicate-index harness only (CI bench-smoke)
//   --micro-only  skip the harness, run only the micro benchmarks
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "engine/database.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"
#include "sqlcm/rule.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"

namespace sqlcm::cm {
namespace {

class BenchResolver final : public LatResolver {
 public:
  BenchResolver() {
    LatSpec spec;
    spec.name = "Duration_LAT";
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kAvg, "Duration", "Avg_Duration", false}};
    lat_ = std::move(*Lat::Create(std::move(spec)));
    QueryRecord seed;
    seed.logical_signature = "sig";
    seed.duration_secs = 1.0;
    lat_->Insert(&seed, 0);
  }
  Lat* FindLat(std::string_view name) const override {
    return common::EqualsIgnoreCase(name, "Duration_LAT") ? lat_.get()
                                                          : nullptr;
  }
  bool IsTimerName(std::string_view) const override { return false; }

 private:
  std::unique_ptr<Lat> lat_;
};

std::string ConditionWithAtoms(int n) {
  static const char* kAtoms[] = {
      "Query.Duration >= 0",      "Query.Estimated_Cost >= 0",
      "Query.Times_Blocked >= 0", "Query.ID > 0",
      "Query.Time_Blocked >= 0",  "Query.Session_ID > 0",
  };
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += " AND ";
    out += kAtoms[i % 6];
  }
  return out;
}

/// Condition evaluation cost vs number of atomic conditions (paper: nearly
/// flat — each atom is a handful of loads and one compare).
void BM_ConditionEval(benchmark::State& state) {
  BenchResolver resolver;
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.condition = ConditionWithAtoms(static_cast<int>(state.range(0)));
  spec.action = "Reset(Duration_LAT)";
  auto rule = std::move(*RuleCompiler::Compile(spec, resolver));

  QueryRecord rec;
  rec.id = 7;
  rec.duration_secs = 1.5;
  rec.estimated_cost = 10;
  rec.session_id = 3;
  for (auto _ : state) {
    EvalContext ctx;
    ctx.Bind(MonitoredClass::kQuery, &rec);
    benchmark::DoNotOptimize(rule->condition->EvalCondition(&ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionEval)->Arg(1)->Arg(5)->Arg(10)->Arg(20);

/// The compiled fast path for AND-chains of attribute-vs-constant
/// comparisons (what Figure 2's rules use). Compare with BM_ConditionEval:
/// this is why condition complexity has "very little impact" (§6.2.1).
void BM_FastConditionEval(benchmark::State& state) {
  BenchResolver resolver;
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.condition = ConditionWithAtoms(static_cast<int>(state.range(0)));
  spec.action = "Reset(Duration_LAT)";
  auto rule = std::move(*RuleCompiler::Compile(spec, resolver));
  if (!rule->use_fast_condition) {
    state.SkipWithError("fast path not selected");
    return;
  }
  QueryRecord rec;
  rec.id = 7;
  rec.duration_secs = 1.5;
  rec.estimated_cost = 10;
  rec.session_id = 3;
  EvalContext ctx;
  ctx.Bind(MonitoredClass::kQuery, &rec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalFastAtoms(rule->fast_atoms, ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastConditionEval)->Arg(1)->Arg(5)->Arg(10)->Arg(20);

/// Conditions that join against a LAT row (outlier-detection shape).
void BM_ConditionEvalWithLatRef(benchmark::State& state) {
  BenchResolver resolver;
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.condition = "Query.Duration > 5 * Duration_LAT.Avg_Duration";
  spec.action = "Reset(Duration_LAT)";
  auto rule = std::move(*RuleCompiler::Compile(spec, resolver));

  QueryRecord rec;
  rec.logical_signature = "sig";
  rec.duration_secs = 2.0;
  for (auto _ : state) {
    EvalContext ctx;
    ctx.Bind(MonitoredClass::kQuery, &rec);
    benchmark::DoNotOptimize(rule->condition->EvalCondition(&ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionEvalWithLatRef);

/// Full rule compilation cost (happens once per AddRule, not per event —
/// included to show why compile-once dispatch-many is the right design).
void BM_RuleCompile(benchmark::State& state) {
  BenchResolver resolver;
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.condition = ConditionWithAtoms(5);
  spec.action = "Query.Insert(Duration_LAT); Query.Persist(T, ID, Duration)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RuleCompiler::Compile(spec, resolver));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuleCompile);

/// Probe extraction through the attribute registry (one getter call).
void BM_ProbeGetter(benchmark::State& state) {
  const ObjectSchema& schema = ObjectSchema::Get();
  const int attr = schema.FindAttribute(MonitoredClass::kQuery, "Duration");
  QueryRecord rec;
  rec.duration_secs = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schema.GetValue(MonitoredClass::kQuery, attr, &rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeGetter);

// ---------------------------------------------------------------------------
// Predicate-index acceptance harness.
// ---------------------------------------------------------------------------

constexpr int kHarnessRules = 120;
constexpr double kSpeedupFloor = 2.0;

/// Expensive conjuncts: LAT-row lookup plus an arithmetic chain over the
/// looked-up aggregates. All evaluate TRUE once the LAT row exists, so the
/// cheap rejector is always the deciding conjunct.
std::vector<std::string> ExpensivePredicatePool() {
  std::vector<std::string> pool;
  for (int i = 0; i < 12; ++i) {
    std::string chain = "PI_LAT.Avg_Dur";
    for (int j = 0; j <= i; ++j) {
      chain += " + PI_LAT.Avg_Dur * " + std::to_string(j + 2);
    }
    pool.push_back("(" + chain + " + Query.Duration >= 0)");
  }
  return pool;
}

/// Cheap rejectors: single attribute-vs-constant compares that are FALSE
/// for every event the workload produces.
std::vector<std::string> CheapRejectorPool() {
  return {"Query.ID < 0",          "Query.Duration < 0",
          "Query.Session_ID < 0",  "Query.Times_Blocked < 0",
          "Query.Estimated_Cost < 0", "Query.Time_Blocked < 0"};
}

/// Zipf-skewed index into [0, n): weight of rank k is 1/(k+1)^1.1, so a few
/// predicates are shared by most rules — the regime where a shared index
/// pays off (and real monitoring rule sets cluster the same way).
size_t ZipfPick(std::mt19937& rng, size_t n) {
  static std::vector<double> weights;
  if (weights.size() != n) {
    weights.clear();
    for (size_t k = 0; k < n; ++k) {
      weights.push_back(1.0 / std::pow(static_cast<double>(k + 1), 1.1));
    }
  }
  std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
  return dist(rng);
}

struct ModeResult {
  const char* mode;
  double wall_ms;
  double added_us_per_query;
  double cond_evals_per_sec;  // naive-equivalent rule-conditions decided/s
  uint64_t predindex_evals;
  uint64_t memo_hits;
};

std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Runs the 120-rule Zipf workload under one Options config and returns the
/// measured wall time plus index counters. Each mode gets a fresh engine
/// (only one may hook a Database at a time) and a warmup pass that feeds
/// the LAT row and lets the learned ordering converge before measurement.
ModeResult RunPredicateIndexMode(
    const char* mode, engine::Database* db, engine::Session* session,
    const std::vector<workload::WorkloadItem>& items, double baseline_us,
    int64_t num_queries, bool index_on, bool learned_on) {
  MonitorEngine::Options options;
  options.register_system_views = false;
  options.predicate_index = index_on;
  options.learned_predicate_order = learned_on;
  options.predicate_reorder_interval = 512;
  auto monitor = std::make_unique<MonitorEngine>(db, options);

  LatSpec lat;
  lat.name = "PI_LAT";
  lat.group_by = {{"Logical_Signature", "Sig"}};
  lat.aggregates = {{LatAggFunc::kAvg, "Duration", "Avg_Dur", false},
                    {LatAggFunc::kCount, "ID", "N", false}};
  if (auto s = monitor->DefineLat(std::move(lat)); !s.ok()) {
    std::fprintf(stderr, "lat: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  // Feed rule: populates PI_LAT for the workload's signature during warmup
  // so the expensive conjuncts read a live row. Removed before measurement
  // (its Insert would otherwise invalidate LAT-reader memos every event).
  RuleSpec feed;
  feed.name = "pi_feed";
  feed.event = "Query.Commit";
  feed.condition = "Query.ID >= 0";
  feed.action = "Query.Insert(PI_LAT)";
  auto feed_id = monitor->AddRule(feed);
  if (!feed_id.ok()) {
    std::fprintf(stderr, "feed rule: %s\n",
                 feed_id.status().ToString().c_str());
    std::exit(1);
  }

  std::mt19937 rng(271828);  // same seed => identical rule set per mode
  const std::vector<std::string> expensive = ExpensivePredicatePool();
  const std::vector<std::string> cheap = CheapRejectorPool();
  for (int r = 0; r < kHarnessRules; ++r) {
    RuleSpec rule;
    rule.name = "pi_r" + std::to_string(r);
    rule.event = "Query.Commit";
    // Worst-case authoring order: the expensive conjunct first, the cheap
    // always-false rejector second. Learned ordering must discover the
    // swap; the index alone must amortize the expensive eval via sharing.
    rule.condition = expensive[ZipfPick(rng, expensive.size())] + " AND " +
                     cheap[ZipfPick(rng, cheap.size())];
    rule.action = "Query.Insert(PI_LAT)";
    if (auto id = monitor->AddRule(rule); !id.ok()) {
      std::fprintf(stderr, "rule: %s\n", id.status().ToString().c_str());
      std::exit(1);
    }
  }

  auto run_once = [&]() -> double {
    auto stats = workload::RunWorkload(session, items);
    if (!stats.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    return static_cast<double>(stats->wall_micros);
  };

  run_once();  // warmup: feeds PI_LAT, warms caches, converges the ordering
  (void)monitor->RemoveRule(*feed_id);

  const uint64_t evals_before = monitor->metrics().predindex_evals.value();
  const uint64_t hits_before = monitor->metrics().predindex_memo_hits.value();
  const double wall_us = run_once();
  const double added_us = wall_us - baseline_us;

  ModeResult out;
  out.mode = mode;
  out.wall_ms = wall_us / 1000.0;
  out.added_us_per_query = added_us / static_cast<double>(num_queries);
  // Throughput in naive-equivalent units: every event decides all rules'
  // conditions, however few predicate evals the index actually spent.
  out.cond_evals_per_sec =
      added_us > 0.0
          ? static_cast<double>(num_queries) * kHarnessRules / (added_us / 1e6)
          : 0.0;
  out.predindex_evals =
      monitor->metrics().predindex_evals.value() - evals_before;
  out.memo_hits =
      monitor->metrics().predindex_memo_hits.value() - hits_before;
  return out;
}

/// One `BENCH_JSON {"bench":"rule_predicate_index",...}` line; returns the
/// process exit code (non-zero when the learned speedup misses the floor).
int RunPredicateIndexComparison(bool quick) {
  engine::Database db;
  workload::TpchConfig tpch;
  tpch.num_orders = 25'000;
  tpch.num_parts = 500;
  if (!workload::LoadTpch(&db, tpch).ok()) {
    std::fprintf(stderr, "tpch load failed\n");
    return 1;
  }
  const int64_t num_queries = quick ? 2'000 : 10'000;
  auto items = workload::GeneratePointSelectWorkload(tpch, num_queries, 17);
  auto session = db.CreateSession();

  auto run_once = [&]() -> double {
    auto stats = workload::RunWorkload(session.get(), items);
    if (!stats.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    return static_cast<double>(stats->wall_micros);
  };
  run_once();  // warm plan cache and page in the tree
  const double baseline_us = run_once();

  std::printf(
      "Predicate index & learned ordering: %d Zipf-shared rules, "
      "%lld point selects (baseline %.2f us/query)\n",
      kHarnessRules, static_cast<long long>(num_queries),
      baseline_us / static_cast<double>(num_queries));
  std::printf("%10s %12s %16s %20s %14s %12s\n", "mode", "wall(ms)",
              "us/query added", "cond evals/sec", "index evals", "memo hits");

  std::vector<ModeResult> modes;
  modes.push_back(RunPredicateIndexMode("naive", &db, session.get(), items,
                                        baseline_us, num_queries,
                                        /*index_on=*/false,
                                        /*learned_on=*/false));
  modes.push_back(RunPredicateIndexMode("indexed", &db, session.get(), items,
                                        baseline_us, num_queries,
                                        /*index_on=*/true,
                                        /*learned_on=*/false));
  modes.push_back(RunPredicateIndexMode("learned", &db, session.get(), items,
                                        baseline_us, num_queries,
                                        /*index_on=*/true,
                                        /*learned_on=*/true));
  for (const ModeResult& m : modes) {
    std::printf("%10s %12.1f %16.3f %20.0f %14llu %12llu\n", m.mode,
                m.wall_ms, m.added_us_per_query, m.cond_evals_per_sec,
                static_cast<unsigned long long>(m.predindex_evals),
                static_cast<unsigned long long>(m.memo_hits));
  }

  const double speedup_indexed =
      modes[1].added_us_per_query > 0.0
          ? modes[0].added_us_per_query / modes[1].added_us_per_query
          : 0.0;
  const double speedup_learned =
      modes[2].added_us_per_query > 0.0
          ? modes[0].added_us_per_query / modes[2].added_us_per_query
          : 0.0;
  std::printf("\nspeedup over naive: indexed %.2fx, indexed+learned %.2fx "
              "(floor %.1fx)\n",
              speedup_indexed, speedup_learned, kSpeedupFloor);

  std::string out = "BENCH_JSON {\"bench\":\"rule_predicate_index\"";
  out += ",\"rules\":" + std::to_string(kHarnessRules);
  out += ",\"queries\":" + std::to_string(num_queries);
  out += ",\"baseline_us_per_query\":" +
         JsonNum(baseline_us / static_cast<double>(num_queries));
  out += ",\"modes\":[";
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    if (i > 0) out += ",";
    out += std::string("{\"mode\":\"") + m.mode + "\"";
    out += ",\"wall_ms\":" + JsonNum(m.wall_ms);
    out += ",\"added_us_per_query\":" + JsonNum(m.added_us_per_query);
    out += ",\"cond_evals_per_sec\":" + JsonNum(m.cond_evals_per_sec);
    out += ",\"predindex_evals\":" + std::to_string(m.predindex_evals);
    out += ",\"memo_hits\":" + std::to_string(m.memo_hits) + "}";
  }
  out += "],\"speedup_indexed\":" + JsonNum(speedup_indexed);
  out += ",\"speedup_learned\":" + JsonNum(speedup_learned);
  out += ",\"floor\":" + JsonNum(kSpeedupFloor);
  out += "}";
  std::printf("%s\n", out.c_str());

  if (speedup_learned < kSpeedupFloor) {
    std::fprintf(stderr,
                 "FAIL: learned speedup %.2fx below the %.1fx acceptance "
                 "floor\n",
                 speedup_learned, kSpeedupFloor);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sqlcm::cm

int main(int argc, char** argv) {
  bool quick = false;
  bool micro_only = false;
  std::vector<char*> gbench_args;
  gbench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--micro-only") == 0) {
      micro_only = true;
    } else {
      gbench_args.push_back(argv[i]);
    }
  }

  if (!micro_only) {
    if (int rc = sqlcm::cm::RunPredicateIndexComparison(quick); rc != 0) {
      return rc;
    }
    if (quick) return 0;  // CI bench-smoke: harness + BENCH_JSON only
  }

  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc,
                                             gbench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
