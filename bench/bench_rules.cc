// E6 (supporting §5): rule-engine microbenchmarks — per-invocation cost of
// condition evaluation as a function of condition complexity (the paper
// claims overhead "does not vary significantly between rules of different
// complexity") and the cost of LAT-referencing conditions.
//
//   build/bench/bench_rules
#include <benchmark/benchmark.h>

#include "common/string_util.h"
#include "sqlcm/rule.h"

namespace sqlcm::cm {
namespace {

class BenchResolver final : public LatResolver {
 public:
  BenchResolver() {
    LatSpec spec;
    spec.name = "Duration_LAT";
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kAvg, "Duration", "Avg_Duration", false}};
    lat_ = std::move(*Lat::Create(std::move(spec)));
    QueryRecord seed;
    seed.logical_signature = "sig";
    seed.duration_secs = 1.0;
    lat_->Insert(&seed, 0);
  }
  Lat* FindLat(std::string_view name) const override {
    return common::EqualsIgnoreCase(name, "Duration_LAT") ? lat_.get()
                                                          : nullptr;
  }
  bool IsTimerName(std::string_view) const override { return false; }

 private:
  std::unique_ptr<Lat> lat_;
};

std::string ConditionWithAtoms(int n) {
  static const char* kAtoms[] = {
      "Query.Duration >= 0",      "Query.Estimated_Cost >= 0",
      "Query.Times_Blocked >= 0", "Query.ID > 0",
      "Query.Time_Blocked >= 0",  "Query.Session_ID > 0",
  };
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += " AND ";
    out += kAtoms[i % 6];
  }
  return out;
}

/// Condition evaluation cost vs number of atomic conditions (paper: nearly
/// flat — each atom is a handful of loads and one compare).
void BM_ConditionEval(benchmark::State& state) {
  BenchResolver resolver;
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.condition = ConditionWithAtoms(static_cast<int>(state.range(0)));
  spec.action = "Reset(Duration_LAT)";
  auto rule = std::move(*RuleCompiler::Compile(spec, resolver));

  QueryRecord rec;
  rec.id = 7;
  rec.duration_secs = 1.5;
  rec.estimated_cost = 10;
  rec.session_id = 3;
  for (auto _ : state) {
    EvalContext ctx;
    ctx.Bind(MonitoredClass::kQuery, &rec);
    benchmark::DoNotOptimize(rule->condition->EvalCondition(&ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionEval)->Arg(1)->Arg(5)->Arg(10)->Arg(20);

/// The compiled fast path for AND-chains of attribute-vs-constant
/// comparisons (what Figure 2's rules use). Compare with BM_ConditionEval:
/// this is why condition complexity has "very little impact" (§6.2.1).
void BM_FastConditionEval(benchmark::State& state) {
  BenchResolver resolver;
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.condition = ConditionWithAtoms(static_cast<int>(state.range(0)));
  spec.action = "Reset(Duration_LAT)";
  auto rule = std::move(*RuleCompiler::Compile(spec, resolver));
  if (!rule->use_fast_condition) {
    state.SkipWithError("fast path not selected");
    return;
  }
  QueryRecord rec;
  rec.id = 7;
  rec.duration_secs = 1.5;
  rec.estimated_cost = 10;
  rec.session_id = 3;
  EvalContext ctx;
  ctx.Bind(MonitoredClass::kQuery, &rec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalFastAtoms(rule->fast_atoms, ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastConditionEval)->Arg(1)->Arg(5)->Arg(10)->Arg(20);

/// Conditions that join against a LAT row (outlier-detection shape).
void BM_ConditionEvalWithLatRef(benchmark::State& state) {
  BenchResolver resolver;
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.condition = "Query.Duration > 5 * Duration_LAT.Avg_Duration";
  spec.action = "Reset(Duration_LAT)";
  auto rule = std::move(*RuleCompiler::Compile(spec, resolver));

  QueryRecord rec;
  rec.logical_signature = "sig";
  rec.duration_secs = 2.0;
  for (auto _ : state) {
    EvalContext ctx;
    ctx.Bind(MonitoredClass::kQuery, &rec);
    benchmark::DoNotOptimize(rule->condition->EvalCondition(&ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionEvalWithLatRef);

/// Full rule compilation cost (happens once per AddRule, not per event —
/// included to show why compile-once dispatch-many is the right design).
void BM_RuleCompile(benchmark::State& state) {
  BenchResolver resolver;
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.condition = ConditionWithAtoms(5);
  spec.action = "Query.Insert(Duration_LAT); Query.Persist(T, ID, Duration)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RuleCompiler::Compile(spec, resolver));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuleCompile);

/// Probe extraction through the attribute registry (one getter call).
void BM_ProbeGetter(benchmark::State& state) {
  const ObjectSchema& schema = ObjectSchema::Get();
  const int attr = schema.FindAttribute(MonitoredClass::kQuery, "Duration");
  QueryRecord rec;
  rec.duration_secs = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schema.GetValue(MonitoredClass::kQuery, attr, &rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeGetter);

}  // namespace
}  // namespace sqlcm::cm

BENCHMARK_MAIN();
