// E3 — Figure 3: efficiency of different monitoring approaches for the
// "top-10 most expensive queries" task, plus the in-text E4 accuracy
// numbers for PULL.
//
// Paper setup (§6.2.2): a workload of 20,000 short single-row selects on
// lineitem/orders interleaved with 100 join selections of 1000-2000 rows;
// the same statements are executed for every approach:
//   (a) Query_logging — every committed query written out with forced
//       synchronous writes (worst: >20% degradation in the paper);
//   (b) PULL — poll the active-statement snapshot at various rates (lossy);
//   (c) PULL_history — server keeps completed-query history until drained
//       (exact, but more overhead than SQLCM and rate-sensitive memory);
//   (d) SQLCM — a 10-row LAT ordered by duration + one rule (paper: <0.1%
//       overhead, imperceptible in the figure).
//
//   build/bench/bench_monitoring_approaches [--quick]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>

#include "baselines/pull.h"
#include "baselines/query_logging.h"
#include "engine/database.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"

using namespace sqlcm;

namespace {

constexpr size_t kTopK = 10;

struct RunResult {
  double wall_ms = 0;
  int found_of_topk = -1;  // -1 = exact by construction
  std::string note;
};

workload::TpchConfig TpchConfigFor(bool quick) {
  workload::TpchConfig tpch;
  tpch.num_orders = quick ? 5'000 : 25'000;
  tpch.num_parts = quick ? 100 : 500;
  return tpch;
}

std::unique_ptr<engine::Database> FreshDb(const workload::TpchConfig& tpch,
                                          bool snapshot, bool history) {
  engine::Database::Options options;
  options.enable_statement_snapshot = snapshot;
  options.enable_statement_history = history;
  auto db = std::make_unique<engine::Database>(options);
  if (!workload::LoadTpch(db.get(), tpch).ok()) {
    std::fprintf(stderr, "tpch load failed\n");
    std::exit(1);
  }
  return db;
}

double RunItems(engine::Database* db,
                const std::vector<workload::WorkloadItem>& items) {
  auto session = db->CreateSession();
  auto stats = workload::RunWorkload(session.get(), items);
  if (!stats.ok()) {
    std::fprintf(stderr, "workload: %s\n", stats.status().ToString().c_str());
    std::exit(1);
  }
  return static_cast<double>(stats->wall_micros) / 1000.0;
}

/// Best of `trials` runs (the workload is read-only, so repetition is
/// safe); minimum filters scheduler noise out of the overhead deltas.
double RunItemsBest(engine::Database* db,
                    const std::vector<workload::WorkloadItem>& items,
                    int trials = 3) {
  double best = RunItems(db, items);
  for (int i = 1; i < trials; ++i) best = std::min(best, RunItems(db, items));
  return best;
}

/// Exact top-k query ids from the drained statement history.
std::set<uint64_t> ExactTopK(engine::Database* db) {
  auto history = db->DrainStatementHistory();
  std::sort(history.begin(), history.end(),
            [](const auto& a, const auto& b) {
              return a.duration_micros > b.duration_micros;
            });
  std::set<uint64_t> ids;
  for (size_t i = 0; i < history.size() && i < kTopK; ++i) {
    ids.insert(history[i].query_id);
  }
  return ids;
}

int Matches(const std::set<uint64_t>& exact,
            const std::vector<baselines::ObservedQuery>& observed) {
  int found = 0;
  for (const auto& q : observed) {
    if (exact.count(q.query_id) != 0) ++found;
  }
  return found;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const workload::TpchConfig tpch = TpchConfigFor(quick);

  workload::MixedWorkloadConfig mix;
  mix.num_point_selects = quick ? 4'000 : 20'000;
  mix.num_join_selects = quick ? 20 : 100;
  const auto items = workload::GenerateMixedWorkload(tpch, mix);

  std::printf("E3 / Figure 3 + E4: top-%zu task, %zu statements "
              "(%lld point selects + %lld joins)\n\n",
              kTopK, items.size(),
              static_cast<long long>(mix.num_point_selects),
              static_cast<long long>(mix.num_join_selects));

  std::vector<std::pair<std::string, RunResult>> rows;

  // --- no monitoring (baseline) ---
  double baseline_ms = 0;
  {
    auto db = FreshDb(tpch, false, false);
    RunItems(db.get(), items);  // warmup
    baseline_ms = RunItemsBest(db.get(), items);
    rows.push_back({"no monitoring", {baseline_ms, -1, "baseline"}});
  }

  // --- SQLCM ---
  {
    auto db = FreshDb(tpch, false, false);
    RunItems(db.get(), items);  // warmup without monitoring
    cm::MonitorEngine monitor(db.get());
    cm::LatSpec lat;
    lat.name = "Top10";
    lat.group_by = {{"ID", ""}};
    lat.aggregates = {{cm::LatAggFunc::kMax, "Duration", "Dur", false},
                      {cm::LatAggFunc::kFirst, "Query_Text", "Text", false}};
    lat.ordering = {{"Dur", true}};
    lat.max_rows = kTopK;
    if (!monitor.DefineLat(std::move(lat)).ok()) return 1;
    cm::RuleSpec rule;
    rule.name = "top10";
    rule.event = "Query.Commit";
    rule.action = "Query.Insert(Top10)";
    if (!monitor.AddRule(rule).ok()) return 1;

    const double ms = RunItemsBest(db.get(), items);
    if (!monitor.PersistLat("Top10", "TopReport").ok()) return 1;
    const size_t report =
        db->catalog()->GetTable("TopReport")->row_count();
    rows.push_back({"SQLCM",
                    {ms, static_cast<int>(report),
                     "in-server LAT, exact by construction"}});
  }

  // --- PULL at several rates (timing run has history enabled only to
  // provide ground truth for the accuracy column; see EXPERIMENTS.md) ---
  const std::vector<std::pair<std::string, int64_t>> rates = {
      {"50ms", 50'000}, {"500ms", 500'000}, {"2s", 2'000'000}};
  for (const auto& [label, rate] : rates) {
    auto db = FreshDb(tpch, /*snapshot=*/true, /*history=*/true);
    RunItems(db.get(), items);  // warmup
    (void)db->DrainStatementHistory();
    baselines::PullMonitor pull(db.get(), {rate});
    pull.Start();
    const double ms = RunItemsBest(db.get(), items);
    pull.Stop();
    const auto exact = ExactTopK(db.get());
    const int found = Matches(exact, pull.TopK(kTopK));
    rows.push_back({"PULL @" + label,
                    {ms, found, std::to_string(pull.polls()) + " polls"}});
  }

  // --- PULL_history at the same rates ---
  for (const auto& [label, rate] : rates) {
    auto db = FreshDb(tpch, /*snapshot=*/false, /*history=*/true);
    RunItems(db.get(), items);  // warmup
    (void)db->DrainStatementHistory();
    baselines::PullHistoryMonitor history(db.get(), {rate});
    history.Start();
    const double ms = RunItemsBest(db.get(), items);
    history.PollOnce();  // final pickup
    history.Stop();
    const auto top = history.TopK(kTopK);
    rows.push_back(
        {"PULL_history @" + label,
         {ms, static_cast<int>(top.size()),
          "exact; max server history " +
              std::to_string(history.max_history_seen()) + " rows"}});
  }

  // --- Query_logging (forced synchronous writes) ---
  {
    auto db = FreshDb(tpch, false, false);
    RunItems(db.get(), items);  // warmup
    baselines::QueryLoggingMonitor::Options options;
    options.sync_file = "bench_query_log.csv";
    options.sync_every_row = true;
    auto monitor = baselines::QueryLoggingMonitor::Create(db.get(), options);
    if (!monitor.ok()) return 1;
    const double ms = RunItemsBest(db.get(), items);
    rows.push_back({"Query_logging",
                    {ms, -1,
                     std::to_string((*monitor)->rows_logged()) +
                         " rows synced (exact after SQL post-processing)"}});
    std::remove(options.sync_file.c_str());
  }

  std::printf("%-22s %12s %12s %8s   %s\n", "approach", "wall(ms)",
              "overhead%", "top-10", "notes");
  for (const auto& [label, result] : rows) {
    const double overhead =
        100.0 * (result.wall_ms - baseline_ms) / baseline_ms;
    char topk[16];
    if (result.found_of_topk < 0) {
      std::snprintf(topk, sizeof(topk), "%s", "-");
    } else {
      std::snprintf(topk, sizeof(topk), "%d/%zu", result.found_of_topk,
                    kTopK);
    }
    std::printf("%-22s %12.1f %12.2f %8s   %s\n", label.c_str(),
                result.wall_ms, overhead, topk, result.note.c_str());
  }
  std::printf("\nshape checks (paper §6.2.2): SQLCM cheapest; PULL misses "
              "most of the top-10 and misses more at slower rates; "
              "PULL_history exact but costlier and rate-sensitive in server "
              "memory; Query_logging degrades the workload the most.\n");
  return 0;
}
