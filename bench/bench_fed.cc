// Federation plane throughput + resilience bench (docs/FEDERATION.md).
//
// Three measurements over an in-process node -> sender -> aggregator
// pipeline shipping real LAT state deltas (v2 raw-moment codec):
//   1. delta export throughput: inserts per epoch + ExportEpoch (diff vs
//      baseline, spool publish, durable baseline rewrite), wall-clock;
//   2. ingest throughput: sender drain into FleetAggregator (journal
//      fsync + validate + merge), wall-clock;
//   3. spool-drain latency under injected `fed.send` failures: the same
//      drain with a 30% retryable send-failure rate. Backoff sleeps go
//      through a MockClock, so the reported p50/p95 drain latency is
//      *virtual* (publish -> removed, including backoff), while retry
//      counts and wall-clock drain time show the real resilience cost.
//
// The final stdout line is machine-readable: `BENCH_JSON
// {"bench":"fed",...}` so CI can diff runs (schema in docs/PERFORMANCE.md).
//
//   build/bench/bench_fed [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "fed/aggregator.h"
#include "fed/node.h"
#include "fed/sender.h"
#include "fed/spool.h"
#include "sqlcm/lat.h"

using namespace sqlcm;

namespace {

constexpr double kSendFailureProb = 0.3;

cm::LatSpec FleetSpec() {
  cm::LatSpec spec;
  spec.name = "FleetQ";
  spec.object_class = cm::MonitoredClass::kQuery;
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {
      {cm::LatAggFunc::kCount, "", "N", false},
      {cm::LatAggFunc::kSum, "Duration", "SumDur", false},
      {cm::LatAggFunc::kAvg, "Duration", "AvgDur", false},
      {cm::LatAggFunc::kStdev, "Duration", "SdDur", false},
      {cm::LatAggFunc::kMin, "Duration", "MinDur", false},
      {cm::LatAggFunc::kMax, "Duration", "MaxDur", false},
      {cm::LatAggFunc::kCount, "", "AgN", true},
      {cm::LatAggFunc::kSum, "Duration", "AgSum", true}};
  spec.aging_window_micros = 60'000'000;
  spec.aging_block_micros = 1'000'000;
  return spec;
}

double WallMicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

struct DrainResult {
  double wall_micros = 0;
  uint64_t retries = 0;
  double p50_us = 0, p95_us = 0;
};

/// Inserts `records_per_epoch` rows across `groups` keys per epoch, exports
/// `epochs` epochs, then drains them into a fresh aggregator. Returns the
/// drain measurements; export wall time goes to *export_micros.
DrainResult RunPipeline(const std::string& dir, int epochs,
                        int records_per_epoch, int groups,
                        common::MockClock* clock, double* export_micros) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto node_lat = *cm::Lat::Create(FleetSpec());
  auto fleet_lat = *cm::Lat::Create(FleetSpec());

  fed::FedNode::Options node_options;
  node_options.node_id = "bench-node";
  node_options.dir = dir + "/node";
  node_options.clock = clock;
  auto node = fed::FedNode::Open(node_options, {node_lat.get()});
  if (!node.ok()) {
    std::fprintf(stderr, "node open: %s\n", node.status().ToString().c_str());
    std::exit(1);
  }

  fed::FleetAggregator::Options agg_options;
  agg_options.dir = dir + "/agg";
  agg_options.clock = clock;
  auto agg = fed::FleetAggregator::Open(agg_options, {fleet_lat.get()});
  if (!agg.ok()) {
    std::fprintf(stderr, "agg open: %s\n", agg.status().ToString().c_str());
    std::exit(1);
  }

  const auto export_start = std::chrono::steady_clock::now();
  for (int e = 0; e < epochs; ++e) {
    for (int r = 0; r < records_per_epoch; ++r) {
      cm::QueryRecord rec;
      rec.logical_signature = "sig" + std::to_string(r % groups);
      rec.text = "q:" + rec.logical_signature;
      rec.duration_secs = 0.001 * static_cast<double>(r % 100);
      node_lat->Insert(&rec, clock->NowMicros());
    }
    clock->SleepMicros(1'000);  // one virtual ms per epoch
    auto epoch = (*node)->ExportEpoch();
    if (!epoch.ok()) {
      std::fprintf(stderr, "export: %s\n", epoch.status().ToString().c_str());
      std::exit(1);
    }
  }
  *export_micros = WallMicrosSince(export_start);

  fed::DeltaSender::Options sender_options;
  sender_options.clock = clock;
  sender_options.max_attempts_per_pump = 8;
  sender_options.poison_attempts = 1'000'000;
  fed::DeltaSender sender(node->get(), agg->get(), sender_options);

  DrainResult result;
  const auto drain_start = std::chrono::steady_clock::now();
  while (!(*node)->spool()->List().empty()) {
    auto acked = sender.Pump();
    if (!acked.ok()) {
      std::fprintf(stderr, "pump: %s\n", acked.status().ToString().c_str());
      std::exit(1);
    }
  }
  result.wall_micros = WallMicrosSince(drain_start);
  result.retries = sender.stats().send_retries.value();
  const auto pct = sender.stats().drain_micros.ComputePercentiles();
  result.p50_us = pct.p50;
  result.p95_us = pct.p95;
  std::filesystem::remove_all(dir);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int epochs = quick ? 32 : 128;
  const int records_per_epoch = quick ? 2'000 : 10'000;
  const int groups = quick ? 128 : 512;
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/sqlcm_bench_fed";

  std::printf("bench_fed: %d epochs x %d records (%d groups) per epoch\n\n",
              epochs, records_per_epoch, groups);

  // Clean run: export + ingest throughput without faults.
  common::FaultRegistry::Get()->Reset();
  common::MockClock clean_clock(1'000'000);
  double export_micros = 0;
  const DrainResult clean = RunPipeline(dir + "_clean", epochs,
                                        records_per_epoch, groups,
                                        &clean_clock, &export_micros);
  const double total_records =
      static_cast<double>(epochs) * static_cast<double>(records_per_epoch);
  const double export_eps = 1e6 * epochs / export_micros;
  const double export_rps = 1e6 * total_records / export_micros;
  const double ingest_eps = 1e6 * epochs / clean.wall_micros;
  std::printf("export: %8.1f epochs/s  %10.0f records/s\n", export_eps,
              export_rps);
  std::printf("ingest: %8.1f epochs/s  (journal fsync + validate + merge)\n",
              ingest_eps);

  // Faulty run: same pipeline with a 30% retryable send-failure rate.
  common::FaultRegistry::Get()->Seed(0xBEAC4F0A);
  common::FaultRegistry::Get()->Arm(
      fed::kFaultFedSend,
      {common::FaultKind::kIOError, kSendFailureProb, -1});
  common::MockClock faulty_clock(1'000'000);
  double faulty_export_micros = 0;
  const DrainResult faulty = RunPipeline(dir + "_faulty", epochs,
                                         records_per_epoch, groups,
                                         &faulty_clock,
                                         &faulty_export_micros);
  common::FaultRegistry::Get()->Reset();
  std::printf("drain @ %.0f%% send failure: %llu retries, virtual latency "
              "p50 %.0fus p95 %.0fus, wall %.1fms\n",
              kSendFailureProb * 100,
              static_cast<unsigned long long>(faulty.retries), faulty.p50_us,
              faulty.p95_us, faulty.wall_micros / 1e3);

  std::string out = "BENCH_JSON {\"bench\":\"fed\"";
  out += ",\"epochs\":" + std::to_string(epochs);
  out += ",\"records_per_epoch\":" + std::to_string(records_per_epoch);
  out += ",\"groups\":" + std::to_string(groups);
  out += ",\"export_epochs_per_sec\":" + JsonNum(export_eps);
  out += ",\"export_records_per_sec\":" + JsonNum(export_rps);
  out += ",\"ingest_epochs_per_sec\":" + JsonNum(ingest_eps);
  out += ",\"faulty_drain\":{\"send_failure_prob\":" +
         JsonNum(kSendFailureProb);
  out += ",\"retries\":" + std::to_string(faulty.retries);
  out += ",\"drain_p50_us\":" + JsonNum(faulty.p50_us);
  out += ",\"drain_p95_us\":" + JsonNum(faulty.p95_us);
  out += ",\"drain_wall_ms\":" + JsonNum(faulty.wall_micros / 1e3) + "}}";
  std::printf("%s\n", out.c_str());
  return 0;
}
