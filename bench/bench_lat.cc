// E5 (supporting §6.1): LAT microbenchmarks — insert cost by shape and the
// "latching does not introduce a new hotspot even under severe stress"
// claim, via multi-threaded insert scaling.
//
//   build/bench/bench_lat            # google-benchmark micro cases
//   build/bench/bench_lat --sweep    # 1..N-thread sharded-vs-single sweep,
//                                    # one BENCH_JSON line per cell
//   build/bench/bench_lat --sweep --quick   # CI-sized sweep
//
// The sweep measures the same LAT twice per cell: once with the directory
// forced to a single shard (the pre-sharding layout) and once with the
// automatic shard count (which honours the SQLCM_LAT_SHARDS environment
// override), so one binary produces both sides of the comparison in the
// same run. docs/PERFORMANCE.md documents the output schema.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sqlcm/lat.h"
#include "sqlcm/sketch.h"

namespace sqlcm::cm {
namespace {

QueryRecord MakeRecord(uint64_t id, const std::string& sig, double duration) {
  QueryRecord rec;
  rec.id = id;
  rec.logical_signature = sig;
  rec.duration_secs = duration;
  rec.text = "SELECT * FROM t WHERE id = ?";
  return rec;
}

std::unique_ptr<Lat> MakeAggLat(bool aging, size_t shard_count = 0) {
  LatSpec spec;
  spec.name = "bench";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", aging},
                     {LatAggFunc::kAvg, "Duration", "Avg", aging},
                     {LatAggFunc::kStdev, "Duration", "Sd", aging}};
  if (aging) {
    spec.aging_window_micros = 1'000'000;
    spec.aging_block_micros = 100'000;
  }
  spec.shard_count = shard_count;
  return std::move(*Lat::Create(std::move(spec)));
}

/// Upsert into an existing group (the hot path of Figure 2's workload).
void BM_LatInsertExistingGroup(benchmark::State& state) {
  auto lat = MakeAggLat(false);
  auto rec = MakeRecord(1, "sig", 1.0);
  for (auto _ : state) {
    lat->Insert(&rec, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatInsertExistingGroup);

void BM_LatInsertManyGroups(benchmark::State& state) {
  auto lat = MakeAggLat(false);
  uint64_t i = 0;
  for (auto _ : state) {
    auto rec = MakeRecord(i, "sig" + std::to_string(i % 1024), 1.0);
    lat->Insert(&rec, 0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatInsertManyGroups);

void BM_LatInsertAging(benchmark::State& state) {
  auto lat = MakeAggLat(true);
  auto rec = MakeRecord(1, "sig", 1.0);
  int64_t now = 0;
  for (auto _ : state) {
    lat->Insert(&rec, now);
    now += 1'000;  // 1ms per insert -> block churn
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatInsertAging);

/// Size-limited LAT with churn: every insert displaces a row (the eviction
/// path that dominates the Figure 2 overhead).
void BM_LatInsertWithEviction(benchmark::State& state) {
  LatSpec spec;
  spec.name = "topk";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false}};
  spec.ordering = {{"Dur", true}};
  spec.max_rows = 10;
  auto lat = std::move(*Lat::Create(std::move(spec)));
  uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    auto rec = MakeRecord(i, "s", static_cast<double>(i % 97));
    lat->Insert(&rec, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatInsertWithEviction);

std::unique_ptr<Lat> MakeSketchLat(size_t quantile_budget) {
  LatSpec spec;
  spec.name = "bench_sketch";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                     {LatAggFunc::kQuantile, "Duration", "P50", false, 0.5},
                     {LatAggFunc::kQuantile, "Duration", "P95", false, 0.95},
                     {LatAggFunc::kDistinct, "Query_Text", "DQ", false}};
  spec.quantile_sketch_bytes = quantile_budget;
  return std::move(*Lat::Create(std::move(spec)));
}

/// Sketch fold path: every insert updates two log-bucketed quantile
/// sketches (with budget-collapse checks) and one HLL register array on
/// top of the classic cells.
void BM_LatInsertSketch(benchmark::State& state) {
  auto lat = MakeSketchLat(static_cast<size_t>(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    auto rec = MakeRecord(i, "sig" + std::to_string(i % 64),
                          static_cast<double>((i % 9973) + 1) * 1e-3);
    lat->Insert(&rec, 0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatInsertSketch)->Arg(0)->Arg(4096)->Arg(512);

void BM_LatLookup(benchmark::State& state) {
  auto lat = MakeAggLat(false);
  for (int i = 0; i < 256; ++i) {
    auto rec = MakeRecord(1, "sig" + std::to_string(i), 1.0);
    lat->Insert(&rec, 0);
  }
  auto probe = MakeRecord(1, "sig128", 0);
  common::Row row;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lat->LookupForObject(&probe, 0, &row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatLookup);

/// The §6.1 latching claim: concurrent inserts into one LAT. Throughput
/// per thread should not collapse as threads are added (threads hit
/// different rows; hash and heap latches are held for ~ns).
void BM_LatConcurrentInsert(benchmark::State& state) {
  static Lat* lat = nullptr;
  if (state.thread_index() == 0) {
    lat = MakeAggLat(false).release();
  }
  auto rec = MakeRecord(1, "sig" + std::to_string(state.thread_index() % 64),
                        1.0);
  for (auto _ : state) {
    lat->Insert(&rec, 0);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    // Leak-free teardown after all threads stop.
  }
}
BENCHMARK(BM_LatConcurrentInsert)->Threads(1)->Threads(4)->Threads(8);

/// Severe stress: all threads update the SAME row (worst-case latch
/// contention).
void BM_LatConcurrentSameRow(benchmark::State& state) {
  static Lat* lat = nullptr;
  if (state.thread_index() == 0) {
    lat = MakeAggLat(false).release();
  }
  auto rec = MakeRecord(1, "hot", 1.0);
  for (auto _ : state) {
    lat->Insert(&rec, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatConcurrentSameRow)->Threads(1)->Threads(4)->Threads(8);

// ---------------------------------------------------------------------------
// --sweep: sharded-vs-single insert scaling, BENCH_JSON output
// ---------------------------------------------------------------------------

struct SweepCell {
  const char* config;   // "single" | "sharded"
  size_t shards;        // resolved shard count
  int threads;
  const char* dist;     // "contended" | "uniform"
  double inserts_per_sec;
  double contention_pct;  // latch_contention / latch_acquisitions
};

/// Runs `threads` workers, each inserting `ops_per_thread` pre-built records
/// into one LAT, and returns the measured cell. `contended` draws every
/// thread's keys from the same 64 groups (shard/row latch pressure);
/// otherwise each thread works a private 1024-group key range.
SweepCell RunSweepCell(const char* config, size_t shard_count, int threads,
                       bool contended, uint64_t ops_per_thread) {
  auto lat = MakeAggLat(false, shard_count);

  // Pre-build the per-thread record cycles outside the timed region.
  std::vector<std::vector<QueryRecord>> records(
      static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const int keys = contended ? 64 : 1024;
    records[static_cast<size_t>(t)].reserve(static_cast<size_t>(keys));
    for (int k = 0; k < keys; ++k) {
      const std::string sig =
          contended ? "sig" + std::to_string(k)
                    : "t" + std::to_string(t) + "_" + std::to_string(k);
      records[static_cast<size_t>(t)].push_back(
          MakeRecord(static_cast<uint64_t>(k), sig, 1.0));
    }
  }

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& cycle = records[static_cast<size_t>(t)];
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      const size_t n = cycle.size();
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        lat->Insert(&cycle[i % n], 0);
      }
    });
  }
  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto stop = std::chrono::steady_clock::now();

  const double secs =
      std::chrono::duration<double>(stop - start).count();
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(threads);
  const uint64_t acq = lat->stats().latch_acquisitions.value();
  const uint64_t con = lat->stats().latch_contention.value();
  SweepCell cell;
  cell.config = config;
  cell.shards = lat->shard_count();
  cell.threads = threads;
  cell.dist = contended ? "contended" : "uniform";
  cell.inserts_per_sec = secs > 0 ? total_ops / secs : 0;
  cell.contention_pct =
      acq > 0 ? 100.0 * static_cast<double>(con) / static_cast<double>(acq)
              : 0;
  return cell;
}

void PrintSweepCell(const SweepCell& c) {
  std::printf(
      "BENCH_JSON {\"bench\":\"lat_sweep\",\"config\":\"%s\","
      "\"shards\":%zu,\"threads\":%d,\"dist\":\"%s\","
      "\"inserts_per_sec\":%.0f,\"latch_contention_pct\":%.3f}\n",
      c.config, c.shards, c.threads, c.dist, c.inserts_per_sec,
      c.contention_pct);
  std::fflush(stdout);
}

/// Sketch-bearing insert + merge throughput, one BENCH_JSON row. Inserts
/// spread log-uniform-ish durations over `groups` groups so quantile
/// sketches fill many buckets (and collapse under the byte budget), then
/// measures repeated pairwise QuantileSketch merges — the FleetAggregator's
/// delta-fold hot path.
void RunSketchBench(bool quick) {
  const uint64_t ops = quick ? 200'000 : 1'000'000;
  const size_t groups = 64;
  const size_t budget = 4096;

  auto lat = MakeSketchLat(budget);
  std::vector<QueryRecord> cycle;
  // 256 distinct durations per group: enough occupied buckets that the
  // 4096-byte budget forces observable collapse.
  cycle.reserve(groups * 256);
  for (size_t k = 0; k < groups * 256; ++k) {
    // Durations span ~6 decades, like real query latency tails.
    const double dur = 1e-4 * static_cast<double>((k * 2654435761u) % 9973 + 1)
                       * static_cast<double>(k % 97 + 1);
    cycle.push_back(MakeRecord(k, "sig" + std::to_string(k % groups), dur));
  }
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    lat->Insert(&cycle[i % cycle.size()], 0);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double insert_secs =
      std::chrono::duration<double>(stop - start).count();

  size_t sketch_bytes = 0, sketch_cells = 0;
  lat->SketchFootprint(&sketch_bytes, &sketch_cells);
  const uint64_t collapses = lat->stats().sketch_collapses.value();

  // Merge throughput: two populated sketches folded repeatedly (merge is
  // idempotent in shape, so the target stays at steady-state size).
  QuantileSketch a, b;
  for (uint64_t i = 0; i < 100'000; ++i) {
    a.Add(1e-4 * static_cast<double>(i % 9973 + 1));
    b.Add(1e-3 * static_cast<double>(i % 7919 + 1));
  }
  const uint64_t merge_iters = quick ? 2'000 : 10'000;
  const auto mstart = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < merge_iters; ++i) {
    QuantileSketch target = a;
    target.Merge(b);
    benchmark::DoNotOptimize(target);
  }
  const auto mstop = std::chrono::steady_clock::now();
  const double merge_secs =
      std::chrono::duration<double>(mstop - mstart).count();

  std::printf(
      "BENCH_JSON {\"bench\":\"lat_sketch\",\"ops\":%llu,\"groups\":%zu,"
      "\"quantile_budget_bytes\":%zu,\"inserts_per_sec\":%.0f,"
      "\"sketch_bytes\":%zu,\"sketch_cells\":%zu,\"collapses\":%llu,"
      "\"sketch_merges_per_sec\":%.0f}\n",
      static_cast<unsigned long long>(ops), groups, budget,
      insert_secs > 0 ? static_cast<double>(ops) / insert_secs : 0,
      sketch_bytes, sketch_cells,
      static_cast<unsigned long long>(collapses),
      merge_secs > 0 ? static_cast<double>(merge_iters) / merge_secs : 0);
  std::fflush(stdout);
}

int RunSweep(bool quick) {
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8};
  const uint64_t ops_per_thread = quick ? 50'000 : 200'000;

  std::printf("lat insert sweep: single-shard vs auto-sharded directory\n");
  std::printf("(ops/thread=%llu; SQLCM_LAT_SHARDS overrides the auto side)\n",
              static_cast<unsigned long long>(ops_per_thread));

  double single_1t_contended = 0, sharded_1t_contended = 0;
  double single_8t_contended = 0, sharded_8t_contended = 0;
  for (const bool contended : {true, false}) {
    for (const int threads : thread_counts) {
      // Single-shard layout first, then the auto (sharded) layout, in the
      // same process so the comparison shares one build + machine state.
      const SweepCell single = RunSweepCell("single", /*shard_count=*/1,
                                            threads, contended,
                                            ops_per_thread);
      const SweepCell sharded = RunSweepCell("sharded", /*shard_count=*/0,
                                             threads, contended,
                                             ops_per_thread);
      PrintSweepCell(single);
      PrintSweepCell(sharded);
      if (contended && threads == 1) {
        single_1t_contended = single.inserts_per_sec;
        sharded_1t_contended = sharded.inserts_per_sec;
      }
      if (contended && threads == 8) {
        single_8t_contended = single.inserts_per_sec;
        sharded_8t_contended = sharded.inserts_per_sec;
      }
    }
  }
  if (single_8t_contended > 0 && single_1t_contended > 0) {
    std::printf(
        "BENCH_JSON {\"bench\":\"lat_sweep_summary\","
        "\"contended_8t_speedup\":%.2f,"
        "\"single_thread_ratio\":%.3f}\n",
        sharded_8t_contended / single_8t_contended,
        sharded_1t_contended / single_1t_contended);
  }
  RunSketchBench(quick);
  return 0;
}

}  // namespace
}  // namespace sqlcm::cm

int main(int argc, char** argv) {
  bool sweep = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep") == 0) sweep = true;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (sweep) return sqlcm::cm::RunSweep(quick);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
