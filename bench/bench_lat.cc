// E5 (supporting §6.1): LAT microbenchmarks — insert cost by shape and the
// "latching does not introduce a new hotspot even under severe stress"
// claim, via multi-threaded insert scaling.
//
//   build/bench/bench_lat
#include <benchmark/benchmark.h>

#include "sqlcm/lat.h"

namespace sqlcm::cm {
namespace {

QueryRecord MakeRecord(uint64_t id, const std::string& sig, double duration) {
  QueryRecord rec;
  rec.id = id;
  rec.logical_signature = sig;
  rec.duration_secs = duration;
  rec.text = "SELECT * FROM t WHERE id = ?";
  return rec;
}

std::unique_ptr<Lat> MakeAggLat(bool aging) {
  LatSpec spec;
  spec.name = "bench";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", aging},
                     {LatAggFunc::kAvg, "Duration", "Avg", aging},
                     {LatAggFunc::kStdev, "Duration", "Sd", aging}};
  if (aging) {
    spec.aging_window_micros = 1'000'000;
    spec.aging_block_micros = 100'000;
  }
  return std::move(*Lat::Create(std::move(spec)));
}

/// Upsert into an existing group (the hot path of Figure 2's workload).
void BM_LatInsertExistingGroup(benchmark::State& state) {
  auto lat = MakeAggLat(false);
  auto rec = MakeRecord(1, "sig", 1.0);
  for (auto _ : state) {
    lat->Insert(&rec, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatInsertExistingGroup);

void BM_LatInsertManyGroups(benchmark::State& state) {
  auto lat = MakeAggLat(false);
  uint64_t i = 0;
  for (auto _ : state) {
    auto rec = MakeRecord(i, "sig" + std::to_string(i % 1024), 1.0);
    lat->Insert(&rec, 0);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatInsertManyGroups);

void BM_LatInsertAging(benchmark::State& state) {
  auto lat = MakeAggLat(true);
  auto rec = MakeRecord(1, "sig", 1.0);
  int64_t now = 0;
  for (auto _ : state) {
    lat->Insert(&rec, now);
    now += 1'000;  // 1ms per insert -> block churn
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatInsertAging);

/// Size-limited LAT with churn: every insert displaces a row (the eviction
/// path that dominates the Figure 2 overhead).
void BM_LatInsertWithEviction(benchmark::State& state) {
  LatSpec spec;
  spec.name = "topk";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false}};
  spec.ordering = {{"Dur", true}};
  spec.max_rows = 10;
  auto lat = std::move(*Lat::Create(std::move(spec)));
  uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    auto rec = MakeRecord(i, "s", static_cast<double>(i % 97));
    lat->Insert(&rec, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatInsertWithEviction);

void BM_LatLookup(benchmark::State& state) {
  auto lat = MakeAggLat(false);
  for (int i = 0; i < 256; ++i) {
    auto rec = MakeRecord(1, "sig" + std::to_string(i), 1.0);
    lat->Insert(&rec, 0);
  }
  auto probe = MakeRecord(1, "sig128", 0);
  common::Row row;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lat->LookupForObject(&probe, 0, &row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatLookup);

/// The §6.1 latching claim: concurrent inserts into one LAT. Throughput
/// per thread should not collapse as threads are added (threads hit
/// different rows; hash and heap latches are held for ~ns).
void BM_LatConcurrentInsert(benchmark::State& state) {
  static Lat* lat = nullptr;
  if (state.thread_index() == 0) {
    lat = MakeAggLat(false).release();
  }
  auto rec = MakeRecord(1, "sig" + std::to_string(state.thread_index() % 64),
                        1.0);
  for (auto _ : state) {
    lat->Insert(&rec, 0);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    // Leak-free teardown after all threads stop.
  }
}
BENCHMARK(BM_LatConcurrentInsert)->Threads(1)->Threads(4)->Threads(8);

/// Severe stress: all threads update the SAME row (worst-case latch
/// contention).
void BM_LatConcurrentSameRow(benchmark::State& state) {
  static Lat* lat = nullptr;
  if (state.thread_index() == 0) {
    lat = MakeAggLat(false).release();
  }
  auto rec = MakeRecord(1, "hot", 1.0);
  for (auto _ : state) {
    lat->Insert(&rec, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatConcurrentSameRow)->Threads(1)->Threads(4)->Threads(8);

}  // namespace
}  // namespace sqlcm::cm

BENCHMARK_MAIN();
