// Substrate microbenchmarks: B+-tree and end-to-end statement execution.
// Not a paper figure; establishes the baseline costs that the E2/E3
// overhead percentages are measured against.
//
//   build/bench/bench_engine
#include <benchmark/benchmark.h>

#include "engine/database.h"
#include "engine/session.h"
#include "storage/bplus_tree.h"
#include "workload/tpch_gen.h"

namespace sqlcm {
namespace {

using common::Row;
using common::Value;

void BM_BPlusTreeInsert(benchmark::State& state) {
  storage::BPlusTree<int64_t> tree;
  int64_t i = 0;
  for (auto _ : state) {
    tree.Insert({Value::Int(i)}, i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeFind(benchmark::State& state) {
  storage::BPlusTree<int64_t> tree;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) tree.Insert({Value::Int(i)}, i);
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find({Value::Int(key)}));
    key = (key + 7919) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeFind)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

class EngineFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (db != nullptr) return;
    db = new engine::Database();
    workload::TpchConfig tpch;
    tpch.num_orders = 25'000;
    tpch.num_parts = 500;
    if (!workload::LoadTpch(db, tpch).ok()) std::abort();
    session = db->CreateSession().release();
    // Warm the plan cache.
    exec::ParamMap params = {{"k", Value::Int(1)}};
    (void)session->Execute("SELECT * FROM orders WHERE o_orderkey = @k",
                           &params);
  }

  static engine::Database* db;
  static engine::Session* session;
};
engine::Database* EngineFixture::db = nullptr;
engine::Session* EngineFixture::session = nullptr;

BENCHMARK_F(EngineFixture, PointSelectCachedPlan)(benchmark::State& state) {
  int64_t k = 1;
  for (auto _ : state) {
    exec::ParamMap params = {{"k", Value::Int(k)}};
    auto result =
        session->Execute("SELECT * FROM orders WHERE o_orderkey = @k",
                         &params);
    benchmark::DoNotOptimize(result);
    k = k % 25'000 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(EngineFixture, PointSelectCompileEachTime)(
    benchmark::State& state) {
  int64_t k = 1;
  for (auto _ : state) {
    // Unique text defeats the plan cache: measures parse+plan+optimize.
    auto result = session->Execute(
        "SELECT o_custkey FROM orders WHERE o_orderkey = " +
        std::to_string(k));
    benchmark::DoNotOptimize(result);
    k = k % 25'000 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_F(EngineFixture, UpdateSingleRow)(benchmark::State& state) {
  int64_t k = 1;
  for (auto _ : state) {
    exec::ParamMap params = {{"k", Value::Int(k)}};
    auto result = session->Execute(
        "UPDATE orders SET o_custkey = 1 WHERE o_orderkey = @k", &params);
    benchmark::DoNotOptimize(result);
    k = k % 25'000 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace
}  // namespace sqlcm

BENCHMARK_MAIN();
