// Ablation (DESIGN.md §4): the Selinger-style join-order enumerator vs the
// as-written pairwise join order.
//
// Not a paper figure — the paper's host (SQL Server) has a mature
// optimizer. This ablation documents why kestrel needs one to reproduce
// E1's shape: with enumeration, a badly written join order (small filtered
// relation listed last) still gets a good plan; without it, execution cost
// explodes. It also shows the optimization-time cost of enumeration, which
// is exactly what E1 measures signatures against.
//
//   build/bench/bench_join_ordering
#include <cstdio>

#include "common/clock.h"
#include "exec/executor.h"
#include "exec/optimizer.h"
#include "exec/planner.h"
#include "sql/parser.h"
#include "txn/transaction.h"
#include "workload/tpch_gen.h"

using namespace sqlcm;

namespace {

struct CompileAndRun {
  double optimize_us = 0;
  double execute_us = 0;
  std::string root_op;
};

CompileAndRun Measure(engine::Database* db, const std::string& sql,
                      bool reorder, int repetitions) {
  common::Clock* clock = common::SystemClock::Get();
  exec::Planner planner(db->catalog());
  exec::Optimizer::Options options;
  options.enable_join_reordering = reorder;

  CompileAndRun out;
  for (int i = 0; i < repetitions; ++i) {
    auto stmt = sql::Parser::ParseStatement(sql);
    if (!stmt.ok()) std::exit(1);
    auto logical = planner.Plan(**stmt);
    if (!logical.ok()) std::exit(1);
    exec::Optimizer optimizer(options);
    const int64_t t0 = clock->NowMicros();
    auto physical = optimizer.Optimize(**logical);
    out.optimize_us += static_cast<double>(clock->NowMicros() - t0);
    if (!physical.ok()) std::exit(1);
    out.root_op = exec::PhysOpName((*physical)->op);

    txn::Transaction* txn = db->txn_manager()->Begin();
    exec::ExecContext ctx;
    ctx.txn = txn;
    ctx.locks = db->txn_manager()->lock_manager();
    ctx.clock = clock;
    const int64_t t1 = clock->NowMicros();
    auto result = exec::Executor::Execute(**physical, &ctx);
    out.execute_us += static_cast<double>(clock->NowMicros() - t1);
    if (!result.ok()) {
      std::fprintf(stderr, "execute: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    (void)db->txn_manager()->Commit(txn);
  }
  out.optimize_us /= repetitions;
  out.execute_us /= repetitions;
  return out;
}

}  // namespace

int main() {
  engine::Database db;
  workload::TpchConfig tpch;
  tpch.num_orders = 10'000;
  tpch.num_parts = 300;
  if (!workload::LoadTpch(&db, tpch).ok()) return 1;

  // Adversarial join order: the heavily filtered `orders` relation is
  // written LAST; without enumeration the plan starts from the huge
  // unfiltered lineitem side.
  const std::string sql =
      "SELECT COUNT(*) FROM part p "
      "JOIN lineitem l ON l.l_partkey = p.p_partkey "
      "JOIN orders o ON l.l_orderkey = o.o_orderkey "
      "WHERE o.o_orderkey = 77";

  std::printf("ablation: Selinger join-order enumeration vs as-written "
              "order\nquery: 3-way join with a point filter on the "
              "last-listed relation\n\n");
  std::printf("%-14s %14s %14s   %s\n", "mode", "optimize(us)", "execute(us)",
              "plan root");
  const auto with = Measure(&db, sql, /*reorder=*/true, 25);
  const auto without = Measure(&db, sql, /*reorder=*/false, 25);
  std::printf("%-14s %14.1f %14.1f   %s\n", "enumerated", with.optimize_us,
              with.execute_us, with.root_op.c_str());
  std::printf("%-14s %14.1f %14.1f   %s\n", "as-written", without.optimize_us,
              without.execute_us, without.root_op.c_str());
  std::printf("\nexecution speedup from enumeration: %.1fx "
              "(optimization cost: %.1fx)\n",
              without.execute_us / with.execute_us,
              with.optimize_us / without.optimize_us);
  return 0;
}
