// E2 — Figure 2: overhead of rule evaluation and LAT maintenance.
//
// Paper setup (§6.2.1): 10,000 short single-row clustered-index selects on
// a TPC-H lineitem table; a varying number of rules (100..1000), each with
// a varying number of atomic conditions (1..20), all firing on every query
// and each maintaining its own fixed-size (10-row) LAT storing attributes
// of the last 10 queries seen, indexed by signature/id.
//
// Paper findings to reproduce in shape:
//   * total overhead grows with the NUMBER of rules;
//   * the COMPLEXITY of conditions has very little impact;
//   * LAT maintenance (insert + eviction) dominates.
// Absolute percentages differ by construction: the paper's baseline query
// ran on a 900MHz machine (~ms/query); this engine executes the same
// statement in ~2µs, so the same per-rule cost is a much larger *fraction*
// here. The table therefore reports both the relative overhead and the
// absolute per-query monitoring cost (see EXPERIMENTS.md).
//
// The final stdout line is machine-readable: `BENCH_JSON {...}` carries the
// baseline, every config's overhead numbers and the monitor's own per-hook
// latency percentiles (from MonitorMetrics), so CI can diff runs.
//
// A tracing sweep re-measures one config with the causal span plane off,
// sampled (1%) and always-on, emitting a `BENCH_JSON
// {"bench":"rule_overhead_tracing",...}` row so CI can assert that sampled
// tracing stays within 10% of the tracing-off hook path.
//
//   build/bench/bench_rule_overhead [--quick] [--metrics-out <path>]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "engine/database.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"

using namespace sqlcm;

namespace {

/// k always-true atomic conditions over query probes, ANDed together.
std::string MakeCondition(int num_conditions) {
  static const char* kAtoms[] = {
      "Query.Duration >= 0",          "Query.Estimated_Cost >= 0",
      "Query.Times_Blocked >= 0",     "Query.Time_Blocked >= 0",
      "Query.ID > 0",                 "Query.Number_of_instances > 0",
      "Query.Session_ID > 0",         "Query.Queries_Blocked >= 0",
      "Query.Start_Time >= 0",        "Query.Transaction_ID >= 0",
  };
  constexpr int kNumAtoms = 10;
  std::string out;
  for (int i = 0; i < num_conditions; ++i) {
    if (i > 0) out += " AND ";
    out += kAtoms[i % kNumAtoms];
  }
  return out;
}

struct Config {
  int num_rules;
  int num_conditions;
};

struct ConfigResult {
  Config config;
  double wall_ms;
  double overhead_pct;
  double added_us_per_query;
};

/// The same workload re-measured with the LoadGovernor's shedding ladder
/// pinned at its deepest level (docs/ROBUSTNESS.md): the perf trajectory
/// tracks both full-fidelity and degraded-mode overhead.
struct DegradedResult {
  Config config;
  double wall_ms;
  double overhead_pct;
  double added_us_per_query;
  uint64_t events_sampled_out;
};

std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// One `BENCH_JSON {...}` line: greppable, parseable, stable key order.
void PrintBenchJson(int64_t num_queries, double baseline_us,
                    const std::vector<ConfigResult>& results,
                    const DegradedResult& degraded,
                    const cm::MonitorMetrics& metrics) {
  std::string out = "BENCH_JSON {\"bench\":\"rule_overhead\"";
  out += ",\"queries\":" + std::to_string(num_queries);
  out += ",\"baseline_us_per_query\":" +
         JsonNum(baseline_us / static_cast<double>(num_queries));
  out += ",\"configs\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    if (i > 0) out += ",";
    out += "{\"rules\":" + std::to_string(r.config.num_rules);
    out += ",\"conds\":" + std::to_string(r.config.num_conditions);
    out += ",\"wall_ms\":" + JsonNum(r.wall_ms);
    out += ",\"overhead_pct\":" + JsonNum(r.overhead_pct);
    out += ",\"added_us_per_query\":" + JsonNum(r.added_us_per_query) + "}";
  }
  out += "],\"degraded\":{\"rules\":" + std::to_string(degraded.config.num_rules);
  out += ",\"conds\":" + std::to_string(degraded.config.num_conditions);
  out += ",\"level\":" +
         std::to_string(static_cast<int>(cm::LoadGovernor::kLevelSampleEvents));
  out += ",\"wall_ms\":" + JsonNum(degraded.wall_ms);
  out += ",\"overhead_pct\":" + JsonNum(degraded.overhead_pct);
  out += ",\"added_us_per_query\":" + JsonNum(degraded.added_us_per_query);
  out += ",\"events_sampled_out\":" +
         std::to_string(degraded.events_sampled_out) + "}";
  out += ",\"hooks\":{";
  bool first = true;
  for (size_t h = 0; h < cm::kNumMonitorHooks; ++h) {
    const auto& hook = metrics.hooks[h];
    if (hook.calls.value() == 0) continue;
    const auto pct = hook.latency.ComputePercentiles();
    if (!first) out += ",";
    first = false;
    out += std::string("\"") +
           cm::MonitorHookName(static_cast<cm::MonitorHook>(h)) + "\":{";
    out += "\"count\":" + std::to_string(hook.calls.value());
    out += ",\"timed\":" + std::to_string(hook.latency.count());
    out += ",\"p50_us\":" + JsonNum(pct.p50);
    out += ",\"p95_us\":" + JsonNum(pct.p95);
    out += ",\"p99_us\":" + JsonNum(pct.p99) + "}";
  }
  out += "},\"fast_path_calls\":" +
         std::to_string(metrics.fast_path_calls.value());
  out += ",\"rules_fired\":" + std::to_string(metrics.rules_fired.value());
  out += "}";
  std::printf("%s\n", out.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--metrics-out <path>]\n", argv[0]);
      return 1;
    }
  }

  engine::Database db;
  workload::TpchConfig tpch;
  tpch.num_orders = 25'000;  // ~100k lineitem rows
  tpch.num_parts = 500;
  if (!workload::LoadTpch(&db, tpch).ok()) {
    std::fprintf(stderr, "tpch load failed\n");
    return 1;
  }
  const int64_t num_queries = quick ? 2'000 : 10'000;
  auto items = workload::GeneratePointSelectWorkload(tpch, num_queries, 17);
  auto session = db.CreateSession();

  auto run_once = [&]() -> double {
    auto stats = workload::RunWorkload(session.get(), items);
    if (!stats.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    return static_cast<double>(stats->wall_micros);
  };

  // Baseline: no monitor attached at all.
  run_once();  // warm plan cache and page in the tree
  const double baseline_us = run_once();
  std::printf("E2 / Figure 2: rule evaluation + LAT maintenance overhead\n");
  std::printf("baseline: %lld single-row clustered-index selects in %.1f ms "
              "(%.2f us/query)\n\n",
              static_cast<long long>(num_queries), baseline_us / 1000.0,
              baseline_us / static_cast<double>(num_queries));
  std::printf("%8s %8s %12s %12s %14s\n", "rules", "conds", "wall(ms)",
              "overhead%", "us/query added");

  // unique_ptr so the mode sweep at the end can destroy this engine before
  // attaching its own (only one MonitorEngine may hook a Database at a time).
  auto monitor_ptr = std::make_unique<cm::MonitorEngine>(&db);
  cm::MonitorEngine& monitor = *monitor_ptr;
  std::vector<ConfigResult> results;

  std::vector<Config> configs = {{100, 1}, {100, 5},  {100, 10}, {100, 20},
                                 {250, 1}, {250, 20}, {500, 1},  {500, 20},
                                 {1000, 1}, {1000, 20}};
  if (quick) configs = {{100, 1}, {100, 20}, {500, 1}, {500, 20}};

  // Fresh rule set + one 10-row LAT per rule (paper setup). Parameterized on
  // the engine so the mode sweep can reuse it against its own instances.
  std::vector<uint64_t> rule_ids;
  auto setup_rules = [&](cm::MonitorEngine& eng, const Config& config) -> bool {
    for (int r = 0; r < config.num_rules; ++r) {
      cm::LatSpec lat;
      lat.name = "L" + std::to_string(r);
      lat.group_by = {{"ID", ""}};
      lat.aggregates = {
          {cm::LatAggFunc::kLast, "Query_Text", "Text", false},
          {cm::LatAggFunc::kLast, "Duration", "Dur", false},
          {cm::LatAggFunc::kLast, "Logical_Signature", "Sig", false}};
      lat.ordering = {{"ID", true}};  // keep the last 10 queries seen
      lat.max_rows = 10;
      if (auto s = eng.DefineLat(std::move(lat)); !s.ok()) {
        std::fprintf(stderr, "lat: %s\n", s.ToString().c_str());
        return false;
      }
      cm::RuleSpec rule;
      rule.name = "r" + std::to_string(r);
      rule.event = "Query.Commit";
      rule.condition = MakeCondition(config.num_conditions);
      rule.action = "Query.Insert(L" + std::to_string(r) + ")";
      auto id = eng.AddRule(rule);
      if (!id.ok()) {
        std::fprintf(stderr, "rule: %s\n", id.status().ToString().c_str());
        return false;
      }
      rule_ids.push_back(*id);
    }
    return true;
  };
  auto teardown_rules = [&](cm::MonitorEngine& eng, const Config& config) {
    for (uint64_t id : rule_ids) (void)eng.RemoveRule(id);
    rule_ids.clear();
    for (int r = 0; r < config.num_rules; ++r) {
      (void)eng.DropLat("L" + std::to_string(r));
    }
  };

  for (const Config& config : configs) {
    if (!setup_rules(monitor, config)) return 1;

    const double with_rules_us = run_once();
    const double overhead_pct =
        100.0 * (with_rules_us - baseline_us) / baseline_us;
    const double added_us_per_query =
        (with_rules_us - baseline_us) / static_cast<double>(num_queries);
    std::printf("%8d %8d %12.1f %12.1f %14.3f\n", config.num_rules,
                config.num_conditions, with_rules_us / 1000.0, overhead_pct,
                added_us_per_query);
    results.push_back({config, with_rules_us / 1000.0, overhead_pct,
                       added_us_per_query});

    teardown_rules(monitor, config);
  }

  // Degraded mode: the heaviest config re-measured with the shedding ladder
  // pinned at its deepest level (timing + trace off, aging deferred, rule
  // evaluation sampled) — the overhead the monitor falls back to when the
  // LoadGovernor's budget is blown.
  const Config degraded_config = configs.back();
  if (!setup_rules(monitor, degraded_config)) return 1;
  const uint64_t sampled_before = monitor.metrics().events_sampled_out.value();
  monitor.governor()->ForceLevel(cm::LoadGovernor::kLevelSampleEvents);
  const double degraded_us = run_once();
  monitor.governor()->ForceLevel(cm::LoadGovernor::kLevelFull);
  monitor.governor()->ClearForce();
  teardown_rules(monitor, degraded_config);
  const DegradedResult degraded = {
      degraded_config, degraded_us / 1000.0,
      100.0 * (degraded_us - baseline_us) / baseline_us,
      (degraded_us - baseline_us) / static_cast<double>(num_queries),
      monitor.metrics().events_sampled_out.value() - sampled_before};
  std::printf("%8d %8d %12.1f %12.1f %14.3f   (degraded: shed level %d)\n",
              degraded_config.num_rules, degraded_config.num_conditions,
              degraded.wall_ms, degraded.overhead_pct,
              degraded.added_us_per_query,
              static_cast<int>(cm::LoadGovernor::kLevelSampleEvents));

  // Tracing sweep: one mid-size config re-measured with the causal span
  // plane off, sampled at 1%, and always-on. Sampled tracing must stay
  // within 10% of the tracing-off hook path (acceptance bar for leaving
  // sampling enabled in production).
  struct TracingResult {
    const char* mode;
    double rate;
    double wall_ms;
    double added_us_per_query;
    uint64_t spans_recorded;
    uint64_t profiled_events;
  };
  const Config tracing_config = quick ? Config{100, 1} : Config{250, 1};
  if (!setup_rules(monitor, tracing_config)) return 1;
  run_once();  // warm the fresh LATs so mode "off" isn't charged for it
  std::vector<TracingResult> tracing;
  std::printf("\ntracing sweep (%d rules, %d conds):\n",
              tracing_config.num_rules, tracing_config.num_conditions);
  std::printf("%10s %12s %14s %14s\n", "mode", "wall(ms)", "us/query added",
              "spans");
  for (const auto& [mode, rate, enabled] :
       {std::tuple<const char*, double, bool>{"off", 0.0, false},
        {"sampled", 0.01, true},
        {"always", 1.0, true}}) {
    monitor.span_ring()->set_enabled(enabled);
    monitor.set_span_sampling(rate);
    const uint64_t spans_before = monitor.span_ring()->total_recorded();
    const uint64_t events_before =
        monitor.metrics().profile_events.value();
    const double us = run_once();
    tracing.push_back(
        {mode, rate, us / 1000.0,
         (us - baseline_us) / static_cast<double>(num_queries),
         monitor.span_ring()->total_recorded() - spans_before,
         monitor.metrics().profile_events.value() - events_before});
    std::printf("%10s %12.1f %14.3f %14llu\n", mode, us / 1000.0,
                (us - baseline_us) / static_cast<double>(num_queries),
                static_cast<unsigned long long>(tracing.back().spans_recorded));
  }
  monitor.span_ring()->set_enabled(false);
  monitor.set_span_sampling(1.0);
  teardown_rules(monitor, tracing_config);
  const double sampled_vs_off_pct =
      tracing[0].wall_ms > 0
          ? 100.0 * (tracing[1].wall_ms - tracing[0].wall_ms) /
                tracing[0].wall_ms
          : 0.0;
  std::printf("sampled tracing vs off: %+.1f%% wall time\n",
              sampled_vs_off_pct);
  {
    std::string out = "BENCH_JSON {\"bench\":\"rule_overhead_tracing\"";
    out += ",\"rules\":" + std::to_string(tracing_config.num_rules);
    out += ",\"conds\":" + std::to_string(tracing_config.num_conditions);
    out += ",\"modes\":[";
    for (size_t i = 0; i < tracing.size(); ++i) {
      const TracingResult& t = tracing[i];
      if (i > 0) out += ",";
      out += std::string("{\"mode\":\"") + t.mode + "\"";
      out += ",\"sample_rate\":" + JsonNum(t.rate);
      out += ",\"wall_ms\":" + JsonNum(t.wall_ms);
      out += ",\"added_us_per_query\":" + JsonNum(t.added_us_per_query);
      out += ",\"spans_recorded\":" + std::to_string(t.spans_recorded);
      out += ",\"profiled_events\":" + std::to_string(t.profiled_events) + "}";
    }
    out += "],\"sampled_vs_off_pct\":" + JsonNum(sampled_vs_off_pct) + "}";
    std::printf("%s\n", out.c_str());
  }

  if (!metrics_out.empty()) {
    if (auto s = monitor.ExportMetricsNow(metrics_out); !s.ok()) {
      std::fprintf(stderr, "metrics export: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("metrics exposition written to %s\n", metrics_out.c_str());
  }

  std::printf("\nshape checks (paper §6.2.1): overhead grows with #rules; "
              "condition complexity has little impact; per-(rule,query) cost "
              "is dominated by LAT insert/evict maintenance; degraded mode "
              "(governor shed ladder engaged) must cost less than the same "
              "config at full fidelity.\n");
  if (!monitor.last_error().empty()) {
    std::fprintf(stderr, "monitor error: %s\n", monitor.last_error().c_str());
    return 1;
  }
  PrintBenchJson(num_queries, baseline_us, results, degraded,
                 monitor.metrics());

  // Mode sweep: the same all-deferrable rule set measured with synchronous
  // (in-hook) rule evaluation vs the batched async pipeline
  // (docs/PERFORMANCE.md §"Async pipeline"). Each mode gets a fresh engine —
  // Options are fixed at construction and only one engine may hook the db —
  // so the main engine is destroyed first. Acceptance bar: the deferred
  // Query.Commit hook p50 must be >= 5x cheaper than sync; the hook only
  // stamps and enqueues while a worker pays for dispatch + LAT maintenance.
  monitor_ptr.reset();
  struct ModeResult {
    const char* mode;
    double wall_ms;
    double added_us_per_query;
    double hook_p50_us;
    double hook_p95_us;
    uint64_t hook_timed;
    uint64_t queue_enqueued;
    uint64_t queue_batches;
  };
  const Config mode_config = {100, 1};
  std::vector<ModeResult> mode_results;
  std::printf("\nmode sweep (%d deferrable rules, %d conds):\n",
              mode_config.num_rules, mode_config.num_conditions);
  std::printf("%10s %12s %14s %14s %14s\n", "mode", "wall(ms)",
              "us/query added", "hook p50(us)", "hook p95(us)");
  for (const bool async : {false, true}) {
    cm::MonitorEngine::Options options;
    options.async_rule_eval = async;
    options.monitor_threads = 2;
    auto eng = std::make_unique<cm::MonitorEngine>(&db, options);
    if (!setup_rules(*eng, mode_config)) return 1;
    run_once();  // warm the fresh LATs (charged identically to both modes)
    const double us = run_once();
    eng->DrainEventQueue();  // deferred work must land before reading metrics
    const auto& hook = eng->metrics().hooks[static_cast<size_t>(
        cm::MonitorHook::kQueryCommit)];
    const auto pct = hook.latency.ComputePercentiles();
    mode_results.push_back(
        {async ? "deferred" : "sync", us / 1000.0,
         (us - baseline_us) / static_cast<double>(num_queries), pct.p50,
         pct.p95, hook.latency.count(),
         eng->metrics().queue_enqueued.value(),
         eng->metrics().queue_batches.value()});
    std::printf("%10s %12.1f %14.3f %14.3f %14.3f\n",
                mode_results.back().mode, mode_results.back().wall_ms,
                mode_results.back().added_us_per_query, pct.p50, pct.p95);
    if (!eng->last_error().empty()) {
      std::fprintf(stderr, "monitor error (%s): %s\n", mode_results.back().mode,
                   eng->last_error().c_str());
      return 1;
    }
    teardown_rules(*eng, mode_config);
  }
  // The latency histogram's resolution is 1us; a deferred hook that only
  // stamps + enqueues routinely lands below it and reports p50 = 0. Clamp
  // the denominator to the resolution floor — the ratio is then a
  // conservative LOWER bound on the true speedup.
  const double p50_ratio =
      mode_results[0].hook_p50_us / std::max(mode_results[1].hook_p50_us, 1.0);
  std::printf("sync/deferred commit-hook p50 ratio: >= %.1fx (bar: >= 5x)\n",
              p50_ratio);
  {
    std::string out = "BENCH_JSON {\"bench\":\"rule_overhead_mode\"";
    out += ",\"rules\":" + std::to_string(mode_config.num_rules);
    out += ",\"conds\":" + std::to_string(mode_config.num_conditions);
    out += ",\"queries\":" + std::to_string(num_queries);
    out += ",\"modes\":[";
    for (size_t i = 0; i < mode_results.size(); ++i) {
      const ModeResult& m = mode_results[i];
      if (i > 0) out += ",";
      out += std::string("{\"mode\":\"") + m.mode + "\"";
      out += ",\"wall_ms\":" + JsonNum(m.wall_ms);
      out += ",\"added_us_per_query\":" + JsonNum(m.added_us_per_query);
      out += ",\"hook_p50_us\":" + JsonNum(m.hook_p50_us);
      out += ",\"hook_p95_us\":" + JsonNum(m.hook_p95_us);
      out += ",\"hook_timed\":" + std::to_string(m.hook_timed);
      out += ",\"queue_enqueued\":" + std::to_string(m.queue_enqueued);
      out += ",\"queue_batches\":" + std::to_string(m.queue_batches) + "}";
    }
    out += "],\"sync_over_deferred_p50\":" + JsonNum(p50_ratio) + "}";
    std::printf("%s\n", out.c_str());
  }
  if (p50_ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: deferred commit hook p50 not >= 5x cheaper than sync "
                 "(ratio %.2fx)\n",
                 p50_ratio);
    return 1;
  }
  return 0;
}
