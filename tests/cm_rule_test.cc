#include "sqlcm/rule.h"

#include <gtest/gtest.h>
#include "common/random.h"
#include "common/string_util.h"

namespace sqlcm::cm {
namespace {

using common::Value;

/// Minimal resolver with one LAT and one timer for compilation tests.
class TestResolver final : public LatResolver {
 public:
  TestResolver() {
    LatSpec spec;
    spec.name = "Duration_LAT";
    spec.object_class = MonitoredClass::kQuery;
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kAvg, "Duration", "Avg_Duration", false},
                       {LatAggFunc::kCount, "", "N", false}};
    lat_ = std::move(*Lat::Create(std::move(spec)));
  }

  Lat* FindLat(std::string_view name) const override {
    return common::EqualsIgnoreCase(name, "Duration_LAT") ? lat_.get()
                                                          : nullptr;
  }
  bool IsTimerName(std::string_view name) const override {
    return common::EqualsIgnoreCase(name, "T1");
  }

  Lat* lat() const { return lat_.get(); }

 private:
  std::unique_ptr<Lat> lat_;
};

class RuleTest : public ::testing::Test {
 protected:
  TestResolver resolver_;
};

TEST_F(RuleTest, EventParsing) {
  auto check = [&](const std::string& text, EventKind kind,
                   const std::string& qualifier) {
    auto key = RuleCompiler::ParseEvent(text, resolver_);
    ASSERT_TRUE(key.ok()) << text << ": " << key.status();
    EXPECT_EQ(key->kind, kind) << text;
    EXPECT_EQ(key->qualifier, qualifier) << text;
  };
  check("Query.Commit", EventKind::kQueryCommit, "");
  check("query.start", EventKind::kQueryStart, "");
  check("Query.Blocked", EventKind::kQueryBlocked, "");
  check("Query.Block_Released", EventKind::kQueryBlockReleased, "");
  check("Transaction.Commit", EventKind::kTransactionCommit, "");
  check("Timer.Alarm", EventKind::kTimerAlarm, "");
  check("T1.Alarm", EventKind::kTimerAlarm, "t1");
  check("Duration_LAT.Evict", EventKind::kLatEvict, "duration_lat");

  EXPECT_FALSE(RuleCompiler::ParseEvent("Query", resolver_).ok());
  EXPECT_FALSE(RuleCompiler::ParseEvent("Query.Nope", resolver_).ok());
  EXPECT_FALSE(RuleCompiler::ParseEvent("Missing.Evict", resolver_).ok());
  EXPECT_FALSE(RuleCompiler::ParseEvent("T2.Alarm", resolver_).ok());
}

TEST_F(RuleTest, CompileOutlierRule) {
  RuleSpec spec;
  spec.name = "outlier";
  spec.event = "Query.Commit";
  spec.condition = "Query.Duration > 5 * Duration_LAT.Avg_Duration";
  spec.action = "Query.Persist(Outliers, Query_Text, Duration)";
  auto rule = RuleCompiler::Compile(spec, resolver_);
  ASSERT_TRUE(rule.ok()) << rule.status();
  EXPECT_EQ((*rule)->event.kind, EventKind::kQueryCommit);
  ASSERT_NE((*rule)->condition, nullptr);
  EXPECT_TRUE((*rule)->iterate_classes.empty());
  ASSERT_EQ((*rule)->actions.size(), 1u);
  EXPECT_EQ((*rule)->actions[0].kind, ActionKind::kPersist);
  EXPECT_EQ((*rule)->actions[0].attr_names.size(), 2u);
  EXPECT_EQ((*rule)->referenced_lats.size(), 1u);
}

TEST_F(RuleTest, ConditionEvaluation) {
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.condition = "Query.Duration > 2 AND Query.Query_Type = 'SELECT'";
  spec.action = "Query.Insert(Duration_LAT)";
  auto rule = *RuleCompiler::Compile(spec, resolver_);

  QueryRecord fast;
  fast.duration_secs = 1.0;
  fast.query_type = "SELECT";
  QueryRecord slow = fast;
  slow.duration_secs = 3.0;
  QueryRecord slow_update = slow;
  slow_update.query_type = "UPDATE";

  EvalContext ctx;
  ctx.Bind(MonitoredClass::kQuery, &fast);
  EXPECT_FALSE(*rule->condition->EvalCondition(&ctx));
  ctx = EvalContext();
  ctx.Bind(MonitoredClass::kQuery, &slow);
  EXPECT_TRUE(*rule->condition->EvalCondition(&ctx));
  ctx = EvalContext();
  ctx.Bind(MonitoredClass::kQuery, &slow_update);
  EXPECT_FALSE(*rule->condition->EvalCondition(&ctx));
}

TEST_F(RuleTest, MissingLatRowMakesConditionFalse) {
  RuleSpec spec;
  spec.event = "Query.Commit";
  // With an empty LAT, the ∃-quantified reference must yield false even
  // though the comparison would be "NULL > ..." (paper §5.2).
  spec.condition = "Query.Duration > Duration_LAT.Avg_Duration OR 1 = 1";
  spec.action = "Query.Insert(Duration_LAT)";
  auto rule = *RuleCompiler::Compile(spec, resolver_);

  QueryRecord rec;
  rec.logical_signature = "not-in-lat";
  rec.duration_secs = 100;
  EvalContext ctx;
  ctx.Bind(MonitoredClass::kQuery, &rec);
  auto pass = rule->condition->EvalCondition(&ctx);
  ASSERT_TRUE(pass.ok());
  EXPECT_FALSE(*pass);  // missing row dominates even the OR 1=1 branch

  // Once the row exists the condition evaluates normally.
  QueryRecord seed;
  seed.logical_signature = "not-in-lat";
  seed.duration_secs = 1.0;
  resolver_.lat()->Insert(&seed, 0);
  ctx = EvalContext();
  ctx.Bind(MonitoredClass::kQuery, &rec);
  EXPECT_TRUE(*rule->condition->EvalCondition(&ctx));
}

TEST_F(RuleTest, IterateClassesDerivedFromUnboundRefs) {
  RuleSpec spec;
  spec.name = "stuck";
  spec.event = "Timer.Alarm";
  spec.condition = "Query.Time_Blocked > 10";
  spec.action = "Query.Persist(StuckQueries, ID, Query_Text)";
  auto rule = *RuleCompiler::Compile(spec, resolver_);
  ASSERT_EQ(rule->iterate_classes.size(), 1u);
  EXPECT_EQ(rule->iterate_classes[0], MonitoredClass::kQuery);
}

TEST_F(RuleTest, BlockerBlockedBoundByBlockEvents) {
  RuleSpec spec;
  spec.event = "Query.Block_Released";
  spec.condition = "Blocked.Wait_Secs > 0.5";
  spec.action = "Blocker.Insert(Duration_LAT)";
  auto rule = RuleCompiler::Compile(spec, resolver_);
  // Blocker.Insert targets a Query-class LAT -> type error.
  ASSERT_FALSE(rule.ok());
  EXPECT_TRUE(rule.status().IsTypeError());

  spec.action = "Blocked.Persist(Waits, Query_Text, Wait_Secs)";
  auto ok_rule = RuleCompiler::Compile(spec, resolver_);
  ASSERT_TRUE(ok_rule.ok()) << ok_rule.status();
  EXPECT_TRUE((*ok_rule)->iterate_classes.empty());
}

TEST_F(RuleTest, ActionParsingVariants) {
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.action =
      "Query.Insert(Duration_LAT); Reset(Duration_LAT); "
      "SendMail('q {Query.ID} slow', 'dba@example.com'); "
      "RunExternal('analyze.sh'); Query.Cancel(); T1.Set(30, -1); "
      "Duration_LAT.Persist(Snapshot)";
  auto rule = RuleCompiler::Compile(spec, resolver_);
  ASSERT_TRUE(rule.ok()) << rule.status();
  ASSERT_EQ((*rule)->actions.size(), 7u);
  EXPECT_EQ((*rule)->actions[0].kind, ActionKind::kInsert);
  EXPECT_EQ((*rule)->actions[1].kind, ActionKind::kReset);
  EXPECT_EQ((*rule)->actions[2].kind, ActionKind::kSendMail);
  EXPECT_EQ((*rule)->actions[2].address, "dba@example.com");
  EXPECT_EQ((*rule)->actions[3].kind, ActionKind::kRunExternal);
  EXPECT_EQ((*rule)->actions[4].kind, ActionKind::kCancel);
  EXPECT_EQ((*rule)->actions[5].kind, ActionKind::kSetTimer);
  EXPECT_EQ((*rule)->actions[5].timer_repeats, -1);
  EXPECT_DOUBLE_EQ((*rule)->actions[5].timer_seconds, 30.0);
  EXPECT_EQ((*rule)->actions[6].kind, ActionKind::kPersist);
  EXPECT_TRUE((*rule)->actions[6].lat_source);
}

TEST_F(RuleTest, PersistDefaultsToAllAttributes) {
  RuleSpec spec;
  spec.event = "Query.Commit";
  spec.action = "Query.Persist(Everything)";
  auto rule = *RuleCompiler::Compile(spec, resolver_);
  EXPECT_EQ(rule->actions[0].attr_names.size(),
            ObjectSchema::Get().attributes(MonitoredClass::kQuery).size());
}

TEST_F(RuleTest, FastConditionPathMatchesGenericPath) {
  // Property: for eligible conditions, the flattened fast-atom evaluation
  // must agree with the generic interpreter on every record.
  const std::vector<std::string> conditions = {
      "Query.Duration > 2",
      "Query.Duration >= 2 AND Query.Query_Type = 'SELECT'",
      "Query.ID != 5 AND Query.Duration < 100 AND Query.Times_Blocked = 0",
      "3 < Query.Duration",  // literal on the left
      "Query.Query_Type = 'UPDATE' AND Query.Estimated_Cost <= 50",
  };
  common::Random rng(2024);
  for (const std::string& condition : conditions) {
    RuleSpec spec;
    spec.event = "Query.Commit";
    spec.condition = condition;
    spec.action = "Reset(Duration_LAT)";
    auto rule = RuleCompiler::Compile(spec, resolver_);
    ASSERT_TRUE(rule.ok()) << condition;
    ASSERT_TRUE((*rule)->use_fast_condition) << condition;
    for (int i = 0; i < 200; ++i) {
      QueryRecord rec;
      rec.id = static_cast<uint64_t>(rng.UniformInt(0, 10));
      rec.duration_secs = static_cast<double>(rng.UniformInt(0, 8)) / 2.0;
      rec.times_blocked = rng.UniformInt(0, 2);
      rec.estimated_cost = static_cast<double>(rng.UniformInt(0, 100));
      rec.query_type = rng.OneIn(2) ? "SELECT" : "UPDATE";
      EvalContext ctx;
      ctx.Bind(MonitoredClass::kQuery, &rec);
      const bool fast = EvalFastAtoms((*rule)->fast_atoms, ctx);
      EvalContext ctx2;
      ctx2.Bind(MonitoredClass::kQuery, &rec);
      auto generic = (*rule)->condition->EvalCondition(&ctx2);
      ASSERT_TRUE(generic.ok());
      EXPECT_EQ(fast, *generic) << condition << " iteration " << i;
    }
  }
}

TEST_F(RuleTest, FastPathNotUsedForComplexConditions) {
  const std::vector<std::string> generic_only = {
      "Query.Duration > 5 * Duration_LAT.Avg_Duration",  // LAT reference
      "Query.Duration > 1 OR Query.ID = 2",              // OR
      "NOT Query.Duration > 1",                          // NOT
      "Query.Duration + 1 > 2",                          // arithmetic
      "Query.Duration > Query.Estimated_Cost",           // attr vs attr
  };
  for (const std::string& condition : generic_only) {
    RuleSpec spec;
    spec.event = "Query.Commit";
    spec.condition = condition;
    spec.action = "Reset(Duration_LAT)";
    auto rule = RuleCompiler::Compile(spec, resolver_);
    ASSERT_TRUE(rule.ok()) << condition;
    EXPECT_FALSE((*rule)->use_fast_condition) << condition;
  }
}

struct BadRuleCase {
  const char* name;
  const char* event;
  const char* condition;
  const char* action;
};

class RuleCompileErrorTest : public ::testing::TestWithParam<BadRuleCase> {
 protected:
  TestResolver resolver_;
};

TEST_P(RuleCompileErrorTest, Rejected) {
  const auto& param = GetParam();
  RuleSpec spec;
  spec.name = param.name;
  spec.event = param.event;
  spec.condition = param.condition;
  spec.action = param.action;
  auto rule = RuleCompiler::Compile(spec, resolver_);
  EXPECT_FALSE(rule.ok()) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    BadRules, RuleCompileErrorTest,
    ::testing::Values(
        BadRuleCase{"bad-event", "Nope.Commit", "", "Reset(Duration_LAT)"},
        BadRuleCase{"bad-class-attr", "Query.Commit", "Query.Nope > 1",
                    "Reset(Duration_LAT)"},
        BadRuleCase{"bad-lat", "Query.Commit", "Nope_LAT.X > 1",
                    "Reset(Duration_LAT)"},
        BadRuleCase{"bad-lat-col", "Query.Commit", "Duration_LAT.Nope > 1",
                    "Reset(Duration_LAT)"},
        BadRuleCase{"unqualified", "Query.Commit", "Duration > 1",
                    "Reset(Duration_LAT)"},
        BadRuleCase{"no-action", "Query.Commit", "Query.Duration > 1", ""},
        BadRuleCase{"bad-action", "Query.Commit", "", "Explode(Now)"},
        BadRuleCase{"insert-missing-lat", "Query.Commit", "",
                    "Query.Insert(Nope)"},
        BadRuleCase{"cancel-txn", "Transaction.Commit", "",
                    "Transaction.Cancel()"},
        BadRuleCase{"evicted-outside-evict", "Query.Commit",
                    "Evicted.Sig = 'x'", "Reset(Duration_LAT)"},
        BadRuleCase{"func-in-condition", "Query.Commit",
                    "SUM(Query.Duration) > 1", "Reset(Duration_LAT)"},
        BadRuleCase{"param-in-condition", "Query.Commit", "Query.Duration > @p",
                    "Reset(Duration_LAT)"}));

TEST_F(RuleTest, EvictRuleBindsEvictedColumns) {
  RuleSpec spec;
  spec.event = "Duration_LAT.Evict";
  spec.condition = "Evicted.N > 2";
  spec.action = "Evicted.Persist(EvictedRows)";
  auto rule = RuleCompiler::Compile(spec, resolver_);
  ASSERT_TRUE(rule.ok()) << rule.status();

  common::Row evicted = {Value::String("sig"), Value::Double(1.5),
                         Value::Int(5)};
  EvalContext ctx;
  ctx.evicted_lat = resolver_.lat();
  ctx.evicted_row = &evicted;
  EXPECT_TRUE(*(*rule)->condition->EvalCondition(&ctx));
}

// ---------------------------------------------------------------------------
// RuleBreaker (quarantine circuit breaker)
// ---------------------------------------------------------------------------

RuleBreaker::Options TightBreaker() {
  RuleBreaker::Options options;
  options.consecutive_failure_threshold = 3;
  options.window_size = 8;
  options.min_window_events = 4;
  options.error_rate_threshold = 0.5;
  options.cooldown_micros = 100;
  return options;
}

TEST(RuleBreakerTest, TripsOnConsecutiveFailures) {
  RuleBreaker breaker(TightBreaker());
  int64_t now = 0;
  EXPECT_TRUE(breaker.Allow(now));
  EXPECT_FALSE(breaker.OnFailure(++now));
  EXPECT_FALSE(breaker.OnFailure(++now));
  EXPECT_TRUE(breaker.OnFailure(++now));  // third consecutive failure trips
  EXPECT_EQ(breaker.state(), RuleBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.Allow(++now));  // inside cooldown
  EXPECT_EQ(breaker.skipped(), 1u);
}

TEST(RuleBreakerTest, SuccessResetsConsecutiveCount) {
  RuleBreaker::Options options = TightBreaker();
  options.min_window_events = 1000;  // isolate the consecutive-failure wire
  RuleBreaker breaker(options);
  int64_t now = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(breaker.OnFailure(++now));
    EXPECT_FALSE(breaker.OnFailure(++now));
    breaker.OnSuccess(++now);  // never three in a row
  }
  EXPECT_EQ(breaker.state(), RuleBreaker::State::kClosed);
}

TEST(RuleBreakerTest, WindowedErrorRateTrips) {
  RuleBreaker::Options options = TightBreaker();
  options.consecutive_failure_threshold = 1000;  // only the rate wire active
  RuleBreaker breaker(options);
  int64_t now = 0;
  // Alternate success/failure: 50% error rate meets the ≥0.5 threshold once
  // min_window_events outcomes accumulate.
  bool tripped = false;
  for (int i = 0; i < 8 && !tripped; ++i) {
    breaker.OnSuccess(++now);
    tripped = breaker.OnFailure(++now);
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(breaker.state(), RuleBreaker::State::kOpen);
}

TEST(RuleBreakerTest, HalfOpenProbeSuccessCloses) {
  RuleBreaker breaker(TightBreaker());
  int64_t now = 0;
  for (int i = 0; i < 3; ++i) breaker.OnFailure(++now);
  ASSERT_EQ(breaker.state(), RuleBreaker::State::kOpen);

  now += 200;  // past cooldown
  EXPECT_TRUE(breaker.Allow(now));  // admits exactly one probe
  EXPECT_EQ(breaker.state(), RuleBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(now));  // concurrent probe rejected
  breaker.OnSuccess(++now);
  EXPECT_EQ(breaker.state(), RuleBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(++now));
}

TEST(RuleBreakerTest, HalfOpenProbeFailureReopens) {
  RuleBreaker breaker(TightBreaker());
  int64_t now = 0;
  for (int i = 0; i < 3; ++i) breaker.OnFailure(++now);
  now += 200;
  ASSERT_TRUE(breaker.Allow(now));
  EXPECT_TRUE(breaker.OnFailure(++now));  // probe failure re-trips
  EXPECT_EQ(breaker.state(), RuleBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.Allow(++now));  // cooldown restarts
}

TEST(RuleBreakerTest, ReinstateForceCloses) {
  RuleBreaker breaker(TightBreaker());
  int64_t now = 0;
  for (int i = 0; i < 3; ++i) breaker.OnFailure(++now);
  ASSERT_EQ(breaker.state(), RuleBreaker::State::kOpen);
  breaker.Reinstate();
  EXPECT_EQ(breaker.state(), RuleBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  // The cleared window means two fresh failures do not trip again.
  EXPECT_FALSE(breaker.OnFailure(++now));
  EXPECT_FALSE(breaker.OnFailure(++now));
  EXPECT_EQ(breaker.state(), RuleBreaker::State::kClosed);
}

TEST(ActionRateLimiterTest, CapsAdmissionsPerTrailingWindow) {
  ActionRateLimiter limiter;
  limiter.Configure({.max_actions = 3, .window_micros = 1'000});
  EXPECT_TRUE(limiter.Admit(0));
  EXPECT_TRUE(limiter.Admit(10));
  EXPECT_TRUE(limiter.Admit(20));
  EXPECT_FALSE(limiter.Admit(30));  // fourth inside the window
  EXPECT_FALSE(limiter.Admit(999));
  EXPECT_EQ(limiter.suppressed(), 2u);
  // The window is exact: once the oldest admission (t=0) falls out, a slot
  // frees up, but only one until t=10 ages out too.
  EXPECT_TRUE(limiter.Admit(1'001));
  EXPECT_FALSE(limiter.Admit(1'002));
  EXPECT_EQ(limiter.suppressed(), 3u);
}

// The trailing window is half-open (now − window, now]: an admission that
// happened at exactly now − window has aged out and frees its slot.
TEST(ActionRateLimiterTest, AdmissionAtExactlyWindowEdgeIsExcluded) {
  ActionRateLimiter limiter;
  limiter.Configure({.max_actions = 1, .window_micros = 1'000});
  EXPECT_TRUE(limiter.Admit(0));
  EXPECT_FALSE(limiter.Admit(999));   // t=0 still inside (-1, 999]
  EXPECT_TRUE(limiter.Admit(1'000));  // t=0 is exactly now − window: aged out
  EXPECT_FALSE(limiter.Admit(1'999));
  EXPECT_TRUE(limiter.Admit(2'000));
  EXPECT_EQ(limiter.suppressed(), 2u);
}

TEST(ActionRateLimiterTest, ZeroMaxActionsDisablesLimiting) {
  ActionRateLimiter limiter;  // default options: max_actions = 0
  for (int64_t t = 0; t < 100; ++t) EXPECT_TRUE(limiter.Admit(t));
  EXPECT_EQ(limiter.suppressed(), 0u);
}

TEST(ActionRateLimiterTest, ReconfigureClearsAdmissionHistory) {
  ActionRateLimiter limiter;
  limiter.Configure({.max_actions = 1, .window_micros = 1'000'000});
  EXPECT_TRUE(limiter.Admit(0));
  EXPECT_FALSE(limiter.Admit(1));
  limiter.Configure({.max_actions = 2, .window_micros = 1'000'000});
  // History cleared: the window shape changed, so start permissive.
  EXPECT_TRUE(limiter.Admit(2));
  EXPECT_TRUE(limiter.Admit(3));
  EXPECT_FALSE(limiter.Admit(4));
}

}  // namespace
}  // namespace sqlcm::cm
