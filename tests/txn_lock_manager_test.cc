#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"

namespace sqlcm::txn {
namespace {

using common::Value;

ResourceId Res(uint32_t table, int64_t key) {
  return ResourceId{table, {Value::Int(key)}};
}

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : locks_(common::SystemClock::Get()) {}
  LockManager locks_;
};

TEST_F(LockManagerTest, SharedLocksCompatible) {
  EXPECT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kShared),
            LockOutcome::kGranted);
  EXPECT_EQ(locks_.Acquire(2, Res(1, 1), LockMode::kShared),
            LockOutcome::kGranted);
  EXPECT_EQ(locks_.TotalGrantedLocks(), 2u);
  locks_.ReleaseAll(1);
  locks_.ReleaseAll(2);
  EXPECT_EQ(locks_.TotalGrantedLocks(), 0u);
}

TEST_F(LockManagerTest, ReacquireIsIdempotent) {
  EXPECT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kShared),
            LockOutcome::kGranted);
  EXPECT_EQ(locks_.HeldLockCount(1), 1u);
}

TEST_F(LockManagerTest, ExclusiveBlocksUntilRelease) {
  ASSERT_EQ(locks_.Acquire(1, Res(1, 5), LockMode::kExclusive),
            LockOutcome::kGranted);
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    EXPECT_EQ(locks_.Acquire(2, Res(1, 5), LockMode::kExclusive),
              LockOutcome::kGranted);
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  locks_.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
  locks_.ReleaseAll(2);
}

TEST_F(LockManagerTest, TimeoutExpires) {
  ASSERT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(locks_.Acquire(2, Res(1, 1), LockMode::kShared, nullptr,
                           /*timeout_micros=*/20'000),
            LockOutcome::kTimeout);
  locks_.ReleaseAll(1);
  // After timeout the waiter left the queue; new acquisitions work.
  EXPECT_EQ(locks_.Acquire(3, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kGranted);
  locks_.ReleaseAll(3);
}

TEST_F(LockManagerTest, CancelAbortsWait) {
  ASSERT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kGranted);
  std::atomic<bool> cancelled{false};
  std::atomic<LockOutcome> outcome{LockOutcome::kGranted};
  std::thread waiter([&] {
    outcome = locks_.Acquire(2, Res(1, 1), LockMode::kExclusive, &cancelled);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cancelled.store(true);
  waiter.join();
  EXPECT_EQ(outcome.load(), LockOutcome::kCancelled);
  locks_.ReleaseAll(1);
}

TEST_F(LockManagerTest, DeadlockDetectedForSecondWaiter) {
  ASSERT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kGranted);
  ASSERT_EQ(locks_.Acquire(2, Res(1, 2), LockMode::kExclusive),
            LockOutcome::kGranted);
  std::atomic<LockOutcome> t1_outcome{LockOutcome::kGranted};
  std::thread t1([&] {
    // txn 1 waits for resource 2 (held by txn 2).
    t1_outcome = locks_.Acquire(1, Res(1, 2), LockMode::kExclusive);
    if (t1_outcome == LockOutcome::kGranted) locks_.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // txn 2 requesting resource 1 closes the cycle and must be the victim.
  EXPECT_EQ(locks_.Acquire(2, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kDeadlock);
  locks_.ReleaseAll(2);  // victim aborts, txn 1 proceeds
  t1.join();
  EXPECT_EQ(t1_outcome.load(), LockOutcome::kGranted);
  locks_.ReleaseAll(1);
}

TEST_F(LockManagerTest, MultipleWaitersAreNotAPhantomDeadlock) {
  // Regression: two transactions queueing behind the same X holder must
  // both eventually be granted — the waits-for graph must not treat a
  // LATER waiter as a dependency of an earlier one.
  ASSERT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kGranted);
  std::atomic<int> granted{0};
  std::atomic<int> deadlocked{0};
  auto waiter = [&](TxnId txn) {
    const LockOutcome outcome = locks_.Acquire(txn, Res(1, 1),
                                               LockMode::kExclusive);
    if (outcome == LockOutcome::kGranted) granted.fetch_add(1);
    if (outcome == LockOutcome::kDeadlock) deadlocked.fetch_add(1);
    locks_.ReleaseAll(txn);
  };
  std::thread t2(waiter, 2), t3(waiter, 3), t4(waiter, 4);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  locks_.ReleaseAll(1);
  t2.join();
  t3.join();
  t4.join();
  EXPECT_EQ(granted.load(), 3);
  EXPECT_EQ(deadlocked.load(), 0);
}

TEST_F(LockManagerTest, UpgradeSharedToExclusive) {
  ASSERT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kShared),
            LockOutcome::kGranted);
  // Sole holder: immediate upgrade.
  EXPECT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kGranted);
  // Now exclusive: another txn times out.
  EXPECT_EQ(locks_.Acquire(2, Res(1, 1), LockMode::kShared, nullptr, 10'000),
            LockOutcome::kTimeout);
  locks_.ReleaseAll(1);
}

TEST_F(LockManagerTest, UpgradeWaitsForOtherSharers) {
  ASSERT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kShared),
            LockOutcome::kGranted);
  ASSERT_EQ(locks_.Acquire(2, Res(1, 1), LockMode::kShared),
            LockOutcome::kGranted);
  std::atomic<LockOutcome> outcome{LockOutcome::kTimeout};
  std::thread upgrader([&] {
    outcome = locks_.Acquire(1, Res(1, 1), LockMode::kExclusive);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_NE(outcome.load(), LockOutcome::kGranted);
  locks_.ReleaseAll(2);
  upgrader.join();
  EXPECT_EQ(outcome.load(), LockOutcome::kGranted);
  locks_.ReleaseAll(1);
}

TEST_F(LockManagerTest, DualUpgradeDeadlocks) {
  ASSERT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kShared),
            LockOutcome::kGranted);
  ASSERT_EQ(locks_.Acquire(2, Res(1, 1), LockMode::kShared),
            LockOutcome::kGranted);
  std::atomic<LockOutcome> t1_outcome{LockOutcome::kGranted};
  std::thread t1([&] {
    t1_outcome = locks_.Acquire(1, Res(1, 1), LockMode::kExclusive);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const LockOutcome t2_outcome =
      locks_.Acquire(2, Res(1, 1), LockMode::kExclusive);
  EXPECT_EQ(t2_outcome, LockOutcome::kDeadlock);
  locks_.ReleaseAll(2);
  t1.join();
  EXPECT_EQ(t1_outcome.load(), LockOutcome::kGranted);
  locks_.ReleaseAll(1);
}

class RecordingObserver final : public LockEventObserver {
 public:
  void OnBlocked(TxnId blocked, TxnId blocker,
                 const ResourceId& resource) override {
    std::lock_guard<std::mutex> lock(mutex_);
    blocked_events.push_back({blocked, blocker, resource.ToString()});
  }
  void OnBlockReleased(TxnId blocked, TxnId blocker, const ResourceId&,
                       int64_t wait_micros) override {
    std::lock_guard<std::mutex> lock(mutex_);
    released_events.push_back({blocked, blocker, std::to_string(wait_micros)});
    last_wait_micros = wait_micros;
  }

  struct Event {
    TxnId blocked, blocker;
    std::string detail;
  };
  std::mutex mutex_;
  std::vector<Event> blocked_events;
  std::vector<Event> released_events;
  int64_t last_wait_micros = 0;
};

TEST_F(LockManagerTest, ObserverSeesBlockAndRelease) {
  RecordingObserver observer;
  locks_.set_observer(&observer);
  ASSERT_EQ(locks_.Acquire(1, Res(7, 3), LockMode::kExclusive),
            LockOutcome::kGranted);
  std::thread waiter([&] {
    EXPECT_EQ(locks_.Acquire(2, Res(7, 3), LockMode::kExclusive),
              LockOutcome::kGranted);
    locks_.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  locks_.ReleaseAll(1);
  waiter.join();
  ASSERT_EQ(observer.blocked_events.size(), 1u);
  EXPECT_EQ(observer.blocked_events[0].blocked, 2u);
  EXPECT_EQ(observer.blocked_events[0].blocker, 1u);
  ASSERT_EQ(observer.released_events.size(), 1u);
  EXPECT_GE(observer.last_wait_micros, 20'000);
}

TEST_F(LockManagerTest, SnapshotBlockedPairs) {
  ASSERT_EQ(locks_.Acquire(1, Res(1, 1), LockMode::kExclusive),
            LockOutcome::kGranted);
  std::thread waiter([&] {
    locks_.Acquire(2, Res(1, 1), LockMode::kShared);
    locks_.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto pairs = locks_.SnapshotBlockedPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].blocked_txn, 2u);
  EXPECT_EQ(pairs[0].blocker_txn, 1u);
  EXPECT_EQ(pairs[0].resource.table_id, 1u);
  locks_.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(locks_.SnapshotBlockedPairs().empty());
}

TEST_F(LockManagerTest, FifoFairnessUnderContention) {
  // Stress: many threads incrementing through X locks; all must finish.
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const TxnId txn = static_cast<TxnId>(t * 10'000 + i + 1);
        ASSERT_EQ(locks_.Acquire(txn, Res(9, 0), LockMode::kExclusive),
                  LockOutcome::kGranted);
        counter.fetch_add(1);
        locks_.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), kThreads * kIters);
  EXPECT_EQ(locks_.TotalGrantedLocks(), 0u);
}

TEST(ResourceIdTest, EqualityAndToString) {
  EXPECT_EQ(Res(1, 5), Res(1, 5));
  EXPECT_FALSE(Res(1, 5) == Res(2, 5));
  EXPECT_FALSE(Res(1, 5) == Res(1, 6));
  EXPECT_EQ(Res(3, 4).ToString(), "table#3[4]");
  ResourceId table_lock{3, {}};
  EXPECT_TRUE(table_lock.is_table_lock());
  EXPECT_EQ(table_lock.ToString(), "table#3");
}

}  // namespace
}  // namespace sqlcm::txn
