#include "exec/expression.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sqlcm::exec {
namespace {

using common::Row;
using common::Value;

RowSchema MakeSchema() {
  return RowSchema({{"t", "a", catalog::ColumnType::kInt},
                    {"t", "b", catalog::ColumnType::kDouble},
                    {"u", "name", catalog::ColumnType::kString},
                    {"u", "a", catalog::ColumnType::kInt}});
}

common::Result<Value> EvalText(const std::string& text, const Row& row,
                               const ParamMap* params = nullptr) {
  auto ast = sql::Parser::ParseExpression(text);
  if (!ast.ok()) return ast.status();
  auto bound = BoundExpr::Bind(**ast, MakeSchema());
  if (!bound.ok()) return bound.status();
  return (*bound)->Eval(row, params);
}

const Row kRow = {Value::Int(5), Value::Double(2.5), Value::String("x"),
                  Value::Int(7)};

TEST(ExpressionTest, SlotResolution) {
  EXPECT_EQ(EvalText("t.a", kRow)->int_value(), 5);
  EXPECT_EQ(EvalText("u.a", kRow)->int_value(), 7);
  EXPECT_EQ(EvalText("name", kRow)->string_value(), "x");
  // Unqualified ambiguous name fails at bind time.
  auto ambiguous = EvalText("a", kRow);
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_TRUE(ambiguous.status().IsInvalidArgument());
  EXPECT_TRUE(EvalText("t.nope", kRow).status().IsNotFound());
}

TEST(ExpressionTest, ArithmeticAndComparison) {
  EXPECT_DOUBLE_EQ(EvalText("t.a + t.b", kRow)->double_value(), 7.5);
  EXPECT_TRUE(EvalText("t.a > 4", kRow)->bool_value());
  EXPECT_FALSE(EvalText("t.a > u.a", kRow)->bool_value());
  EXPECT_TRUE(EvalText("name = 'x'", kRow)->bool_value());
  EXPECT_TRUE(EvalText("t.a % 2 = 1", kRow)->bool_value());
}

TEST(ExpressionTest, ThreeValuedLogic) {
  const Row null_row = {Value::Null(), Value::Double(1), Value::String(""),
                        Value::Int(0)};
  // NULL comparison -> NULL.
  EXPECT_TRUE(EvalText("t.a > 1", null_row)->is_null());
  // FALSE AND NULL -> FALSE (short circuit).
  EXPECT_FALSE(EvalText("1 > 2 AND t.a > 1", null_row)->bool_value());
  // TRUE OR NULL -> TRUE.
  EXPECT_TRUE(EvalText("1 < 2 OR t.a > 1", null_row)->bool_value());
  // TRUE AND NULL -> NULL.
  EXPECT_TRUE(EvalText("1 < 2 AND t.a > 1", null_row)->is_null());
  // NOT NULL -> NULL.
  EXPECT_TRUE(EvalText("NOT (t.a > 1)", null_row)->is_null());
}

TEST(ExpressionTest, EvalBoolRejectsNull) {
  const Row null_row = {Value::Null(), Value::Double(1), Value::String(""),
                        Value::Int(0)};
  auto ast = sql::Parser::ParseExpression("t.a > 1");
  auto bound = BoundExpr::Bind(**ast, MakeSchema());
  auto result = (*bound)->EvalBool(null_row, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST(ExpressionTest, Params) {
  ParamMap params = {{"p", Value::Int(3)}};
  EXPECT_EQ(EvalText("t.a + @p", kRow, &params)->int_value(), 8);
  auto missing = EvalText("@q", kRow, &params);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsInvalidArgument());
  auto no_params = EvalText("@p", kRow, nullptr);
  EXPECT_FALSE(no_params.ok());
}

TEST(ExpressionTest, TypeErrors) {
  EXPECT_TRUE(EvalText("name + 1", kRow).status().IsTypeError());
  EXPECT_TRUE(EvalText("t.a > 'x'", kRow).status().IsTypeError());
  EXPECT_TRUE(EvalText("NOT t.a", kRow).status().IsTypeError());
}

TEST(ExpressionTest, AggregateRejectedInScalarContext) {
  auto ast = sql::Parser::ParseExpression("SUM(t.a)");
  ASSERT_TRUE(ast.ok());
  auto bound = BoundExpr::Bind(**ast, MakeSchema());
  ASSERT_FALSE(bound.ok());
}

TEST(ExpressionTest, IsConstant) {
  auto make = [](const std::string& text) {
    auto ast = sql::Parser::ParseExpression(text);
    return std::move(*BoundExpr::Bind(**ast, MakeSchema()));
  };
  EXPECT_TRUE(make("1 + 2 * 3")->IsConstant());
  EXPECT_TRUE(make("@p + 1")->IsConstant());
  EXPECT_FALSE(make("t.a + 1")->IsConstant());
}

TEST(ExpressionTest, CloneShiftedMovesSlots) {
  auto ast = sql::Parser::ParseExpression("t.b + u.a");
  auto bound = std::move(*BoundExpr::Bind(**ast, MakeSchema()));
  auto shifted = bound->CloneShifted(-1);
  std::vector<size_t> slots;
  shifted->CollectSlots(&slots);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0], 0u);  // b was slot 1
  EXPECT_EQ(slots[1], 2u);  // u.a was slot 3
}

TEST(ExpressionTest, SignatureWildcardsConstantsKeepsParams) {
  auto ast = sql::Parser::ParseExpression("t.a = 5 AND t.b > @limit");
  auto bound = std::move(*BoundExpr::Bind(**ast, MakeSchema()));
  std::string wildcarded, exact;
  bound->AppendSignature(true, &wildcarded);
  bound->AppendSignature(false, &exact);
  EXPECT_NE(wildcarded.find("?"), std::string::npos);
  EXPECT_NE(wildcarded.find("$limit"), std::string::npos);
  EXPECT_NE(exact.find("5"), std::string::npos);
}

TEST(ExpressionTest, DivisionAlwaysDouble) {
  EXPECT_DOUBLE_EQ(EvalText("u.a / 2", kRow)->double_value(), 3.5);
}

}  // namespace
}  // namespace sqlcm::exec
