#include "sqlcm/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/value.h"

namespace sqlcm::cm {
namespace {

using common::Value;

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      std::floor(q * static_cast<double>(values.size() - 1)));
  return values[rank];
}

// The DDSketch guarantee: every estimated quantile is within alpha()
// relative error of the exact rank value.
void ExpectWithinAlpha(const QuantileSketch& sk, double exact, double q) {
  const double est = sk.Quantile(q);
  const double bound = sk.alpha() * std::abs(exact) + 1e-12;
  EXPECT_NEAR(est, exact, bound) << "q=" << q << " alpha=" << sk.alpha();
}

TEST(QuantileSketchTest, EmptyAndSingleton) {
  QuantileSketch sk;
  EXPECT_TRUE(sk.empty());
  EXPECT_EQ(sk.count(), 0);
  EXPECT_EQ(sk.Encode(), "");

  sk.Add(42.0);
  EXPECT_EQ(sk.count(), 1);
  for (const double q : {0.0, 0.5, 1.0}) {
    ExpectWithinAlpha(sk, 42.0, q);
  }
}

TEST(QuantileSketchTest, AccuracyWithinAlphaAcrossSignsAndScales) {
  common::Random rng(101);
  QuantileSketch sk;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    // Mixed magnitudes, both signs, plus exact zeros.
    double v;
    const uint64_t pick = rng.Uniform(10);
    if (pick == 0) {
      v = 0.0;
    } else if (pick < 6) {
      v = rng.NextDouble() * 1000.0;
    } else {
      v = -std::exp(rng.NextDouble() * 10.0);
    }
    values.push_back(v);
    sk.Add(v);
  }
  ASSERT_EQ(sk.count(), static_cast<int64_t>(values.size()));
  for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    ExpectWithinAlpha(sk, ExactQuantile(values, q), q);
  }
}

TEST(QuantileSketchTest, NanIsIgnored) {
  QuantileSketch sk;
  sk.Add(std::nan(""));
  EXPECT_TRUE(sk.empty());
  sk.Add(1.0);
  sk.Add(std::nan(""));
  EXPECT_EQ(sk.count(), 1);
  EXPECT_NEAR(sk.Quantile(0.5), 1.0, sk.alpha() + 1e-12);
}

TEST(QuantileSketchTest, MergeMatchesSingleSketchFold) {
  common::Random rng(7);
  QuantileSketch whole, a, b, c;
  for (int i = 0; i < 9000; ++i) {
    const double v = rng.NextDouble() * 200.0 - 100.0;
    whole.Add(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(v);
  }
  // Merge in two different orders; both must equal the monolithic fold.
  QuantileSketch ab = a;
  ab.Merge(b);
  ab.Merge(c);
  QuantileSketch cb = c;
  cb.Merge(b);
  cb.Merge(a);
  EXPECT_TRUE(ab == cb);
  EXPECT_TRUE(ab == whole);
}

TEST(QuantileSketchTest, MergeAcrossCollapseLevelsStaysWithinCoarserAlpha) {
  common::Random rng(13);
  QuantileSketch fine, coarse;
  std::vector<double> values;
  for (int i = 0; i < 8000; ++i) {
    const double v = std::exp(rng.NextDouble() * 8.0);
    values.push_back(v);
    (i % 2 == 0 ? fine : coarse).Add(v);
  }
  // Force the second sketch up a few levels, then merge the fine one in.
  while (coarse.level() < 3) {
    const int before = coarse.level();
    coarse.CollapseToBudget(coarse.ApproxBytes() / 2);
    if (coarse.level() == before) break;
  }
  ASSERT_GT(coarse.level(), 0);
  coarse.Merge(fine);
  EXPECT_EQ(coarse.count(), static_cast<int64_t>(values.size()));
  for (const double q : {0.1, 0.5, 0.9}) {
    const double exact = ExactQuantile(values, q);
    EXPECT_NEAR(coarse.Quantile(q), exact,
                coarse.alpha() * std::abs(exact) + 1e-12);
  }
}

TEST(QuantileSketchTest, CollapseToBudgetBoundsBytesAndGrowsAlpha) {
  common::Random rng(29);
  QuantileSketch sk;
  for (int i = 0; i < 50000; ++i) {
    sk.Add(std::exp(rng.NextDouble() * 14.0 - 7.0));  // wide dynamic range
  }
  const double alpha_before = sk.alpha();
  const size_t budget = 1024;
  ASSERT_GT(sk.ApproxBytes(), budget);
  const int ups = sk.CollapseToBudget(budget);
  EXPECT_GT(ups, 0);
  EXPECT_LE(sk.ApproxBytes(), budget);
  EXPECT_GT(sk.alpha(), alpha_before);
  EXPECT_EQ(sk.count(), 50000);  // collapse never loses mass
  // Still answers within the (coarser) documented bound.
  EXPECT_GT(sk.Quantile(0.5), 0.0);
  // Unbounded budget is a no-op.
  EXPECT_EQ(sk.CollapseToBudget(0), 0);
}

TEST(QuantileSketchTest, EncodeDecodeRoundTripIsBitExact) {
  common::Random rng(41);
  QuantileSketch sk;
  for (int i = 0; i < 5000; ++i) {
    sk.Add(rng.NextDouble() * 2000.0 - 1000.0);
  }
  sk.Add(0.0);
  sk.CollapseToBudget(2048);
  auto decoded = QuantileSketch::Decode(sk.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == sk);
  EXPECT_EQ(decoded->Encode(), sk.Encode());

  auto empty = QuantileSketch::Decode("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(QuantileSketchTest, DecodeRejectsGarbage) {
  for (const char* bad :
       {"Q2 0 0 0 0", "Q1", "Q1 x 0 0 0", "Q1 0 0 1 0", "Q1 0 0 0 1 i:c",
        "H1 10 00", "nonsense", "Q1 0 0 0 1 5:notanumber"}) {
    EXPECT_FALSE(QuantileSketch::Decode(bad).ok()) << bad;
  }
}

TEST(QuantileSketchTest, SubtractThenMergeReconstructsCurrent) {
  // The federation delta identity: delta = cur − base; base ⊕ delta = cur.
  common::Random rng(53);
  QuantileSketch base;
  for (int i = 0; i < 3000; ++i) base.Add(rng.NextDouble() * 100.0);
  QuantileSketch cur = base;
  for (int i = 0; i < 3000; ++i) cur.Add(rng.NextDouble() * 100.0 - 50.0);
  cur.CollapseToBudget(4096);

  QuantileSketch delta = cur;
  delta.Subtract(base);
  EXPECT_EQ(delta.count(), cur.count() - base.count());

  QuantileSketch rebuilt = base;
  rebuilt.Merge(delta);
  EXPECT_TRUE(rebuilt == cur);
}

TEST(HllSketchTest, LinearCountingIsExactForSmallSets) {
  HllSketch hll(12);
  EXPECT_EQ(hll.Estimate(), 0);
  for (int i = 0; i < 200; ++i) {
    hll.AddHash(DistinctValueHash(Value::Int(i)));
  }
  // Duplicates are no-ops.
  for (int i = 0; i < 200; ++i) {
    hll.AddHash(DistinctValueHash(Value::Int(i)));
  }
  EXPECT_EQ(hll.Estimate(), 200);
}

TEST(HllSketchTest, EstimateWithinStandardErrorBound) {
  HllSketch hll;  // default precision
  const int64_t n = 50000;
  for (int64_t i = 0; i < n; ++i) {
    hll.AddHash(DistinctValueHash(Value::String("v" + std::to_string(i))));
  }
  const double err =
      std::abs(static_cast<double>(hll.Estimate() - n)) / static_cast<double>(n);
  EXPECT_LT(err, 4.0 * hll.StandardError());
}

TEST(HllSketchTest, MergeIsIdempotentAndOrderFree) {
  HllSketch a(10), b(10);
  for (int i = 0; i < 5000; ++i) {
    (i % 2 == 0 ? a : b).AddHash(DistinctValueHash(Value::Int(i)));
  }
  HllSketch ab = a;
  ASSERT_TRUE(ab.Merge(b).ok());
  HllSketch ba = b;
  ASSERT_TRUE(ba.Merge(a).ok());
  EXPECT_TRUE(ab == ba);
  // Duplicate delivery (the fed retry path) must not move the estimate.
  HllSketch twice = ab;
  ASSERT_TRUE(twice.Merge(a).ok());
  ASSERT_TRUE(twice.Merge(b).ok());
  ASSERT_TRUE(twice.Merge(ab).ok());
  EXPECT_TRUE(twice == ab);
}

TEST(HllSketchTest, MergeRejectsPrecisionMismatch) {
  HllSketch a(10), b(12);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(HllSketchTest, EncodeDecodeRoundTrip) {
  HllSketch hll(8);
  for (int i = 0; i < 3000; ++i) {
    hll.AddHash(DistinctValueHash(Value::Double(i * 0.5)));
  }
  auto decoded = HllSketch::Decode(hll.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == hll);
  EXPECT_EQ(decoded->Estimate(), hll.Estimate());

  // All-zero registers encode to "" and decode back to an empty sketch.
  HllSketch fresh(8);
  EXPECT_EQ(fresh.Encode(), "");
  auto empty = HllSketch::Decode("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->Estimate(), 0);
}

TEST(HllSketchTest, DecodeRejectsGarbage) {
  for (const char* bad :
       {"H2 10 00", "H1", "H1 3 00", "H1 10", "H1 10 zz", "Q1 0 0 0 0",
        "H1 10 0"}) {
    EXPECT_FALSE(HllSketch::Decode(bad).ok()) << bad;
  }
}

TEST(HllSketchTest, PrecisionClampedToValidRange) {
  EXPECT_EQ(HllSketch(1).precision(), 4);
  EXPECT_EQ(HllSketch(99).precision(), 16);
  EXPECT_EQ(HllSketch(1).register_count(), 16u);
}

TEST(DistinctValueHashTest, NumericEqualityMatchesValueCompare) {
  // 2 and 2.0 are equal under Value::Compare, so they must hash equal; the
  // two zero doubles likewise.
  EXPECT_EQ(DistinctValueHash(Value::Int(2)), DistinctValueHash(Value::Double(2.0)));
  EXPECT_EQ(DistinctValueHash(Value::Double(-0.0)),
            DistinctValueHash(Value::Double(0.0)));
  EXPECT_NE(DistinctValueHash(Value::Double(2.5)), DistinctValueHash(Value::Int(2)));
  EXPECT_NE(DistinctValueHash(Value::Int(2)), DistinctValueHash(Value::String("2")));
  EXPECT_NE(DistinctValueHash(Value::Bool(true)), DistinctValueHash(Value::Int(1)));
}

TEST(DistinctValueHashTest, DeterministicAndWellSpread) {
  EXPECT_EQ(DistinctValueHash(Value::String("abc")),
            DistinctValueHash(Value::String("abc")));
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(DistinctValueHash(Value::Int(i)));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace sqlcm::cm
