#include "common/value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/random.h"
#include "common/string_util.h"

namespace sqlcm::common {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).double_value(), 1.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, NumericCrossKindCompare) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(1.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, BigIntCompareExact) {
  // Values that would collide if compared through double rounding.
  const int64_t a = (1ll << 60) + 1;
  const int64_t b = (1ll << 60);
  EXPECT_GT(Value::Int(a).Compare(Value::Int(b)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Null().Compare(Value::String("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("k").Hash(), Value::String("k").Hash());
}

TEST(ValueTest, ToStringQuotesStrings) {
  EXPECT_EQ(Value::String("it's").ToString(), "'it''s'");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
}

TEST(ValueTest, DisplayStringUnquoted) {
  EXPECT_EQ(Value::String("hello").ToDisplayString(), "hello");
  EXPECT_EQ(Value::Int(5).ToDisplayString(), "5");
}

TEST(ValueTest, ArithmeticIntPreserving) {
  EXPECT_EQ(ValueAdd(Value::Int(2), Value::Int(3))->int_value(), 5);
  EXPECT_EQ(ValueMul(Value::Int(2), Value::Int(3))->int_value(), 6);
  EXPECT_EQ(ValueSub(Value::Int(2), Value::Int(3))->int_value(), -1);
}

TEST(ValueTest, ArithmeticWidensToDouble) {
  EXPECT_DOUBLE_EQ(ValueAdd(Value::Int(2), Value::Double(0.5))->double_value(),
                   2.5);
  // Division always yields double.
  EXPECT_DOUBLE_EQ(ValueDiv(Value::Int(5), Value::Int(2))->double_value(), 2.5);
}

TEST(ValueTest, ArithmeticNullPropagates) {
  EXPECT_TRUE(ValueAdd(Value::Null(), Value::Int(1))->is_null());
  EXPECT_TRUE(ValueDiv(Value::Int(1), Value::Null())->is_null());
  EXPECT_TRUE(ValueNeg(Value::Null())->is_null());
}

TEST(ValueTest, ArithmeticTypeErrors) {
  EXPECT_TRUE(ValueAdd(Value::String("a"), Value::Int(1)).status().IsTypeError());
  EXPECT_TRUE(ValueNeg(Value::Bool(true)).status().IsTypeError());
}

TEST(ValueTest, DivisionByZeroFails) {
  auto result = ValueDiv(Value::Int(1), Value::Int(0));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(RowTest, HashAndEquality) {
  Row a = {Value::Int(1), Value::String("x")};
  Row b = {Value::Double(1.0), Value::String("x")};
  Row c = {Value::Int(1), Value::String("y")};
  EXPECT_TRUE(RowEq()(a, b));
  EXPECT_EQ(HashRow(a), HashRow(b));
  EXPECT_FALSE(RowEq()(a, c));
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, TrimAndSplit) {
  EXPECT_EQ(Trim("  x \t"), "x");
  EXPECT_EQ(Trim(""), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
}

TEST(StringUtilTest, CsvRoundTrip) {
  const std::string tricky = "a,\"b\"\nc";
  const std::string line = CsvEscape(tricky) + "," + CsvEscape("plain");
  auto fields = CsvParseLine(line);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], tricky);
  EXPECT_EQ(fields[1], "plain");
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformIntInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

class ValueCompareOrderTest
    : public ::testing::TestWithParam<std::pair<Value, Value>> {};

TEST_P(ValueCompareOrderTest, AntisymmetricAndConsistent) {
  const auto& [a, b] = GetParam();
  const int ab = a.Compare(b);
  const int ba = b.Compare(a);
  EXPECT_EQ(ab < 0, ba > 0);
  EXPECT_EQ(ab == 0, ba == 0);
  if (ab == 0) {
    EXPECT_EQ(a.Hash(), b.Hash());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ValueCompareOrderTest,
    ::testing::Values(
        std::make_pair(Value::Int(1), Value::Int(2)),
        std::make_pair(Value::Int(3), Value::Double(3.0)),
        std::make_pair(Value::Double(-1.5), Value::Double(2.25)),
        std::make_pair(Value::String("a"), Value::String("b")),
        std::make_pair(Value::Null(), Value::Int(0)),
        std::make_pair(Value::Bool(false), Value::Bool(true)),
        std::make_pair(Value::Null(), Value::Null())));

// FormatDoubleShortest is the codec every snapshot double passes through;
// it must reproduce the exact bits after a text round-trip (strtod) for
// the whole double range, including denormals and signed zero.
TEST(FormatDoubleShortestTest, RoundTripsExactBits) {
  const double cases[] = {0.0,
                          -0.0,
                          0.1,
                          1.0 / 3.0,
                          -2.5,
                          1e-300,
                          -1e300,
                          1.7976931348623157e308,   // DBL_MAX
                          2.2250738585072014e-308,  // DBL_MIN
                          5e-324,                   // smallest denormal
                          -5e-324,
                          6.62607015e-34,
                          123456789.123456789,
                          -99999999999999999.0};
  for (const double d : cases) {
    const std::string text = FormatDoubleShortest(d);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&parsed, &d, sizeof(double)), 0)
        << "'" << text << "' did not round-trip " << d;
  }
}

TEST(FormatDoubleShortestTest, RoundTripsRandomBitPatterns) {
  Random rng(20260806);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t bits = rng.Next();
    double d;
    std::memcpy(&d, &bits, sizeof(double));
    if (std::isnan(d)) continue;  // all NaNs collapse to "nan" by design
    const std::string text = FormatDoubleShortest(d);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&parsed, &d, sizeof(double)), 0)
        << "bit pattern " << bits << " ('" << text << "')";
  }
}

TEST(FormatDoubleShortestTest, NonFiniteSpellingsParseBack) {
  EXPECT_EQ(FormatDoubleShortest(std::numeric_limits<double>::infinity()),
            "inf");
  EXPECT_EQ(FormatDoubleShortest(-std::numeric_limits<double>::infinity()),
            "-inf");
  EXPECT_EQ(FormatDoubleShortest(std::nan("")), "nan");
  EXPECT_TRUE(std::isinf(std::strtod("inf", nullptr)));
  EXPECT_TRUE(std::isnan(std::strtod("nan", nullptr)));
}

TEST(FormatDoubleShortestTest, PrefersShortSpellings) {
  // Values representable in <= 15 significant digits keep their natural
  // short form (no 17-digit blow-up like 0.10000000000000001).
  EXPECT_EQ(Value::Double(0.1).ToString(), "0.1");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(1e20).ToString(), "1e+20");
}

}  // namespace
}  // namespace sqlcm::common
