#include "storage/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/catalog.h"
#include "storage/table_io.h"

namespace sqlcm::storage {
namespace {

using common::Row;
using common::Value;

catalog::TableSchema MakeSchema() {
  auto schema = catalog::TableSchema::Create(
      "t",
      {{"id", catalog::ColumnType::kInt},
       {"name", catalog::ColumnType::kString},
       {"score", catalog::ColumnType::kDouble}},
      {"id"});
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

Row MakeRow(int64_t id, const std::string& name, double score) {
  return {Value::Int(id), Value::String(name), Value::Double(score)};
}

TEST(TableTest, InsertGetDelete) {
  Table table(1, MakeSchema());
  auto key = table.Insert(MakeRow(1, "a", 1.5));
  ASSERT_TRUE(key.ok());
  EXPECT_EQ((*key)[0].int_value(), 1);
  EXPECT_EQ(table.row_count(), 1u);

  auto row = table.Get(*key);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].string_value(), "a");

  auto old_row = table.Delete(*key);
  ASSERT_TRUE(old_row.ok());
  EXPECT_EQ(table.row_count(), 0u);
  EXPECT_FALSE(table.Get(*key).has_value());
}

TEST(TableTest, DuplicateKeyRejected) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.Insert(MakeRow(1, "a", 0)).ok());
  auto dup = table.Insert(MakeRow(1, "b", 0));
  ASSERT_FALSE(dup.ok());
  EXPECT_TRUE(dup.status().IsAlreadyExists());
}

TEST(TableTest, TypeValidationAndCoercion) {
  Table table(1, MakeSchema());
  // Int into FLOAT column widens.
  auto key = table.Insert({Value::Int(1), Value::String("a"), Value::Int(3)});
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(table.Get(*key)->at(2).is_double());
  // String into INT column fails.
  auto bad = table.Insert({Value::String("x"), Value::String("a"), Value::Int(0)});
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsTypeError());
  // NULL primary key fails.
  auto null_key = table.Insert({Value::Null(), Value::String("a"), Value::Int(0)});
  EXPECT_FALSE(null_key.ok());
  // Wrong arity fails.
  EXPECT_FALSE(table.Insert({Value::Int(2)}).ok());
}

TEST(TableTest, UpdateKeepsKeyAndMaintainsIndexes) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.CreateIndex("by_name", {"name"}).ok());
  auto key = table.Insert(MakeRow(1, "old", 1.0));
  ASSERT_TRUE(key.ok());

  auto old_row = table.Update(*key, MakeRow(1, "new", 2.0));
  ASSERT_TRUE(old_row.ok());
  EXPECT_EQ((*old_row)[1].string_value(), "old");

  std::vector<Row> keys, rows;
  ASSERT_TRUE(
      table.IndexPrefixLookup("by_name", {Value::String("new")}, &keys, &rows)
          .ok());
  ASSERT_EQ(rows.size(), 1u);
  keys.clear();
  rows.clear();
  ASSERT_TRUE(
      table.IndexPrefixLookup("by_name", {Value::String("old")}, &keys, &rows)
          .ok());
  EXPECT_TRUE(rows.empty());

  // Changing the PK through Update is rejected.
  auto bad = table.Update(*key, MakeRow(99, "x", 0));
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(TableTest, ImplicitRowidTables) {
  auto schema = catalog::TableSchema::Create(
      "log", {{"msg", catalog::ColumnType::kString}}, {});
  ASSERT_TRUE(schema.ok());
  Table table(2, std::move(*schema));
  EXPECT_TRUE(table.uses_implicit_rowid());
  auto k1 = table.Insert({Value::String("a")});
  auto k2 = table.Insert({Value::String("b")});
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_LT((*k1)[0].int_value(), (*k2)[0].int_value());
}

TEST(TableTest, ScanBatchResumes) {
  Table table(1, MakeSchema());
  for (int64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(table.Insert(MakeRow(i, "r", 0)).ok());
  }
  std::optional<Row> after;
  std::vector<Row> keys, rows;
  int64_t seen = 0;
  for (;;) {
    keys.clear();
    rows.clear();
    if (table.ScanBatch(after, 10, &keys, &rows) == 0) break;
    for (const Row& key : keys) {
      EXPECT_EQ(key[0].int_value(), seen);
      ++seen;
    }
    after = keys.back();
  }
  EXPECT_EQ(seen, 25);
}

TEST(TableTest, SecondaryPrefixAndRangeLookup) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.CreateIndex("by_name", {"name"}).ok());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table.Insert(MakeRow(i, i % 2 == 0 ? "even" : "odd", i * 1.0)).ok());
  }
  std::vector<Row> keys, rows;
  ASSERT_TRUE(
      table.IndexPrefixLookup("by_name", {Value::String("even")}, &keys, &rows)
          .ok());
  EXPECT_EQ(rows.size(), 5u);

  keys.clear();
  rows.clear();
  // Primary range on id in [3, 6].
  ASSERT_TRUE(table
                  .IndexRangeLookup("", Value::Int(3), Value::Int(6), &keys,
                                    &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 4u);

  keys.clear();
  rows.clear();
  // Open-ended range.
  ASSERT_TRUE(
      table.IndexRangeLookup("", Value::Int(8), std::nullopt, &keys, &rows)
          .ok());
  EXPECT_EQ(rows.size(), 2u);

  EXPECT_TRUE(table.IndexPrefixLookup("nope", {}, &keys, &rows)
                  .IsNotFound());
}

TEST(TableTest, IndexBuildOverExistingData) {
  Table table(1, MakeSchema());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(table.Insert(MakeRow(i, "n" + std::to_string(i % 4), 0)).ok());
  }
  ASSERT_TRUE(table.CreateIndex("by_name", {"name"}).ok());
  std::vector<Row> keys, rows;
  ASSERT_TRUE(
      table.IndexPrefixLookup("by_name", {Value::String("n1")}, &keys, &rows)
          .ok());
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_TRUE(table.CreateIndex("by_name", {"name"}).IsAlreadyExists());
}

TEST(TableTest, FindIndexOnColumn) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.CreateIndex("by_name", {"name"}).ok());
  auto primary = table.FindIndexOnColumn(0);
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(*primary, "");
  auto secondary = table.FindIndexOnColumn(1);
  ASSERT_TRUE(secondary.has_value());
  EXPECT_EQ(*secondary, "by_name");
  EXPECT_FALSE(table.FindIndexOnColumn(2).has_value());
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  auto t1 = catalog.CreateTable(MakeSchema());
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(catalog.CreateTable(MakeSchema()).status().IsAlreadyExists());
  EXPECT_EQ(catalog.GetTable("T"), *t1);  // case-insensitive
  EXPECT_EQ(catalog.GetTableById((*t1)->table_id()), *t1);
  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_EQ(catalog.GetTable("t"), nullptr);
  EXPECT_TRUE(catalog.DropTable("t").IsNotFound());
}

TEST(TableIoTest, CsvRoundTrip) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.Insert(MakeRow(1, "plain", 1.5)).ok());
  ASSERT_TRUE(table.Insert(MakeRow(2, "with,comma \"q\"", -2.0)).ok());

  const std::string path = ::testing::TempDir() + "/table_io_test.csv";
  ASSERT_TRUE(WriteTableCsv(table, path).ok());

  Table restored(2, MakeSchema());
  size_t skipped = 0;
  ASSERT_TRUE(LoadTableCsv(&restored, path, &skipped).ok());
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(restored.row_count(), 2u);
  auto row = restored.Get({Value::Int(2)});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].string_value(), "with,comma \"q\"");
  EXPECT_DOUBLE_EQ((*row)[2].double_value(), -2.0);

  // Loading again skips duplicates.
  ASSERT_TRUE(LoadTableCsv(&restored, path, &skipped).ok());
  EXPECT_EQ(skipped, 2u);
  std::remove(path.c_str());
}

TEST(TableIoTest, CsvRoundTripsEmbeddedNewlines) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.Insert(MakeRow(1, "line one\nline two", 0.5)).ok());
  ASSERT_TRUE(table.Insert(MakeRow(2, "trailing\n", 1.0)).ok());
  ASSERT_TRUE(table.Insert(MakeRow(3, "quotes \"and\"\nbreaks, too", 2.0)).ok());

  const std::string path = ::testing::TempDir() + "/table_io_newline.csv";
  ASSERT_TRUE(WriteTableCsv(table, path).ok());

  Table restored(2, MakeSchema());
  ASSERT_TRUE(LoadTableCsv(&restored, path).ok());
  ASSERT_EQ(restored.row_count(), 3u);
  EXPECT_EQ((*restored.Get({Value::Int(1)}))[1].string_value(),
            "line one\nline two");
  EXPECT_EQ((*restored.Get({Value::Int(2)}))[1].string_value(), "trailing\n");
  EXPECT_EQ((*restored.Get({Value::Int(3)}))[1].string_value(),
            "quotes \"and\"\nbreaks, too");
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

TEST(TableIoTest, SnapshotWritesHeaderAndRotatesBackup) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.Insert(MakeRow(1, "first", 1.0)).ok());
  const std::string path = ::testing::TempDir() + "/table_io_rotate.csv";
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  ASSERT_TRUE(WriteTableCsv(table, path).ok());

  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header.rfind("#sqlcm-snapshot v=1 crc=", 0), 0u) << header;

  // A second write rotates the first snapshot to .bak.
  ASSERT_TRUE(table.Insert(MakeRow(2, "second", 2.0)).ok());
  ASSERT_TRUE(WriteTableCsv(table, path).ok());
  Table from_bak(2, MakeSchema());
  ASSERT_TRUE(LoadTableCsv(&from_bak, path + ".bak").ok());
  EXPECT_EQ(from_bak.row_count(), 1u);
  Table from_primary(3, MakeSchema());
  ASSERT_TRUE(LoadTableCsv(&from_primary, path).ok());
  EXPECT_EQ(from_primary.row_count(), 2u);
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

TEST(TableIoTest, SyncCsvWriter) {
  const std::string path = ::testing::TempDir() + "/sync_writer_test.csv";
  auto writer = SyncCsvWriter::Open(path, /*sync_every_row=*/true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendRow({Value::Int(1), Value::String("x")}).ok());
  ASSERT_TRUE((*writer)->AppendRow({Value::Int(2), Value::String("y")}).ok());
  EXPECT_EQ((*writer)->rows_written(), 2u);
  writer->reset();

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(TableTest, Truncate) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.CreateIndex("by_name", {"name"}).ok());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Insert(MakeRow(i, "x", 0)).ok());
  }
  table.Truncate();
  EXPECT_EQ(table.row_count(), 0u);
  std::vector<Row> keys, rows;
  ASSERT_TRUE(
      table.IndexPrefixLookup("by_name", {Value::String("x")}, &keys, &rows)
          .ok());
  EXPECT_TRUE(rows.empty());
}

}  // namespace
}  // namespace sqlcm::storage
