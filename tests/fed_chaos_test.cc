// Randomized federation chaos harness (ISSUE 7 acceptance criteria).
//
// Three monitor nodes feed one fleet aggregator through the full
// export -> spool -> sender -> ingest pipeline while a single driver
// interleaves inserts, virtual-clock advances, epoch exports, sender
// pumps, node and aggregator crashes (plumbing torn down and reopened
// from disk mid-flight), aggregator checkpoints, and adversarial replay
// of previously shipped payloads (duplicates, reorders, stale epochs).
// Fault points fire probabilistically on every seam: spool publish
// (torn-tempfile crashes), durable baseline writes, sends, acks and
// ingests.
//
// Node crashes kill the federation plumbing, not the LAT itself — the
// engine restores LATs losslessly from v2 snapshots (cm_robustness_test),
// so the chaos models the fed layer's crash-consistency on top of that.
//
// Ground truth is a ReferenceLat oracle fed every insert from every node.
// After the dust settles (faults disarmed, every node flushed and fully
// drained), every fleet aggregate — COUNT/SUM/AVG/STDEV/MIN/MAX plus all
// aging variants — must match the oracle within 1 ulp. FIRST/LAST are
// excluded by contract: their fleet fold depends on delta arrival order.
// Inserted durations are integer-valued, so sums and sums-of-squares stay
// exact (< 2^53) and any fold-order difference would be visible.
//
// Budget and seed are environment-overridable for CI fuzzing:
//   SQLCM_FED_CHAOS_OPS   ops per run (default 3000)
//   SQLCM_FED_CHAOS_SEED  PRNG seed (default fixed; CI logs a random one)

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/random.h"
#include "common/value.h"
#include "fed/aggregator.h"
#include "fed/node.h"
#include "fed/sender.h"
#include "fed/spool.h"
#include "obs/span_ring.h"
#include "sqlcm/lat.h"
#include "sqlcm/reference_lat.h"
#include "sqlcm/sketch.h"

namespace sqlcm::fed {
namespace {

using common::FaultKind;
using common::FaultRegistry;
using common::Row;
using common::Value;
using cm::Lat;
using cm::LatAggFunc;
using cm::LatSpec;
using cm::QueryRecord;
using cm::ReferenceLat;

constexpr int64_t kBlockMicros = 1000;
constexpr int64_t kWindowMicros = 10 * kBlockMicros;
constexpr size_t kNumNodes = 3;
constexpr size_t kKeyPool = 24;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

bool WithinOneUlp(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (a == b) return true;
  return std::nextafter(a, b) == b;
}

bool ValuesAgree(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return false;
  if (a.is_double()) return WithinOneUlp(a.double_value(), b.double_value());
  if (a.is_null()) return true;
  return a.Compare(b) == 0;
}

LatSpec ChaosSpec() {
  LatSpec spec;
  spec.name = "Chaos";
  spec.object_class = cm::MonitoredClass::kQuery;
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                     {LatAggFunc::kSum, "Duration", "SumDur", false},
                     {LatAggFunc::kAvg, "Duration", "AvgDur", false},
                     {LatAggFunc::kStdev, "Duration", "SdDur", false},
                     {LatAggFunc::kMin, "Duration", "MinDur", false},
                     {LatAggFunc::kMax, "Duration", "MaxDur", false},
                     {LatAggFunc::kFirst, "Query_Text", "FirstText", false},
                     {LatAggFunc::kLast, "Query_Text", "LastText", false},
                     {LatAggFunc::kCount, "", "AgN", true},
                     {LatAggFunc::kSum, "Duration", "AgSum", true},
                     {LatAggFunc::kAvg, "Duration", "AgAvg", true},
                     {LatAggFunc::kStdev, "Duration", "AgSd", true},
                     {LatAggFunc::kMin, "Duration", "AgMin", true},
                     {LatAggFunc::kMax, "Duration", "AgMax", true},
                     {LatAggFunc::kMin, "Query_Text", "AgMinText", true}};
  // Sketch aggregates ride the same delta grammar: quantile buckets ship as
  // additive cells (exactly-once via epoch dedup, like SUM), HLL registers
  // as max-merge (idempotent under replay). Unbounded quantile budget keeps
  // every sketch at level 0, so the fleet fold is exact and the estimate
  // bound is the base alpha.
  spec.aggregates.push_back({LatAggFunc::kQuantile, "Duration", "P50",
                             false, 0.5});
  spec.aggregates.push_back({LatAggFunc::kDistinct, "Query_Text", "DText",
                             false});
  spec.aggregates.push_back({LatAggFunc::kDistinct, "Duration", "DDur",
                             false});
  spec.quantile_sketch_bytes = 0;
  spec.aging_window_micros = kWindowMicros;
  spec.aging_block_micros = kBlockMicros;
  return spec;
}

/// Approximate by contract: compared within documented error bounds
/// instead of 1 ulp.
bool QuantileColumn(const std::string& name) { return name == "P50"; }
bool DistinctColumn(const std::string& name) {
  return name == "DText" || name == "DDur";
}

/// Arrival-order-dependent by contract; excluded from the oracle compare.
bool OrderDependentColumn(const std::string& name) {
  return name == "FirstText" || name == "LastText";
}

std::unique_ptr<Lat> MakeLat() {
  auto lat = Lat::Create(ChaosSpec());
  EXPECT_TRUE(lat.ok()) << lat.status().ToString();
  return std::move(*lat);
}

struct NodeHarness {
  std::string id;
  std::string dir;
  std::unique_ptr<Lat> lat;  // survives "crashes" (lossless LAT restarts)
  std::unique_ptr<FedNode> node;
  std::unique_ptr<DeltaSender> sender;
  int crashes = 0;
};

TEST(FedChaosTest, FleetAggregatesMatchReferenceOracleUnderFaults) {
  const uint64_t ops = EnvOr("SQLCM_FED_CHAOS_OPS", 3000);
  const uint64_t seed = EnvOr("SQLCM_FED_CHAOS_SEED", 0xFEDC4A05);
  std::fprintf(stderr, "[fed-chaos] ops=%llu seed=%llu\n",
               static_cast<unsigned long long>(ops),
               static_cast<unsigned long long>(seed));
  RecordProperty("sqlcm_fed_chaos_seed", std::to_string(seed));

  FaultRegistry::Get()->Reset();
  common::Random rng(seed);
  common::MockClock clock(1'000);
  obs::SpanRing spans(1024);
  spans.set_enabled(true);

  const std::string root =
      ::testing::TempDir() + "/fed_chaos_" + std::to_string(seed);
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  const LatSpec spec = ChaosSpec();
  auto ref_or = ReferenceLat::Create(spec);
  ASSERT_TRUE(ref_or.ok()) << ref_or.status().ToString();
  std::unique_ptr<ReferenceLat> oracle = std::move(*ref_or);

  auto fleet = MakeLat();
  std::unique_ptr<FleetAggregator> agg;
  auto open_aggregator = [&]() {
    FleetAggregator::Options options;
    options.dir = root + "/agg";
    options.clock = &clock;
    options.spans = &spans;
    options.late_window_micros = 1'000'000'000'000;  // never drops in-run
    auto opened = FleetAggregator::Open(options, {fleet.get()});
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    agg = std::move(*opened);
  };
  ASSERT_NO_FATAL_FAILURE(open_aggregator());

  std::vector<NodeHarness> nodes(kNumNodes);
  auto open_node = [&](NodeHarness& n) {
    auto opened =
        FedNode::Open({n.id, n.dir, &clock, &spans}, {n.lat.get()});
    ASSERT_TRUE(opened.ok()) << n.id << ": " << opened.status().ToString();
    n.node = std::move(*opened);
    DeltaSender::Options options;
    options.clock = &clock;
    options.poison_attempts = 1'000'000;  // chaos must not shed real data
    options.jitter_seed = seed ^ std::hash<std::string>{}(n.id);
    n.sender = std::make_unique<DeltaSender>(n.node.get(), agg.get(),
                                             options);
  };
  for (size_t i = 0; i < kNumNodes; ++i) {
    nodes[i].id = "node" + std::to_string(i);
    nodes[i].dir = root + "/" + nodes[i].id;
    nodes[i].lat = MakeLat();
    ASSERT_NO_FATAL_FAILURE(open_node(nodes[i]));
  }

  // Arm every federation seam. Probabilities are low enough that forward
  // progress continues, high enough that each point fires many times.
  FaultRegistry::Get()->Arm(kFaultFedSpoolWrite,
                            {FaultKind::kCrashRename, 0.05, -1});
  FaultRegistry::Get()->Arm(kFaultFedSpoolRemove,
                            {FaultKind::kIOError, 0.05, -1});
  FaultRegistry::Get()->Arm(kFaultFedBaselineWrite,
                            {FaultKind::kIOError, 0.10, -1});
  FaultRegistry::Get()->Arm(kFaultFedSend, {FaultKind::kIOError, 0.15, -1});
  FaultRegistry::Get()->Arm(kFaultFedAck, {FaultKind::kIOError, 0.10, -1});
  FaultRegistry::Get()->Arm(kFaultFedIngest,
                            {FaultKind::kIOError, 0.05, -1});

  const std::vector<std::string> kTexts = {
      "plain", "with space", "a:b;c%d", "comma,semi;", "100%:done", ""};
  std::vector<std::string> shipped;  // replay pool for the adversary

  auto insert_everywhere = [&](size_t node_idx) {
    QueryRecord rec;
    rec.logical_signature = "sig" + std::to_string(rng.Uniform(kKeyPool));
    rec.text = kTexts[rng.Uniform(kTexts.size())];
    // Integer-valued durations: every moment the fleet folds stays exact,
    // so the 1-ulp compare has no summation-order slack to hide behind.
    rec.duration_secs = static_cast<double>(rng.UniformInt(-50, 50));
    const int64_t now = clock.NowMicros();
    nodes[node_idx].lat->Insert(&rec, now);
    oracle->Insert(&rec, now);
  };

  int total_node_crashes = 0;
  for (uint64_t op = 0; op < ops; ++op) {
    const uint64_t r = rng.Uniform(1000);
    NodeHarness& n = nodes[rng.Uniform(kNumNodes)];
    if (r < 550) {
      insert_everywhere(rng.Uniform(kNumNodes));
    } else if (r < 650) {
      clock.Advance(rng.UniformInt(1, 2500));
    } else if (r < 780) {
      // Spool-publish faults surface here; the epoch number is not
      // consumed and the next export retries.
      (void)n.node->ExportEpoch();
      auto epochs = n.node->spool()->List();
      if (!epochs.empty()) {
        auto payload = n.node->spool()->ReadEpoch(epochs.back());
        if (payload.ok()) shipped.push_back(std::move(*payload));
      }
    } else if (r < 900) {
      // Send/ack/ingest/remove faults surface here; every failure leaves
      // the epoch spooled for a later pump.
      (void)n.sender->Pump();
    } else if (r < 950 && !shipped.empty()) {
      // Adversarial replay: duplicates, reorders, stale epochs.
      (void)agg->Ingest(shipped[rng.Uniform(shipped.size())]);
    } else if (r < 980) {
      // Node crash: plumbing torn down mid-protocol, reopened from disk.
      n.node.reset();
      n.sender.reset();
      ASSERT_NO_FATAL_FAILURE(open_node(n));
      ++n.crashes;
      ++total_node_crashes;
    } else if (r < 995) {
      // Aggregator crash: fleet LAT rebuilt from checkpoint + journal.
      agg.reset();
      fleet = MakeLat();
      ASSERT_NO_FATAL_FAILURE(open_aggregator());
      for (NodeHarness& each : nodes) {
        each.sender = std::make_unique<DeltaSender>(
            each.node.get(), agg.get(), DeltaSender::Options{
                                            .poison_attempts = 1'000'000,
                                            .clock = &clock});
      }
    } else {
      (void)agg->Checkpoint();
    }
  }

  // Acceptance floor: at least 3 node crashes even on an unlucky seed.
  while (total_node_crashes < 3) {
    NodeHarness& n = nodes[rng.Uniform(kNumNodes)];
    n.node.reset();
    n.sender.reset();
    ASSERT_NO_FATAL_FAILURE(open_node(n));
    ++n.crashes;
    ++total_node_crashes;
  }

  // Every armed seam must actually have been exercised before we disarm
  // (fire counters clear on Reset, so capture them now). Short override
  // runs may legitimately miss a low-probability seam, so only enforce
  // coverage at the default op count and above.
  if (ops >= 3000) {
    for (const char* point : {kFaultFedSpoolWrite, kFaultFedBaselineWrite,
                              kFaultFedSend, kFaultFedAck, kFaultFedIngest}) {
      EXPECT_GT(FaultRegistry::Get()->fires(point), 0u) << point;
    }
  }

  // Settle: disarm every fault, flush every node, drain every spool.
  FaultRegistry::Get()->Reset();
  for (NodeHarness& n : nodes) {
    auto epoch = n.node->ExportEpoch();
    ASSERT_TRUE(epoch.ok()) << n.id << ": " << epoch.status().ToString();
    ASSERT_EQ(n.node->durable_epoch(), *epoch) << n.id;
    int safety = 0;
    while (!n.node->spool()->List().empty()) {
      auto acked = n.sender->Pump();
      ASSERT_TRUE(acked.ok()) << n.id << ": " << acked.status().ToString();
      ASSERT_LT(++safety, 1000) << n.id << " failed to drain";
    }
    EXPECT_EQ(n.node->spool()->quarantined(), 0u)
        << n.id << " lost data to quarantine";
  }

  // Every fleet aggregate must match the merged ground truth.
  const int64_t now = clock.NowMicros();
  const std::vector<std::string>& columns = fleet->column_names();
  size_t live_groups = 0;
  for (size_t k = 0; k < kKeyPool; ++k) {
    const Row key = {Value::String("sig" + std::to_string(k))};
    Row got, want;
    const bool in_fleet = fleet->LookupByKey(key, now, &got);
    const bool in_ref = oracle->LookupByKey(key, now, &want);
    ASSERT_EQ(in_fleet, in_ref)
        << "liveness divergence for sig" << k << " (seed " << seed << ")";
    if (!in_fleet) continue;
    ++live_groups;
    ASSERT_EQ(got.size(), want.size());
    for (size_t c = 0; c < want.size(); ++c) {
      if (OrderDependentColumn(columns[c])) continue;
      const auto context = [&]() {
        return "(seed " + std::to_string(seed) + ") key sig" +
               std::to_string(k) + " column '" + columns[c] +
               "': fleet=" + got[c].ToString() +
               " reference=" + want[c].ToString();
      };
      if (QuantileColumn(columns[c])) {
        // Unbounded sketches stay at level 0, and the delta pipeline folds
        // bucket counts exactly, so the fleet estimate carries the base
        // relative-error guarantee against the exact oracle quantile.
        ASSERT_EQ(got[c].is_null(), want[c].is_null())
            << "quantile nullness divergence " << context();
        if (got[c].is_null()) continue;
        const double g = got[c].double_value();
        const double w = want[c].double_value();
        ASSERT_LE(std::abs(g - w),
                  (cm::QuantileSketch::kBaseAlpha + 1e-6) * std::abs(w) +
                      1e-9)
            << "quantile out of error bound " << context();
      } else if (DistinctColumn(columns[c])) {
        // HLL at kDefaultPrecision=10: stderr ~3.25%; allow 4 sigma plus
        // absolute slack for the small-cardinality regime.
        const double g = static_cast<double>(got[c].int_value());
        const double w = static_cast<double>(want[c].int_value());
        ASSERT_LE(std::abs(g - w), std::max(5.0, 0.13 * w + 3.0))
            << "distinct out of error bound " << context();
      } else {
        ASSERT_TRUE(ValuesAgree(got[c], want[c]))
            << "divergence " << context();
      }
    }
  }
  EXPECT_GT(live_groups, 0u);

  // The chaos actually exercised the machinery it claims to.
  auto health = agg->SnapshotNodes();
  EXPECT_EQ(health.size(), kNumNodes);
  uint64_t applied = 0, duplicates = 0;
  for (const NodeHealth& h : health) {
    applied += h.applied;
    duplicates += h.duplicates;
    EXPECT_EQ(h.hwm, h.last_epoch) << h.node_id << " drained incompletely";
  }
  EXPECT_GT(applied, 0u);
  EXPECT_GT(duplicates, 0u) << "replay adversary never hit";
  EXPECT_GT(spans.total_recorded(), 0u);

  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace sqlcm::fed
