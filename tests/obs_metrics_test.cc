// Unit tests for the observability primitives: counters, gauges, the
// fixed-bucket latency histogram (bucket/percentile math) and the registry.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sqlcm::obs {
namespace {

TEST(CounterTest, IncAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_micros(), 0u);
  EXPECT_EQ(h.max_micros(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 0.0);
}

TEST(HistogramTest, CountSumMax) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  h.Record(0);    // bucket 0
  h.Record(-5);   // clamps to bucket 0, not added to sum
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum_micros(), 60u);
  EXPECT_EQ(h.max_micros(), 30);
}

TEST(HistogramTest, BucketBounds) {
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(1), 1);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(1), 1);
  EXPECT_EQ(LatencyHistogram::BucketLowerBound(5), 16);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(5), 31);
}

TEST(HistogramTest, SingleValuedDistributionIsTight) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(100);
  // All samples fall in [64, 127] but the observed max clamps the bucket
  // ceiling, so every percentile must land in [64, 100].
  for (double p : {0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(h.Percentile(p), 64.0) << p;
    EXPECT_LE(h.Percentile(p), 100.0) << p;
  }
}

TEST(HistogramTest, PercentilesOnUniformRange) {
  LatencyHistogram h;
  for (int v = 1; v <= 100; ++v) h.Record(v);
  // p50 -> rank 50, which lands in bucket [32, 63].
  const double p50 = h.Percentile(0.50);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 63.0);
  // p99 -> rank 99, bucket [64, 127] clamped to max 100.
  const double p99 = h.Percentile(0.99);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 100.0);
  // Percentiles are monotone in p.
  EXPECT_LE(h.Percentile(0.25), p50);
  EXPECT_LE(p50, h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(1.0));
}

TEST(HistogramTest, ComputePercentilesMatchesPercentile) {
  LatencyHistogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(v);
  const auto pct = h.ComputePercentiles();
  EXPECT_DOUBLE_EQ(pct.p50, h.Percentile(0.50));
  EXPECT_DOUBLE_EQ(pct.p95, h.Percentile(0.95));
  EXPECT_DOUBLE_EQ(pct.p99, h.Percentile(0.99));
}

TEST(HistogramTest, ConcurrentRecordsKeepTotalsConsistent) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(1 + ((t + i) % 1000));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(h.max_micros(), 900);
  EXPECT_LE(h.max_micros(), 1000);
  EXPECT_GT(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_micros(), 0u);
  EXPECT_EQ(h.max_micros(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(RegistryTest, SnapshotExpandsHistograms) {
  MetricsRegistry registry;
  Counter c;
  Gauge g;
  LatencyHistogram h;
  c.Inc(7);
  g.Set(-2);
  h.Record(10);
  registry.RegisterCounter("my.counter", &c);
  registry.RegisterGauge("my.gauge", &g);
  registry.RegisterHistogram("my.histogram", &h);

  const auto samples = registry.Snapshot();
  // 1 counter + 1 gauge + 5 histogram rows.
  ASSERT_EQ(samples.size(), 7u);
  EXPECT_EQ(samples[0].name, "my.counter");
  EXPECT_STREQ(samples[0].kind, "counter");
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
  EXPECT_EQ(samples[1].name, "my.gauge");
  EXPECT_DOUBLE_EQ(samples[1].value, -2.0);
  EXPECT_EQ(samples[2].name, "my.histogram.count");
  EXPECT_DOUBLE_EQ(samples[2].value, 1.0);
  EXPECT_EQ(samples[3].name, "my.histogram.p50_us");
  EXPECT_EQ(samples[6].name, "my.histogram.max_us");
  EXPECT_DOUBLE_EQ(samples[6].value, 10.0);
}

}  // namespace
}  // namespace sqlcm::obs
