#include "txn/transaction.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace sqlcm::txn {
namespace {

using common::Row;
using common::Value;

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() : manager_(common::SystemClock::Get(), &catalog_) {
    auto schema = catalog::TableSchema::Create(
        "t",
        {{"id", catalog::ColumnType::kInt},
         {"name", catalog::ColumnType::kString}},
        {"id"});
    table_ = *catalog_.CreateTable(std::move(*schema));
    table_->CreateIndex("by_name", {"name"}).ok();
  }

  storage::Catalog catalog_;
  TransactionManager manager_;
  storage::Table* table_;
};

TEST_F(TransactionTest, BeginCommitLifecycle) {
  Transaction* txn = manager_.Begin();
  const TxnId id = txn->id();
  EXPECT_EQ(txn->state(), TxnState::kActive);
  EXPECT_EQ(manager_.FindActive(id), txn);
  EXPECT_EQ(manager_.active_count(), 1u);
  ASSERT_TRUE(manager_.Commit(txn).ok());
  EXPECT_EQ(manager_.FindActive(id), nullptr);
  EXPECT_EQ(manager_.active_count(), 0u);
}

TEST_F(TransactionTest, AbortUndoesInsert) {
  Transaction* txn = manager_.Begin();
  auto key = table_->Insert({Value::Int(1), Value::String("a")});
  ASSERT_TRUE(key.ok());
  txn->LogInsert(table_->table_id(), *key);
  ASSERT_TRUE(manager_.Abort(txn).ok());
  EXPECT_EQ(table_->row_count(), 0u);
}

TEST_F(TransactionTest, AbortUndoesDeleteIncludingIndexes) {
  auto key = table_->Insert({Value::Int(1), Value::String("a")});
  ASSERT_TRUE(key.ok());

  Transaction* txn = manager_.Begin();
  auto old_row = table_->Delete(*key);
  ASSERT_TRUE(old_row.ok());
  txn->LogDelete(table_->table_id(), *key, *old_row);
  ASSERT_TRUE(manager_.Abort(txn).ok());

  EXPECT_EQ(table_->row_count(), 1u);
  std::vector<Row> keys, rows;
  ASSERT_TRUE(
      table_->IndexPrefixLookup("by_name", {Value::String("a")}, &keys, &rows)
          .ok());
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(TransactionTest, AbortUndoesUpdate) {
  auto key = table_->Insert({Value::Int(1), Value::String("before")});
  ASSERT_TRUE(key.ok());

  Transaction* txn = manager_.Begin();
  auto old_row = table_->Update(*key, {Value::Int(1), Value::String("after")});
  ASSERT_TRUE(old_row.ok());
  txn->LogUpdate(table_->table_id(), *key, *old_row);
  ASSERT_TRUE(manager_.Abort(txn).ok());

  auto row = table_->Get(*key);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].string_value(), "before");
}

TEST_F(TransactionTest, UndoAppliedInReverseOrder) {
  Transaction* txn = manager_.Begin();
  // Insert then update the same row; undo must revert update first.
  auto key = table_->Insert({Value::Int(1), Value::String("v1")});
  ASSERT_TRUE(key.ok());
  txn->LogInsert(table_->table_id(), *key);
  auto old_row = table_->Update(*key, {Value::Int(1), Value::String("v2")});
  ASSERT_TRUE(old_row.ok());
  txn->LogUpdate(table_->table_id(), *key, *old_row);

  ASSERT_TRUE(manager_.Abort(txn).ok());
  EXPECT_EQ(table_->row_count(), 0u);
}

TEST_F(TransactionTest, CommitReleasesLocks) {
  Transaction* txn = manager_.Begin();
  ResourceId res{table_->table_id(), {Value::Int(1)}};
  ASSERT_EQ(manager_.lock_manager()->Acquire(txn->id(), res,
                                             LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(manager_.lock_manager()->HeldLockCount(txn->id()), 1u);
  const TxnId id = txn->id();
  ASSERT_TRUE(manager_.Commit(txn).ok());
  EXPECT_EQ(manager_.lock_manager()->HeldLockCount(id), 0u);
}

TEST_F(TransactionTest, CancelFlagVisibleCrossThread) {
  Transaction* txn = manager_.Begin();
  EXPECT_FALSE(txn->cancelled());
  txn->Cancel();
  EXPECT_TRUE(txn->cancelled());
  EXPECT_TRUE(txn->cancelled_flag()->load());
  manager_.Abort(txn).ok();
}

}  // namespace
}  // namespace sqlcm::txn
