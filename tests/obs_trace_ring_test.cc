// Tests for the lock-free MPSC event-trace ring: enable/disable gating,
// wraparound, qualifier truncation, and concurrent-writer consistency.
#include "obs/trace_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace sqlcm::obs {
namespace {

TEST(TraceRingTest, DisabledRecordsNothing) {
  TraceRing ring(8);
  EXPECT_FALSE(ring.enabled());
  ring.Record(1, "q", 0, 100, 5);
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
}

TEST(TraceRingTest, RecordsInOrder) {
  TraceRing ring(8);
  ring.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    ring.Record(static_cast<uint8_t>(i), "ev" + std::to_string(i),
                static_cast<uint32_t>(i), 1000 + i, i * 2);
  }
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].kind, static_cast<uint8_t>(i));
    EXPECT_EQ(events[i].qualifier, "ev" + std::to_string(i));
    EXPECT_EQ(events[i].rules_fired, static_cast<uint32_t>(i));
    EXPECT_EQ(events[i].ts_micros, 1000 + static_cast<int64_t>(i));
    EXPECT_EQ(events[i].dispatch_micros, static_cast<int64_t>(i) * 2);
  }
}

TEST(TraceRingTest, WraparoundKeepsMostRecent) {
  TraceRing ring(8);
  ring.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    ring.Record(1, "", 0, i, 0);
  }
  EXPECT_EQ(ring.total_recorded(), 20u);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The retained window is seqs 12..19, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].ts_micros, static_cast<int64_t>(12 + i));
  }
}

TEST(TraceRingTest, QualifierTruncatedToMax) {
  TraceRing ring(4);
  ring.set_enabled(true);
  const std::string longname(100, 'x');
  ring.Record(0, longname, 0, 0, 0);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].qualifier,
            longname.substr(0, TraceRing::kMaxQualifierBytes));
}

TEST(TraceRingTest, DisableMidStreamStopsRecording) {
  TraceRing ring(8);
  ring.set_enabled(true);
  ring.Record(0, "a", 0, 0, 0);
  ring.set_enabled(false);
  ring.Record(0, "b", 0, 0, 0);
  EXPECT_EQ(ring.total_recorded(), 1u);
  ASSERT_EQ(ring.Snapshot().size(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].qualifier, "a");
}

TEST(TraceRingTest, ConcurrentWritersProduceConsistentSlots) {
  // 4 writers hammer a small ring; every snapshotted event must be
  // internally consistent (the qualifier matches the writer id carried in
  // rules_fired) and seqs must be unique.
  TraceRing ring(64);
  ring.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  std::atomic<int> bad_payload{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceEvent& ev : ring.Snapshot()) {
        const std::string expect = "t" + std::to_string(ev.rules_fired);
        if (ev.qualifier != expect) bad_payload.fetch_add(1);
      }
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      const std::string qual = "t" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        ring.Record(1, qual, static_cast<uint32_t>(t), i, 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(ring.total_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Quiesced: the final snapshot must be full-capacity, fully consistent,
  // and strictly ordered by seq.
  const auto events = ring.Snapshot();
  EXPECT_EQ(events.size(), ring.capacity());
  std::set<uint64_t> seqs;
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.qualifier, "t" + std::to_string(ev.rules_fired));
    seqs.insert(ev.seq);
  }
  EXPECT_EQ(seqs.size(), events.size());
  // Concurrent snapshots tolerate skipped (mid-write) slots but must never
  // see torn payloads from *completed* writes of the same ticket.
  EXPECT_EQ(bad_payload.load(), 0);
}

}  // namespace
}  // namespace sqlcm::obs
