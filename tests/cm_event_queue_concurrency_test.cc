// Deferred-evaluation pipeline tests (docs/PERFORMANCE.md §Async
// pipeline), built to run under TSan: the Vyukov MPMC event queue's FIFO /
// capacity / shutdown contract and multi-producer multi-consumer delivery,
// the batched LAT insert path's latch-count guarantee, and the engine-level
// invariants — deferred evaluation reaches the same LAT state as sync,
// Cancel rules stay synchronous, and classification is visible in
// sqlcm_rule_stats.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "sqlcm/event_queue.h"
#include "sqlcm/lat.h"
#include "sqlcm/monitor_engine.h"

namespace sqlcm::cm {
namespace {

using common::Value;
using exec::ParamMap;

DeferredEvent Event(uint64_t seq) {
  DeferredEvent ev;
  ev.kind = EventKind::kQueryCommit;
  ev.seq = seq;
  ev.query = std::make_shared<QueryRecord>();
  ev.query->id = seq;
  return ev;
}

TEST(EventQueueTest, FifoSingleThread) {
  EventQueue queue(8);
  EXPECT_EQ(queue.capacity(), 8u);
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(Event(i)));
  EXPECT_EQ(queue.ApproxDepth(), 5u);
  DeferredEvent out[8];
  ASSERT_EQ(queue.PopBatch(out, 8), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].seq, i);
    ASSERT_NE(out[i].query, nullptr);
    EXPECT_EQ(out[i].query->id, i);
  }
  EXPECT_EQ(queue.ApproxDepth(), 0u);
}

TEST(EventQueueTest, TryPushFailsOnlyWhenFull) {
  EventQueue queue(4);
  for (uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(queue.TryPush(Event(i)));
  EXPECT_FALSE(queue.TryPush(Event(99)));
  DeferredEvent out[1];
  ASSERT_EQ(queue.PopBatch(out, 1), 1u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_TRUE(queue.TryPush(Event(4)));  // the freed slot is reusable
  EXPECT_FALSE(queue.TryPush(Event(99)));
}

TEST(EventQueueTest, PopBatchHonoursMax) {
  EventQueue queue(16);
  for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(queue.TryPush(Event(i)));
  DeferredEvent out[4];
  ASSERT_EQ(queue.PopBatch(out, 4), 4u);
  EXPECT_EQ(out[3].seq, 3u);
  ASSERT_EQ(queue.PopBatch(out, 4), 4u);
  EXPECT_EQ(out[3].seq, 7u);
  ASSERT_EQ(queue.PopBatch(out, 4), 2u);
  EXPECT_EQ(queue.PopBatch(out, 4), 0u);
}

TEST(EventQueueTest, ShutdownWakesWaitersAndKeepsResidueDrainable) {
  EventQueue queue(4);
  ASSERT_TRUE(queue.TryPush(Event(1)));
  std::thread waiter([&] {
    // Woken by Shutdown, not the timeout.
    queue.WaitNonEmpty(60'000'000);
  });
  queue.Shutdown();
  waiter.join();
  EXPECT_TRUE(queue.shutdown());
  // Residue still drains, and pushes still land while space remains.
  EXPECT_TRUE(queue.TryPush(Event(2)));
  DeferredEvent out[4];
  EXPECT_EQ(queue.PopBatch(out, 4), 2u);
  // PushBlocking on a full queue cannot wait forever after shutdown.
  for (uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(queue.TryPush(Event(i)));
  EXPECT_FALSE(queue.PushBlocking(Event(99)));
}

TEST(EventQueueTest, MpmcDeliversEveryEventExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr uint64_t kPerProducer = 5000;
  EventQueue queue(256);
  std::atomic<bool> done{false};
  std::vector<std::vector<uint64_t>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      DeferredEvent batch[32];
      for (;;) {
        const size_t n = queue.PopBatch(batch, 32);
        for (size_t i = 0; i < n; ++i) received[c].push_back(batch[i].seq);
        if (n == 0) {
          if (done.load(std::memory_order_acquire) &&
              queue.ApproxDepth() == 0) {
            return;
          }
          queue.WaitNonEmpty(1000);
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.PushBlocking(
            Event(static_cast<uint64_t>(p) * kPerProducer + i)));
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  queue.Shutdown();  // wake consumers parked in WaitNonEmpty
  for (auto& t : consumers) t.join();

  std::set<uint64_t> seen;
  size_t total = 0;
  for (const auto& per_consumer : received) {
    total += per_consumer.size();
    seen.insert(per_consumer.begin(), per_consumer.end());
  }
  EXPECT_EQ(total, kProducers * kPerProducer);       // nothing duplicated
  EXPECT_EQ(seen.size(), kProducers * kPerProducer); // nothing lost
}

TEST(LatInsertBatchTest, MatchesPerItemInsertAndBoundsLatches) {
  auto make_spec = [] {
    LatSpec spec;
    spec.name = "Batch_LAT";
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                       {LatAggFunc::kSum, "Duration", "SumDur", false},
                       {LatAggFunc::kMin, "Duration", "MinDur", false},
                       {LatAggFunc::kMax, "Duration", "MaxDur", false},
                       {LatAggFunc::kFirst, "Duration", "FirstDur", false},
                       {LatAggFunc::kLast, "Duration", "LastDur", false}};
    spec.shard_count = 4;
    return spec;
  };
  auto batched = std::move(*Lat::Create(make_spec()));
  auto reference = std::move(*Lat::Create(make_spec()));

  constexpr size_t kItems = 64;
  constexpr size_t kGroups = 6;
  std::vector<QueryRecord> records(kItems);
  std::vector<LatBatchItem> items(kItems);
  for (size_t i = 0; i < kItems; ++i) {
    records[i].logical_signature = "sig" + std::to_string(i % kGroups);
    records[i].duration_secs = static_cast<double>(i) * 0.25;
    items[i] = {&records[i], static_cast<int64_t>(1000 + i)};
    reference->Insert(&records[i], items[i].now_micros);
  }

  const uint64_t latches_before = batched->stats().latch_acquisitions.value();
  batched->InsertBatch(items.data(), items.size());
  const uint64_t latch_delta =
      batched->stats().latch_acquisitions.value() - latches_before;

  // Unbounded LAT: one map latch per touched shard (S <= min(shards,
  // groups)) plus one row latch per distinct group (G) — never the 2N the
  // per-item path would take.
  EXPECT_LE(latch_delta, batched->shard_count() + kGroups);
  EXPECT_GE(latch_delta, 1u + kGroups);
  EXPECT_LT(latch_delta, 2 * kItems);

  // End state identical to per-item inserts, including the order-sensitive
  // FIRST/LAST aggregates (arrival order is preserved within the batch).
  EXPECT_EQ(batched->size(), kGroups);
  EXPECT_EQ(batched->stats().inserts.value(), kItems);
  const auto want = reference->Snapshot(0);
  const auto got = batched->Snapshot(0);
  ASSERT_EQ(got.size(), want.size());
  for (size_t r = 0; r < want.size(); ++r) {
    ASSERT_EQ(got[r].size(), want[r].size());
    for (size_t c = 0; c < want[r].size(); ++c) {
      EXPECT_EQ(got[r][c].ToString(), want[r][c].ToString())
          << "row " << r << " col " << c;
    }
  }
}

class EventPipelineTest : public ::testing::Test {
 protected:
  void StartEngine(MonitorEngine::Options options) {
    session_.reset();
    monitor_.reset();
    db_ = std::make_unique<engine::Database>();
    monitor_ = std::make_unique<MonitorEngine>(db_.get(), std::move(options));
    session_ = db_->CreateSession();
    Exec("CREATE TABLE items (id INT, val FLOAT, PRIMARY KEY(id))");
    for (int i = 0; i < 20; ++i) {
      Exec("INSERT INTO items VALUES (" + std::to_string(i) + ", 1.0)");
    }
  }

  void Exec(const std::string& sql, const ParamMap* params = nullptr) {
    auto result = session_->Execute(sql, params);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  void DefineDurationLat() {
    LatSpec spec;
    spec.name = "Duration_LAT";
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kAvg, "Duration", "Avg_Duration", false},
                       {LatAggFunc::kCount, "", "N", false}};
    ASSERT_TRUE(monitor_->DefineLat(std::move(spec)).ok());
  }

  void AddFeedRule() {
    RuleSpec feed;
    feed.name = "feed";
    feed.event = "Query.Commit";
    feed.action = "Query.Insert(Duration_LAT)";
    ASSERT_TRUE(monitor_->AddRule(feed).ok());
  }

  void RunWorkload(engine::Session* session, int queries) {
    ParamMap params;
    for (int i = 0; i < queries; ++i) {
      params = {{"k", Value::Int(i % 20)}};
      auto result =
          session->Execute("SELECT val FROM items WHERE id = @k", &params);
      ASSERT_TRUE(result.ok()) << result.status();
    }
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<MonitorEngine> monitor_;
  std::unique_ptr<engine::Session> session_;
};

TEST_F(EventPipelineTest, DeferredDrainMatchesSyncLatState) {
  // Same workload through a sync engine and a deferred one (1 worker =
  // FIFO drain): identical LAT end-state after the drain barrier.
  std::vector<std::vector<common::Row>> snapshots;
  for (const bool async : {false, true}) {
    MonitorEngine::Options options;
    options.async_rule_eval = async;
    options.monitor_threads = 1;
    StartEngine(options);
    DefineDurationLat();
    AddFeedRule();
    RunWorkload(session_.get(), 40);
    monitor_->DrainEventQueue();
    Lat* lat = monitor_->FindLat("Duration_LAT");
    ASSERT_NE(lat, nullptr);
    snapshots.push_back(lat->Snapshot(0));
    if (async) {
      EXPECT_GT(monitor_->metrics().queue_enqueued.value(), 0u);
      EXPECT_EQ(monitor_->event_queue_depth(), 0u);
    }
  }
  // Wall-clock durations differ between two live runs, so compare the
  // deterministic shape: same groups, same event counts, both averages
  // computed from real observations. (Bit-exact sync ≡ batched-insert
  // equivalence is proven by cm_lat_differential_test's oracle.)
  ASSERT_EQ(snapshots[0].size(), snapshots[1].size());
  for (size_t r = 0; r < snapshots[0].size(); ++r) {
    ASSERT_EQ(snapshots[0][r].size(), snapshots[1][r].size());
    EXPECT_EQ(snapshots[0][r][0].ToString(), snapshots[1][r][0].ToString());
    EXPECT_GT(snapshots[0][r][1].AsDouble(), 0.0);
    EXPECT_GT(snapshots[1][r][1].AsDouble(), 0.0);
    EXPECT_EQ(snapshots[0][r][2].int_value(),
              snapshots[1][r][2].int_value())
        << "row " << r;
  }
}

TEST_F(EventPipelineTest, CancelRulesStaySynchronous) {
  MonitorEngine::Options options;
  options.async_rule_eval = true;
  StartEngine(options);
  // A Cancel action must see a still-live query, so its rule is classified
  // inline even with the async pipeline on — and keeps blocking semantics:
  // the very query that triggered it observes the cancellation.
  RuleSpec cancel;
  cancel.name = "cancel_all";
  cancel.event = "Query.Start";
  cancel.action = "Query.Cancel()";
  ASSERT_TRUE(monitor_->AddRule(cancel).ok());
  auto result = session_->Execute("SELECT val FROM items WHERE id = 1");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(monitor_->metrics().queue_enqueued.value(), 0u);
}

TEST_F(EventPipelineTest, ClassificationVisibleInRuleStats) {
  MonitorEngine::Options options;
  options.async_rule_eval = true;
  StartEngine(options);
  DefineDurationLat();
  AddFeedRule();  // Query.Commit + Insert: deferrable
  RuleSpec cancel;
  cancel.name = "cancel";
  cancel.event = "Query.Commit";
  cancel.condition = "Query.Duration > 100";
  cancel.action = "Query.Cancel()";
  ASSERT_TRUE(monitor_->AddRule(cancel).ok());
  RuleSpec start;
  start.name = "start";
  start.event = "Query.Start";
  start.action = "SendMail('hi', 'dba@x')";
  ASSERT_TRUE(monitor_->AddRule(start).ok());
  RuleSpec pinned;
  pinned.name = "pinned";
  pinned.event = "Query.Commit";
  pinned.action = "SendMail('hi', 'dba@x')";
  pinned.eval_mode = "inline";
  ASSERT_TRUE(monitor_->AddRule(pinned).ok());

  auto rows = session_->Execute(
      "SELECT name, eval_mode, inline_reason FROM sqlcm_rule_stats "
      "ORDER BY name");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->rows.size(), 4u);  // alphabetical: cancel feed pinned start
  EXPECT_EQ(rows->rows[0][0].string_value(), "cancel");
  EXPECT_EQ(rows->rows[0][1].string_value(), "inline");
  EXPECT_EQ(rows->rows[0][2].string_value(), "cancel-action");
  EXPECT_EQ(rows->rows[1][0].string_value(), "feed");
  EXPECT_EQ(rows->rows[1][1].string_value(), "deferred");
  EXPECT_EQ(rows->rows[2][0].string_value(), "pinned");
  EXPECT_EQ(rows->rows[2][1].string_value(), "inline");
  EXPECT_EQ(rows->rows[2][2].string_value(), "override");
  EXPECT_EQ(rows->rows[3][0].string_value(), "start");
  EXPECT_EQ(rows->rows[3][1].string_value(), "inline");
  EXPECT_EQ(rows->rows[3][2].string_value(), "event-kind");

  // "deferred" on an ineligible rule fails loudly instead of silently
  // degrading to inline semantics.
  RuleSpec bad;
  bad.name = "bad";
  bad.event = "Query.Start";
  bad.action = "SendMail('hi', 'dba@x')";
  bad.eval_mode = "deferred";
  EXPECT_FALSE(monitor_->AddRule(bad).ok());
}

TEST_F(EventPipelineTest, MultiProducerDrainIsRaceFreeAndLossless) {
  MonitorEngine::Options options;
  options.async_rule_eval = true;
  options.monitor_threads = 2;
  options.event_queue_capacity = 64;  // force backpressure under load
  options.drain_batch_size = 16;
  StartEngine(options);
  DefineDurationLat();
  AddFeedRule();

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto session = db_->CreateSession();
      RunWorkload(session.get(), kQueriesPerThread);
    });
  }
  for (auto& t : threads) t.join();
  monitor_->DrainEventQueue();

  Lat* lat = monitor_->FindLat("Duration_LAT");
  ASSERT_NE(lat, nullptr);
  int64_t total = 0;
  for (const auto& row : lat->Snapshot(0)) total += row[2].int_value();
  // kBlock policy: every commit event was enqueued and drained.
  EXPECT_EQ(total, kThreads * kQueriesPerThread);
  EXPECT_EQ(monitor_->metrics().queue_dropped.value(), 0u);
  EXPECT_EQ(monitor_->metrics().queue_shed.value(), 0u);
  EXPECT_GT(monitor_->metrics().queue_batches.value(), 0u);
}

TEST_F(EventPipelineTest, DropPolicyCountsInsteadOfBlocking) {
  // Queue-level check of the kDrop arm: when the ring is full, TryPush
  // fails and the engine counts a drop instead of stalling the hook. The
  // engine path is exercised with a tiny queue + drop policy; losing
  // events is acceptable here, losing *the query* is not.
  MonitorEngine::Options options;
  options.async_rule_eval = true;
  options.monitor_threads = 1;
  options.event_queue_capacity = 2;
  options.queue_full_policy = QueueFullPolicy::kDrop;
  StartEngine(options);
  DefineDurationLat();
  AddFeedRule();
  RunWorkload(session_.get(), 100);
  monitor_->DrainEventQueue();
  Lat* lat = monitor_->FindLat("Duration_LAT");
  ASSERT_NE(lat, nullptr);
  int64_t total = 0;
  for (const auto& row : lat->Snapshot(0)) total += row[2].int_value();
  EXPECT_EQ(static_cast<uint64_t>(total) +
                monitor_->metrics().queue_dropped.value(),
            100u);
}

}  // namespace
}  // namespace sqlcm::cm
