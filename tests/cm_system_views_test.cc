// End-to-end tests of the monitor's SQL-queryable system views: live data
// through the normal SQL path, read-only enforcement, trace and error
// surfacing.
#include "sqlcm/system_views.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "engine/session.h"
#include "sqlcm/monitor_engine.h"

namespace sqlcm::cm {
namespace {

using common::Value;
using exec::ParamMap;
using exec::QueryResult;

class SystemViewsTest : public ::testing::Test {
 protected:
  SystemViewsTest() : monitor_(&db_), session_(db_.CreateSession()) {
    Exec("CREATE TABLE items (id INT, val FLOAT, PRIMARY KEY(id))");
    for (int i = 0; i < 20; ++i) {
      Exec("INSERT INTO items VALUES (" + std::to_string(i) + ", 1.0)");
    }
  }

  void Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  QueryResult Query(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *result : QueryResult{};
  }

  int ColumnIndex(const QueryResult& result, const std::string& name) {
    auto it = std::find(result.column_names.begin(),
                        result.column_names.end(), name);
    return it == result.column_names.end()
               ? -1
               : static_cast<int>(it - result.column_names.begin());
  }

  void AddFeedRule() {
    LatSpec spec;
    spec.name = "ViewLat";
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kCount, "", "N", false}};
    ASSERT_TRUE(monitor_.DefineLat(std::move(spec)).ok());
    RuleSpec feed;
    feed.name = "feed";
    feed.event = "Query.Commit";
    feed.action = "Query.Insert(ViewLat)";
    ASSERT_TRUE(monitor_.AddRule(feed).ok());
  }

  engine::Database db_;
  MonitorEngine monitor_;
  std::unique_ptr<engine::Session> session_;
};

TEST_F(SystemViewsTest, ViewsAreRegisteredAndVirtual) {
  for (const char* name : {kEngineStatsView, kRuleStatsView, kLatStatsView,
                           kEventTraceView}) {
    storage::Table* table = db_.catalog()->GetTable(name);
    ASSERT_NE(table, nullptr) << name;
    EXPECT_TRUE(table->is_virtual()) << name;
  }
}

TEST_F(SystemViewsTest, EngineStatsReturnsMetricInventory) {
  Exec("SELECT val FROM items WHERE id = 1");
  const QueryResult result = Query("SELECT * FROM sqlcm_engine_stats");
  ASSERT_EQ(result.column_names.size(), 4u);
  ASSERT_GT(result.rows.size(), 20u);

  // The fast-path counter must reflect the un-monitored query above.
  bool found_fast_path = false;
  for (const auto& row : result.rows) {
    if (row[0].ToDisplayString() == "engine.fast_path_calls") {
      found_fast_path = true;
      EXPECT_GT(row[2].double_value(), 0.0);
    }
  }
  EXPECT_TRUE(found_fast_path);
}

TEST_F(SystemViewsTest, EngineStatsFilteredByName) {
  const QueryResult result = Query(
      "SELECT value FROM sqlcm_engine_stats WHERE name = 'trace.capacity'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0][0].double_value(), 1024.0);
}

TEST_F(SystemViewsTest, RuleStatsShowsLiveCounts) {
  AddFeedRule();
  for (int i = 0; i < 7; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query("SELECT * FROM sqlcm_rule_stats");
  ASSERT_EQ(result.rows.size(), 1u);
  const int name_col = ColumnIndex(result, "name");
  const int eval_col = ColumnIndex(result, "evaluations");
  const int fires_col = ColumnIndex(result, "fires");
  const int event_col = ColumnIndex(result, "event");
  ASSERT_GE(name_col, 0);
  ASSERT_GE(eval_col, 0);
  EXPECT_EQ(result.rows[0][name_col].ToDisplayString(), "feed");
  EXPECT_EQ(result.rows[0][event_col].ToDisplayString(), "Query.Commit");
  // The SELECT over the view itself also commits and fires the rule, so
  // at least the 7 item queries must have been counted.
  EXPECT_GE(result.rows[0][eval_col].int_value(), 7);
  EXPECT_EQ(result.rows[0][eval_col].int_value(),
            result.rows[0][fires_col].int_value());
}

TEST_F(SystemViewsTest, RuleStatsAggregatesThroughSql) {
  AddFeedRule();
  RuleSpec never;
  never.name = "never";
  never.event = "Query.Commit";
  never.condition = "Query.Duration > 1000000";
  never.action = "Query.Insert(ViewLat)";
  ASSERT_TRUE(monitor_.AddRule(never).ok());
  for (int i = 0; i < 5; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult count =
      Query("SELECT COUNT(*) FROM sqlcm_rule_stats WHERE fires = 0");
  ASSERT_EQ(count.rows.size(), 1u);
  EXPECT_EQ(count.rows[0][0].int_value(), 1);
}

TEST_F(SystemViewsTest, LatStatsShowsRowsAndInserts) {
  AddFeedRule();
  for (int i = 0; i < 9; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query(
      "SELECT rows, inserts, latch_acquisitions FROM sqlcm_lat_stats "
      "WHERE name = 'ViewLat'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GE(result.rows[0][0].int_value(), 1);  // >= 1 group
  EXPECT_GE(result.rows[0][1].int_value(), 9);  // >= 9 upserts
  // Every insert takes at least the hash and row latches.
  EXPECT_GE(result.rows[0][2].int_value(),
            2 * result.rows[0][1].int_value());
}

TEST_F(SystemViewsTest, EventTraceRecordsWhenEnabled) {
  AddFeedRule();
  // Trace disabled: no rows even though events flow.
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_TRUE(Query("SELECT * FROM sqlcm_event_trace").rows.empty());

  monitor_.trace_ring()->set_enabled(true);
  for (int i = 0; i < 4; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query(
      "SELECT event, rules_fired FROM sqlcm_event_trace");
  ASSERT_GE(result.rows.size(), 4u);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row[0].ToDisplayString(), "Query.Commit");
    EXPECT_EQ(row[1].int_value(), 1);
  }

  monitor_.trace_ring()->set_enabled(false);
  const size_t total = monitor_.trace_ring()->total_recorded();
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_EQ(monitor_.trace_ring()->total_recorded(), total);
}

TEST_F(SystemViewsTest, ViewsAreReadOnly) {
  auto insert = session_->Execute(
      "INSERT INTO sqlcm_rule_stats VALUES (1, 'x', 'y', 1, 0, 0, 0, 0, 0, "
      "0.0, 0.0, 0.0, 0.0)");
  EXPECT_FALSE(insert.ok());
  auto update = session_->Execute(
      "UPDATE sqlcm_engine_stats SET value = 0 WHERE name = 'x'");
  EXPECT_FALSE(update.ok());
  auto del = session_->Execute("DELETE FROM sqlcm_event_trace WHERE seq = 0");
  EXPECT_FALSE(del.ok());
  auto drop = session_->Execute("DROP TABLE sqlcm_lat_stats");
  EXPECT_FALSE(drop.ok());
  EXPECT_NE(db_.catalog()->GetTable(kLatStatsView), nullptr);
}

TEST_F(SystemViewsTest, ErrorRingSurfacesThroughEngineStats) {
  // A rule whose action persists into a table with a conflicting schema
  // produces a monitor error without failing the query.
  Exec("CREATE TABLE Clash (only_col INT)");
  RuleSpec bad;
  bad.name = "bad";
  bad.event = "Query.Commit";
  bad.action = "Query.Persist(Clash, ID, Duration)";
  ASSERT_TRUE(monitor_.AddRule(bad).ok());
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_FALSE(monitor_.last_error().empty());
  EXPECT_GE(monitor_.total_errors(), 1u);

  const QueryResult errors = Query(
      "SELECT detail FROM sqlcm_engine_stats WHERE kind = 'error'");
  ASSERT_GE(errors.rows.size(), 1u);
  EXPECT_FALSE(errors.rows[0][0].ToDisplayString().empty());
}

TEST_F(SystemViewsTest, ErrorRingIsBoundedButCountsEverything) {
  Exec("CREATE TABLE Clash (only_col INT)");
  RuleSpec bad;
  bad.name = "bad";
  bad.event = "Query.Commit";
  bad.action = "Query.Persist(Clash, ID, Duration)";
  auto added = monitor_.AddRule(bad);
  ASSERT_TRUE(added.ok());
  // Exceed the ring capacity; the ring keeps only the newest entries but the
  // total keeps counting, and last_error() stays the most recent message.
  // Reinstating before each query keeps the circuit breaker from quarantining
  // the rule, so every execution records exactly one error.
  constexpr int kErrors = 40;
  for (int i = 0; i < kErrors; ++i) {
    ASSERT_TRUE(monitor_.ReinstateRule(*added).ok());
    Exec("SELECT val FROM items WHERE id = 1");
  }
  EXPECT_EQ(monitor_.total_errors(), static_cast<uint64_t>(kErrors));
  const auto recent = monitor_.recent_errors();
  EXPECT_LT(recent.size(), static_cast<size_t>(kErrors));
  ASSERT_FALSE(recent.empty());
  EXPECT_EQ(recent.back().seq, static_cast<uint64_t>(kErrors - 1));
  EXPECT_EQ(monitor_.last_error(), recent.back().message);
}

TEST_F(SystemViewsTest, SecondMonitorOnSameDatabaseSkipsViews) {
  // The first monitor owns the view names; a second engine must neither
  // crash nor steal them, and dropping it must leave the views intact.
  {
    MonitorEngine second(&db_);
    EXPECT_NE(db_.catalog()->GetTable(kRuleStatsView), nullptr);
  }
  EXPECT_NE(db_.catalog()->GetTable(kRuleStatsView), nullptr);
  EXPECT_FALSE(Query("SELECT * FROM sqlcm_engine_stats").rows.empty());
}

TEST_F(SystemViewsTest, RuleCanAlarmOnMonitorOverheadViaLatOverViews) {
  // Close the loop from the docs: monitor data is relational data, so a
  // LAT/rule pipeline can watch the monitor itself. Simplest version: a
  // plain SQL aggregation over rule stats drives an operator decision.
  AddFeedRule();
  for (int i = 0; i < 6; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query(
      "SELECT SUM(fires) FROM sqlcm_rule_stats");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GE(result.rows[0][0].double_value(), 6.0);
}

}  // namespace
}  // namespace sqlcm::cm
