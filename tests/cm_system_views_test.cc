// End-to-end tests of the monitor's SQL-queryable system views: live data
// through the normal SQL path, read-only enforcement, trace and error
// surfacing.
#include "sqlcm/system_views.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "common/string_util.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"

namespace sqlcm::cm {
namespace {

using common::Value;
using exec::ParamMap;
using exec::QueryResult;

class SystemViewsTest : public ::testing::Test {
 protected:
  SystemViewsTest() : monitor_(&db_), session_(db_.CreateSession()) {
    Exec("CREATE TABLE items (id INT, val FLOAT, PRIMARY KEY(id))");
    for (int i = 0; i < 20; ++i) {
      Exec("INSERT INTO items VALUES (" + std::to_string(i) + ", 1.0)");
    }
  }

  void Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  QueryResult Query(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *result : QueryResult{};
  }

  int ColumnIndex(const QueryResult& result, const std::string& name) {
    auto it = std::find(result.column_names.begin(),
                        result.column_names.end(), name);
    return it == result.column_names.end()
               ? -1
               : static_cast<int>(it - result.column_names.begin());
  }

  void AddFeedRule() {
    LatSpec spec;
    spec.name = "ViewLat";
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kCount, "", "N", false}};
    ASSERT_TRUE(monitor_.DefineLat(std::move(spec)).ok());
    RuleSpec feed;
    feed.name = "feed";
    feed.event = "Query.Commit";
    feed.action = "Query.Insert(ViewLat)";
    ASSERT_TRUE(monitor_.AddRule(feed).ok());
  }

  engine::Database db_;
  MonitorEngine monitor_;
  std::unique_ptr<engine::Session> session_;
};

TEST_F(SystemViewsTest, ViewsAreRegisteredAndVirtual) {
  for (const char* name : {kEngineStatsView, kRuleStatsView, kLatStatsView,
                           kEventTraceView, kTraceSpansView, kSlowEventsView,
                           kProfileView}) {
    storage::Table* table = db_.catalog()->GetTable(name);
    ASSERT_NE(table, nullptr) << name;
    EXPECT_TRUE(table->is_virtual()) << name;
  }
}

TEST_F(SystemViewsTest, EngineStatsReturnsMetricInventory) {
  Exec("SELECT val FROM items WHERE id = 1");
  const QueryResult result = Query("SELECT * FROM sqlcm_engine_stats");
  ASSERT_EQ(result.column_names.size(), 4u);
  ASSERT_GT(result.rows.size(), 20u);

  // The fast-path counter must reflect the un-monitored query above.
  bool found_fast_path = false;
  for (const auto& row : result.rows) {
    if (row[0].ToDisplayString() == "engine.fast_path_calls") {
      found_fast_path = true;
      EXPECT_GT(row[2].double_value(), 0.0);
    }
  }
  EXPECT_TRUE(found_fast_path);
}

TEST_F(SystemViewsTest, EngineStatsFilteredByName) {
  const QueryResult result = Query(
      "SELECT value FROM sqlcm_engine_stats WHERE name = 'trace.capacity'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0][0].double_value(), 1024.0);
}

TEST_F(SystemViewsTest, RuleStatsShowsLiveCounts) {
  AddFeedRule();
  for (int i = 0; i < 7; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query("SELECT * FROM sqlcm_rule_stats");
  ASSERT_EQ(result.rows.size(), 1u);
  const int name_col = ColumnIndex(result, "name");
  const int eval_col = ColumnIndex(result, "evaluations");
  const int fires_col = ColumnIndex(result, "fires");
  const int event_col = ColumnIndex(result, "event");
  ASSERT_GE(name_col, 0);
  ASSERT_GE(eval_col, 0);
  EXPECT_EQ(result.rows[0][name_col].ToDisplayString(), "feed");
  EXPECT_EQ(result.rows[0][event_col].ToDisplayString(), "Query.Commit");
  // The SELECT over the view itself also commits and fires the rule, so
  // at least the 7 item queries must have been counted.
  EXPECT_GE(result.rows[0][eval_col].int_value(), 7);
  EXPECT_EQ(result.rows[0][eval_col].int_value(),
            result.rows[0][fires_col].int_value());
}

TEST_F(SystemViewsTest, RuleStatsAggregatesThroughSql) {
  AddFeedRule();
  RuleSpec never;
  never.name = "never";
  never.event = "Query.Commit";
  never.condition = "Query.Duration > 1000000";
  never.action = "Query.Insert(ViewLat)";
  ASSERT_TRUE(monitor_.AddRule(never).ok());
  for (int i = 0; i < 5; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult count =
      Query("SELECT COUNT(*) FROM sqlcm_rule_stats WHERE fires = 0");
  ASSERT_EQ(count.rows.size(), 1u);
  EXPECT_EQ(count.rows[0][0].int_value(), 1);
}

TEST_F(SystemViewsTest, LatStatsShowsRowsAndInserts) {
  AddFeedRule();
  for (int i = 0; i < 9; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query(
      "SELECT rows, inserts, latch_acquisitions FROM sqlcm_lat_stats "
      "WHERE name = 'ViewLat'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GE(result.rows[0][0].int_value(), 1);  // >= 1 group
  EXPECT_GE(result.rows[0][1].int_value(), 9);  // >= 9 upserts
  // Every insert takes at least the hash and row latches.
  EXPECT_GE(result.rows[0][2].int_value(),
            2 * result.rows[0][1].int_value());
}

TEST_F(SystemViewsTest, LatStatsExposesSketchFootprint) {
  LatSpec spec;
  spec.name = "SketchLat";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kQuantile, "Duration", "P50", false, 0.5},
                     {LatAggFunc::kDistinct, "Query_Text", "DQ", false}};
  ASSERT_TRUE(monitor_.DefineLat(std::move(spec)).ok());
  RuleSpec feed;
  feed.name = "feed_sketch";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(SketchLat)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());
  for (int i = 0; i < 6; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query(
      "SELECT sketch_bytes, sketch_cells, sketch_collapses FROM "
      "sqlcm_lat_stats WHERE name = 'SketchLat'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GT(result.rows[0][0].int_value(), 0);  // live sketch footprint
  EXPECT_GT(result.rows[0][1].int_value(), 0);  // buckets + registers
  EXPECT_GE(result.rows[0][2].int_value(), 0);  // collapse pressure counter
}

TEST_F(SystemViewsTest, EventTraceRecordsWhenEnabled) {
  AddFeedRule();
  // Trace disabled: no rows even though events flow.
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_TRUE(Query("SELECT * FROM sqlcm_event_trace").rows.empty());

  monitor_.trace_ring()->set_enabled(true);
  for (int i = 0; i < 4; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query(
      "SELECT event, rules_fired FROM sqlcm_event_trace");
  ASSERT_GE(result.rows.size(), 4u);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row[0].ToDisplayString(), "Query.Commit");
    EXPECT_EQ(row[1].int_value(), 1);
  }

  monitor_.trace_ring()->set_enabled(false);
  const size_t total = monitor_.trace_ring()->total_recorded();
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_EQ(monitor_.trace_ring()->total_recorded(), total);
}

TEST_F(SystemViewsTest, ViewsAreReadOnly) {
  auto insert = session_->Execute(
      "INSERT INTO sqlcm_rule_stats VALUES (1, 'x', 'y', 1, 0, 0, 0, 0, 0, "
      "0.0, 0.0, 0.0, 0.0)");
  EXPECT_FALSE(insert.ok());
  auto update = session_->Execute(
      "UPDATE sqlcm_engine_stats SET value = 0 WHERE name = 'x'");
  EXPECT_FALSE(update.ok());
  auto del = session_->Execute("DELETE FROM sqlcm_event_trace WHERE seq = 0");
  EXPECT_FALSE(del.ok());
  auto drop = session_->Execute("DROP TABLE sqlcm_lat_stats");
  EXPECT_FALSE(drop.ok());
  EXPECT_NE(db_.catalog()->GetTable(kLatStatsView), nullptr);
}

TEST_F(SystemViewsTest, ErrorRingSurfacesThroughEngineStats) {
  // A rule whose action persists into a table with a conflicting schema
  // produces a monitor error without failing the query.
  Exec("CREATE TABLE Clash (only_col INT)");
  RuleSpec bad;
  bad.name = "bad";
  bad.event = "Query.Commit";
  bad.action = "Query.Persist(Clash, ID, Duration)";
  ASSERT_TRUE(monitor_.AddRule(bad).ok());
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_FALSE(monitor_.last_error().empty());
  EXPECT_GE(monitor_.total_errors(), 1u);

  const QueryResult errors = Query(
      "SELECT detail FROM sqlcm_engine_stats WHERE kind = 'error'");
  ASSERT_GE(errors.rows.size(), 1u);
  EXPECT_FALSE(errors.rows[0][0].ToDisplayString().empty());
}

TEST_F(SystemViewsTest, ErrorRingIsBoundedButCountsEverything) {
  Exec("CREATE TABLE Clash (only_col INT)");
  RuleSpec bad;
  bad.name = "bad";
  bad.event = "Query.Commit";
  bad.action = "Query.Persist(Clash, ID, Duration)";
  auto added = monitor_.AddRule(bad);
  ASSERT_TRUE(added.ok());
  // Exceed the ring capacity; the ring keeps only the newest entries but the
  // total keeps counting, and last_error() stays the most recent message.
  // Reinstating before each query keeps the circuit breaker from quarantining
  // the rule, so every execution records exactly one error.
  constexpr int kErrors = 40;
  for (int i = 0; i < kErrors; ++i) {
    ASSERT_TRUE(monitor_.ReinstateRule(*added).ok());
    Exec("SELECT val FROM items WHERE id = 1");
  }
  EXPECT_EQ(monitor_.total_errors(), static_cast<uint64_t>(kErrors));
  const auto recent = monitor_.recent_errors();
  EXPECT_LT(recent.size(), static_cast<size_t>(kErrors));
  ASSERT_FALSE(recent.empty());
  EXPECT_EQ(recent.back().seq, static_cast<uint64_t>(kErrors - 1));
  EXPECT_EQ(monitor_.last_error(), recent.back().message);
}

TEST_F(SystemViewsTest, SecondMonitorOnSameDatabaseSkipsViews) {
  // The first monitor owns the view names; a second engine must neither
  // crash nor steal them, and dropping it must leave the views intact.
  {
    MonitorEngine second(&db_);
    EXPECT_NE(db_.catalog()->GetTable(kRuleStatsView), nullptr);
  }
  EXPECT_NE(db_.catalog()->GetTable(kRuleStatsView), nullptr);
  EXPECT_FALSE(Query("SELECT * FROM sqlcm_engine_stats").rows.empty());
}

TEST_F(SystemViewsTest, TraceSpansEmptyWhileRingDisabled) {
  AddFeedRule();
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_TRUE(Query("SELECT * FROM sqlcm_trace_spans").rows.empty());
  EXPECT_TRUE(Query("SELECT * FROM sqlcm_slow_events").rows.empty());
}

TEST_F(SystemViewsTest, TraceSpansReconstructEvictionCascadeTree) {
  // A bounded LAT whose evictions fire a rule: each commit dispatch must
  // produce an event span, a condition + action span for the feed rule, a
  // LAT-upsert span under the action, and — once rows start evicting — a
  // deferred Lat.Evict event span parented under the *action* that caused
  // the eviction (depth 1).
  LatSpec top;
  top.name = "TopQ";
  top.group_by = {{"ID", ""}};
  top.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false}};
  top.ordering = {{"Dur", true}};
  top.max_rows = 1;
  ASSERT_TRUE(monitor_.DefineLat(std::move(top)).ok());
  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(TopQ)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());
  RuleSpec spill;
  spill.name = "spill";
  spill.event = "TopQ.Evict";
  spill.action = "Evicted.Persist(EvictedQ)";
  ASSERT_TRUE(monitor_.AddRule(spill).ok());

  monitor_.span_ring()->set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }

  const QueryResult result = Query("SELECT * FROM sqlcm_trace_spans");
  const int trace_col = ColumnIndex(result, "trace_id");
  const int span_col = ColumnIndex(result, "span_id");
  const int parent_col = ColumnIndex(result, "parent_id");
  const int depth_col = ColumnIndex(result, "depth");
  const int kind_col = ColumnIndex(result, "kind");
  const int name_col = ColumnIndex(result, "name");
  const int dur_col = ColumnIndex(result, "duration_us");
  ASSERT_GE(trace_col, 0);
  ASSERT_GE(span_col, 0);
  ASSERT_GE(parent_col, 0);
  ASSERT_GE(kind_col, 0);
  ASSERT_GE(name_col, 0);
  ASSERT_FALSE(result.rows.empty());

  std::map<int64_t, std::pair<std::string, int64_t>> by_id;  // kind, parent
  std::map<int64_t, int64_t> trace_of;
  for (const auto& row : result.rows) {
    EXPECT_GT(row[trace_col].int_value(), 0);
    EXPECT_GE(row[dur_col].double_value(), 0.0);
    by_id[row[span_col].int_value()] = {row[kind_col].ToDisplayString(),
                                        row[parent_col].int_value()};
    trace_of[row[span_col].int_value()] = row[trace_col].int_value();
  }

  bool saw_cascade = false, saw_upsert = false, saw_condition = false;
  for (const auto& row : result.rows) {
    const std::string kind = row[kind_col].ToDisplayString();
    const int64_t parent = row[parent_col].int_value();
    if (kind == "condition") {
      ASSERT_TRUE(by_id.count(parent));
      EXPECT_EQ(by_id[parent].first, "event");
      saw_condition = true;
    } else if (kind == "lat_upsert") {
      EXPECT_EQ(row[name_col].ToDisplayString(), "TopQ");
      ASSERT_TRUE(by_id.count(parent));
      EXPECT_EQ(by_id[parent].first, "action");
      saw_upsert = true;
    } else if (kind == "event" &&
               row[name_col].ToDisplayString() == "Lat.Evict") {
      // Deferred cascade event: parented under the causing action span, in
      // the same trace, one level deeper than the root.
      EXPECT_EQ(row[depth_col].int_value(), 1);
      if (by_id.count(parent)) {
        EXPECT_EQ(by_id[parent].first, "action");
        EXPECT_EQ(trace_of[parent], row[trace_col].int_value());
        saw_cascade = true;
      }
    }
  }
  EXPECT_TRUE(saw_condition);
  EXPECT_TRUE(saw_upsert);
  EXPECT_TRUE(saw_cascade);
}

TEST_F(SystemViewsTest, SlowEventsRetainWholeTracesRankedByCost) {
  AddFeedRule();
  monitor_.span_ring()->set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i % 10));
  }
  const QueryResult result = Query("SELECT * FROM sqlcm_slow_events");
  const int rank_col = ColumnIndex(result, "rank");
  const int trace_col = ColumnIndex(result, "trace_id");
  const int total_col = ColumnIndex(result, "total_us");
  const int kind_col = ColumnIndex(result, "kind");
  const int offset_col = ColumnIndex(result, "start_offset_us");
  ASSERT_GE(rank_col, 0);
  ASSERT_FALSE(result.rows.empty());

  // Ranks must be 1..K with non-increasing totals, each retained trace must
  // keep its root event span, and offsets are non-negative.
  std::map<int64_t, double> total_by_rank;
  std::map<int64_t, int64_t> trace_by_rank;
  std::map<int64_t, bool> has_event;
  for (const auto& row : result.rows) {
    const int64_t rank = row[rank_col].int_value();
    EXPECT_GE(rank, 1);
    total_by_rank[rank] = row[total_col].double_value();
    trace_by_rank[rank] = row[trace_col].int_value();
    if (row[kind_col].ToDisplayString() == "event") has_event[rank] = true;
    EXPECT_GE(row[offset_col].double_value(), 0.0);
  }
  EXPECT_LE(total_by_rank.size(), monitor_.slow_traces()->capacity());
  double prev = -1.0;
  int64_t expect_rank = 1;
  for (const auto& [rank, total] : total_by_rank) {
    EXPECT_EQ(rank, expect_rank++);
    if (prev >= 0) EXPECT_LE(total, prev);
    prev = total;
    EXPECT_TRUE(has_event[rank]) << "rank " << rank;
    EXPECT_GT(trace_by_rank[rank], 0);
  }
  EXPECT_GE(monitor_.slow_traces()->offers(), 20u);
}

TEST_F(SystemViewsTest, ProfilePerRuleSelfTimesReconcileWithDispatchTotal) {
  // Three always-firing rules doing real LAT work; with sampling at 1.0 the
  // per-rule condition+action windows chain directly inside each event
  // span, so their sum must land within 5% of total dispatch time
  // (acceptance criterion for the profiling plane).
  AddFeedRule();
  RuleSpec second;
  second.name = "second";
  second.event = "Query.Commit";
  second.condition = "ViewLat.N >= 0";
  second.action = "Query.Insert(ViewLat)";
  ASSERT_TRUE(monitor_.AddRule(second).ok());
  RuleSpec third;
  third.name = "third";
  third.event = "Query.Commit";
  third.condition = "Query.Duration >= 0 AND ViewLat.N >= 1";
  third.action = "Query.Insert(ViewLat)";
  ASSERT_TRUE(monitor_.AddRule(third).ok());

  monitor_.span_ring()->set_enabled(true);
  ASSERT_DOUBLE_EQ(monitor_.span_sample_rate(), 1.0);
  for (int i = 0; i < 80; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i % 20));
  }

  const QueryResult result =
      Query("SELECT component, name, spans, self_micros FROM sqlcm_profile");
  double dispatch_micros = 0.0;
  double rule_micros = 0.0;
  int64_t rule_rows = 0;
  for (const auto& row : result.rows) {
    const std::string component = row[0].ToDisplayString();
    if (component == "dispatch") {
      dispatch_micros = row[3].double_value();
      EXPECT_GE(row[2].int_value(), 80);
    } else if (component == "rule") {
      rule_micros += row[3].double_value();
      ++rule_rows;
      EXPECT_GE(row[2].int_value(), 80);
    }
  }
  EXPECT_EQ(rule_rows, 3);
  ASSERT_GT(dispatch_micros, 0.0);
  EXPECT_GE(rule_micros, 0.95 * dispatch_micros)
      << "rule self-time " << rule_micros << "us vs dispatch "
      << dispatch_micros << "us";
  EXPECT_LE(rule_micros, 1.05 * dispatch_micros);
}

TEST_F(SystemViewsTest, ProfileAttributesActionKindsAndLatUpserts) {
  AddFeedRule();
  monitor_.span_ring()->set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query(
      "SELECT component, name, spans, self_micros, share_pct "
      "FROM sqlcm_profile");
  bool saw_insert_kind = false, saw_lat = false;
  for (const auto& row : result.rows) {
    const std::string component = row[0].ToDisplayString();
    EXPECT_GE(row[4].double_value(), 0.0);
    if (component == "action" && row[1].ToDisplayString() == "Insert") {
      EXPECT_GE(row[2].int_value(), 10);
      saw_insert_kind = true;
    }
    if (component == "lat" && row[1].ToDisplayString() == "ViewLat") {
      EXPECT_GE(row[2].int_value(), 10);
      EXPECT_GT(row[3].double_value(), 0.0);
      saw_lat = true;
    }
  }
  EXPECT_TRUE(saw_insert_kind);
  EXPECT_TRUE(saw_lat);
}

TEST_F(SystemViewsTest, EventTraceExposesQualifierHash) {
  LatSpec top;
  top.name = "HashLat";
  top.group_by = {{"ID", ""}};
  top.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false}};
  top.ordering = {{"Dur", true}};
  top.max_rows = 1;
  ASSERT_TRUE(monitor_.DefineLat(std::move(top)).ok());
  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(HashLat)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());
  RuleSpec spill;
  spill.name = "spill";
  spill.event = "HashLat.Evict";
  spill.action = "Evicted.Persist(EvictedH)";
  ASSERT_TRUE(monitor_.AddRule(spill).ok());

  monitor_.trace_ring()->set_enabled(true);
  for (int i = 0; i < 4; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result =
      Query("SELECT qualifier, qualifier_hash FROM sqlcm_event_trace");
  ASSERT_FALSE(result.rows.empty());
  bool saw_nonempty_qualifier = false;
  for (const auto& row : result.rows) {
    const std::string qualifier = row[0].ToDisplayString();
    char expected[17];
    std::snprintf(expected, sizeof(expected), "%016llx",
                  static_cast<unsigned long long>(common::Fnv1a64(qualifier)));
    EXPECT_EQ(row[1].ToDisplayString(), expected) << "qualifier '" << qualifier
                                                  << "'";
    if (!qualifier.empty()) saw_nonempty_qualifier = true;
  }
  // The eviction events carry the LAT name as qualifier, so at least one
  // row exercises a non-trivial hash.
  EXPECT_TRUE(saw_nonempty_qualifier);
}

TEST_F(SystemViewsTest, EngineStatsExposeSpanPlaneAndRingDrops) {
  monitor_.span_ring()->set_enabled(true);
  AddFeedRule();
  Exec("SELECT val FROM items WHERE id = 1");
  auto value_of = [this](const std::string& name) {
    const QueryResult result = Query(
        "SELECT value FROM sqlcm_engine_stats WHERE name = '" + name + "'");
    EXPECT_EQ(result.rows.size(), 1u) << name;
    return result.rows.empty() ? -1.0 : result.rows[0][0].double_value();
  };
  EXPECT_DOUBLE_EQ(value_of("spans.enabled"), 1.0);
  EXPECT_DOUBLE_EQ(value_of("spans.capacity"), 4096.0);
  EXPECT_GT(value_of("spans.total_recorded"), 0.0);
  EXPECT_DOUBLE_EQ(value_of("spans.snapshot_drops"), 0.0);
  EXPECT_DOUBLE_EQ(value_of("spans.sample_rate"), 1.0);
  EXPECT_DOUBLE_EQ(value_of("slow_traces.capacity"), 8.0);
  EXPECT_GT(value_of("slow_traces.offers"), 0.0);
  EXPECT_GT(value_of("slow_traces.admits"), 0.0);
  EXPECT_GE(value_of("slow_traces.retained"), 1.0);
  EXPECT_DOUBLE_EQ(value_of("trace.snapshot_drops"), 0.0);
  EXPECT_DOUBLE_EQ(value_of("errors.dropped"), 0.0);
}

TEST_F(SystemViewsTest, ExportMetricsNowWritesPrometheusFile) {
  AddFeedRule();
  Exec("SELECT val FROM items WHERE id = 1");
  const std::string path = ::testing::TempDir() + "sqlcm_export_test.prom";
  std::remove(path.c_str());
  ASSERT_TRUE(monitor_.ExportMetricsNow(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("# TYPE sqlcm_engine_events_processed_total counter"),
            std::string::npos);
  EXPECT_NE(content.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(content.find("sqlcm_profile_metrics_exports_total"),
            std::string::npos);

  // The export itself is counted, and no tempfile is left behind.
  const QueryResult exports = Query(
      "SELECT value FROM sqlcm_engine_stats "
      "WHERE name = 'profile.metrics_exports'");
  ASSERT_EQ(exports.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(exports.rows[0][0].double_value(), 1.0);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(MetricsExporterTest, PeriodicExporterWritesAndStopsCleanly) {
  engine::Database db;
  const std::string path =
      ::testing::TempDir() + "sqlcm_periodic_export.prom";
  std::remove(path.c_str());
  MonitorEngine::Options options;
  options.metrics_export_path = path;
  options.metrics_export_interval_secs = 0.02;
  {
    MonitorEngine monitor(&db, options);
    bool appeared = false;
    for (int i = 0; i < 200 && !appeared; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      appeared = std::ifstream(path).good();
    }
    EXPECT_TRUE(appeared);
    // Destructor must join the exporter thread without hanging.
  }
  EXPECT_TRUE(std::ifstream(path).good());
  std::remove(path.c_str());
}

TEST_F(SystemViewsTest, RuleCanAlarmOnMonitorOverheadViaLatOverViews) {
  // Close the loop from the docs: monitor data is relational data, so a
  // LAT/rule pipeline can watch the monitor itself. Simplest version: a
  // plain SQL aggregation over rule stats drives an operator decision.
  AddFeedRule();
  for (int i = 0; i < 6; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  const QueryResult result = Query(
      "SELECT SUM(fires) FROM sqlcm_rule_stats");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GE(result.rows[0][0].double_value(), 6.0);
}

}  // namespace
}  // namespace sqlcm::cm
