// Unit tests for the federated monitoring plane (src/fed): delta codec,
// crash-safe spool, node export protocol (baseline / durable-epoch
// eligibility gate / Open repair), sender retry + poison quarantine, and
// the aggregator's exactly-once-effect dedup, journal and checkpoint.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "engine/session.h"
#include "fed/aggregator.h"
#include "fed/delta.h"
#include "fed/fleet_views.h"
#include "fed/node.h"
#include "fed/sender.h"
#include "fed/spool.h"
#include "sqlcm/lat.h"

namespace sqlcm::fed {
namespace {

using common::FaultKind;
using common::FaultRegistry;
using common::Row;
using common::Status;
using common::Value;
using cm::Lat;
using cm::LatAggFunc;
using cm::LatSpec;
using cm::QueryRecord;
using StateDeltaMode = cm::Lat::StateDeltaMode;

LatSpec FedSpec(const std::string& name = "FleetQ") {
  LatSpec spec;
  spec.name = name;
  spec.object_class = cm::MonitoredClass::kQuery;
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                     {LatAggFunc::kSum, "Duration", "SumDur", false},
                     {LatAggFunc::kAvg, "Duration", "AvgDur", false},
                     {LatAggFunc::kStdev, "Duration", "SdDur", false},
                     {LatAggFunc::kMin, "Duration", "MinDur", false},
                     {LatAggFunc::kMax, "Duration", "MaxDur", false},
                     {LatAggFunc::kCount, "", "AgN", true},
                     {LatAggFunc::kSum, "Duration", "AgSum", true}};
  spec.aging_window_micros = 10'000;
  spec.aging_block_micros = 1'000;
  return spec;
}

std::unique_ptr<Lat> MakeLat(const std::string& name = "FleetQ") {
  auto lat = Lat::Create(FedSpec(name));
  EXPECT_TRUE(lat.ok()) << lat.status().ToString();
  return std::move(*lat);
}

void InsertQuery(Lat* lat, const std::string& sig, double duration,
                 int64_t now_micros) {
  QueryRecord rec;
  rec.logical_signature = sig;
  rec.text = "q:" + sig;
  rec.duration_secs = duration;
  lat->Insert(&rec, now_micros);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/fed_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

class FedTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Get()->Reset(); }
  void TearDown() override { FaultRegistry::Get()->Reset(); }
};

TEST_F(FedTest, DeltaCodecRoundTripsTrickyCells) {
  Delta delta;
  delta.node_id = "node a,with%delims\n";
  delta.epoch = 42;
  delta.created_micros = 1234567;
  LatSection section;
  section.lat_name = "My Lat, eh?";
  section.records.push_back(
      {StateDeltaMode::kIncremental,
       {Value::String("sig,1 %"), Value::Int(7), Value::Double(0.1),
        Value::Double(-1e300), Value::Bool(true), Value::Null(),
        Value::String(""), Value::String("0:3:1.5:2.25:1:S1:S2;"),
        Value::Int(-9)}});
  section.records.push_back(
      {StateDeltaMode::kFresh,
       {Value::String("sig2"), Value::Int(0), Value::Double(5e-324),
        Value::Double(0.0), Value::Bool(false), Value::Null(),
        Value::String("x\ny"), Value::String(""), Value::Int(1)}});
  delta.lats.push_back(section);

  const std::string encoded = EncodeDelta(delta);
  auto decoded = DecodeDelta(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->node_id, delta.node_id);
  EXPECT_EQ(decoded->epoch, delta.epoch);
  EXPECT_EQ(decoded->created_micros, delta.created_micros);
  ASSERT_EQ(decoded->lats.size(), 1u);
  EXPECT_EQ(decoded->lats[0].lat_name, section.lat_name);
  ASSERT_EQ(decoded->lats[0].records.size(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    const DeltaRecord& want = section.records[r];
    const DeltaRecord& got = decoded->lats[0].records[r];
    EXPECT_EQ(got.mode, want.mode);
    ASSERT_EQ(got.cells.size(), want.cells.size());
    for (size_t c = 0; c < want.cells.size(); ++c) {
      EXPECT_EQ(got.cells[c].kind(), want.cells[c].kind()) << r << "/" << c;
      if (!want.cells[c].is_null()) {
        EXPECT_EQ(got.cells[c].Compare(want.cells[c]), 0) << r << "/" << c;
      }
    }
  }

  // Any body corruption flips the CRC and is rejected before decoding.
  std::string corrupt = encoded;
  corrupt[corrupt.size() / 2] ^= 1;
  EXPECT_TRUE(DecodeDelta(corrupt).status().IsParseError());
  // Truncation is caught by the length check.
  EXPECT_TRUE(
      DecodeDelta(encoded.substr(0, encoded.size() - 3)).status()
          .IsParseError());
}

TEST_F(FedTest, SpoolDiscardsTempfilesAndQuarantines) {
  const std::string dir = FreshDir("spool");
  {
    auto spool = DeltaSpool::Open(dir);
    ASSERT_TRUE(spool.ok()) << spool.status().ToString();
    ASSERT_TRUE((*spool)->Put(2, "epoch two").ok());
    ASSERT_TRUE((*spool)->Put(1, "epoch one").ok());
    // A crashed writer mid-publish: torn tempfile, epoch never durable.
    FaultRegistry::Get()->Arm(kFaultFedSpoolWrite,
                              {FaultKind::kCrashRename, 1.0, 1});
    EXPECT_TRUE((*spool)->Put(3, "epoch three").IsIOError());
  }
  auto spool = DeltaSpool::Open(dir);
  ASSERT_TRUE(spool.ok()) << spool.status().ToString();
  EXPECT_EQ((*spool)->List(), (std::vector<int64_t>{1, 2}));
  auto payload = (*spool)->ReadEpoch(1);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "epoch one");
  ASSERT_TRUE((*spool)->Quarantine(2).ok());
  EXPECT_EQ((*spool)->List(), (std::vector<int64_t>{1}));
  EXPECT_EQ((*spool)->quarantined(), 1u);
  ASSERT_TRUE((*spool)->Remove(1).ok());
  ASSERT_TRUE((*spool)->Remove(1).ok());  // idempotent
  EXPECT_TRUE((*spool)->List().empty());
}

TEST_F(FedTest, NodeExportsIncrementsAndHeartbeats) {
  const std::string dir = FreshDir("node_export");
  common::MockClock clock(1000);
  auto lat = MakeLat();
  InsertQuery(lat.get(), "a", 2.0, clock.NowMicros());
  InsertQuery(lat.get(), "a", 3.0, clock.NowMicros());

  auto node = FedNode::Open({"n1", dir, &clock, nullptr}, {lat.get()});
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  auto epoch = (*node)->ExportEpoch();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 1);
  EXPECT_EQ((*node)->durable_epoch(), 1);

  auto payload = (*node)->spool()->ReadEpoch(1);
  ASSERT_TRUE(payload.ok());
  auto delta = DecodeDelta(*payload);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->node_id, "n1");
  ASSERT_EQ(delta->lats.size(), 1u);
  ASSERT_EQ(delta->lats[0].records.size(), 1u);

  // Nothing changed: the next epoch is a pure heartbeat.
  epoch = (*node)->ExportEpoch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 2);
  payload = (*node)->spool()->ReadEpoch(2);
  ASSERT_TRUE(payload.ok());
  delta = DecodeDelta(*payload);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->lats.empty());

  // New activity ships as an incremental record whose count is the
  // increment (1 insert), not the cumulative 3.
  InsertQuery(lat.get(), "a", 5.0, clock.NowMicros());
  epoch = (*node)->ExportEpoch();
  ASSERT_TRUE(epoch.ok());
  payload = (*node)->spool()->ReadEpoch(3);
  ASSERT_TRUE(payload.ok());
  delta = DecodeDelta(*payload);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->lats.size(), 1u);
  ASSERT_EQ(delta->lats[0].records.size(), 1u);
  EXPECT_EQ(delta->lats[0].records[0].mode, StateDeltaMode::kIncremental);
  // Record layout: group cells, then the COUNT aggregate's #count cell.
  EXPECT_EQ(delta->lats[0].records[0].cells[1].int_value(), 1);
}

TEST_F(FedTest, ResetShipsFreshIncarnation) {
  const std::string dir = FreshDir("node_fresh");
  common::MockClock clock(1000);
  auto lat = MakeLat();
  InsertQuery(lat.get(), "a", 2.0, clock.NowMicros());
  auto node = FedNode::Open({"n1", dir, &clock, nullptr}, {lat.get()});
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE((*node)->ExportEpoch().ok());

  // An unambiguous incarnation flip: baseline count 2, reset, 1 insert —
  // the additive count regressed, so the whole cumulative record ships.
  InsertQuery(lat.get(), "a", 1.0, clock.NowMicros());
  ASSERT_TRUE((*node)->ExportEpoch().ok());  // baseline count now 2
  lat->Reset();
  InsertQuery(lat.get(), "a", 4.0, clock.NowMicros());
  ASSERT_TRUE((*node)->ExportEpoch().ok());
  auto payload = (*node)->spool()->ReadEpoch(3);
  ASSERT_TRUE(payload.ok());
  auto delta = DecodeDelta(*payload);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->lats.size(), 1u);
  ASSERT_EQ(delta->lats[0].records.size(), 1u);
  EXPECT_EQ(delta->lats[0].records[0].mode, StateDeltaMode::kFresh);
  EXPECT_EQ(delta->lats[0].records[0].cells[1].int_value(), 1);
}

TEST_F(FedTest, BaselineFaultGatesEligibilityAndOpenRepairs) {
  const std::string dir = FreshDir("node_gate");
  common::MockClock clock(1000);
  auto lat = MakeLat();
  InsertQuery(lat.get(), "a", 2.0, clock.NowMicros());
  {
    auto node = FedNode::Open({"n1", dir, &clock, nullptr}, {lat.get()});
    ASSERT_TRUE(node.ok());
    ASSERT_TRUE((*node)->ExportEpoch().ok());
    EXPECT_EQ((*node)->durable_epoch(), 1);

    FaultRegistry::Get()->Arm(kFaultFedBaselineWrite,
                              {FaultKind::kIOError, 1.0, -1});
    InsertQuery(lat.get(), "b", 3.0, clock.NowMicros());
    auto epoch = (*node)->ExportEpoch();
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    EXPECT_EQ(*epoch, 2);
    // Published but not eligible: durable stayed behind.
    EXPECT_EQ((*node)->durable_epoch(), 1);
    EXPECT_EQ((*node)->stats().baseline_write_failures.value(), 1u);
    // "Crash" here: node destroyed with epoch 2 spooled, baseline at 1.
  }
  FaultRegistry::Get()->Reset();
  auto node = FedNode::Open({"n1", dir, &clock, nullptr}, {lat.get()});
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  // Open() folded spooled epoch 2 back into the baseline and rewrote it.
  EXPECT_EQ((*node)->durable_epoch(), 2);
  EXPECT_EQ((*node)->last_exported_epoch(), 2);
  EXPECT_EQ((*node)->stats().repaired_epochs.value(), 1u);
  // The repaired baseline reflects epoch 2, so the next export ships only
  // genuinely new activity (a heartbeat here).
  auto epoch = (*node)->ExportEpoch();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 3);
  auto payload = (*node)->spool()->ReadEpoch(3);
  ASSERT_TRUE(payload.ok());
  auto delta = DecodeDelta(*payload);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->lats.empty());
}

/// Transport that fails the first `failures` deliveries with IOError, then
/// records every payload it accepts.
struct FlakyTransport : DeltaTransport {
  int failures = 0;
  std::vector<std::string> delivered;
  Status Deliver(std::string_view payload) override {
    if (failures > 0) {
      --failures;
      return Status::IOError("flaky");
    }
    delivered.emplace_back(payload);
    return Status::OK();
  }
};

TEST_F(FedTest, SenderRetriesWithBackoffAndDrains) {
  const std::string dir = FreshDir("sender_retry");
  common::MockClock clock(1000);
  auto lat = MakeLat();
  InsertQuery(lat.get(), "a", 2.0, clock.NowMicros());
  auto node = FedNode::Open({"n1", dir, &clock, nullptr}, {lat.get()});
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE((*node)->ExportEpoch().ok());
  ASSERT_TRUE((*node)->ExportEpoch().ok());

  FlakyTransport transport;
  transport.failures = 2;
  DeltaSender::Options options;
  options.clock = &clock;
  DeltaSender sender(node->get(), &transport, options);
  const int64_t before = clock.NowMicros();
  auto acked = sender.Pump();
  ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  EXPECT_EQ(*acked, 2);
  EXPECT_EQ(transport.delivered.size(), 2u);
  EXPECT_EQ(sender.stats().send_retries.value(), 2u);
  EXPECT_GT(clock.NowMicros(), before);  // backoff consumed (virtual) time
  EXPECT_TRUE((*node)->spool()->List().empty());
}

TEST_F(FedTest, SenderHonoursEligibilityGate) {
  const std::string dir = FreshDir("sender_gate");
  common::MockClock clock(1000);
  auto lat = MakeLat();
  InsertQuery(lat.get(), "a", 2.0, clock.NowMicros());
  auto node = FedNode::Open({"n1", dir, &clock, nullptr}, {lat.get()});
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE((*node)->ExportEpoch().ok());
  FaultRegistry::Get()->Arm(kFaultFedBaselineWrite,
                            {FaultKind::kIOError, 1.0, -1});
  InsertQuery(lat.get(), "b", 3.0, clock.NowMicros());
  ASSERT_TRUE((*node)->ExportEpoch().ok());
  ASSERT_EQ((*node)->durable_epoch(), 1);

  FlakyTransport transport;
  DeltaSender sender(node->get(), &transport, {.clock = &clock});
  auto acked = sender.Pump();
  ASSERT_TRUE(acked.ok());
  EXPECT_EQ(*acked, 1);  // only the durable epoch shipped
  EXPECT_EQ((*node)->spool()->List(), (std::vector<int64_t>{2}));
}

TEST_F(FedTest, SenderQuarantinesPoisonAndLosesAcks) {
  const std::string dir = FreshDir("sender_poison");
  common::MockClock clock(1000);
  auto lat = MakeLat();
  InsertQuery(lat.get(), "a", 2.0, clock.NowMicros());
  auto node = FedNode::Open({"n1", dir, &clock, nullptr}, {lat.get()});
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE((*node)->ExportEpoch().ok());

  struct PoisonTransport : DeltaTransport {
    Status Deliver(std::string_view) override {
      return Status::ParseError("bad payload");
    }
  } poison;
  DeltaSender sender(node->get(), &poison, {.clock = &clock});
  auto acked = sender.Pump();
  ASSERT_TRUE(acked.ok());
  EXPECT_EQ(*acked, 0);
  EXPECT_EQ(sender.stats().poison_quarantined.value(), 1u);
  EXPECT_TRUE((*node)->spool()->List().empty());
  EXPECT_EQ((*node)->spool()->quarantined(), 1u);

  // Lost ack: delivery succeeds, removal is skipped, epoch re-sends.
  InsertQuery(lat.get(), "b", 3.0, clock.NowMicros());
  ASSERT_TRUE((*node)->ExportEpoch().ok());
  FlakyTransport ok_transport;
  DeltaSender sender2(node->get(), &ok_transport, {.clock = &clock});
  FaultRegistry::Get()->Arm(kFaultFedAck, {FaultKind::kIOError, 1.0, 1});
  acked = sender2.Pump();
  ASSERT_TRUE(acked.ok());
  EXPECT_EQ(*acked, 0);
  EXPECT_EQ(sender2.stats().acks_lost.value(), 1u);
  EXPECT_EQ(ok_transport.delivered.size(), 1u);
  acked = sender2.Pump();  // re-send, this time the ack lands
  ASSERT_TRUE(acked.ok());
  EXPECT_EQ(*acked, 1);
  EXPECT_EQ(ok_transport.delivered.size(), 2u);
}

std::string Heartbeat(const std::string& node_id, int64_t epoch,
                      int64_t created_micros, int64_t incarnation = 0) {
  Delta delta;
  delta.node_id = node_id;
  delta.epoch = epoch;
  delta.created_micros = created_micros;
  delta.incarnation = incarnation;
  return EncodeDelta(delta);
}

TEST_F(FedTest, DeltaCodecRoundTripsIncarnation) {
  Delta delta;
  delta.node_id = "n1";
  delta.epoch = 4;
  delta.created_micros = 99;
  delta.incarnation = 0x1234;
  auto decoded = DecodeDelta(EncodeDelta(delta));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->incarnation, 0x1234);

  // Pre-nonce payloads have no incarnation line; they decode to 0.
  std::string body = "node=n1\nepoch=4\nts=99\n";
  auto legacy = DecodeDelta(WrapChecksummed(kFedMagic, body));
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->incarnation, 0);
  EXPECT_EQ(legacy->epoch, 4);
}

TEST_F(FedTest, SameCountResetShipsFreshViaGeneration) {
  // The blind spot: Reset, then re-accumulate to a state byte-identical to
  // the shipped baseline. Count arithmetic sees "no change"; the reset
  // generation snapshot forces a full mode-F ship so the new incarnation's
  // observations still count fleet-wide.
  const std::string node_dir = FreshDir("same_count_node");
  const std::string agg_dir = FreshDir("same_count_agg");
  common::MockClock clock(1000);
  auto lat = MakeLat();
  auto fleet = MakeLat();
  auto node = FedNode::Open({"n1", node_dir, &clock, nullptr}, {lat.get()});
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_NE((*node)->incarnation(), 0);
  auto agg = FleetAggregator::Open({.dir = agg_dir, .clock = &clock},
                                   {fleet.get()});
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();

  InsertQuery(lat.get(), "a", 2.0, clock.NowMicros());
  InsertQuery(lat.get(), "a", 3.0, clock.NowMicros());
  ASSERT_TRUE((*node)->ExportEpoch().ok());
  auto payload = (*node)->spool()->ReadEpoch(1);
  ASSERT_TRUE(payload.ok());
  ASSERT_TRUE((*agg)->Ingest(*payload).ok());

  // Reset and replay the identical inserts at the identical clock.
  lat->Reset();
  InsertQuery(lat.get(), "a", 2.0, clock.NowMicros());
  InsertQuery(lat.get(), "a", 3.0, clock.NowMicros());
  ASSERT_TRUE((*node)->ExportEpoch().ok());
  payload = (*node)->spool()->ReadEpoch(2);
  ASSERT_TRUE(payload.ok());
  auto delta = DecodeDelta(*payload);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->incarnation, (*node)->incarnation());
  ASSERT_EQ(delta->lats.size(), 1u);
  ASSERT_EQ(delta->lats[0].records.size(), 1u);
  EXPECT_EQ(delta->lats[0].records[0].mode, StateDeltaMode::kFresh);
  EXPECT_EQ(delta->lats[0].records[0].cells[1].int_value(), 2);
  ASSERT_TRUE((*agg)->Ingest(*payload).ok());

  // Both incarnations' observations are in the fleet rollup: N = 4.
  Row fleet_row;
  ASSERT_TRUE(fleet->LookupByKey({Value::String("a")}, clock.NowMicros(),
                                 &fleet_row));
  EXPECT_EQ(fleet_row[1].int_value(), 4);

  // Identical state, no reset: the next epoch is a pure heartbeat again
  // (the generation snapshot advanced with the export, so mode-F forcing
  // does not stick).
  ASSERT_TRUE((*node)->ExportEpoch().ok());
  payload = (*node)->spool()->ReadEpoch(3);
  ASSERT_TRUE(payload.ok());
  delta = DecodeDelta(*payload);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->lats.empty());
}

TEST_F(FedTest, AggregatorCountsIncarnationRestarts) {
  const std::string dir = FreshDir("agg_restarts");
  common::MockClock clock(1000);
  auto agg = FleetAggregator::Open({.dir = dir, .clock = &clock}, {});
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  const int64_t now = clock.NowMicros();
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 1, now, 5)).ok());
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 2, now, 5)).ok());
  EXPECT_EQ((*agg)->SnapshotNodes()[0].restarts, 0u);
  // New nonce = the node restarted, even though epochs keep climbing.
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 3, now, 9)).ok());
  EXPECT_EQ((*agg)->SnapshotNodes()[0].restarts, 1u);
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 4, now, 9)).ok());
  // Legacy senders (nonce 0) never trip the detector.
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 5, now)).ok());
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 6, now, 9)).ok());
  EXPECT_EQ((*agg)->SnapshotNodes()[0].restarts, 1u);
  EXPECT_EQ((*agg)->stats().node_restarts.value(), 1u);

  // The detector state survives checkpoint + restart: nonce 9 is
  // remembered, so re-seeing it counts nothing and a new nonce counts one.
  ASSERT_TRUE((*agg)->Checkpoint().ok());
  auto agg2 = FleetAggregator::Open({.dir = dir, .clock = &clock}, {});
  ASSERT_TRUE(agg2.ok()) << agg2.status().ToString();
  EXPECT_EQ((*agg2)->SnapshotNodes()[0].restarts, 1u);
  ASSERT_TRUE((*agg2)->Ingest(Heartbeat("n1", 7, now, 9)).ok());
  EXPECT_EQ((*agg2)->SnapshotNodes()[0].restarts, 1u);
  ASSERT_TRUE((*agg2)->Ingest(Heartbeat("n1", 8, now, 11)).ok());
  EXPECT_EQ((*agg2)->SnapshotNodes()[0].restarts, 2u);
}

TEST_F(FedTest, AggregatorDedupsReordersAndDropsLate) {
  const std::string dir = FreshDir("agg_dedup");
  common::MockClock clock(1'000'000);
  FleetAggregator::Options options;
  options.dir = dir;
  options.clock = &clock;
  options.late_window_micros = 500'000;
  auto agg = FleetAggregator::Open(options, {});
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();

  const int64_t now = clock.NowMicros();
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 1, now)).ok());
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 3, now)).ok());  // reorder gap
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 1, now)).ok());  // duplicate
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 2, now)).ok());  // fills gap
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 3, now)).ok());  // duplicate
  // Late: created long before the window.
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 5, now - 600'000)).ok());
  // Re-sending the late epoch is a duplicate, not a second drop.
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 5, now - 600'000)).ok());

  auto nodes = (*agg)->SnapshotNodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].node_id, "n1");
  EXPECT_EQ(nodes[0].hwm, 3);  // 1,2,3 contiguous; 5 applied above
  EXPECT_EQ(nodes[0].last_epoch, 5);
  EXPECT_EQ(nodes[0].applied, 3u);
  EXPECT_EQ(nodes[0].duplicates, 3u);
  EXPECT_EQ(nodes[0].reorders, 1u);  // epoch 2 arrived after 3
  EXPECT_EQ(nodes[0].late_dropped, 1u);
  EXPECT_EQ(nodes[0].state, std::string("up"));

  // Decode failures are counted and surfaced as permanent errors.
  EXPECT_TRUE((*agg)->Ingest("not a delta").IsParseError());
  EXPECT_EQ((*agg)->stats().decode_failures.value(), 1u);

  // Health decays with heartbeat age.
  clock.Advance(options.stale_after_micros + 1);
  EXPECT_EQ((*agg)->SnapshotNodes()[0].state, std::string("stale"));
  clock.Advance(options.dead_after_micros);
  EXPECT_EQ((*agg)->SnapshotNodes()[0].state, std::string("dead"));
}

TEST_F(FedTest, AggregatorJournalAndCheckpointSurviveRestart) {
  const std::string node_dir = FreshDir("agg_restart_node");
  const std::string agg_dir = FreshDir("agg_restart_agg");
  common::MockClock clock(1000);
  auto lat = MakeLat();
  auto node = FedNode::Open({"n1", node_dir, &clock, nullptr}, {lat.get()});
  ASSERT_TRUE(node.ok());

  auto expect_fleet_matches = [&](FleetAggregator* agg, Lat* fleet) {
    auto stats = agg->SnapshotLats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].lat, "FleetQ");
    const int64_t now = clock.NowMicros();
    for (const std::string& sig : {"a", "b"}) {
      Row want, got;
      const bool in_src = lat->LookupByKey({Value::String(sig)}, now, &want);
      const bool in_fleet =
          fleet->LookupByKey({Value::String(sig)}, now, &got);
      ASSERT_EQ(in_src, in_fleet) << sig;
      if (!in_src) continue;
      ASSERT_EQ(got.size(), want.size());
      for (size_t c = 0; c < want.size(); ++c) {
        EXPECT_EQ(got[c].ToString(), want[c].ToString())
            << sig << " column " << fleet->column_names()[c];
      }
    }
  };

  auto fleet1 = MakeLat();
  {
    auto agg = FleetAggregator::Open({.dir = agg_dir, .clock = &clock},
                                     {fleet1.get()});
    ASSERT_TRUE(agg.ok()) << agg.status().ToString();
    DeltaSender sender(node->get(), agg->get(), {.clock = &clock});
    InsertQuery(lat.get(), "a", 2.0, clock.NowMicros());
    InsertQuery(lat.get(), "b", 8.0, clock.NowMicros());
    ASSERT_TRUE((*node)->ExportEpoch().ok());
    ASSERT_TRUE(sender.Pump().ok());
    ASSERT_TRUE((*agg)->Checkpoint().ok());
    InsertQuery(lat.get(), "a", 5.0, clock.NowMicros());
    ASSERT_TRUE((*node)->ExportEpoch().ok());
    ASSERT_TRUE(sender.Pump().ok());  // journaled after the checkpoint
    expect_fleet_matches(agg->get(), fleet1.get());
    // Aggregator "crashes" here: no second checkpoint.
  }
  auto fleet2 = MakeLat();
  auto agg = FleetAggregator::Open({.dir = agg_dir, .clock = &clock},
                                   {fleet2.get()});
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  expect_fleet_matches(agg->get(), fleet2.get());
  auto nodes = (*agg)->SnapshotNodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].hwm, 2);
  // A post-restart re-send of either epoch is a pure no-op.
  auto payload = Heartbeat("n1", 2, clock.NowMicros());
  ASSERT_TRUE((*agg)->Ingest(payload).ok());
  EXPECT_EQ((*agg)->SnapshotNodes()[0].duplicates, 1u);
  expect_fleet_matches(agg->get(), fleet2.get());
}

TEST_F(FedTest, IngestFaultIsRetryableWithNoEffect) {
  const std::string dir = FreshDir("agg_fault");
  common::MockClock clock(1000);
  auto fleet = MakeLat();
  auto agg = FleetAggregator::Open({.dir = dir, .clock = &clock},
                                   {fleet.get()});
  ASSERT_TRUE(agg.ok());
  FaultRegistry::Get()->Arm(kFaultFedIngest, {FaultKind::kIOError, 1.0, 1});
  const std::string payload = Heartbeat("n1", 1, clock.NowMicros());
  EXPECT_TRUE((*agg)->Ingest(payload).IsIOError());
  EXPECT_TRUE((*agg)->SnapshotNodes().empty());  // no effect
  ASSERT_TRUE((*agg)->Ingest(payload).ok());     // retry succeeds
  EXPECT_EQ((*agg)->SnapshotNodes().size(), 1u);
}

TEST_F(FedTest, FleetViewsAnswerSql) {
  const std::string dir = FreshDir("fleet_views");
  common::MockClock clock(1000);
  auto fleet = MakeLat();
  auto agg = FleetAggregator::Open({.dir = dir, .clock = &clock},
                                   {fleet.get()});
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n1", 1, clock.NowMicros())).ok());
  ASSERT_TRUE((*agg)->Ingest(Heartbeat("n2", 1, clock.NowMicros())).ok());

  engine::Database db;
  FleetViews views(agg->get(), &db);
  auto session = db.CreateSession();
  auto nodes = session->Execute("SELECT node_id, state, hwm FROM "
                                "sqlcm_fleet_nodes ORDER BY node_id");
  ASSERT_TRUE(nodes.ok()) << nodes.status();
  ASSERT_EQ(nodes->rows.size(), 2u);
  EXPECT_EQ(nodes->rows[0][0].string_value(), "n1");
  EXPECT_EQ(nodes->rows[0][1].string_value(), "up");
  EXPECT_EQ(nodes->rows[0][2].int_value(), 1);
  auto stats = session->Execute("SELECT lat, rows FROM sqlcm_fleet_stats");
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->rows.size(), 1u);
  EXPECT_EQ(stats->rows[0][0].string_value(), "FleetQ");
}

}  // namespace
}  // namespace sqlcm::fed
