// Multi-session stress tests: transactional invariants under concurrency,
// with and without the monitor attached.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "engine/session.h"
#include "sqlcm/monitor_engine.h"

namespace sqlcm::engine {
namespace {

using common::Value;
using exec::ParamMap;

/// Classic bank-transfer conservation test: concurrent transfers between
/// accounts must preserve the total balance (2PL + undo under fire).
TEST(ConcurrencyTest, TransfersConserveTotal) {
  Database db;
  auto setup = db.CreateSession();
  ASSERT_TRUE(setup->Execute("CREATE TABLE acct (id INT, bal FLOAT, "
                             "PRIMARY KEY(id))").ok());
  constexpr int kAccounts = 16;
  constexpr double kInitial = 1000.0;
  for (int i = 0; i < kAccounts; ++i) {
    ASSERT_TRUE(setup->Execute("INSERT INTO acct VALUES (" +
                               std::to_string(i) + ", 1000.0)").ok());
  }

  constexpr int kThreads = 6;
  constexpr int kTransfersPerThread = 120;
  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &committed, &aborted, t] {
      auto session = db.CreateSession();
      common::Random rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const int64_t from = rng.UniformInt(0, kAccounts - 1);
        int64_t to = rng.UniformInt(0, kAccounts - 1);
        if (to == from) to = (to + 1) % kAccounts;
        if (!session->Begin().ok()) continue;
        ParamMap p1 = {{"k", Value::Int(from)}};
        ParamMap p2 = {{"k", Value::Int(to)}};
        auto debit = session->Execute(
            "UPDATE acct SET bal = bal - 1 WHERE id = @k", &p1);
        if (!debit.ok()) {  // deadlock victim: whole txn rolled back
          aborted.fetch_add(1);
          continue;
        }
        auto credit = session->Execute(
            "UPDATE acct SET bal = bal + 1 WHERE id = @k", &p2);
        if (!credit.ok()) {
          aborted.fetch_add(1);
          continue;
        }
        if (session->Commit().ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  auto total = setup->Execute("SELECT SUM(bal) FROM acct");
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(total->rows[0][0].double_value(), kAccounts * kInitial);
  EXPECT_GT(committed.load(), 0);
  // The lock manager must have fully drained.
  EXPECT_EQ(db.txn_manager()->lock_manager()->TotalGrantedLocks(), 0u);
  EXPECT_EQ(db.txn_manager()->active_count(), 0u);
}

TEST(ConcurrencyTest, MonitoredTransfersStayConsistent) {
  // Same conservation invariant with SQLCM active: rules must observe
  // without perturbing transactional outcomes, and the LAT totals must
  // match what actually happened.
  Database db;
  cm::MonitorEngine monitor(&db);
  auto setup = db.CreateSession();
  ASSERT_TRUE(setup->Execute("CREATE TABLE acct (id INT, bal FLOAT, "
                             "PRIMARY KEY(id))").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(setup->Execute("INSERT INTO acct VALUES (" +
                               std::to_string(i) + ", 1000.0)").ok());
  }

  cm::LatSpec lat;
  lat.name = "ByType";
  lat.group_by = {{"Query_Type", "Kind"}};
  lat.aggregates = {{cm::LatAggFunc::kCount, "", "N", false}};
  ASSERT_TRUE(monitor.DefineLat(std::move(lat)).ok());
  cm::RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(ByType)";
  ASSERT_TRUE(monitor.AddRule(feed).ok());

  constexpr int kThreads = 4;
  constexpr int kOps = 100;
  std::atomic<int64_t> updates_committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &updates_committed, t] {
      auto session = db.CreateSession();
      common::Random rng(static_cast<uint64_t>(t) + 99);
      for (int i = 0; i < kOps; ++i) {
        ParamMap params = {{"k", Value::Int(rng.UniformInt(0, 7))}};
        auto result = session->Execute(
            "UPDATE acct SET bal = bal + 0 WHERE id = @k", &params);
        if (result.ok()) updates_committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  cm::Lat* by_type = monitor.FindLat("ByType");
  common::Row row;
  ASSERT_TRUE(by_type->LookupByKey({Value::String("UPDATE")},
                                   db.clock()->NowMicros(), &row));
  EXPECT_EQ(row[1].int_value(), updates_committed.load());
  EXPECT_TRUE(monitor.last_error().empty()) << monitor.last_error();
}

TEST(ConcurrencyTest, PlanCacheSharedAcrossSessions) {
  Database db;
  auto setup = db.CreateSession();
  ASSERT_TRUE(setup->Execute("CREATE TABLE t (a INT, PRIMARY KEY(a))").ok());
  ASSERT_TRUE(setup->Execute("INSERT INTO t VALUES (1)").ok());

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &failures] {
      auto session = db.CreateSession();
      for (int i = 0; i < 300; ++i) {
        ParamMap params = {{"k", Value::Int(1)}};
        auto result = session->Execute("SELECT a FROM t WHERE a = @k", &params);
        if (!result.ok() || result->rows.size() != 1) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // One plan compiled, thousands of hits.
  EXPECT_GE(db.plan_cache()->hits(), static_cast<uint64_t>(kThreads * 300 - 1));
}

TEST(ConcurrencyTest, ConcurrentInsertsDistinctKeys) {
  Database db;
  auto setup = db.CreateSession();
  ASSERT_TRUE(setup->Execute("CREATE TABLE t (a INT, b INT, "
                             "PRIMARY KEY(a))").ok());
  constexpr int kThreads = 6;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &errors, t] {
      auto session = db.CreateSession();
      for (int i = 0; i < kPerThread; ++i) {
        const int key = t * kPerThread + i;
        ParamMap params = {{"k", Value::Int(key)}, {"v", Value::Int(t)}};
        auto result =
            session->Execute("INSERT INTO t VALUES (@k, @v)", &params);
        if (!result.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  auto count = setup->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].int_value(), kThreads * kPerThread);
}

TEST(ConcurrencyTest, ReadersRunDuringWriterTransactions) {
  // Read-committed reads (no read locks by default) never block on writers.
  Database db;
  auto setup = db.CreateSession();
  ASSERT_TRUE(setup->Execute("CREATE TABLE t (a INT, b INT, "
                             "PRIMARY KEY(a))").ok());
  ASSERT_TRUE(setup->Execute("INSERT INTO t VALUES (1, 0)").ok());

  auto writer = db.CreateSession();
  ASSERT_TRUE(writer->Begin().ok());
  ASSERT_TRUE(writer->Execute("UPDATE t SET b = 99 WHERE a = 1").ok());

  // Reader sees the in-place updated value (read committed via latches,
  // documented in DESIGN.md) and, crucially, does not block.
  auto reader = db.CreateSession();
  const int64_t start = db.clock()->NowMicros();
  auto result = reader->Execute("SELECT b FROM t WHERE a = 1");
  const int64_t elapsed = db.clock()->NowMicros() - start;
  ASSERT_TRUE(result.ok());
  EXPECT_LT(elapsed, 1'000'000);
  ASSERT_TRUE(writer->Rollback().ok());
  // After rollback the pre-image is restored.
  auto after = reader->Execute("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0][0].int_value(), 0);
}

}  // namespace
}  // namespace sqlcm::engine
