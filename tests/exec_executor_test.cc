// Executor-level behaviors exercised through the engine: join algorithms
// with duplicates and empty inputs, limits, expression edge cases in
// DML, and the lock-then-recheck protocol.
#include <gtest/gtest.h>

#include <thread>

#include "engine/session.h"

namespace sqlcm::exec {
namespace {

using common::Value;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : session_(db_.CreateSession()) {
    Exec("CREATE TABLE l (id INT, grp INT, v FLOAT, PRIMARY KEY(id))");
    Exec("CREATE TABLE r (grp INT, label VARCHAR(8), PRIMARY KEY(grp))");
    for (int i = 0; i < 12; ++i) {
      Exec("INSERT INTO l VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 3) + ", " + std::to_string(i) + ".0)");
    }
    Exec("INSERT INTO r VALUES (0, 'zero'), (1, 'one'), (2, 'two')");
  }

  QueryResult Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  engine::Database db_;
  std::unique_ptr<engine::Session> session_;
};

TEST_F(ExecutorTest, JoinFansOutDuplicates) {
  // 12 l-rows, each matching exactly one r-row.
  auto result = Exec("SELECT l.id, r.label FROM l JOIN r ON l.grp = r.grp");
  EXPECT_EQ(result.rows.size(), 12u);
}

TEST_F(ExecutorTest, JoinWithEmptySide) {
  Exec("CREATE TABLE empty_t (grp INT, PRIMARY KEY(grp))");
  auto result =
      Exec("SELECT l.id FROM l JOIN empty_t e ON l.grp = e.grp");
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(ExecutorTest, SelfJoinWithAliases) {
  auto result = Exec(
      "SELECT a.id, b.id FROM l a JOIN l b ON a.grp = b.grp "
      "WHERE a.id < b.id");
  // Per group of 4 rows: C(4,2)=6 pairs; 3 groups -> 18.
  EXPECT_EQ(result.rows.size(), 18u);
}

TEST_F(ExecutorTest, ThreeWayJoinCorrectRowCount) {
  auto result = Exec(
      "SELECT l.id, r.label, x.label FROM l "
      "JOIN r ON l.grp = r.grp "
      "JOIN r x ON l.grp = x.grp");
  EXPECT_EQ(result.rows.size(), 12u);
}

TEST_F(ExecutorTest, LimitStopsEarly) {
  auto result = Exec("SELECT id FROM l LIMIT 5");
  EXPECT_EQ(result.rows.size(), 5u);
  auto zero = Exec("SELECT id FROM l LIMIT 0");
  EXPECT_TRUE(zero.rows.empty());
}

TEST_F(ExecutorTest, OrderByMultipleKeys) {
  auto result = Exec("SELECT grp, id FROM l ORDER BY grp DESC, id ASC");
  ASSERT_EQ(result.rows.size(), 12u);
  EXPECT_EQ(result.rows[0][0].int_value(), 2);
  EXPECT_EQ(result.rows[0][1].int_value(), 2);   // smallest id in grp 2
  EXPECT_EQ(result.rows[11][0].int_value(), 0);
  EXPECT_EQ(result.rows[11][1].int_value(), 9);  // largest id in grp 0
}

TEST_F(ExecutorTest, ArithmeticInProjectionAndWhere) {
  auto result = Exec(
      "SELECT id, v * 2 + 1 AS w FROM l WHERE (id + 1) % 4 = 0 ORDER BY id");
  ASSERT_EQ(result.rows.size(), 3u);  // ids 3, 7, 11
  EXPECT_DOUBLE_EQ(result.rows[0][1].double_value(), 7.0);
}

TEST_F(ExecutorTest, NullsInAggregatesIgnored) {
  Exec("CREATE TABLE n (a INT, b FLOAT, PRIMARY KEY(a))");
  Exec("INSERT INTO n VALUES (1, 10.0), (2, NULL), (3, 20.0)");
  auto result = Exec("SELECT COUNT(*) c, COUNT(b) cb, AVG(b) a, MIN(b) mn "
                     "FROM n");
  EXPECT_EQ(result.rows[0][0].int_value(), 3);
  EXPECT_EQ(result.rows[0][1].int_value(), 2);   // NULL ignored
  EXPECT_DOUBLE_EQ(result.rows[0][2].double_value(), 15.0);
  EXPECT_DOUBLE_EQ(result.rows[0][3].AsDouble(), 10.0);
}

TEST_F(ExecutorTest, GroupByNullsFormOneGroup) {
  Exec("CREATE TABLE g (a INT, k INT, PRIMARY KEY(a))");
  Exec("INSERT INTO g VALUES (1, NULL), (2, NULL), (3, 7)");
  auto result = Exec("SELECT k, COUNT(*) c FROM g GROUP BY k ORDER BY c DESC");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][1].int_value(), 2);
  EXPECT_TRUE(result.rows[0][0].is_null());
}

TEST_F(ExecutorTest, UpdateEvaluatesAgainstPreImage) {
  Exec("CREATE TABLE swap_t (a INT, x INT, y INT, PRIMARY KEY(a))");
  Exec("INSERT INTO swap_t VALUES (1, 10, 20)");
  // Both assignments read the pre-update row: a real swap.
  Exec("UPDATE swap_t SET x = y, y = x WHERE a = 1");
  auto result = Exec("SELECT x, y FROM swap_t WHERE a = 1");
  EXPECT_EQ(result.rows[0][0].int_value(), 20);
  EXPECT_EQ(result.rows[0][1].int_value(), 10);
}

TEST_F(ExecutorTest, UpdateRangePredicateExact) {
  // Strict bounds must be honored even though the index range is inclusive.
  auto update = Exec("UPDATE l SET v = 100.0 WHERE id > 3 AND id < 6");
  EXPECT_EQ(update.rows_affected, 2u);  // ids 4, 5
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM l WHERE v = 100.0")
                .rows[0][0]
                .int_value(),
            2);
}

TEST_F(ExecutorTest, DeleteEverything) {
  auto del = Exec("DELETE FROM l");
  EXPECT_EQ(del.rows_affected, 12u);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM l").rows[0][0].int_value(), 0);
}

TEST_F(ExecutorTest, InsertPartialColumnListPadsNulls) {
  Exec("CREATE TABLE p (a INT, b VARCHAR(8), c FLOAT, PRIMARY KEY(a))");
  Exec("INSERT INTO p (c, a) VALUES (1.5, 7)");
  auto result = Exec("SELECT a, b, c FROM p WHERE a = 7");
  EXPECT_TRUE(result.rows[0][1].is_null());
  EXPECT_DOUBLE_EQ(result.rows[0][2].double_value(), 1.5);
}

TEST_F(ExecutorTest, DivisionByZeroSurfacesAsError) {
  auto result = session_->Execute("SELECT v / 0 FROM l WHERE id = 1");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  // The failed statement rolled back its autocommit txn; the session is
  // immediately reusable.
  EXPECT_TRUE(session_->Execute("SELECT id FROM l WHERE id = 1").ok());
}

TEST_F(ExecutorTest, LockRecheckSkipsRowsChangedUnderUs) {
  // A row qualifying at scan time but disqualified before the X lock is
  // granted must not be updated (the lock-then-recheck protocol).
  auto holder = db_.CreateSession();
  ASSERT_TRUE(holder->Begin().ok());
  ASSERT_TRUE(holder->Execute("UPDATE l SET grp = 99 WHERE id = 0").ok());

  std::atomic<uint64_t> affected{999};
  std::thread concurrent([this, &affected] {
    auto session = db_.CreateSession();
    // Candidate set computed without locks includes id=0 (grp just became
    // 99 in the uncommitted txn; the scan may see either value). After the
    // lock is granted the row is re-read: post-rollback grp is 0 again.
    auto result = session->Execute("UPDATE l SET v = -1.0 WHERE grp = 99");
    ASSERT_TRUE(result.ok());
    affected.store(result->rows_affected);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(holder->Rollback().ok());
  concurrent.join();
  EXPECT_EQ(affected.load(), 0u);  // rollback restored grp=0 before the lock
}

}  // namespace
}  // namespace sqlcm::exec
