#include "catalog/types.h"

#include <gtest/gtest.h>

#include "catalog/schema.h"

namespace sqlcm::catalog {
namespace {

using common::Value;
using common::ValueKind;

TEST(TypesTest, ParseTypeNameAliases) {
  EXPECT_EQ(*ParseTypeName("INT"), ColumnType::kInt);
  EXPECT_EQ(*ParseTypeName("integer"), ColumnType::kInt);
  EXPECT_EQ(*ParseTypeName("BIGINT"), ColumnType::kInt);
  EXPECT_EQ(*ParseTypeName("DATETIME"), ColumnType::kInt);
  EXPECT_EQ(*ParseTypeName("FLOAT"), ColumnType::kDouble);
  EXPECT_EQ(*ParseTypeName("double"), ColumnType::kDouble);
  EXPECT_EQ(*ParseTypeName("VARCHAR"), ColumnType::kString);
  EXPECT_EQ(*ParseTypeName("BLOB"), ColumnType::kString);
  EXPECT_EQ(*ParseTypeName("BOOLEAN"), ColumnType::kBool);
  EXPECT_FALSE(ParseTypeName("DECIMAL").ok());
}

TEST(TypesTest, CoercionRules) {
  // Int widens into FLOAT columns.
  EXPECT_TRUE(CoerceToType(Value::Int(3), ColumnType::kDouble)->is_double());
  // Doubles do NOT narrow into INT columns.
  EXPECT_FALSE(CoerceToType(Value::Double(3.5), ColumnType::kInt).ok());
  // NULL goes anywhere.
  EXPECT_TRUE(CoerceToType(Value::Null(), ColumnType::kString)->is_null());
  // Bool/string mismatches rejected.
  EXPECT_FALSE(CoerceToType(Value::Bool(true), ColumnType::kString).ok());
  EXPECT_FALSE(CoerceToType(Value::String("1"), ColumnType::kInt).ok());
}

struct RoundTripCase {
  Value value;
  ColumnType type;
};

class ParseValueTextTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(ParseValueTextTest, ToStringRoundTrips) {
  const auto& param = GetParam();
  auto parsed = ParseValueText(param.value.ToString(), param.type);
  ASSERT_TRUE(parsed.ok()) << param.value.ToString();
  EXPECT_EQ(*parsed, param.value);
}

INSTANTIATE_TEST_SUITE_P(
    Values, ParseValueTextTest,
    ::testing::Values(
        RoundTripCase{Value::Int(0), ColumnType::kInt},
        RoundTripCase{Value::Int(-123456789), ColumnType::kInt},
        RoundTripCase{Value::Double(2.5), ColumnType::kDouble},
        RoundTripCase{Value::Double(-0.125), ColumnType::kDouble},
        RoundTripCase{Value::String("plain"), ColumnType::kString},
        RoundTripCase{Value::String("it's quoted"), ColumnType::kString},
        RoundTripCase{Value::Bool(true), ColumnType::kBool},
        RoundTripCase{Value::Bool(false), ColumnType::kBool},
        RoundTripCase{Value::Null(), ColumnType::kInt},
        RoundTripCase{Value::Null(), ColumnType::kString}));

TEST(TypesTest, ParseValueTextErrors) {
  EXPECT_FALSE(ParseValueText("abc", ColumnType::kInt).ok());
  EXPECT_FALSE(ParseValueText("1.5.2", ColumnType::kDouble).ok());
  EXPECT_FALSE(ParseValueText("maybe", ColumnType::kBool).ok());
  // Raw (unquoted) strings are accepted for string columns.
  EXPECT_EQ(ParseValueText("raw text", ColumnType::kString)->string_value(),
            "raw text");
}

TEST(SchemaTest, CreateValidation) {
  EXPECT_FALSE(TableSchema::Create("t", {}, {}).ok());  // no columns
  EXPECT_FALSE(TableSchema::Create("t",
                                   {{"a", ColumnType::kInt},
                                    {"A", ColumnType::kInt}},
                                   {})
                   .ok());  // duplicate (case-insensitive)
  EXPECT_FALSE(TableSchema::Create("t", {{"a", ColumnType::kInt}}, {"b"})
                   .ok());  // unknown key column
  auto schema = TableSchema::Create(
      "t", {{"a", ColumnType::kInt}, {"b", ColumnType::kString}}, {"b", "a"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->primary_key(), (std::vector<size_t>{1, 0}));
  EXPECT_EQ(schema->FindColumn("B"), 1);
  EXPECT_EQ(schema->FindColumn("missing"), -1);
}

TEST(SchemaTest, KeyOfExtractsInOrder) {
  auto schema = *TableSchema::Create(
      "t", {{"a", ColumnType::kInt}, {"b", ColumnType::kString}}, {"b", "a"});
  common::Row row = {Value::Int(1), Value::String("x")};
  auto key = schema.KeyOf(row);
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].string_value(), "x");
  EXPECT_EQ(key[1].int_value(), 1);
}

TEST(SchemaTest, ToStringRendering) {
  auto schema = *TableSchema::Create(
      "t", {{"a", ColumnType::kInt}, {"b", ColumnType::kDouble}}, {"a"});
  EXPECT_EQ(schema.ToString(), "t(a INT, b FLOAT, PRIMARY KEY(a))");
}

}  // namespace
}  // namespace sqlcm::catalog
