// Tests for monitor features beyond the §3 basics: byte-limited LATs,
// Timer.Alert aliasing, the per-user concurrency probe (Example 5(b)),
// probe-scope gating, file-backed action sinks, and error reporting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "engine/session.h"
#include "sqlcm/actions_io.h"
#include "sqlcm/monitor_engine.h"

namespace sqlcm::cm {
namespace {

using common::Value;
using exec::ParamMap;

class MonitorExtrasTest : public ::testing::Test {
 protected:
  MonitorExtrasTest() : monitor_(&db_), session_(db_.CreateSession()) {
    Exec("CREATE TABLE items (id INT, val FLOAT, PRIMARY KEY(id))");
    for (int i = 0; i < 20; ++i) {
      Exec("INSERT INTO items VALUES (" + std::to_string(i) + ", 1.0)");
    }
  }

  void Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  engine::Database db_;
  MonitorEngine monitor_;
  std::unique_ptr<engine::Session> session_;
};

TEST(LatByteLimitTest, EvictsWhenBytesExceeded) {
  LatSpec spec;
  spec.name = "Bytes";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kFirst, "Query_Text", "Text", false},
                     {LatAggFunc::kMax, "Duration", "Dur", false}};
  spec.ordering = {{"Dur", true}};
  spec.max_bytes = 8192;  // a handful of rows with ~1KB texts
  auto lat = std::move(*Lat::Create(std::move(spec)));

  for (int i = 1; i <= 100; ++i) {
    QueryRecord rec;
    rec.id = static_cast<uint64_t>(i);
    rec.text = std::string(1024, 'x');
    rec.duration_secs = static_cast<double>(i);
    lat->Insert(&rec, 0);
  }
  EXPECT_LT(lat->size(), 100u);
  EXPECT_LE(lat->approx_bytes(), 8192u + 2048u);  // one row of slack
  // The ordering kept the most important (longest-duration) rows.
  auto rows = lat->Snapshot(0);
  ASSERT_FALSE(rows.empty());
  EXPECT_DOUBLE_EQ(rows[0][2].AsDouble(), 100.0);
}

TEST(LatByteLimitTest, ByteLimitRequiresOrdering) {
  LatSpec spec;
  spec.name = "Bytes";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false}};
  spec.max_bytes = 1024;
  EXPECT_FALSE(Lat::Create(std::move(spec)).ok());
}

TEST(LatByteLimitTest, ResetClearsByteAccounting) {
  LatSpec spec;
  spec.name = "Bytes";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kFirst, "Query_Text", "Text", false}};
  spec.ordering = {{"ID", true}};
  spec.max_bytes = 1 << 20;
  auto lat = std::move(*Lat::Create(std::move(spec)));
  QueryRecord rec;
  rec.id = 1;
  rec.text = std::string(256, 'y');
  lat->Insert(&rec, 0);
  EXPECT_GT(lat->approx_bytes(), 0u);
  lat->Reset();
  EXPECT_EQ(lat->approx_bytes(), 0u);
}

// RuleSpec::rate_limit_max_actions overrides the engine-wide alert-storm
// cap per rule: a positive value replaces the cap, a negative value opts
// the rule out entirely, and 0 keeps the engine default. Suppressions are
// attributed to the owning rule's stats.
TEST(MonitorRateLimitTest, PerRuleOverridesOfEngineActionCap) {
  engine::Database db;
  MonitorEngine::Options opts;
  opts.action_rate_limit.max_actions = 1;
  opts.action_rate_limit.window_micros = 3'600'000'000;  // nothing ages out
  MonitorEngine monitor(&db, opts);
  auto session = db.CreateSession();
  ASSERT_TRUE(
      session->Execute("CREATE TABLE items (id INT, val FLOAT, PRIMARY KEY(id))")
          .ok());
  ASSERT_TRUE(session->Execute("INSERT INTO items VALUES (1, 1.0)").ok());

  RuleSpec capped;
  capped.name = "capped";
  capped.event = "Query.Commit";
  capped.action = "SendMail('capped', 'dba@x')";
  ASSERT_TRUE(monitor.AddRule(capped).ok());

  RuleSpec unlimited = capped;
  unlimited.name = "unlimited";
  unlimited.action = "SendMail('unlimited', 'dba@x')";
  unlimited.rate_limit_max_actions = -1;
  ASSERT_TRUE(monitor.AddRule(unlimited).ok());

  RuleSpec wider = capped;
  wider.name = "wider";
  wider.action = "SendMail('wider', 'dba@x')";
  wider.rate_limit_max_actions = 3;
  ASSERT_TRUE(monitor.AddRule(wider).ok());

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(session->Execute("SELECT val FROM items WHERE id = 1").ok());
  }

  int capped_mails = 0, unlimited_mails = 0, wider_mails = 0;
  for (const auto& mail : monitor.capturing_mailer()->mails()) {
    if (mail.body == "capped") ++capped_mails;
    if (mail.body == "unlimited") ++unlimited_mails;
    if (mail.body == "wider") ++wider_mails;
  }
  EXPECT_EQ(capped_mails, 1);
  EXPECT_EQ(unlimited_mails, 4);
  EXPECT_EQ(wider_mails, 3);

  for (const auto& rule : monitor.SnapshotRules()) {
    const uint64_t suppressed = rule->stats.actions_suppressed.value();
    if (rule->name == "capped") EXPECT_EQ(suppressed, 3u);
    if (rule->name == "unlimited") EXPECT_EQ(suppressed, 0u);
    if (rule->name == "wider") EXPECT_EQ(suppressed, 1u);
  }
}

TEST_F(MonitorExtrasTest, TimerAlertAliasAccepted) {
  ASSERT_TRUE(monitor_.CreateTimer("t1").ok());
  RuleSpec rule;
  rule.name = "alert";
  rule.event = "t1.Alert";  // paper §2.2 spelling
  rule.action = "SendMail('tick', 'dba@x')";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());
  RuleSpec generic;
  generic.name = "alert2";
  generic.event = "Timer.Alert";
  generic.action = "SendMail('tock', 'dba@x')";
  ASSERT_TRUE(monitor_.AddRule(generic).ok());

  ASSERT_TRUE(monitor_.SetTimer("t1", 0.0001, 1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(monitor_.timer_manager()->Poll(db_.clock()->NowMicros()), 1u);
  EXPECT_EQ(monitor_.capturing_mailer()->size(), 2u);
}

TEST_F(MonitorExtrasTest, PerUserMplGovernor) {
  // Example 5(b): "User X cannot have more than K queries executing".
  RuleSpec rule;
  rule.name = "mpl";
  rule.event = "Query.Start";
  rule.condition =
      "Query.User = 'batch' AND Query.Concurrent_User_Queries > 2";
  rule.action = "Query.Cancel()";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());

  // Hold two 'batch' queries in flight via lock waits, then start a third.
  auto holder = db_.CreateSession();
  ASSERT_TRUE(holder->Begin().ok());
  ASSERT_TRUE(holder->Execute("UPDATE items SET val = 2 WHERE id = 1").ok());

  std::atomic<int> blocked_ok{0};
  auto blocked_worker = [this, &blocked_ok] {
    auto s = db_.CreateSession();
    s->set_user("batch");
    auto result = s->Execute("UPDATE items SET val = 3 WHERE id = 1");
    if (result.ok()) blocked_ok.fetch_add(1);
  };
  std::thread w1(blocked_worker), w2(blocked_worker);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Third concurrent 'batch' query: cancelled at start by the governor.
  auto third = db_.CreateSession();
  third->set_user("batch");
  auto result = third->Execute("SELECT val FROM items WHERE id = 5");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();

  // Other users are unaffected.
  auto other = db_.CreateSession();
  other->set_user("interactive");
  EXPECT_TRUE(other->Execute("SELECT val FROM items WHERE id = 5").ok());

  ASSERT_TRUE(holder->Commit().ok());
  w1.join();
  w2.join();
  EXPECT_EQ(blocked_ok.load(), 2);
}

TEST_F(MonitorExtrasTest, BlockedProbesGatedOnRuleNeeds) {
  // A rule that does not reference blocking probes: Time_Blocked stays 0
  // even across a real lock conflict (the monitor never gathers it).
  RuleSpec plain;
  plain.name = "plain";
  plain.event = "Query.Commit";
  plain.condition = "Query.Duration >= 0";
  plain.action = "Query.Persist(PlainLog, ID, Duration)";
  auto id = monitor_.AddRule(plain);
  ASSERT_TRUE(id.ok());

  auto holder = db_.CreateSession();
  ASSERT_TRUE(holder->Begin().ok());
  ASSERT_TRUE(holder->Execute("UPDATE items SET val = 9 WHERE id = 2").ok());
  std::thread waiter([this] {
    auto s = db_.CreateSession();
    EXPECT_TRUE(s->Execute("UPDATE items SET val = 8 WHERE id = 2").ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(holder->Commit().ok());
  waiter.join();

  // Now add a rule that needs the probe: conflicts after this are counted.
  ASSERT_TRUE(monitor_.RemoveRule(*id).ok());
  RuleSpec blocking;
  blocking.name = "blocking";
  blocking.event = "Query.Commit";
  blocking.condition = "Query.Time_Blocked > 0.01";
  blocking.action = "Query.Persist(BlockedLog, ID, Time_Blocked)";
  ASSERT_TRUE(monitor_.AddRule(blocking).ok());

  ASSERT_TRUE(holder->Begin().ok());
  ASSERT_TRUE(holder->Execute("UPDATE items SET val = 9 WHERE id = 3").ok());
  std::thread waiter2([this] {
    auto s = db_.CreateSession();
    EXPECT_TRUE(s->Execute("UPDATE items SET val = 8 WHERE id = 3").ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(holder->Commit().ok());
  waiter2.join();

  storage::Table* blocked_log = db_.catalog()->GetTable("BlockedLog");
  ASSERT_NE(blocked_log, nullptr);
  EXPECT_EQ(blocked_log->row_count(), 1u);
}

TEST_F(MonitorExtrasTest, RuleErrorsAreRecordedNotFatal) {
  // Persist into a table whose schema doesn't match the attribute list.
  Exec("CREATE TABLE Narrow (only_col INT)");
  RuleSpec rule;
  rule.name = "bad-persist";
  rule.event = "Query.Commit";
  rule.action = "Query.Persist(Narrow, ID, Query_Text, Duration)";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());
  // The statement itself still succeeds; the failure lands in last_error.
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_FALSE(monitor_.last_error().empty());
}

TEST(FileAppendingSinkTest, WritesMailAndCommands) {
  const std::string path = ::testing::TempDir() + "/sink_test.log";
  std::remove(path.c_str());
  FileAppendingSink sink(path);
  ASSERT_TRUE(sink.SendMail("body text", "dba@example.com").ok());
  ASSERT_TRUE(sink.RunExternal("run --now").ok());
  std::ifstream in(path);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_NE(line1.find("dba@example.com"), std::string::npos);
  EXPECT_NE(line2.find("run --now"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MonitorOptionsTest, CustomActionBackends) {
  engine::Database db;
  CapturingMailer mailer;
  CapturingLauncher launcher;
  MonitorEngine::Options options;
  options.mailer = &mailer;
  options.launcher = &launcher;
  MonitorEngine monitor(&db, options);
  RuleSpec rule;
  rule.name = "mail";
  rule.event = "Query.Commit";
  rule.action = "SendMail('hi', 'x@y'); RunExternal('cmd')";
  ASSERT_TRUE(monitor.AddRule(rule).ok());
  auto session = db.CreateSession();
  ASSERT_TRUE(session->Execute("CREATE TABLE t (a INT, PRIMARY KEY(a))").ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_EQ(mailer.size(), 1u);
  EXPECT_EQ(launcher.size(), 1u);
  // The monitor's internal capturing sinks stay empty.
  EXPECT_EQ(monitor.capturing_mailer()->size(), 0u);
}

TEST_F(MonitorExtrasTest, AgingLatThroughRules) {
  LatSpec spec;
  spec.name = "Recent";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "RecentN", true},
                     {LatAggFunc::kCount, "", "TotalN", false}};
  spec.aging_window_micros = 50'000;  // 50ms
  spec.aging_block_micros = 10'000;
  ASSERT_TRUE(monitor_.DefineLat(std::move(spec)).ok());
  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(Recent)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());

  Exec("SELECT val FROM items WHERE id = 1");
  Exec("SELECT val FROM items WHERE id = 1");
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Exec("SELECT val FROM items WHERE id = 1");

  auto rows = monitor_.FindLat("Recent")->Snapshot(db_.clock()->NowMicros());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].int_value(), 1);  // only the recent execution
  EXPECT_EQ(rows[0][2].int_value(), 3);  // all three
}

}  // namespace
}  // namespace sqlcm::cm
