#include "sqlcm/lat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "catalog/schema.h"
#include "common/random.h"
#include "common/value.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace sqlcm::cm {
namespace {

using common::Row;
using common::Value;

QueryRecord MakeQuery(const std::string& sig, double duration,
                      const std::string& text = "q") {
  QueryRecord rec;
  rec.logical_signature = sig;
  rec.duration_secs = duration;
  rec.text = text;
  rec.id = 1;
  return rec;
}

LatSpec BasicSpec() {
  LatSpec spec;
  spec.name = "L";
  spec.object_class = MonitoredClass::kQuery;
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                     {LatAggFunc::kAvg, "Duration", "AvgDur", false},
                     {LatAggFunc::kSum, "Duration", "SumDur", false},
                     {LatAggFunc::kStdev, "Duration", "SdDur", false},
                     {LatAggFunc::kMin, "Duration", "MinDur", false},
                     {LatAggFunc::kMax, "Duration", "MaxDur", false},
                     {LatAggFunc::kFirst, "Query_Text", "FirstText", false},
                     {LatAggFunc::kLast, "Query_Text", "LastText", false}};
  return spec;
}

TEST(LatTest, AllAggregateFunctions) {
  auto lat = *Lat::Create(BasicSpec());
  auto q1 = MakeQuery("s", 1.0, "first");
  auto q2 = MakeQuery("s", 3.0, "second");
  auto q3 = MakeQuery("s", 5.0, "third");
  lat->Insert(&q1, 0);
  lat->Insert(&q2, 0);
  lat->Insert(&q3, 0);

  Row row;
  ASSERT_TRUE(lat->LookupForObject(&q1, 0, &row));
  ASSERT_EQ(row.size(), 9u);
  EXPECT_EQ(row[0].string_value(), "s");
  EXPECT_EQ(row[1].int_value(), 3);                    // COUNT
  EXPECT_DOUBLE_EQ(row[2].double_value(), 3.0);        // AVG
  EXPECT_DOUBLE_EQ(row[3].double_value(), 9.0);        // SUM
  EXPECT_DOUBLE_EQ(row[4].double_value(), 2.0);        // STDEV of {1,3,5}
  EXPECT_DOUBLE_EQ(row[5].AsDouble(), 1.0);            // MIN
  EXPECT_DOUBLE_EQ(row[6].AsDouble(), 5.0);            // MAX
  EXPECT_EQ(row[7].string_value(), "first");           // FIRST
  EXPECT_EQ(row[8].string_value(), "third");           // LAST
}

TEST(LatTest, GroupsAreIndependent) {
  auto lat = *Lat::Create(BasicSpec());
  auto a = MakeQuery("a", 1.0);
  auto b = MakeQuery("b", 10.0);
  lat->Insert(&a, 0);
  lat->Insert(&b, 0);
  lat->Insert(&b, 0);
  EXPECT_EQ(lat->size(), 2u);
  Row row;
  ASSERT_TRUE(lat->LookupForObject(&a, 0, &row));
  EXPECT_EQ(row[1].int_value(), 1);
  ASSERT_TRUE(lat->LookupByKey({Value::String("b")}, 0, &row));
  EXPECT_EQ(row[1].int_value(), 2);
  EXPECT_FALSE(lat->LookupByKey({Value::String("missing")}, 0, &row));
}

TEST(LatTest, FindColumnCaseInsensitive) {
  auto lat = *Lat::Create(BasicSpec());
  EXPECT_EQ(lat->FindColumn("sig"), 0);
  EXPECT_EQ(lat->FindColumn("AVGDUR"), 2);
  EXPECT_EQ(lat->FindColumn("nope"), -1);
  EXPECT_EQ(lat->group_width(), 1u);
}

TEST(LatTest, TopKEvictionKeepsLargest) {
  LatSpec spec;
  spec.name = "Top";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false}};
  spec.ordering = {{"Dur", true}};  // DESC: keep largest, evict smallest
  spec.max_rows = 3;
  auto lat = *Lat::Create(std::move(spec));

  std::vector<Row> evicted;
  lat->set_evict_callback([&](Row row) { evicted.push_back(std::move(row)); });

  for (int i = 1; i <= 10; ++i) {
    QueryRecord rec;
    rec.id = static_cast<uint64_t>(i);
    rec.duration_secs = static_cast<double>(i % 7);  // durations 1..6,0,...
    lat->Insert(&rec, 0);
  }
  EXPECT_EQ(lat->size(), 3u);
  EXPECT_EQ(evicted.size(), 7u);
  auto rows = lat->Snapshot(0);
  ASSERT_EQ(rows.size(), 3u);
  // Durations inserted: 1,2,3,4,5,6,0,1,2,3 -> top3 = 6,5,4.
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 6.0);
  EXPECT_DOUBLE_EQ(rows[1][1].AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(rows[2][1].AsDouble(), 4.0);
}

TEST(LatTest, AscendingOrderingEvictsLargest) {
  LatSpec spec;
  spec.name = "Bottom";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false}};
  spec.ordering = {{"Dur", false}};  // ASC: keep smallest
  spec.max_rows = 2;
  auto lat = *Lat::Create(std::move(spec));
  for (int i = 1; i <= 5; ++i) {
    QueryRecord rec;
    rec.id = static_cast<uint64_t>(i);
    rec.duration_secs = static_cast<double>(i);
    lat->Insert(&rec, 0);
  }
  auto rows = lat->Snapshot(0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(rows[1][1].AsDouble(), 2.0);
}

TEST(LatTest, UpdatedGroupRepositionsInHeap) {
  LatSpec spec;
  spec.name = "Top";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kSum, "Duration", "Total", false}};
  spec.ordering = {{"Total", true}};
  spec.max_rows = 2;
  auto lat = *Lat::Create(std::move(spec));

  auto a = MakeQuery("a", 1.0);
  auto b = MakeQuery("b", 5.0);
  auto c = MakeQuery("c", 3.0);
  lat->Insert(&a, 0);
  lat->Insert(&b, 0);
  // 'a' grows past 'c' before 'c' arrives.
  lat->Insert(&a, 0);
  lat->Insert(&a, 0);  // a total = 3.0... equal; add more
  lat->Insert(&a, 0);  // a total = 4.0
  lat->Insert(&c, 0);  // c=3.0 is now least important -> evicted
  auto rows = lat->Snapshot(0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].string_value(), "b");
  EXPECT_EQ(rows[1][0].string_value(), "a");
}

TEST(LatTest, ResetClears) {
  auto lat = *Lat::Create(BasicSpec());
  auto q = MakeQuery("s", 1.0);
  lat->Insert(&q, 0);
  lat->Reset();
  EXPECT_EQ(lat->size(), 0u);
  Row row;
  EXPECT_FALSE(lat->LookupForObject(&q, 0, &row));
}

TEST(LatTest, AgingWindowDropsOldValues) {
  LatSpec spec;
  spec.name = "Aging";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kAvg, "Duration", "AvgDur", true},
                     {LatAggFunc::kCount, "", "N", true},
                     {LatAggFunc::kMax, "Duration", "MaxDur", true},
                     {LatAggFunc::kAvg, "Duration", "AvgAll", false}};
  spec.aging_window_micros = 10'000'000;  // t = 10s
  spec.aging_block_micros = 1'000'000;    // Δ = 1s
  auto lat = *Lat::Create(std::move(spec));

  auto q_old = MakeQuery("s", 100.0);
  auto q_new = MakeQuery("s", 2.0);
  lat->Insert(&q_old, /*now=*/0);
  lat->Insert(&q_new, /*now=*/15'000'000);  // 15s: first value aged out

  Row row;
  ASSERT_TRUE(lat->LookupForObject(&q_new, 15'000'000, &row));
  EXPECT_DOUBLE_EQ(row[1].double_value(), 2.0);  // aging AVG sees only new
  EXPECT_EQ(row[2].int_value(), 1);              // aging COUNT
  EXPECT_DOUBLE_EQ(row[3].AsDouble(), 2.0);      // aging MAX
  EXPECT_DOUBLE_EQ(row[4].double_value(), 51.0); // non-aging AVG sees both

  // Within the window, both values are visible.
  lat->Reset();
  lat->Insert(&q_old, 0);
  lat->Insert(&q_new, 5'000'000);
  ASSERT_TRUE(lat->LookupForObject(&q_new, 5'000'000, &row));
  EXPECT_EQ(row[2].int_value(), 2);
  EXPECT_DOUBLE_EQ(row[1].double_value(), 51.0);
}

TEST(LatTest, AgingBlockCountBounded) {
  LatSpec spec;
  spec.name = "Aging";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", true}};
  spec.aging_window_micros = 1'000'000;
  spec.aging_block_micros = 100'000;
  auto lat = *Lat::Create(std::move(spec));
  auto q = MakeQuery("s", 1.0);
  // Insert over a long time range; per-row storage must stay bounded by
  // ~2t/Δ blocks (paper §4.3) because expired blocks are pruned on insert.
  for (int64_t now = 0; now < 100'000'000; now += 50'000) {
    lat->Insert(&q, now);
  }
  Row row;
  ASSERT_TRUE(lat->LookupForObject(&q, 100'000'000, &row));
  // Window = 1s, inserts every 50ms -> about 20 in window.
  EXPECT_NEAR(static_cast<double>(row[1].int_value()), 20.0, 3.0);
}

TEST(LatTest, SpecValidation) {
  LatSpec no_group = BasicSpec();
  no_group.group_by.clear();
  EXPECT_FALSE(Lat::Create(std::move(no_group)).ok());

  LatSpec bad_attr = BasicSpec();
  bad_attr.group_by = {{"NoSuchAttr", ""}};
  EXPECT_TRUE(Lat::Create(std::move(bad_attr)).status().IsNotFound());

  LatSpec sum_of_string = BasicSpec();
  sum_of_string.aggregates = {{LatAggFunc::kSum, "Query_Text", "S", false}};
  EXPECT_TRUE(Lat::Create(std::move(sum_of_string)).status().IsTypeError());

  LatSpec size_without_ordering = BasicSpec();
  size_without_ordering.max_rows = 5;
  EXPECT_FALSE(Lat::Create(std::move(size_without_ordering)).ok());

  LatSpec bad_ordering = BasicSpec();
  bad_ordering.max_rows = 5;
  bad_ordering.ordering = {{"nope", true}};
  EXPECT_TRUE(Lat::Create(std::move(bad_ordering)).status().IsNotFound());

  LatSpec aging_without_params = BasicSpec();
  aging_without_params.aggregates = {{LatAggFunc::kAvg, "Duration", "A", true}};
  EXPECT_FALSE(Lat::Create(std::move(aging_without_params)).ok());

  LatSpec dup_cols = BasicSpec();
  dup_cols.aggregates = {{LatAggFunc::kAvg, "Duration", "X", false},
                         {LatAggFunc::kMax, "Duration", "x", false}};
  EXPECT_FALSE(Lat::Create(std::move(dup_cols)).ok());
}

TEST(LatTest, PersistAndSeedRoundTrip) {
  storage::Catalog catalog;
  auto schema = catalog::TableSchema::Create(
      "snap",
      {{"Sig", catalog::ColumnType::kString},
       {"N", catalog::ColumnType::kInt},
       {"AvgDur", catalog::ColumnType::kDouble},
       {"ts", catalog::ColumnType::kInt}},
      {});
  storage::Table* table = *catalog.CreateTable(std::move(*schema));

  LatSpec spec;
  spec.name = "L";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                     {LatAggFunc::kAvg, "Duration", "AvgDur", false}};
  auto lat = *Lat::Create(spec);
  auto a = MakeQuery("a", 2.0);
  auto b = MakeQuery("b", 4.0);
  lat->Insert(&a, 0);
  lat->Insert(&a, 0);
  lat->Insert(&b, 0);
  ASSERT_TRUE(lat->PersistTo(table, 12345, 0).ok());
  EXPECT_EQ(table->row_count(), 2u);

  auto restored = *Lat::Create(spec);
  ASSERT_TRUE(restored->SeedFrom(*table, 0).ok());
  EXPECT_EQ(restored->size(), 2u);
  Row row;
  ASSERT_TRUE(restored->LookupByKey({Value::String("a")}, 0, &row));
  EXPECT_EQ(row[1].int_value(), 2);
  EXPECT_DOUBLE_EQ(row[2].double_value(), 2.0);
  // Seeded AVG keeps evolving with the reconstructed count.
  restored->Insert(&a, 0);  // a: count 3, sum was 4.0 + 2.0 = 6.0
  ASSERT_TRUE(restored->LookupByKey({Value::String("a")}, 0, &row));
  EXPECT_EQ(row[1].int_value(), 3);
  EXPECT_DOUBLE_EQ(row[2].double_value(), 2.0);
}

class LatPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Property: for any random insert stream, every aggregate matches a
// straightforward reference computation.
TEST_P(LatPropertyTest, AggregatesMatchReference) {
  auto lat = *Lat::Create(BasicSpec());
  common::Random rng(GetParam());

  struct Ref {
    int64_t count = 0;
    double sum = 0, sumsq = 0;
    double min = 0, max = 0;
    std::string first, last;
    bool any = false;
  };
  std::map<std::string, Ref> reference;

  const int inserts = 500;
  for (int i = 0; i < inserts; ++i) {
    const std::string sig = "sig" + std::to_string(rng.Uniform(5));
    const double duration = static_cast<double>(rng.UniformInt(0, 1000)) / 8.0;
    const std::string text = "q" + std::to_string(i);
    auto rec = MakeQuery(sig, duration, text);
    lat->Insert(&rec, 0);

    Ref& ref = reference[sig];
    ++ref.count;
    ref.sum += duration;
    ref.sumsq += duration * duration;
    if (!ref.any || duration < ref.min) ref.min = duration;
    if (!ref.any || duration > ref.max) ref.max = duration;
    if (!ref.any) ref.first = text;
    ref.last = text;
    ref.any = true;
  }

  ASSERT_EQ(lat->size(), reference.size());
  for (const auto& [sig, ref] : reference) {
    Row row;
    ASSERT_TRUE(lat->LookupByKey({Value::String(sig)}, 0, &row)) << sig;
    EXPECT_EQ(row[1].int_value(), ref.count);
    EXPECT_NEAR(row[2].double_value(), ref.sum / ref.count, 1e-9);
    EXPECT_NEAR(row[3].double_value(), ref.sum, 1e-9);
    const double n = static_cast<double>(ref.count);
    const double variance =
        ref.count > 1 ? std::max(0.0, (ref.sumsq - ref.sum * ref.sum / n) /
                                          (n - 1))
                      : 0.0;
    EXPECT_NEAR(row[4].double_value(), std::sqrt(variance), 1e-6);
    EXPECT_DOUBLE_EQ(row[5].AsDouble(), ref.min);
    EXPECT_DOUBLE_EQ(row[6].AsDouble(), ref.max);
    EXPECT_EQ(row[7].string_value(), ref.first);
    EXPECT_EQ(row[8].string_value(), ref.last);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

class LatTopKPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Property: a size-limited LAT always holds exactly the top-k groups under
// its ordering, for any insertion order.
TEST_P(LatTopKPropertyTest, RetainsExactTopK) {
  LatSpec spec;
  spec.name = "Top";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false}};
  spec.ordering = {{"Dur", true}};
  spec.max_rows = 8;
  auto lat = *Lat::Create(std::move(spec));

  common::Random rng(GetParam());
  std::vector<double> durations;
  const int n = 200;
  for (int i = 1; i <= n; ++i) {
    QueryRecord rec;
    rec.id = static_cast<uint64_t>(i);
    // Unique durations so the top-8 set is unambiguous.
    rec.duration_secs =
        static_cast<double>(i) + static_cast<double>(rng.Uniform(100)) * 1000.0;
    durations.push_back(rec.duration_secs);
    lat->Insert(&rec, 0);
  }
  std::sort(durations.rbegin(), durations.rend());
  auto rows = lat->Snapshot(0);
  ASSERT_EQ(rows.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(rows[i][1].AsDouble(), durations[i]) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatTopKPropertyTest,
                         ::testing::Values(7u, 8u, 9u));

TEST(LatTest, ConcurrentInsertsAreConsistent) {
  LatSpec spec;
  spec.name = "Conc";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                     {LatAggFunc::kSum, "Duration", "S", false}};
  auto lat = *Lat::Create(std::move(spec));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lat, t] {
      common::Random rng(static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        QueryRecord rec;
        rec.logical_signature = "sig" + std::to_string(rng.Uniform(4));
        rec.duration_secs = 1.0;
        lat->Insert(&rec, 0);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Total inserts are conserved across groups.
  int64_t total = 0;
  double sum = 0;
  for (const Row& row : lat->Snapshot(0)) {
    total += row[1].int_value();
    sum += row[2].AsDouble();
  }
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(kThreads * kPerThread));
}

TEST(LatTest, ConcurrentInsertsWithEviction) {
  LatSpec spec;
  spec.name = "ConcEvict";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kMax, "Duration", "D", false}};
  spec.ordering = {{"D", true}};
  spec.max_rows = 16;
  auto lat = *Lat::Create(std::move(spec));
  std::atomic<size_t> evictions{0};
  lat->set_evict_callback([&](Row) { evictions.fetch_add(1); });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lat, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryRecord rec;
        rec.id = static_cast<uint64_t>(t * kPerThread + i + 1);
        rec.duration_secs = static_cast<double>(rec.id % 997);
        lat->Insert(&rec, 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(lat->size(), 16u);
  EXPECT_EQ(lat->Snapshot(0).size(), lat->size());
  EXPECT_GE(evictions.load(), kThreads * kPerThread - 16u);
}

// ---------------------------------------------------------------------------
// v2 raw-state snapshots (ExportState / ImportState)
// ---------------------------------------------------------------------------

catalog::ColumnType StateTypeFor(common::ValueKind kind) {
  switch (kind) {
    case common::ValueKind::kInt: return catalog::ColumnType::kInt;
    case common::ValueKind::kDouble: return catalog::ColumnType::kDouble;
    case common::ValueKind::kBool: return catalog::ColumnType::kBool;
    default: return catalog::ColumnType::kString;
  }
}

std::unique_ptr<storage::Table> MakeStateTable(const Lat& lat) {
  const std::vector<std::string> names = lat.StateColumnNames();
  const std::vector<common::ValueKind> kinds = lat.StateColumnKinds();
  std::vector<catalog::Column> columns;
  for (size_t i = 0; i < names.size(); ++i) {
    columns.push_back({names[i], StateTypeFor(kinds[i])});
  }
  columns.push_back({"persist_ts", catalog::ColumnType::kInt});
  auto schema = catalog::TableSchema::Create("state", std::move(columns), {});
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::make_unique<storage::Table>(0, std::move(*schema));
}

std::unique_ptr<storage::Table> MakeV1Table(const Lat& lat) {
  std::vector<catalog::Column> columns;
  for (size_t i = 0; i < lat.num_columns(); ++i) {
    columns.push_back(
        {lat.column_names()[i], StateTypeFor(lat.column_kinds()[i])});
  }
  auto schema = catalog::TableSchema::Create("v1", std::move(columns), {});
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::make_unique<storage::Table>(0, std::move(*schema));
}

std::vector<Row> AllTableRows(const storage::Table& table) {
  std::optional<Row> after;
  std::vector<Row> keys, rows, out;
  for (;;) {
    keys.clear();
    rows.clear();
    if (table.ScanBatch(after, 256, &keys, &rows) == 0) break;
    after = keys.back();
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

/// Order-independent rendering of a table's rows. Doubles render with the
/// shortest exact spelling, so string equality here is bit equality.
std::string RenderRows(const std::vector<Row>& rows) {
  std::vector<std::string> lines;
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += '|';
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

LatSpec StateSpec(bool aging, size_t shards) {
  LatSpec spec = BasicSpec();
  spec.name = "S";
  spec.shard_count = shards;
  if (aging) {
    spec.aggregates.push_back({LatAggFunc::kCount, "", "AgN", true});
    spec.aggregates.push_back({LatAggFunc::kSum, "Duration", "AgSum", true});
    spec.aggregates.push_back({LatAggFunc::kAvg, "Duration", "AgAvg", true});
    spec.aggregates.push_back({LatAggFunc::kStdev, "Duration", "AgSd", true});
    spec.aggregates.push_back({LatAggFunc::kMin, "Duration", "AgMin", true});
    spec.aggregates.push_back({LatAggFunc::kMax, "Duration", "AgMax", true});
    spec.aging_window_micros = 10'000;
    spec.aging_block_micros = 1'000;
  }
  return spec;
}

class LatStateSnapshotTest
    : public ::testing::TestWithParam<std::tuple<bool, size_t>> {};

// Every aggregate function — including STDEV and mid-window aging variants —
// must read identically after a state round-trip, and a second checkpoint
// of the restored LAT must reproduce the first snapshot exactly.
TEST_P(LatStateSnapshotTest, CheckpointRestoreCheckpointIsIdempotent) {
  const bool aging = std::get<0>(GetParam());
  const size_t shards = std::get<1>(GetParam());
  const LatSpec spec = StateSpec(aging, shards);
  auto lat = *Lat::Create(spec);
  common::Random rng(7);
  int64_t now = 0;
  for (int i = 0; i < 400; ++i) {
    auto q = MakeQuery("sig" + std::to_string(rng.Uniform(7)),
                       rng.NextDouble() * 100 - 50, "t" + std::to_string(i));
    lat->Insert(&q, now);
    now += static_cast<int64_t>(rng.Uniform(700));
  }

  auto first = MakeStateTable(*lat);
  ASSERT_TRUE(lat->ExportState(first.get(), 42).ok());
  EXPECT_EQ(first->row_count(), lat->size());

  auto restored = *Lat::Create(spec);
  ASSERT_TRUE(restored->ImportState(*first, now).ok());
  EXPECT_EQ(restored->size(), lat->size());

  for (int k = 0; k < 7; ++k) {
    const Row key = {Value::String("sig" + std::to_string(k))};
    Row a, b;
    const bool in_orig = lat->LookupByKey(key, now, &a);
    ASSERT_EQ(in_orig, restored->LookupByKey(key, now, &b));
    if (!in_orig) continue;
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_EQ(a[c].ToString(), b[c].ToString())
          << "column " << lat->column_names()[c];
    }
  }

  auto second = MakeStateTable(*restored);
  ASSERT_TRUE(restored->ExportState(second.get(), 42).ok());
  EXPECT_EQ(RenderRows(AllTableRows(*first)), RenderRows(AllTableRows(*second)));
}

INSTANTIATE_TEST_SUITE_P(AgingAndShards, LatStateSnapshotTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values<size_t>(1, 8)));

// The tagged-value codec must survive payloads containing its own
// delimiters, quotes and the literal "NULL".
TEST(LatTest, StateRoundTripPreservesHostileStrings) {
  LatSpec spec = BasicSpec();
  auto lat = *Lat::Create(spec);
  auto q1 = MakeQuery("s", 1.0, "a:b;c%d");
  auto q2 = MakeQuery("s", 2.0, "NULL");
  lat->Insert(&q1, 0);
  lat->Insert(&q2, 0);

  auto table = MakeStateTable(*lat);
  ASSERT_TRUE(lat->ExportState(table.get(), 0).ok());
  auto restored = *Lat::Create(spec);
  ASSERT_TRUE(restored->ImportState(*table, 0).ok());
  Row row;
  ASSERT_TRUE(restored->LookupByKey({Value::String("s")}, 0, &row));
  EXPECT_EQ(row[7].string_value(), "a:b;c%d");  // FIRST
  EXPECT_EQ(row[8].string_value(), "NULL");     // LAST (the string, not SQL NULL)
}

// Legacy v1 (materialized-row) seeding: STDEV now round-trips through the
// documented moment reconstruction instead of resetting to 0, and the
// seeded moments keep evolving consistently.
TEST(LatTest, SeedFromReconstructsStdevFromMaterializedRow) {
  auto lat = *Lat::Create(BasicSpec());
  for (const double d : {1.0, 3.0, 5.0}) {
    auto q = MakeQuery("s", d);
    lat->Insert(&q, 0);
  }
  auto table = MakeV1Table(*lat);
  ASSERT_TRUE(lat->PersistTo(table.get(), 0, 0).ok());

  auto restored = *Lat::Create(BasicSpec());
  ASSERT_TRUE(restored->SeedFrom(*table, 0).ok());
  Row row;
  ASSERT_TRUE(restored->LookupByKey({Value::String("s")}, 0, &row));
  EXPECT_EQ(row[1].int_value(), 3);
  EXPECT_DOUBLE_EQ(row[2].double_value(), 3.0);  // AVG
  EXPECT_DOUBLE_EQ(row[3].double_value(), 9.0);  // SUM
  EXPECT_DOUBLE_EQ(row[4].double_value(), 2.0);  // STDEV of {1,3,5}

  auto q = MakeQuery("s", 3.0);
  restored->Insert(&q, 0);
  ASSERT_TRUE(restored->LookupByKey({Value::String("s")}, 0, &row));
  EXPECT_EQ(row[1].int_value(), 4);
  EXPECT_DOUBLE_EQ(row[2].double_value(), 3.0);
  // {1,3,5,3}: sumsq 44, sum 12 -> variance (44 - 144/4)/3 = 8/3.
  EXPECT_DOUBLE_EQ(row[4].double_value(), std::sqrt(8.0 / 3.0));
}

// Shed-aging regression: fresh inserts must stay visible while pruning is
// deferred (rotation keeps running), and the block deque stays bounded by
// merging expired blocks instead of growing one block per Δ.
TEST(LatTest, ShedAgingStaysReadableAndBounded) {
  LatSpec spec;
  spec.name = "Shed";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "AgN", true},
                     {LatAggFunc::kSum, "Duration", "AgSum", true}};
  spec.aging_window_micros = 10'000;
  spec.aging_block_micros = 1'000;
  auto lat = *Lat::Create(spec);
  lat->set_shed_aging(true);
  auto q = MakeQuery("s", 1.0);
  for (int64_t k = 0; k < 200; ++k) lat->Insert(&q, k * 1000);

  Row row;
  ASSERT_TRUE(lat->LookupByKey({Value::String("s")}, 199'000, &row));
  // Window t = 10Δ covers the inserts in blocks 189Δ..199Δ: 11 of them.
  EXPECT_EQ(row[1].int_value(), 11);
  EXPECT_DOUBLE_EQ(row[2].double_value(), 11.0);
  EXPECT_GT(lat->stats().aging_merges.value(), 0u);

  lat->set_shed_aging(false);
  lat->Insert(&q, 200'000);
  ASSERT_TRUE(lat->LookupByKey({Value::String("s")}, 200'000, &row));
  EXPECT_EQ(row[1].int_value(), 11);
}

// ---------------------------------------------------------------------------
// Sketch aggregates (QUANTILE / DISTINCT)
// ---------------------------------------------------------------------------

LatSpec SketchSpec() {
  LatSpec spec;
  spec.name = "Sk";
  spec.object_class = MonitoredClass::kQuery;
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                     {LatAggFunc::kQuantile, "Duration", "P50", false, 0.5},
                     {LatAggFunc::kQuantile, "Duration", "P95", false, 0.95},
                     {LatAggFunc::kDistinct, "Query_Text", "DText", false},
                     {LatAggFunc::kDistinct, "Duration", "DDur", false}};
  return spec;
}

TEST(LatSketchTest, QuantileAndDistinctFoldAndRead) {
  LatSpec spec = SketchSpec();
  spec.quantile_sketch_bytes = 0;  // unbounded: level-0 accuracy applies
  auto lat = *Lat::Create(spec);
  EXPECT_TRUE(lat->HasSketchAggs());
  for (int i = 1; i <= 200; ++i) {
    auto q = MakeQuery("s", static_cast<double>(i),
                       "t" + std::to_string(i % 50));
    lat->Insert(&q, 0);
  }
  Row row;
  ASSERT_TRUE(lat->LookupByKey({Value::String("s")}, 0, &row));
  EXPECT_EQ(row[1].int_value(), 200);  // COUNT
  // Exact p50 of {1..200} is 100 (rank ⌊0.5·199⌋); p95 is 190. The sketch
  // promises relative error alpha (1% at level 0, plus slack for the
  // deterministic bucket rounding).
  EXPECT_NEAR(row[2].double_value(), 100.0, 100.0 * 0.011);
  EXPECT_NEAR(row[3].double_value(), 190.0, 190.0 * 0.011);
  // 50 distinct texts / 200 distinct durations: small enough that the HLL
  // linear-counting regime is near-exact.
  EXPECT_NEAR(static_cast<double>(row[4].int_value()), 50.0, 3.0);
  EXPECT_NEAR(static_cast<double>(row[5].int_value()), 200.0, 12.0);
}

// QUANTILE answers NULL while no numeric value has entered the sketch (NaN
// has no rank) — while COUNT and DISTINCT keep counting the folds.
TEST(LatSketchTest, QuantileIsNullWhenOnlyNanFolded) {
  auto lat = *Lat::Create(SketchSpec());
  auto q = MakeQuery("s", std::nan(""), "text");
  lat->Insert(&q, 0);
  Row row;
  ASSERT_TRUE(lat->LookupByKey({Value::String("s")}, 0, &row));
  EXPECT_EQ(row[1].int_value(), 1);
  EXPECT_TRUE(row[2].is_null());  // P50
  EXPECT_TRUE(row[3].is_null());  // P95
  EXPECT_EQ(row[4].int_value(), 1);
  EXPECT_EQ(row[5].int_value(), 1);  // NaN is non-null: it counts as a value
}

// A restored record whose #sketch cells are empty (a group whose sketches
// never folded anything) must read as the documented empty answers —
// QUANTILE NULL, DISTINCT 0 — not garbage or a crash.
TEST(LatSketchTest, EmptySketchCellsRestoreToNullAndZero) {
  auto lat = *Lat::Create(SketchSpec());
  auto q = MakeQuery("s", 7.0, "text");
  lat->Insert(&q, 0);
  auto exported = MakeStateTable(*lat);
  ASSERT_TRUE(lat->ExportState(exported.get(), 0).ok());

  const std::vector<std::string> names = lat->StateColumnNames();
  auto blanked = MakeStateTable(*lat);
  for (Row& record : AllTableRows(*exported)) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i].size() > 7 &&
          names[i].compare(names[i].size() - 7, 7, "#sketch") == 0) {
        record[i] = Value::String("");
      }
    }
    ASSERT_TRUE(blanked->Insert(std::move(record)).ok());
  }
  auto restored = *Lat::Create(SketchSpec());
  ASSERT_TRUE(restored->ImportState(*blanked, 0).ok());
  Row row;
  ASSERT_TRUE(restored->LookupByKey({Value::String("s")}, 0, &row));
  EXPECT_EQ(row[1].int_value(), 1);   // fold count survives
  EXPECT_TRUE(row[2].is_null());      // QUANTILE: NULL on empty
  EXPECT_TRUE(row[3].is_null());
  EXPECT_EQ(row[4].int_value(), 0);   // DISTINCT: 0 on empty
  EXPECT_EQ(row[5].int_value(), 0);
}

// A corrupt sketch cell must fail the import loudly, not restore silently.
TEST(LatSketchTest, CorruptSketchCellRejectsImport) {
  auto lat = *Lat::Create(SketchSpec());
  auto q = MakeQuery("s", 7.0, "text");
  lat->Insert(&q, 0);
  auto exported = MakeStateTable(*lat);
  ASSERT_TRUE(lat->ExportState(exported.get(), 0).ok());
  auto corrupted = MakeStateTable(*lat);
  const std::vector<std::string> names = lat->StateColumnNames();
  for (Row& record : AllTableRows(*exported)) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == "P50#sketch") record[i] = Value::String("garbage");
    }
    ASSERT_TRUE(corrupted->Insert(std::move(record)).ok());
  }
  auto restored = *Lat::Create(SketchSpec());
  EXPECT_FALSE(restored->ImportState(*corrupted, 0).ok());
}

// v3 state snapshots must round-trip sketch-bearing LATs bit-exactly, even
// after budget collapses raised the quantile sketch's level.
TEST(LatSketchTest, SketchStateRoundTripIsIdempotent) {
  LatSpec spec = SketchSpec();
  spec.quantile_sketch_bytes = 1024;  // force mid-stream collapses
  auto lat = *Lat::Create(spec);
  common::Random rng(17);
  for (int i = 0; i < 600; ++i) {
    auto q = MakeQuery("sig" + std::to_string(rng.Uniform(5)),
                       std::exp(rng.NextDouble() * 16.0 - 8.0),
                       "t" + std::to_string(rng.Uniform(400)));
    lat->Insert(&q, 0);
  }
  EXPECT_GT(lat->stats().sketch_collapses.value(), 0u);

  auto first = MakeStateTable(*lat);
  ASSERT_TRUE(lat->ExportState(first.get(), 9).ok());
  auto restored = *Lat::Create(spec);
  ASSERT_TRUE(restored->ImportState(*first, 0).ok());
  EXPECT_EQ(restored->size(), lat->size());

  for (int k = 0; k < 5; ++k) {
    const Row key = {Value::String("sig" + std::to_string(k))};
    Row a, b;
    const bool in_orig = lat->LookupByKey(key, 0, &a);
    ASSERT_EQ(in_orig, restored->LookupByKey(key, 0, &b));
    if (!in_orig) continue;
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_EQ(a[c].ToString(), b[c].ToString())
          << "column " << lat->column_names()[c];
    }
  }
  auto second = MakeStateTable(*restored);
  ASSERT_TRUE(restored->ExportState(second.get(), 9).ok());
  EXPECT_EQ(RenderRows(AllTableRows(*first)), RenderRows(AllTableRows(*second)));
}

// Fleet-merge: folding one node's state export into another must read
// exactly like a single LAT that saw every insert — including when budget
// collapses happened at different points on each side (level-based collapse
// commutes with merge).
TEST(LatSketchTest, MergeStateFoldsSketchesExactly) {
  LatSpec spec = SketchSpec();
  spec.quantile_sketch_bytes = 2048;
  auto whole = *Lat::Create(spec);
  auto node_a = *Lat::Create(spec);
  auto node_b = *Lat::Create(spec);
  common::Random rng(23);
  for (int i = 0; i < 500; ++i) {
    auto q = MakeQuery("sig" + std::to_string(rng.Uniform(6)),
                       std::exp(rng.NextDouble() * 12.0 - 6.0),
                       "t" + std::to_string(rng.Uniform(300)));
    whole->Insert(&q, 0);
    (i % 2 == 0 ? node_a : node_b)->Insert(&q, 0);
  }
  auto shipped = MakeStateTable(*node_b);
  ASSERT_TRUE(node_b->ExportState(shipped.get(), 0).ok());
  ASSERT_TRUE(node_a->MergeState(*shipped, 0).ok());
  EXPECT_EQ(node_a->size(), whole->size());
  for (int k = 0; k < 6; ++k) {
    const Row key = {Value::String("sig" + std::to_string(k))};
    Row merged, mono;
    ASSERT_TRUE(whole->LookupByKey(key, 0, &mono));
    ASSERT_TRUE(node_a->LookupByKey(key, 0, &merged));
    for (size_t c = 0; c < mono.size(); ++c) {
      EXPECT_EQ(merged[c].ToString(), mono[c].ToString())
          << "column " << whole->column_names()[c];
    }
  }
}

TEST(LatSketchTest, SpecValidationAndParseAliases) {
  EXPECT_EQ(*ParseLatAggFunc("QUANTILE"), LatAggFunc::kQuantile);
  EXPECT_EQ(*ParseLatAggFunc("percentile"), LatAggFunc::kQuantile);
  EXPECT_EQ(*ParseLatAggFunc("DISTINCT"), LatAggFunc::kDistinct);
  EXPECT_EQ(*ParseLatAggFunc("Count_Distinct"), LatAggFunc::kDistinct);

  LatSpec aging_sketch = SketchSpec();
  aging_sketch.aggregates = {{LatAggFunc::kQuantile, "Duration", "P", true, 0.5}};
  aging_sketch.aging_window_micros = 10'000;
  aging_sketch.aging_block_micros = 1'000;
  EXPECT_FALSE(Lat::Create(std::move(aging_sketch)).ok());

  LatSpec bad_q = SketchSpec();
  bad_q.aggregates = {{LatAggFunc::kQuantile, "Duration", "P", false, 1.5}};
  EXPECT_FALSE(Lat::Create(std::move(bad_q)).ok());

  LatSpec nan_q = SketchSpec();
  nan_q.aggregates = {
      {LatAggFunc::kQuantile, "Duration", "P", false, std::nan("")}};
  EXPECT_FALSE(Lat::Create(std::move(nan_q)).ok());

  LatSpec string_quantile = SketchSpec();
  string_quantile.aggregates = {
      {LatAggFunc::kQuantile, "Query_Text", "P", false, 0.5}};
  EXPECT_TRUE(Lat::Create(std::move(string_quantile)).status().IsTypeError());
}

// The per-cell byte budget must hold under a wide dynamic range, with the
// pressure observable through stats and the footprint probe.
TEST(LatSketchTest, QuantileBudgetCollapseIsObservableAndBounded) {
  LatSpec spec;
  spec.name = "Budget";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kQuantile, "Duration", "P90", false, 0.9}};
  spec.quantile_sketch_bytes = 512;
  auto lat = *Lat::Create(spec);
  common::Random rng(31);
  for (int i = 0; i < 3000; ++i) {
    auto q = MakeQuery("s", std::exp(rng.NextDouble() * 14.0 - 7.0));
    lat->Insert(&q, 0);
  }
  EXPECT_GT(lat->stats().sketch_collapses.value(), 0u);
  size_t bytes = 0, cells = 0;
  lat->SketchFootprint(&bytes, &cells);
  EXPECT_GT(cells, 0u);
  EXPECT_LE(bytes, spec.quantile_sketch_bytes);  // one group, one sketch cell
  Row row;
  ASSERT_TRUE(lat->LookupByKey({Value::String("s")}, 0, &row));
  EXPECT_FALSE(row[1].is_null());
  EXPECT_GT(row[1].double_value(), 0.0);

  // A sketch-free LAT reports a zero footprint.
  auto plain = *Lat::Create(BasicSpec());
  EXPECT_FALSE(plain->HasSketchAggs());
  plain->SketchFootprint(&bytes, &cells);
  EXPECT_EQ(bytes, 0u);
  EXPECT_EQ(cells, 0u);
}

// Legacy v1 materialized rows cannot reconstruct sketch state; SeedFrom must
// reject the spec up front instead of silently zeroing the sketches.
TEST(LatSketchTest, SeedFromRejectsSketchBearingSpec) {
  auto lat = *Lat::Create(SketchSpec());
  auto q = MakeQuery("s", 1.0, "t");
  lat->Insert(&q, 0);
  auto table = MakeV1Table(*lat);
  ASSERT_TRUE(lat->PersistTo(table.get(), 0, 0).ok());

  auto restored = *Lat::Create(SketchSpec());
  const auto status = restored->SeedFrom(*table, 0);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_EQ(restored->size(), 0u);
}

// ---------------------------------------------------------------------------
// Aggregate empty-window semantics (NULL-vs-0 audit)
// ---------------------------------------------------------------------------

// A row whose aging blocks have all expired and a restored row whose block
// deque was never allocated are the same empty window: every aggregate must
// answer identically on both (COUNT 0, STDEV 0, SUM/AVG/MIN/MAX NULL).
TEST(LatTest, AgingEmptyWindowMatchesUnallocatedDeque) {
  LatSpec spec;
  spec.name = "Empty";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "AgN", true},
                     {LatAggFunc::kSum, "Duration", "AgSum", true},
                     {LatAggFunc::kAvg, "Duration", "AgAvg", true},
                     {LatAggFunc::kStdev, "Duration", "AgSd", true},
                     {LatAggFunc::kMin, "Duration", "AgMin", true},
                     {LatAggFunc::kMax, "Duration", "AgMax", true}};
  spec.aging_window_micros = 10'000;
  spec.aging_block_micros = 1'000;
  auto expired = *Lat::Create(spec);
  auto q = MakeQuery("s", 5.0);
  expired->Insert(&q, 0);

  // Build the unallocated-deque twin by restoring the same record with its
  // #blocks cells blanked (how a group that never folded an aging value
  // round-trips through the state codec).
  auto exported = MakeStateTable(*expired);
  ASSERT_TRUE(expired->ExportState(exported.get(), 0).ok());
  const std::vector<std::string> names = expired->StateColumnNames();
  auto blanked = MakeStateTable(*expired);
  for (Row& record : AllTableRows(*exported)) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i].size() > 7 &&
          names[i].compare(names[i].size() - 7, 7, "#blocks") == 0) {
        record[i] = Value::String("");
      }
    }
    ASSERT_TRUE(blanked->Insert(std::move(record)).ok());
  }
  auto unallocated = *Lat::Create(spec);
  ASSERT_TRUE(unallocated->ImportState(*blanked, 0).ok());

  const int64_t later = 1'000'000;  // far past the 10ms window
  Row a, b;
  ASSERT_TRUE(expired->LookupByKey({Value::String("s")}, later, &a));
  ASSERT_TRUE(unallocated->LookupByKey({Value::String("s")}, later, &b));
  ASSERT_EQ(a.size(), b.size());
  for (size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].ToString(), b[c].ToString())
        << "column " << expired->column_names()[c];
  }
  EXPECT_EQ(a[1].int_value(), 0);          // COUNT: 0, never NULL
  EXPECT_TRUE(a[2].is_null());             // SUM
  EXPECT_TRUE(a[3].is_null());             // AVG
  EXPECT_DOUBLE_EQ(a[4].double_value(), 0.0);  // STDEV: 0 under 2 samples
  EXPECT_TRUE(a[5].is_null());             // MIN
  EXPECT_TRUE(a[6].is_null());             // MAX
}

}  // namespace
}  // namespace sqlcm::cm
