#include "storage/bplus_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace sqlcm::storage {
namespace {

using common::Random;
using common::Row;
using common::Value;

Row IntKey(int64_t v) { return {Value::Int(v)}; }

TEST(BPlusTreeTest, InsertFindErase) {
  BPlusTree<int> tree;
  EXPECT_TRUE(tree.Insert(IntKey(1), 10));
  EXPECT_TRUE(tree.Insert(IntKey(2), 20));
  EXPECT_FALSE(tree.Insert(IntKey(1), 99));  // duplicate
  ASSERT_NE(tree.Find(IntKey(1)), nullptr);
  EXPECT_EQ(*tree.Find(IntKey(1)), 10);
  EXPECT_EQ(tree.Find(IntKey(3)), nullptr);
  EXPECT_TRUE(tree.Erase(IntKey(1)));
  EXPECT_FALSE(tree.Erase(IntKey(1)));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, OrderedIterationAfterManyInserts) {
  BPlusTree<int64_t> tree;
  Random rng(11);
  std::map<int64_t, int64_t> reference;
  for (int i = 0; i < 5000; ++i) {
    const int64_t k = rng.UniformInt(0, 1'000'000);
    if (reference.emplace(k, i).second) {
      EXPECT_TRUE(tree.Insert(IntKey(k), i));
    } else {
      EXPECT_FALSE(tree.Insert(IntKey(k), i));
    }
  }
  ASSERT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.CheckInvariants());
  auto it = tree.Begin();
  for (const auto& [k, v] : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key()[0].int_value(), k);
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
  EXPECT_GT(tree.Depth(), 1u);
}

TEST(BPlusTreeTest, LowerBoundSemantics) {
  BPlusTree<int> tree;
  for (int64_t k = 0; k < 100; k += 10) tree.Insert(IntKey(k), 0);
  auto it = tree.LowerBound(IntKey(35));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].int_value(), 40);
  it = tree.LowerBound(IntKey(40));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].int_value(), 40);
  it = tree.LowerBound(IntKey(91));
  EXPECT_FALSE(it.Valid());
}

TEST(BPlusTreeTest, CompositeKeysLexicographic) {
  BPlusTree<int> tree;
  tree.Insert({Value::Int(1), Value::Int(2)}, 12);
  tree.Insert({Value::Int(1), Value::Int(1)}, 11);
  tree.Insert({Value::Int(2), Value::Int(0)}, 20);
  auto it = tree.Begin();
  EXPECT_EQ(it.value(), 11);
  it.Next();
  EXPECT_EQ(it.value(), 12);
  it.Next();
  EXPECT_EQ(it.value(), 20);
  // Prefix lower bound: [1] sorts before [1, *].
  auto lb = tree.LowerBound({Value::Int(1)});
  ASSERT_TRUE(lb.Valid());
  EXPECT_EQ(lb.value(), 11);
}

TEST(BPlusTreeTest, CompareKeysPrefixOrder) {
  EXPECT_LT(CompareKeys({Value::Int(1)}, {Value::Int(1), Value::Int(0)}), 0);
  EXPECT_EQ(CompareKeys({Value::Int(1)}, {Value::Int(1)}), 0);
  EXPECT_GT(CompareKeys({Value::Int(2)}, {Value::Int(1), Value::Int(9)}), 0);
}

TEST(BPlusTreeTest, EraseRebalancesToEmpty) {
  BPlusTree<int> tree;
  const int n = 2000;
  for (int64_t k = 0; k < n; ++k) ASSERT_TRUE(tree.Insert(IntKey(k), 1));
  EXPECT_GT(tree.Depth(), 1u);
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Erase(IntKey(k))) << k;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_FALSE(tree.Begin().Valid());
}

struct FuzzParams {
  uint64_t seed;
  int operations;
  int64_t key_space;
};

class BPlusTreeFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

// Property test: random interleaved insert/erase/find must match std::map,
// and structural invariants must hold throughout.
TEST_P(BPlusTreeFuzzTest, MatchesReferenceMap) {
  const FuzzParams params = GetParam();
  Random rng(params.seed);
  BPlusTree<int64_t> tree;
  std::map<int64_t, int64_t> reference;

  for (int op = 0; op < params.operations; ++op) {
    const int64_t k = rng.UniformInt(0, params.key_space - 1);
    switch (rng.Uniform(3)) {
      case 0: {
        const bool inserted = tree.Insert(IntKey(k), op);
        EXPECT_EQ(inserted, reference.emplace(k, op).second);
        break;
      }
      case 1: {
        const bool erased = tree.Erase(IntKey(k));
        EXPECT_EQ(erased, reference.erase(k) == 1);
        break;
      }
      default: {
        int64_t* found = tree.Find(IntKey(k));
        auto ref = reference.find(k);
        ASSERT_EQ(found != nullptr, ref != reference.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, ref->second);
        }
      }
    }
    if (op % 512 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "op " << op;
    }
  }
  ASSERT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.CheckInvariants());
  // Final full-order sweep.
  auto it = tree.Begin();
  for (const auto& [k, v] : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key()[0].int_value(), k);
    it.Next();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreeFuzzTest,
    ::testing::Values(FuzzParams{1, 4000, 100},     // dense, heavy collisions
                      FuzzParams{2, 4000, 100000},  // sparse
                      FuzzParams{3, 8000, 1000},    // medium
                      FuzzParams{4, 8000, 50},      // tiny key space
                      FuzzParams{5, 2000, 10}));    // pathological churn

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree<int> tree;
  tree.Insert({Value::String("banana")}, 2);
  tree.Insert({Value::String("apple")}, 1);
  tree.Insert({Value::String("cherry")}, 3);
  auto it = tree.Begin();
  EXPECT_EQ(it.value(), 1);
  it.Next();
  EXPECT_EQ(it.value(), 2);
}

}  // namespace
}  // namespace sqlcm::storage
