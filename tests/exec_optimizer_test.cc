#include "exec/optimizer.h"

#include <gtest/gtest.h>

#include "exec/planner.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace sqlcm::exec {
namespace {

using common::Value;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() {
    auto t = catalog::TableSchema::Create(
        "t",
        {{"id", catalog::ColumnType::kInt},
         {"grp", catalog::ColumnType::kInt},
         {"val", catalog::ColumnType::kDouble},
         {"name", catalog::ColumnType::kString}},
        {"id"});
    storage::Table* table = *catalog_.CreateTable(std::move(*t));
    EXPECT_TRUE(table->CreateIndex("t_grp", {"grp"}).ok());
    for (int64_t i = 0; i < 100; ++i) {
      EXPECT_TRUE(table->Insert({Value::Int(i), Value::Int(i % 10),
                                 Value::Double(i * 0.5),
                                 Value::String("n" + std::to_string(i))})
                      .ok());
    }
    auto u = catalog::TableSchema::Create(
        "u",
        {{"id", catalog::ColumnType::kInt},
         {"t_id", catalog::ColumnType::kInt}},
        {"id"});
    storage::Table* utable = *catalog_.CreateTable(std::move(*u));
    for (int64_t i = 0; i < 50; ++i) {
      EXPECT_TRUE(utable->Insert({Value::Int(i), Value::Int(i * 2)}).ok());
    }
  }

  std::unique_ptr<PhysicalPlan> Optimize(const std::string& sql) {
    auto stmt = sql::Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    Planner planner(&catalog_);
    auto logical = planner.Plan(**stmt);
    EXPECT_TRUE(logical.ok()) << logical.status();
    Optimizer optimizer;
    auto physical = optimizer.Optimize(**logical);
    EXPECT_TRUE(physical.ok()) << physical.status();
    return std::move(*physical);
  }

  /// First node of the given op found by preorder walk; nullptr if none.
  static const PhysicalPlan* FindNode(const PhysicalPlan& plan, PhysOp op) {
    if (plan.op == op) return &plan;
    for (const auto& child : plan.children) {
      if (const PhysicalPlan* found = FindNode(*child, op)) return found;
    }
    return nullptr;
  }

  storage::Catalog catalog_;
};

TEST_F(OptimizerTest, PointSelectUsesClusteredSeek) {
  auto plan = Optimize("SELECT val FROM t WHERE id = 42");
  const PhysicalPlan* seek = FindNode(*plan, PhysOp::kIndexSeek);
  ASSERT_NE(seek, nullptr);
  EXPECT_EQ(seek->index_name, "");  // primary
  EXPECT_EQ(seek->seek_exprs.size(), 1u);
  EXPECT_DOUBLE_EQ(seek->est_rows, 1.0);
  EXPECT_EQ(FindNode(*plan, PhysOp::kSeqScan), nullptr);
}

TEST_F(OptimizerTest, SecondaryIndexSeek) {
  auto plan = Optimize("SELECT val FROM t WHERE grp = 3");
  const PhysicalPlan* seek = FindNode(*plan, PhysOp::kIndexSeek);
  ASSERT_NE(seek, nullptr);
  EXPECT_EQ(seek->index_name, "t_grp");
}

TEST_F(OptimizerTest, RangeOnClusteredKey) {
  auto plan = Optimize("SELECT val FROM t WHERE id >= 10 AND id <= 20");
  const PhysicalPlan* range = FindNode(*plan, PhysOp::kIndexRange);
  ASSERT_NE(range, nullptr);
  EXPECT_NE(range->range_lo, nullptr);
  EXPECT_NE(range->range_hi, nullptr);
  // Range bounds stay as residual filters for strictness.
  EXPECT_NE(FindNode(*plan, PhysOp::kFilter), nullptr);
}

TEST_F(OptimizerTest, NonSargablePredicateSeqScans) {
  auto plan = Optimize("SELECT val FROM t WHERE val > 10");
  EXPECT_NE(FindNode(*plan, PhysOp::kSeqScan), nullptr);
  EXPECT_NE(FindNode(*plan, PhysOp::kFilter), nullptr);
}

TEST_F(OptimizerTest, ResidualPredicateOnSeek) {
  auto plan = Optimize("SELECT val FROM t WHERE id = 1 AND val > 0");
  EXPECT_NE(FindNode(*plan, PhysOp::kIndexSeek), nullptr);
  const PhysicalPlan* filter = FindNode(*plan, PhysOp::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->predicates.size(), 1u);
}

TEST_F(OptimizerTest, JoinBecomesIndexNestedLoop) {
  auto plan = Optimize(
      "SELECT t.val FROM u JOIN t ON u.t_id = t.id WHERE u.id = 5");
  const PhysicalPlan* inlj = FindNode(*plan, PhysOp::kIndexNLJoin);
  ASSERT_NE(inlj, nullptr);
  EXPECT_EQ(inlj->table->name(), "t");
  // The u.id = 5 predicate must have been pushed into the outer access.
  const PhysicalPlan* seek = FindNode(*inlj->children[0], PhysOp::kIndexSeek);
  ASSERT_NE(seek, nullptr);
  EXPECT_EQ(seek->table->name(), "u");
}

TEST_F(OptimizerTest, JoinWithoutIndexableKeyUsesHashJoin) {
  // Join on non-indexed columns of both sides.
  auto plan = Optimize("SELECT t.val FROM t JOIN u ON t.val = u.t_id");
  // t.val has no index; u.t_id has none either, but equality exists in
  // both directions — INLJ is impossible, hash join applies.
  EXPECT_NE(FindNode(*plan, PhysOp::kHashJoin), nullptr);
}

TEST_F(OptimizerTest, CrossJoinFallsBackToNestedLoop) {
  auto plan = Optimize("SELECT t.val FROM t JOIN u ON t.val > u.t_id");
  EXPECT_NE(FindNode(*plan, PhysOp::kNestedLoopJoin), nullptr);
}

TEST_F(OptimizerTest, AggregationSortLimitPipeline) {
  auto plan = Optimize(
      "SELECT grp, COUNT(*) c, AVG(val) a FROM t GROUP BY grp "
      "ORDER BY c DESC LIMIT 3");
  EXPECT_EQ(plan->op, PhysOp::kLimit);
  EXPECT_EQ(plan->children[0]->op, PhysOp::kSort);
  EXPECT_NE(FindNode(*plan, PhysOp::kHashAggregate), nullptr);
}

TEST_F(OptimizerTest, UpdateDeleteGetAccessPath) {
  auto update = Optimize("UPDATE t SET val = 0 WHERE id = 3");
  EXPECT_EQ(update->op, PhysOp::kUpdate);
  ASSERT_FALSE(update->children.empty());
  EXPECT_EQ(update->children[0]->op, PhysOp::kIndexSeek);
  EXPECT_EQ(update->seek_exprs.size(), 1u);

  auto del = Optimize("DELETE FROM t WHERE val > 100");
  EXPECT_EQ(del->op, PhysOp::kDelete);
  EXPECT_EQ(del->children[0]->op, PhysOp::kSeqScan);
  EXPECT_EQ(del->predicates.size(), 1u);
}

TEST_F(OptimizerTest, EstimatedCostOrdering) {
  auto seek = Optimize("SELECT val FROM t WHERE id = 1");
  auto scan = Optimize("SELECT val FROM t WHERE val > 1");
  EXPECT_LT(seek->est_cost, scan->est_cost);
}

TEST_F(OptimizerTest, SignatureInvariantToConstantsAndPredicateOrder) {
  auto p1 = Optimize("SELECT val FROM t WHERE grp = 3 AND val > 1");
  auto p2 = Optimize("SELECT val FROM t WHERE val > 99 AND grp = 7");
  std::string s1, s2;
  p1->AppendSignature(true, &s1);
  p2->AppendSignature(true, &s2);
  EXPECT_EQ(s1, s2);

  auto p3 = Optimize("SELECT val FROM t WHERE id = 3 AND val > 1");
  std::string s3;
  p3->AppendSignature(true, &s3);
  EXPECT_NE(s1, s3);  // different access path -> different physical sig
}

TEST_F(OptimizerTest, ExplainRendersTree) {
  auto plan = Optimize("SELECT t.val FROM u JOIN t ON u.t_id = t.id");
  const std::string text = plan->Explain();
  EXPECT_NE(text.find("IndexNLJoin"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
}

TEST_F(OptimizerTest, PlannerErrors) {
  Planner planner(&catalog_);
  auto missing_table = sql::Parser::ParseStatement("SELECT x FROM nope");
  EXPECT_TRUE(planner.Plan(**missing_table).status().IsNotFound());

  auto missing_col = sql::Parser::ParseStatement("SELECT nope FROM t");
  EXPECT_TRUE(planner.Plan(**missing_col).status().IsNotFound());

  auto bad_group = sql::Parser::ParseStatement(
      "SELECT val, COUNT(*) FROM t GROUP BY grp");
  EXPECT_TRUE(planner.Plan(**bad_group).status().IsInvalidArgument());

  auto agg_in_where =
      sql::Parser::ParseStatement("SELECT id FROM t WHERE SUM(val) > 1");
  EXPECT_TRUE(planner.Plan(**agg_in_where).status().IsInvalidArgument());
}

}  // namespace
}  // namespace sqlcm::exec
