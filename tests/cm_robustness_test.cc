// Robustness-layer tests (docs/ROBUSTNESS.md): the fault-injection
// registry itself, crash-safe snapshot persistence with last-good-fallback
// recovery, LAT checkpoint/restore continuity under injected faults, rule
// quarantine inside the live engine, and graceful degradation under
// overload. Every injection point defined by the robustness layer is
// exercised at least once here (ISSUE 2 acceptance criteria).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/clock.h"
#include "common/fault.h"
#include "engine/session.h"
#include "sqlcm/actions_io.h"
#include "sqlcm/lat.h"
#include "sqlcm/load_governor.h"
#include "sqlcm/monitor_engine.h"
#include "sqlcm/system_views.h"
#include "storage/catalog.h"
#include "storage/table_io.h"

namespace sqlcm::cm {
namespace {

using common::FaultKind;
using common::FaultRegistry;
using common::MockClock;
using common::Row;
using common::Value;
using exec::QueryResult;
using storage::LoadTableCsv;
using storage::SnapshotLoadInfo;
using storage::Table;
using storage::WriteTableCsv;
using storage::WriteTableCsvWithRetry;

/// Every fixture below arms process-global fault points; reset on both ends
/// so tests stay hermetic in any order.
class FaultFixture : public ::testing::Test {
 protected:
  FaultFixture() { FaultRegistry::Get()->Reset(); }
  ~FaultFixture() override { FaultRegistry::Get()->Reset(); }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

// ---------------------------------------------------------------------------
// FaultRegistry
// ---------------------------------------------------------------------------

using FaultRegistryTest = FaultFixture;

TEST_F(FaultRegistryTest, ArmFromSpecParsesAndArms) {
  auto* reg = FaultRegistry::Get();
  ASSERT_TRUE(
      reg->ArmFromSpec("a.b=io_error; c.d = slow:0.5:3 ;;e.f=crash_rename")
          .ok());
  const auto points = reg->Snapshot();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_TRUE(reg->FireKind("a.b") == FaultKind::kIOError);
  for (const auto& point : points) {
    if (point.point == "c.d") {
      EXPECT_EQ(point.spec.kind, FaultKind::kSlow);
      EXPECT_DOUBLE_EQ(point.spec.probability, 0.5);
      EXPECT_EQ(point.spec.max_fires, 3);
    }
  }
}

TEST_F(FaultRegistryTest, ArmFromSpecRejectsMalformedEntries) {
  auto* reg = FaultRegistry::Get();
  EXPECT_FALSE(reg->ArmFromSpec("a.b").ok());                // no '='
  EXPECT_FALSE(reg->ArmFromSpec("a.b=frobnicate").ok());     // unknown kind
  EXPECT_FALSE(reg->ArmFromSpec("a.b=io_error:1:2:3").ok()); // extra field
  EXPECT_FALSE(reg->ArmFromSpec("=io_error").ok());          // empty point
}

TEST_F(FaultRegistryTest, MaxFiresSelfDisarms) {
  auto* reg = FaultRegistry::Get();
  reg->Arm("p", {FaultKind::kIOError, 1.0, /*max_fires=*/2});
  EXPECT_TRUE(reg->Fire("p"));
  EXPECT_TRUE(reg->Fire("p"));
  EXPECT_FALSE(reg->Fire("p"));  // budget exhausted
  EXPECT_EQ(reg->fires("p"), 2u);
  EXPECT_EQ(reg->hits("p"), 3u);
}

TEST_F(FaultRegistryTest, ProbabilityIsSeededAndCounted) {
  auto* reg = FaultRegistry::Get();
  reg->Seed(12345);
  reg->Arm("p", {FaultKind::kIOError, 0.5, -1});
  for (int i = 0; i < 1000; ++i) (void)reg->Fire("p");
  EXPECT_EQ(reg->hits("p"), 1000u);
  EXPECT_GT(reg->fires("p"), 350u);
  EXPECT_LT(reg->fires("p"), 650u);

  // The same seed replays the same firing sequence (CI reproducibility).
  const uint64_t first_run = reg->fires("p");
  reg->Reset();
  reg->Seed(12345);
  reg->Arm("p", {FaultKind::kIOError, 0.5, -1});
  for (int i = 0; i < 1000; ++i) (void)reg->Fire("p");
  EXPECT_EQ(reg->fires("p"), first_run);
}

TEST_F(FaultRegistryTest, DisarmStopsFiringButKeepsCounters) {
  auto* reg = FaultRegistry::Get();
  reg->Arm("p", {FaultKind::kIOError, 1.0, -1});
  reg->Arm("other", {FaultKind::kIOError, 1.0, -1});  // keeps registry active
  EXPECT_TRUE(reg->Fire("p"));
  reg->Disarm("p");
  EXPECT_FALSE(reg->Fire("p"));
  EXPECT_EQ(reg->fires("p"), 1u);
  EXPECT_EQ(reg->hits("p"), 2u);
}

// ---------------------------------------------------------------------------
// Crash-safe snapshots (storage/table_io) under injected faults
// ---------------------------------------------------------------------------

class SnapshotFaultTest : public FaultFixture {
 protected:
  SnapshotFaultTest()
      : path_(::testing::TempDir() + "/robustness_snapshot.csv") {
    CleanupFiles();
  }
  ~SnapshotFaultTest() override { CleanupFiles(); }

  void CleanupFiles() {
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  catalog::TableSchema MakeSchema() {
    auto schema = catalog::TableSchema::Create(
        "t",
        {{"id", catalog::ColumnType::kInt},
         {"name", catalog::ColumnType::kString}},
        {"id"});
    EXPECT_TRUE(schema.ok());
    return std::move(schema).value();
  }

  /// Writes a snapshot holding ids [1..rows].
  void WriteSnapshot(int rows) {
    Table table(1, MakeSchema());
    for (int i = 1; i <= rows; ++i) {
      ASSERT_TRUE(
          table.Insert({Value::Int(i), Value::String("r" + std::to_string(i))})
              .ok());
    }
    ASSERT_TRUE(WriteTableCsv(table, path_).ok());
  }

  size_t LoadedRowCount(SnapshotLoadInfo* info = nullptr) {
    Table table(2, MakeSchema());
    const auto status = LoadTableCsv(&table, path_, nullptr, info);
    EXPECT_TRUE(status.ok()) << status;
    return status.ok() ? table.row_count() : 0;
  }

  std::string path_;
};

TEST_F(SnapshotFaultTest, InjectedIoErrorLeavesPreviousSnapshotIntact) {
  WriteSnapshot(2);
  FaultRegistry::Get()->Arm(storage::kFaultSnapshotWrite,
                            {FaultKind::kIOError, 1.0, -1});
  Table bigger(1, MakeSchema());
  ASSERT_TRUE(bigger.Insert({Value::Int(9), Value::String("x")}).ok());
  EXPECT_FALSE(WriteTableCsv(bigger, path_).ok());
  FaultRegistry::Get()->Reset();
  EXPECT_EQ(LoadedRowCount(), 2u);  // the old snapshot survived untouched
}

TEST_F(SnapshotFaultTest, ShortWriteTearsTmpButNotPrimary) {
  WriteSnapshot(2);
  FaultRegistry::Get()->Arm(storage::kFaultSnapshotWrite,
                            {FaultKind::kShortWrite, 1.0, -1});
  Table bigger(1, MakeSchema());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        bigger.Insert({Value::Int(i), Value::String("new")}).ok());
  }
  EXPECT_FALSE(WriteTableCsv(bigger, path_).ok());
  FaultRegistry::Get()->Reset();
  // The torn bytes landed in .tmp only; the published snapshot still loads.
  EXPECT_TRUE(FileExists(path_ + ".tmp"));
  EXPECT_EQ(LoadedRowCount(), 2u);
  // And the torn tmp itself is rejected by verification, not half-loaded.
  Table scratch(3, MakeSchema());
  EXPECT_FALSE(LoadTableCsv(&scratch, path_ + ".tmp").ok());
  EXPECT_EQ(scratch.row_count(), 0u);
}

TEST_F(SnapshotFaultTest, CrashBeforeRenameKeepsPreviousSnapshot) {
  WriteSnapshot(2);
  FaultRegistry::Get()->Arm(storage::kFaultSnapshotWrite,
                            {FaultKind::kCrashRename, 1.0, -1});
  Table bigger(1, MakeSchema());
  ASSERT_TRUE(bigger.Insert({Value::Int(7), Value::String("x")}).ok());
  EXPECT_FALSE(WriteTableCsv(bigger, path_).ok());
  FaultRegistry::Get()->Reset();
  EXPECT_TRUE(FileExists(path_ + ".tmp"));  // durable but unpublished
  EXPECT_EQ(LoadedRowCount(), 2u);
}

TEST_F(SnapshotFaultTest, CorruptCrcFallsBackToLastGoodSnapshot) {
  WriteSnapshot(1);
  WriteSnapshot(3);  // rotates the 1-row snapshot to .bak
  std::string content = ReadFile(path_);
  ASSERT_FALSE(content.empty());
  content.back() = content.back() == 'X' ? 'Y' : 'X';  // same length, bad CRC
  WriteFile(path_, content);

  SnapshotLoadInfo info;
  EXPECT_EQ(LoadedRowCount(&info), 1u);  // served from .bak
  EXPECT_TRUE(info.used_fallback);
  EXPECT_NE(info.primary_error.find("corrupt"), std::string::npos)
      << info.primary_error;
}

TEST_F(SnapshotFaultTest, TruncatedFileFallsBackToLastGoodSnapshot) {
  WriteSnapshot(1);
  WriteSnapshot(3);
  const std::string content = ReadFile(path_);
  // Drop the tail of the body (the header line stays intact, so this is a
  // clean truncation rather than a malformed header).
  WriteFile(path_, content.substr(0, content.size() - 4));

  SnapshotLoadInfo info;
  EXPECT_EQ(LoadedRowCount(&info), 1u);
  EXPECT_TRUE(info.used_fallback);
  EXPECT_NE(info.primary_error.find("truncated"), std::string::npos)
      << info.primary_error;
}

TEST_F(SnapshotFaultTest, CorruptionWithoutBackupIsAnErrorNotAHalfLoad) {
  WriteSnapshot(3);
  const std::string content = ReadFile(path_);
  WriteFile(path_, content.substr(0, content.size() - 2));

  Table table(2, MakeSchema());
  EXPECT_FALSE(LoadTableCsv(&table, path_).ok());
  EXPECT_EQ(table.row_count(), 0u);  // nothing seeded from the bad file
}

TEST_F(SnapshotFaultTest, InjectedReadErrorFallsBackToBak) {
  WriteSnapshot(1);
  WriteSnapshot(3);
  // First read (the primary) fails; the .bak read is allowed through.
  FaultRegistry::Get()->Arm(storage::kFaultSnapshotRead,
                            {FaultKind::kIOError, 1.0, /*max_fires=*/1});
  SnapshotLoadInfo info;
  EXPECT_EQ(LoadedRowCount(&info), 1u);
  EXPECT_TRUE(info.used_fallback);
}

TEST_F(SnapshotFaultTest, WriteRetriesTransientFailuresWithBackoff) {
  FaultRegistry::Get()->Arm(storage::kFaultSnapshotWrite,
                            {FaultKind::kIOError, 1.0, /*max_fires=*/2});
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::String("a")}).ok());

  MockClock clock;
  int retries = 0;
  const auto status = WriteTableCsvWithRetry(table, path_, /*attempts=*/4,
                                             /*backoff_micros=*/100, &clock,
                                             &retries);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(retries, 2);
  EXPECT_EQ(clock.NowMicros(), 100 + 200);  // doubling backoff between tries
  EXPECT_EQ(LoadedRowCount(), 1u);

  // With fewer attempts than failures, the last error is surfaced.
  FaultRegistry::Get()->Reset();
  FaultRegistry::Get()->Arm(storage::kFaultSnapshotWrite,
                            {FaultKind::kIOError, 1.0, -1});
  EXPECT_FALSE(
      WriteTableCsvWithRetry(table, path_, 2, 100, &clock, &retries).ok());
  EXPECT_EQ(retries, 1);
}

// ---------------------------------------------------------------------------
// LAT checkpoint / restore continuity (paper §4.3) under faults
// ---------------------------------------------------------------------------

class LatCheckpointTest : public FaultFixture {
 protected:
  LatCheckpointTest()
      : path_(::testing::TempDir() + "/robustness_lat.csv") {
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  /// A database + monitor with Duration_LAT fed on every commit.
  struct Node {
    engine::Database db;
    MonitorEngine monitor;
    std::unique_ptr<engine::Session> session;

    Node() : monitor(&db), session(db.CreateSession()) {
      // Set up the schema before the feed rule exists, so only the
      // deliberately-run queries land in the LAT.
      Exec("CREATE TABLE items (id INT, val FLOAT, PRIMARY KEY(id))");
      Exec("INSERT INTO items VALUES (1, 1.0)");
      LatSpec spec;
      spec.name = "Duration_LAT";
      spec.group_by = {{"Logical_Signature", "Sig"}};
      spec.aggregates = {{LatAggFunc::kAvg, "Duration", "Avg_Duration", false},
                         {LatAggFunc::kCount, "", "N", false}};
      EXPECT_TRUE(monitor.DefineLat(std::move(spec)).ok());
      RuleSpec feed;
      feed.name = "feed";
      feed.event = "Query.Commit";
      feed.action = "Query.Insert(Duration_LAT)";
      EXPECT_TRUE(monitor.AddRule(feed).ok());
    }

    void Exec(const std::string& sql) {
      auto result = session->Execute(sql);
      ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
    }

    /// Distinct statement templates => distinct signatures => LAT groups.
    void RunDistinctQueries(int n, int offset = 0) {
      for (int i = 0; i < n; ++i) {
        std::string cols = "val";
        for (int j = 0; j < i + offset; ++j) cols += ", val";
        Exec("SELECT " + cols + " FROM items WHERE id = 1");
      }
    }

    size_t LatSize() {
      Lat* lat = monitor.FindLat("Duration_LAT");
      EXPECT_NE(lat, nullptr);
      return lat == nullptr ? 0 : lat->size();
    }
  };

  std::string path_;
};

TEST_F(LatCheckpointTest, CheckpointRestoreRoundTripAcrossEngines) {
  Node writer;
  writer.RunDistinctQueries(3);
  ASSERT_EQ(writer.LatSize(), 3u);
  ASSERT_TRUE(writer.monitor.CheckpointLat("Duration_LAT", path_).ok());

  Node reader;  // a "restarted server"
  EXPECT_EQ(reader.LatSize(), 0u);
  ASSERT_TRUE(reader.monitor.RestoreLat("Duration_LAT", path_).ok());
  EXPECT_EQ(reader.LatSize(), 3u);
  EXPECT_EQ(reader.monitor.metrics().persist_fallbacks.value(), 0u);
}

TEST_F(LatCheckpointTest, RestoreFallsBackAfterCorruptionAndRecordsIt) {
  Node writer;
  writer.RunDistinctQueries(2);
  ASSERT_TRUE(writer.monitor.CheckpointLat("Duration_LAT", path_).ok());
  writer.RunDistinctQueries(2, /*offset=*/2);  // now 4 groups
  ASSERT_TRUE(writer.monitor.CheckpointLat("Duration_LAT", path_).ok());

  // Corrupt the primary snapshot; the 2-group .bak remains good.
  std::string content = ReadFile(path_);
  content.back() = content.back() == 'X' ? 'Y' : 'X';
  WriteFile(path_, content);

  Node reader;
  ASSERT_TRUE(reader.monitor.RestoreLat("Duration_LAT", path_).ok());
  EXPECT_EQ(reader.LatSize(), 2u);  // last good snapshot, not garbage
  EXPECT_EQ(reader.monitor.metrics().persist_fallbacks.value(), 1u);
  // The recovery is reported, not silent: error ring names the fallback.
  EXPECT_NE(reader.monitor.last_error().find("fallback"), std::string::npos)
      << reader.monitor.last_error();
}

TEST_F(LatCheckpointTest, CrashBeforeRenameLeavesPriorCheckpointRestorable) {
  Node writer;
  writer.RunDistinctQueries(2);
  ASSERT_TRUE(writer.monitor.CheckpointLat("Duration_LAT", path_).ok());

  FaultRegistry::Get()->Arm(storage::kFaultSnapshotWrite,
                            {FaultKind::kCrashRename, 1.0, -1});
  writer.RunDistinctQueries(2, /*offset=*/2);
  EXPECT_FALSE(writer.monitor.CheckpointLat("Duration_LAT", path_).ok());
  EXPECT_GT(writer.monitor.total_errors(), 0u);  // failure was recorded
  FaultRegistry::Get()->Reset();

  Node reader;
  ASSERT_TRUE(reader.monitor.RestoreLat("Duration_LAT", path_).ok());
  EXPECT_EQ(reader.LatSize(), 2u);
}

TEST_F(LatCheckpointTest, CheckpointRetriesTransientFaultsAndCountsThem) {
  Node writer;
  writer.RunDistinctQueries(2);
  FaultRegistry::Get()->Arm(storage::kFaultSnapshotWrite,
                            {FaultKind::kIOError, 1.0, /*max_fires=*/1});
  ASSERT_TRUE(writer.monitor.CheckpointLat("Duration_LAT", path_).ok());
  EXPECT_EQ(writer.monitor.metrics().persist_retries.value(), 1u);
}

TEST_F(LatCheckpointTest, RestoreLoadsLegacyV1Snapshot) {
  // A server upgraded to raw-state (v2) checkpoints must still load
  // snapshots written by the previous release: v1 materialized rows in the
  // old {group, aggregates..., persist_ts} schema, seeded through the
  // documented lossy path (COUNT drives the seed count; AVG reconstructs
  // the sum).
  auto schema = catalog::TableSchema::Create(
      "legacy",
      {{"Sig", catalog::ColumnType::kString},
       {"Avg_Duration", catalog::ColumnType::kDouble},
       {"N", catalog::ColumnType::kInt},
       {"persist_ts", catalog::ColumnType::kInt}},
      {});
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  Table legacy(0, std::move(*schema));
  ASSERT_TRUE(legacy
                  .Insert({Value::String("legacy_sig"), Value::Double(2.5),
                           Value::Int(4), Value::Int(99)})
                  .ok());
  ASSERT_TRUE(
      WriteTableCsv(legacy, path_, storage::kSnapshotVersionV1).ok());

  Node reader;
  ASSERT_TRUE(reader.monitor.RestoreLat("Duration_LAT", path_).ok());
  EXPECT_EQ(reader.LatSize(), 1u);
  Lat* lat = reader.monitor.FindLat("Duration_LAT");
  ASSERT_NE(lat, nullptr);
  Row row;
  ASSERT_TRUE(lat->LookupByKey({Value::String("legacy_sig")}, 0, &row));
  EXPECT_DOUBLE_EQ(row[1].double_value(), 2.5);  // AVG preserved
  EXPECT_EQ(row[2].int_value(), 4);              // COUNT drives the seed
  // A clean v1 load is version negotiation, not a .bak recovery.
  EXPECT_EQ(reader.monitor.metrics().persist_fallbacks.value(), 0u);
}

TEST_F(LatCheckpointTest, CorruptV2HeaderFallsBackToBak) {
  Node writer;
  writer.RunDistinctQueries(2);
  ASSERT_TRUE(writer.monitor.CheckpointLat("Duration_LAT", path_).ok());
  writer.RunDistinctQueries(2, /*offset=*/2);  // now 4 groups
  ASSERT_TRUE(writer.monitor.CheckpointLat("Duration_LAT", path_).ok());

  // Mangle the snapshot header's version tag ("v=2" -> "v=7"); the body is
  // untouched, so only header validation can reject this file.
  std::string content = ReadFile(path_);
  const size_t tag = content.find("v=2");
  ASSERT_NE(tag, std::string::npos) << content.substr(0, 64);
  content[tag + 2] = '7';
  WriteFile(path_, content);

  Node reader;
  ASSERT_TRUE(reader.monitor.RestoreLat("Duration_LAT", path_).ok());
  EXPECT_EQ(reader.LatSize(), 2u);  // the 2-group .bak, not garbage
  EXPECT_EQ(reader.monitor.metrics().persist_fallbacks.value(), 1u);
  EXPECT_NE(reader.monitor.last_error().find("fallback"), std::string::npos)
      << reader.monitor.last_error();
}

// ---------------------------------------------------------------------------
// Sketch-bearing LAT checkpoints (v3 snapshot codec)
// ---------------------------------------------------------------------------

class SketchCheckpointTest : public FaultFixture {
 protected:
  SketchCheckpointTest()
      : path_(::testing::TempDir() + "/robustness_sketch_lat.csv") {
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  /// A database + monitor with a sketch-bearing Sketch_LAT fed on commit.
  struct Node {
    engine::Database db;
    MonitorEngine monitor;
    std::unique_ptr<engine::Session> session;

    Node() : monitor(&db), session(db.CreateSession()) {
      Exec("CREATE TABLE items (id INT, val FLOAT, PRIMARY KEY(id))");
      Exec("INSERT INTO items VALUES (1, 1.0)");
      LatSpec spec;
      spec.name = "Sketch_LAT";
      spec.group_by = {{"Logical_Signature", "Sig"}};
      spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                         {LatAggFunc::kQuantile, "Duration", "P50", false, 0.5},
                         {LatAggFunc::kDistinct, "Query_Text", "DQ", false}};
      EXPECT_TRUE(monitor.DefineLat(std::move(spec)).ok());
      RuleSpec feed;
      feed.name = "feed";
      feed.event = "Query.Commit";
      feed.action = "Query.Insert(Sketch_LAT)";
      EXPECT_TRUE(monitor.AddRule(feed).ok());
    }

    void Exec(const std::string& sql) {
      auto result = session->Execute(sql);
      ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
    }

    void RunDistinctQueries(int n, int offset = 0) {
      for (int i = 0; i < n; ++i) {
        std::string cols = "val";
        for (int j = 0; j < i + offset; ++j) cols += ", val";
        Exec("SELECT " + cols + " FROM items WHERE id = 1");
      }
    }

    Lat* lat() { return monitor.FindLat("Sketch_LAT"); }
  };

  /// A v1 legacy snapshot in Sketch_LAT's *materialized* schema — the shape
  /// an old release (or a mis-pointed restore path) would hand us.
  void WriteLegacyV1Snapshot() {
    auto schema = catalog::TableSchema::Create(
        "legacy",
        {{"Sig", catalog::ColumnType::kString},
         {"N", catalog::ColumnType::kInt},
         {"P50", catalog::ColumnType::kDouble},
         {"DQ", catalog::ColumnType::kInt},
         {"persist_ts", catalog::ColumnType::kInt}},
        {});
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    Table legacy(0, std::move(*schema));
    ASSERT_TRUE(legacy
                    .Insert({Value::String("legacy_sig"), Value::Int(4),
                             Value::Double(2.5), Value::Int(3), Value::Int(9)})
                    .ok());
    ASSERT_TRUE(
        WriteTableCsv(legacy, path_, storage::kSnapshotVersionV1).ok());
  }

  std::string path_;
};

TEST_F(SketchCheckpointTest, CheckpointWritesV3AndRoundTripsSketches) {
  Node writer;
  writer.RunDistinctQueries(3);
  ASSERT_TRUE(writer.monitor.CheckpointLat("Sketch_LAT", path_).ok());
  // Sketch-bearing state carries the extra #sketch cells -> v3 header.
  EXPECT_NE(ReadFile(path_).find("v=3"), std::string::npos);

  Node reader;
  ASSERT_TRUE(reader.monitor.RestoreLat("Sketch_LAT", path_).ok());
  ASSERT_EQ(reader.lat()->size(), writer.lat()->size());
  for (const Row& expect : writer.lat()->Snapshot(0)) {
    Row got;
    ASSERT_TRUE(reader.lat()->LookupByKey({expect[0]}, 0, &got));
    ASSERT_EQ(got.size(), expect.size());
    for (size_t c = 0; c < expect.size(); ++c) {
      EXPECT_EQ(got[c].ToString(), expect[c].ToString())
          << "column " << writer.lat()->column_names()[c];
    }
  }
  EXPECT_EQ(reader.monitor.metrics().persist_fallbacks.value(), 0u);
}

TEST_F(SketchCheckpointTest, V1SnapshotIsRejectedNotSilentlyZeroed) {
  WriteLegacyV1Snapshot();
  Node reader;
  const common::Status status = reader.monitor.RestoreLat("Sketch_LAT", path_);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  // No half-restored garbage: the LAT stays empty and the failure is
  // reported through the error ring.
  EXPECT_EQ(reader.lat()->size(), 0u);
  EXPECT_FALSE(reader.monitor.last_error().empty());
}

TEST_F(SketchCheckpointTest, V1PrimaryFallsBackToV3Bak) {
  Node writer;
  writer.RunDistinctQueries(2);
  ASSERT_TRUE(writer.monitor.CheckpointLat("Sketch_LAT", path_).ok());
  writer.RunDistinctQueries(2, /*offset=*/2);
  ASSERT_TRUE(writer.monitor.CheckpointLat("Sketch_LAT", path_).ok());
  ASSERT_TRUE(FileExists(path_ + ".bak"));
  // An old release clobbers the primary with a v1 materialized snapshot
  // (rotating the 4-group v3 snapshot into .bak); restore must reject the
  // v1 primary and serve the last good v3 snapshot from .bak instead.
  WriteLegacyV1Snapshot();

  Node reader;
  ASSERT_TRUE(reader.monitor.RestoreLat("Sketch_LAT", path_).ok());
  EXPECT_EQ(reader.lat()->size(), 4u);
  EXPECT_EQ(reader.monitor.metrics().persist_fallbacks.value(), 1u);
  EXPECT_NE(reader.monitor.last_error().find("fallback"), std::string::npos)
      << reader.monitor.last_error();
}

// ---------------------------------------------------------------------------
// Rule quarantine in the live engine
// ---------------------------------------------------------------------------

class QuarantineTest : public ::testing::Test {
 protected:
  static MonitorEngine::Options TightBreakerOptions() {
    MonitorEngine::Options options;
    options.breaker.consecutive_failure_threshold = 3;
    options.breaker.window_size = 8;
    options.breaker.min_window_events = 1000;  // consecutive wire only
    options.breaker.cooldown_micros = 3'600'000'000;  // no half-open in test
    return options;
  }

  QuarantineTest()
      : monitor_(&db_, TightBreakerOptions()),
        session_(db_.CreateSession()) {
    Exec("CREATE TABLE items (id INT, val FLOAT, PRIMARY KEY(id))");
    Exec("INSERT INTO items VALUES (1, 1.0)");
    // The bad rule persists two attributes into a one-column table, which
    // fails on every fire; the good rule feeds a LAT and always succeeds.
    Exec("CREATE TABLE Clash (only_col INT)");
    LatSpec spec;
    spec.name = "GoodLat";
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kCount, "", "N", false}};
    EXPECT_TRUE(monitor_.DefineLat(std::move(spec)).ok());

    RuleSpec bad;
    bad.name = "bad";
    bad.event = "Query.Commit";
    bad.action = "Query.Persist(Clash, ID, Duration)";
    auto bad_added = monitor_.AddRule(bad);
    EXPECT_TRUE(bad_added.ok());
    bad_id_ = *bad_added;

    RuleSpec good;
    good.name = "good";
    good.event = "Query.Commit";
    good.action = "Query.Insert(GoodLat)";
    EXPECT_TRUE(monitor_.AddRule(good).ok());
  }

  void Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  QueryResult Query(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *result : QueryResult{};
  }

  uint64_t GoodRuleFires() {
    for (const auto& rule : monitor_.SnapshotRules()) {
      if (rule->name == "good") return rule->stats.fires.value();
    }
    return 0;
  }

  engine::Database db_;
  MonitorEngine monitor_;
  std::unique_ptr<engine::Session> session_;
  uint64_t bad_id_ = 0;
};

TEST_F(QuarantineTest, FailingRuleIsQuarantinedWhileOthersKeepFiring) {
  constexpr int kQueries = 10;
  for (int i = 0; i < kQueries; ++i) Exec("SELECT val FROM items WHERE id = 1");

  const auto& metrics = monitor_.metrics();
  // Three consecutive failures trip the breaker; later events skip the rule
  // instead of failing, so the error total stays bounded.
  EXPECT_EQ(metrics.breaker_trips.value(), 1u);
  EXPECT_EQ(metrics.breaker_skips.value(), static_cast<uint64_t>(kQueries - 3));
  // 3 action errors + 1 quarantine notice.
  EXPECT_EQ(monitor_.total_errors(), 4u);
  EXPECT_NE(monitor_.last_error().find("quarantined"), std::string::npos)
      << monitor_.last_error();
  // The rest of the rule set kept firing on every event.
  EXPECT_EQ(GoodRuleFires(), static_cast<uint64_t>(kQueries));

  // The quarantine is visible through the normal SQL path.
  const QueryResult result = Query(
      "SELECT name, quarantine_state, quarantine_trips, quarantine_skipped "
      "FROM sqlcm_rule_stats");
  ASSERT_EQ(result.rows.size(), 2u);
  for (const Row& row : result.rows) {
    if (row[0].string_value() == "bad") {
      EXPECT_EQ(row[1].string_value(), "open");
      EXPECT_EQ(row[2].int_value(), 1);
      EXPECT_GT(row[3].int_value(), 0);
    } else {
      EXPECT_EQ(row[1].string_value(), "closed");
      EXPECT_EQ(row[2].int_value(), 0);
    }
  }
}

TEST_F(QuarantineTest, ReinstateRuleClosesTheBreakerAndResumesEvaluation) {
  for (int i = 0; i < 5; ++i) Exec("SELECT val FROM items WHERE id = 1");
  ASSERT_EQ(monitor_.metrics().breaker_trips.value(), 1u);
  const uint64_t errors_while_open = monitor_.total_errors();

  ASSERT_TRUE(monitor_.ReinstateRule(bad_id_).ok());
  EXPECT_TRUE(monitor_.ReinstateRule(9999).IsNotFound());

  // The rule is evaluated again (and fails again — fresh errors prove the
  // breaker actually re-admitted it).
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_GT(monitor_.total_errors(), errors_while_open);
}

// ---------------------------------------------------------------------------
// LoadGovernor (unit)
// ---------------------------------------------------------------------------

LoadGovernor::Options TightGovernor() {
  LoadGovernor::Options options;
  options.overhead_budget = 0.10;
  options.recover_ratio = 0.5;
  options.window_micros = 1000;
  options.min_hooks_per_window = 2;
  return options;
}

/// Feeds one full window of hooks at the given busy fraction.
void FeedWindow(LoadGovernor* governor, int64_t* now, double fraction) {
  const int64_t window = governor->options().window_micros;
  // Four hooks spread across the window, then one past its end to roll it.
  for (int i = 0; i < 4; ++i) {
    *now += window / 4;
    governor->RecordHook(static_cast<int64_t>(fraction * window / 4), *now);
  }
  *now += 1;
  governor->RecordHook(0, *now);
}

TEST(LoadGovernorTest, ClimbsUnderPressureAndRecoversWithHysteresis) {
  LoadGovernor governor(TightGovernor());
  int64_t now = 1;
  governor.RecordHook(0, now);  // establishes the first window start

  // Sustained 50% overhead walks the ladder all the way down.
  for (int i = 0; i < 10 && governor.level() < LoadGovernor::kLevelSampleEvents;
       ++i) {
    FeedWindow(&governor, &now, 0.5);
  }
  EXPECT_EQ(governor.level(), LoadGovernor::kLevelSampleEvents);
  EXPECT_GE(governor.level_raises(), 4u);
  EXPECT_GT(governor.last_overhead_fraction(), 0.10);

  // 8% overhead is below budget but above budget*recover_ratio: hold level.
  FeedWindow(&governor, &now, 0.08);
  FeedWindow(&governor, &now, 0.08);
  EXPECT_EQ(governor.level(), LoadGovernor::kLevelSampleEvents);

  // Near-idle windows recover one level at a time.
  for (int i = 0; i < 10 && governor.level() > LoadGovernor::kLevelFull; ++i) {
    FeedWindow(&governor, &now, 0.01);
  }
  EXPECT_EQ(governor.level(), LoadGovernor::kLevelFull);
  EXPECT_GE(governor.level_drops(), 4u);
}

TEST(LoadGovernorTest, ListenerSeesEveryTransition) {
  LoadGovernor governor(TightGovernor());
  std::vector<std::pair<int, int>> transitions;
  governor.SetLevelListener([&](int from, int to) {
    transitions.push_back({from, to});
  });
  governor.ForceLevel(3);
  governor.ForceLevel(3);  // no-op, no duplicate callback
  governor.ForceLevel(0);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], std::make_pair(0, 3));
  EXPECT_EQ(transitions[1], std::make_pair(3, 0));
}

TEST(LoadGovernorTest, ForcedLevelIgnoresMeasurement) {
  LoadGovernor governor(TightGovernor());
  governor.ForceLevel(LoadGovernor::kLevelNoTrace);
  int64_t now = 1;
  governor.RecordHook(0, now);
  for (int i = 0; i < 5; ++i) FeedWindow(&governor, &now, 0.9);
  EXPECT_EQ(governor.level(), LoadGovernor::kLevelNoTrace);  // pinned
  EXPECT_TRUE(governor.forced());
  governor.ClearForce();
  for (int i = 0; i < 5; ++i) FeedWindow(&governor, &now, 0.9);
  EXPECT_EQ(governor.level(), LoadGovernor::kLevelSampleEvents);
}

TEST(LoadGovernorTest, AdmitEventSamplesOnlyAtMaxLevel) {
  LoadGovernor::Options options = TightGovernor();
  options.sample_shift = 3;  // 1 in 8
  LoadGovernor governor(options);
  for (uint64_t seq = 0; seq < 16; ++seq) EXPECT_TRUE(governor.AdmitEvent(seq));
  governor.ForceLevel(LoadGovernor::kLevelSampleEvents);
  int admitted = 0;
  for (uint64_t seq = 0; seq < 64; ++seq) {
    if (governor.AdmitEvent(seq)) ++admitted;
  }
  EXPECT_EQ(admitted, 8);
}

// ---------------------------------------------------------------------------
// Degradation wired through the engine
// ---------------------------------------------------------------------------

class GovernorIntegrationTest : public FaultFixture {
 protected:
  static engine::Database::Options DbOptions(common::Clock* clock) {
    engine::Database::Options options;
    options.clock = clock;
    return options;
  }

  static MonitorEngine::Options MonitorOptions() {
    MonitorEngine::Options options;
    options.detailed_timing = true;
    options.governor.overhead_budget = 0.05;
    options.governor.window_micros = 4000;
    options.governor.min_hooks_per_window = 2;
    return options;
  }

  GovernorIntegrationTest()
      : db_(DbOptions(&clock_)),
        monitor_(&db_, MonitorOptions()),
        session_(db_.CreateSession()) {
    Exec("CREATE TABLE items (id INT, val FLOAT, PRIMARY KEY(id))");
    Exec("INSERT INTO items VALUES (1, 1.0)");
    LatSpec spec;
    spec.name = "AgedLat";
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kCount, "", "N", false}};
    EXPECT_TRUE(monitor_.DefineLat(std::move(spec)).ok());
    RuleSpec feed;
    feed.name = "feed";
    feed.event = "Query.Commit";
    feed.action = "Query.Insert(AgedLat)";
    EXPECT_TRUE(monitor_.AddRule(feed).ok());
    monitor_.trace_ring()->set_enabled(true);
  }

  void Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  MockClock clock_;
  engine::Database db_;
  MonitorEngine monitor_;
  std::unique_ptr<engine::Session> session_;
};

TEST_F(GovernorIntegrationTest, ForceLevelShedsInOrderAndRecoveryRestores) {
  ASSERT_TRUE(monitor_.detailed_timing());
  ASSERT_TRUE(monitor_.trace_ring()->enabled());
  Lat* lat = monitor_.FindLat("AgedLat");
  ASSERT_NE(lat, nullptr);
  ASSERT_FALSE(lat->shed_aging());

  monitor_.governor()->ForceLevel(LoadGovernor::kLevelNoDetailedTiming);
  EXPECT_FALSE(monitor_.detailed_timing());
  EXPECT_TRUE(monitor_.trace_ring()->enabled());  // next rung untouched

  monitor_.governor()->ForceLevel(LoadGovernor::kLevelShedAging);
  EXPECT_FALSE(monitor_.trace_ring()->enabled());
  EXPECT_TRUE(lat->shed_aging());
  EXPECT_EQ(monitor_.metrics().governor_level.value(),
            static_cast<int64_t>(LoadGovernor::kLevelShedAging));

  // Recovery restores exactly the operator-configured state.
  monitor_.governor()->ForceLevel(LoadGovernor::kLevelFull);
  EXPECT_TRUE(monitor_.detailed_timing());
  EXPECT_TRUE(monitor_.trace_ring()->enabled());
  EXPECT_FALSE(lat->shed_aging());
  EXPECT_GT(monitor_.metrics().governor_drops.value(), 0u);
}

TEST_F(GovernorIntegrationTest, MaxLevelSamplesRuleEvaluation) {
  monitor_.governor()->ForceLevel(LoadGovernor::kLevelSampleEvents);
  constexpr int kQueries = 32;
  for (int i = 0; i < kQueries; ++i) Exec("SELECT val FROM items WHERE id = 1");
  const auto& metrics = monitor_.metrics();
  EXPECT_GT(metrics.events_sampled_out.value(), 0u);
  EXPECT_LT(metrics.events_processed.value(),
            static_cast<uint64_t>(kQueries));
  EXPECT_GT(metrics.events_processed.value(), 0u);  // sampling, not blackout
}

TEST_F(GovernorIntegrationTest, SlowHookFaultDrivesTheGovernorUp) {
  // Chaos lever: every timed hook sleeps 1ms on the (mock) clock, so
  // measured overhead saturates and the ladder must climb.
  FaultRegistry::Get()->Arm(kFaultHookSlow, {FaultKind::kSlow, 1.0, -1});
  for (int i = 0; i < 40; ++i) Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_GT(FaultRegistry::Get()->fires(kFaultHookSlow), 0u);
  EXPECT_GT(monitor_.governor()->level(), LoadGovernor::kLevelFull);
  EXPECT_GT(monitor_.metrics().governor_raises.value(), 0u);
  EXPECT_GT(monitor_.governor()->last_overhead_fraction(), 0.05);
}

// ---------------------------------------------------------------------------
// Remaining injection points: LAT latch, action sink, sync log, view
// ---------------------------------------------------------------------------

using MiscFaultTest = FaultFixture;

TEST_F(MiscFaultTest, LatLatchStallCountsAsContention) {
  LatSpec spec;
  spec.name = "L";
  spec.object_class = MonitoredClass::kQuery;
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false}};
  auto lat = *Lat::Create(spec);

  QueryRecord rec;
  rec.logical_signature = "s";
  lat->Insert(&rec, 0);
  EXPECT_EQ(lat->stats().latch_contention.value(), 0u);

  FaultRegistry::Get()->Arm(kFaultLatLatch,
                            {FaultKind::kLatchStall, 1.0, /*max_fires=*/1});
  lat->Insert(&rec, 0);
  EXPECT_EQ(lat->stats().latch_contention.value(), 1u);
  EXPECT_EQ(lat->size(), 1u);  // the insert itself still succeeded
}

TEST_F(MiscFaultTest, ActionFileAppendFaultFailsTheSink) {
  const std::string path = ::testing::TempDir() + "/robustness_sink.log";
  std::remove(path.c_str());
  FileAppendingSink sink(path);
  ASSERT_TRUE(sink.SendMail("body", "dba@example.com").ok());

  FaultRegistry::Get()->Arm(kFaultActionAppend,
                            {FaultKind::kIOError, 1.0, -1});
  EXPECT_FALSE(sink.SendMail("body", "dba@example.com").ok());
  EXPECT_FALSE(sink.RunExternal("restat items").ok());
  FaultRegistry::Get()->Reset();
  // Only the pre-fault line landed.
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1u);
  std::remove(path.c_str());
}

TEST_F(MiscFaultTest, SyncLogWriteFaultFailsAppendRow) {
  const std::string path = ::testing::TempDir() + "/robustness_synclog.csv";
  std::remove(path.c_str());
  auto writer = storage::SyncCsvWriter::Open(path, /*sync_every_row=*/true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendRow({Value::Int(1)}).ok());

  FaultRegistry::Get()->Arm(storage::kFaultSyncLogWrite,
                            {FaultKind::kIOError, 1.0, -1});
  EXPECT_FALSE((*writer)->AppendRow({Value::Int(2)}).ok());
  std::remove(path.c_str());
}

TEST_F(MiscFaultTest, FaultPointsViewShowsLiveCounters) {
  engine::Database db;
  MonitorEngine monitor(&db);
  auto session = db.CreateSession();

  FaultRegistry::Get()->Arm("storage.snapshot.write",
                            {FaultKind::kIOError, 0.25, 7});
  (void)FaultRegistry::Get()->Fire("storage.snapshot.write");

  auto result = session->Execute(
      "SELECT kind, probability, max_fires, hits FROM sqlcm_fault_points "
      "WHERE point = 'storage.snapshot.write'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  const Row& row = result->rows[0];
  EXPECT_EQ(row[0].string_value(), "io_error");
  EXPECT_DOUBLE_EQ(row[1].double_value(), 0.25);
  EXPECT_EQ(row[2].int_value(), 7);
  EXPECT_GE(row[3].int_value(), 1);
}

}  // namespace
}  // namespace sqlcm::cm
