#include "engine/session.h"

#include <gtest/gtest.h>

#include <thread>

#include "engine/database.h"

namespace sqlcm::engine {
namespace {

using common::Value;
using exec::ParamMap;
using exec::QueryResult;

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : session_(db_.CreateSession()) {
    Exec("CREATE TABLE t (id INT, grp INT, val FLOAT, name VARCHAR(32), "
         "PRIMARY KEY(id))");
    Exec("CREATE INDEX t_grp ON t (grp)");
    for (int i = 0; i < 20; ++i) {
      Exec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 4) + ", " + std::to_string(i * 0.5) + ", 'n" +
           std::to_string(i) + "')");
    }
  }

  QueryResult Exec(const std::string& sql, const ParamMap* params = nullptr) {
    auto result = session_->Execute(sql, params);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionTest, PointSelect) {
  auto result = Exec("SELECT name, val FROM t WHERE id = 7");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].string_value(), "n7");
  EXPECT_DOUBLE_EQ(result.rows[0][1].double_value(), 3.5);
  EXPECT_EQ(result.column_names, (std::vector<std::string>{"name", "val"}));
}

TEST_F(SessionTest, SecondaryIndexSelect) {
  auto result = Exec("SELECT id FROM t WHERE grp = 2 ORDER BY id");
  ASSERT_EQ(result.rows.size(), 5u);
  EXPECT_EQ(result.rows[0][0].int_value(), 2);
  EXPECT_EQ(result.rows[4][0].int_value(), 18);
}

TEST_F(SessionTest, JoinsAndExpressions) {
  Exec("CREATE TABLE grp_names (grp INT, label VARCHAR(16), PRIMARY KEY(grp))");
  Exec("INSERT INTO grp_names VALUES (0,'zero'),(1,'one'),(2,'two'),(3,'three')");
  auto result = Exec(
      "SELECT t.id, g.label, t.val * 2 AS doubled FROM t "
      "JOIN grp_names g ON t.grp = g.grp WHERE t.id < 3 ORDER BY t.id");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[1][1].string_value(), "one");
  EXPECT_DOUBLE_EQ(result.rows[2][2].double_value(), 2.0);
}

TEST_F(SessionTest, AggregationWithGroupBy) {
  auto result =
      Exec("SELECT grp, COUNT(*) n, AVG(val) a, MIN(id) lo, MAX(id) hi "
           "FROM t GROUP BY grp ORDER BY grp");
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0][1].int_value(), 5);
  EXPECT_EQ(result.rows[3][3].int_value(), 3);
  EXPECT_EQ(result.rows[3][4].int_value(), 19);
}

TEST_F(SessionTest, GlobalAggregateOnEmptyResult) {
  auto result = Exec("SELECT COUNT(*) c, SUM(val) s FROM t WHERE id > 999");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].int_value(), 0);
  EXPECT_TRUE(result.rows[0][1].is_null());
}

TEST_F(SessionTest, UpdateAndDelete) {
  auto update = Exec("UPDATE t SET val = val + 100 WHERE grp = 1");
  EXPECT_EQ(update.rows_affected, 5u);
  auto check = Exec("SELECT MIN(val) m FROM t WHERE grp = 1");
  EXPECT_GE(check.rows[0][0].AsDouble(), 100.0);

  auto del = Exec("DELETE FROM t WHERE id >= 16");
  EXPECT_EQ(del.rows_affected, 4u);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].int_value(), 16);
}

TEST_F(SessionTest, ParameterizedStatementsShareCachedPlan) {
  ParamMap p1 = {{"k", Value::Int(1)}};
  ParamMap p2 = {{"k", Value::Int(2)}};
  const std::string sql = "SELECT name FROM t WHERE id = @k";
  EXPECT_EQ(Exec(sql, &p1).rows[0][0].string_value(), "n1");
  const uint64_t misses = db_.plan_cache()->misses();
  EXPECT_EQ(Exec(sql, &p2).rows[0][0].string_value(), "n2");
  EXPECT_EQ(db_.plan_cache()->misses(), misses);  // second run was a hit
  EXPECT_GE(db_.plan_cache()->hits(), 1u);
}

TEST_F(SessionTest, ExplicitTransactionCommitAndRollback) {
  Exec("BEGIN");
  EXPECT_TRUE(session_->in_transaction());
  Exec("DELETE FROM t WHERE id = 0");
  Exec("COMMIT");
  EXPECT_FALSE(session_->in_transaction());
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].int_value(), 19);

  Exec("BEGIN");
  Exec("DELETE FROM t WHERE id = 1");
  Exec("INSERT INTO t VALUES (100, 0, 0.0, 'temp')");
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].int_value(), 19);
  ASSERT_EQ(Exec("SELECT name FROM t WHERE id = 1").rows.size(), 1u);
}

TEST_F(SessionTest, TransactionControlErrors) {
  EXPECT_FALSE(session_->Commit().ok());
  EXPECT_FALSE(session_->Rollback().ok());
  ASSERT_TRUE(session_->Begin().ok());
  EXPECT_FALSE(session_->Begin().ok());
  ASSERT_TRUE(session_->Commit().ok());
}

TEST_F(SessionTest, FailedStatementAbortsTransaction) {
  Exec("BEGIN");
  Exec("DELETE FROM t WHERE id = 5");
  // Duplicate key failure aborts the whole transaction.
  auto dup = session_->Execute("INSERT INTO t VALUES (6, 0, 0.0, 'dup')");
  ASSERT_FALSE(dup.ok());
  EXPECT_FALSE(session_->in_transaction());
  ASSERT_EQ(Exec("SELECT name FROM t WHERE id = 5").rows.size(), 1u);
}

TEST_F(SessionTest, DdlClearsPlanCache) {
  Exec("SELECT id FROM t WHERE id = 1");
  EXPECT_GT(db_.plan_cache()->size(), 0u);
  Exec("CREATE TABLE fresh (a INT, PRIMARY KEY(a))");
  EXPECT_EQ(db_.plan_cache()->size(), 0u);
  Exec("DROP TABLE fresh");
}

TEST_F(SessionTest, StoredProcedureWithBranches) {
  Procedure proc;
  proc.name = "touch";
  proc.params = {"key", "mode"};
  proc.body.push_back(ProcStep::If(
      "@mode = 1",
      {ProcStep::Sql("UPDATE t SET val = 1000 WHERE id = @key")},
      {ProcStep::Sql("SELECT name FROM t WHERE id = @key")}));
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());

  auto read = Exec("EXEC touch 3, 0");
  ASSERT_EQ(read.rows.size(), 1u);
  EXPECT_EQ(read.rows[0][0].string_value(), "n3");

  Exec("EXEC touch 3, 1");
  EXPECT_DOUBLE_EQ(
      Exec("SELECT val FROM t WHERE id = 3").rows[0][0].double_value(),
      1000.0);
}

TEST_F(SessionTest, ProcedureErrors) {
  EXPECT_TRUE(session_->Execute("EXEC missing").status().IsNotFound());
  Procedure proc;
  proc.name = "two_args";
  proc.params = {"a", "b"};
  proc.body.push_back(ProcStep::Sql("SELECT id FROM t WHERE id = @a"));
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());
  EXPECT_TRUE(
      session_->Execute("EXEC two_args 1").status().IsInvalidArgument());
  EXPECT_TRUE(db_.CreateProcedure({"two_args", {}, {}}).IsAlreadyExists());
}

TEST_F(SessionTest, SessionRollsBackOnDestruction) {
  auto other = db_.CreateSession();
  ASSERT_TRUE(other->Begin().ok());
  auto result = other->Execute("DELETE FROM t WHERE id = 9");
  ASSERT_TRUE(result.ok());
  other.reset();  // implicit rollback
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t").rows[0][0].int_value(), 20);
}

TEST_F(SessionTest, CrossSessionWriteConflictBlocks) {
  auto writer1 = db_.CreateSession();
  auto writer2 = db_.CreateSession();
  ASSERT_TRUE(writer1->Begin().ok());
  ASSERT_TRUE(writer1->Execute("UPDATE t SET val = 1 WHERE id = 2").ok());

  std::atomic<bool> done{false};
  std::thread blocked([&] {
    // Blocks until writer1 commits.
    auto result = writer2->Execute("UPDATE t SET val = 2 WHERE id = 2");
    EXPECT_TRUE(result.ok()) << result.status();
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  ASSERT_TRUE(writer1->Commit().ok());
  blocked.join();
  EXPECT_TRUE(done.load());
  EXPECT_DOUBLE_EQ(
      Exec("SELECT val FROM t WHERE id = 2").rows[0][0].double_value(), 2.0);
}

TEST_F(SessionTest, DeadlockVictimGetsDeadlockStatus) {
  auto s1 = db_.CreateSession();
  auto s2 = db_.CreateSession();
  ASSERT_TRUE(s1->Begin().ok());
  ASSERT_TRUE(s2->Begin().ok());
  ASSERT_TRUE(s1->Execute("UPDATE t SET val = 1 WHERE id = 10").ok());
  ASSERT_TRUE(s2->Execute("UPDATE t SET val = 1 WHERE id = 11").ok());

  std::thread t1([&] {
    // s1 waits on id 11.
    auto result = s1->Execute("UPDATE t SET val = 2 WHERE id = 11");
    // Either granted (after s2 dies) or deadlock victim itself.
    (void)result;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto result = s2->Execute("UPDATE t SET val = 2 WHERE id = 10");
  t1.join();
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsDeadlock()) << result.status();
    EXPECT_FALSE(s2->in_transaction());  // aborted
  }
}

TEST_F(SessionTest, QueryCancellation) {
  auto victim = db_.CreateSession();
  ASSERT_TRUE(victim->Begin().ok());
  victim->current_txn()->Cancel();
  auto result = victim->Execute("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
}

}  // namespace
}  // namespace sqlcm::engine
