#include "sqlcm/timer.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.h"

namespace sqlcm::cm {
namespace {

class TimerTest : public ::testing::Test {
 protected:
  TimerTest()
      : clock_(1'000'000),
        timers_(&clock_, [this](const TimerRecord& timer) {
          std::lock_guard<std::mutex> lock(mu_);
          fired_storage_.push_back(timer);
        }) {}

  /// Copy of the alarms delivered so far (the background-thread test needs
  /// synchronized access).
  std::vector<TimerRecord> fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_storage_;
  }

  common::MockClock clock_;
  mutable std::mutex mu_;
  std::vector<TimerRecord> fired_storage_;
  TimerManager timers_;
};

TEST_F(TimerTest, CreateAndDuplicate) {
  ASSERT_TRUE(timers_.CreateTimer("t1").ok());
  EXPECT_TRUE(timers_.CreateTimer("T1").IsAlreadyExists());
  EXPECT_TRUE(timers_.IsTimerName("t1"));
  EXPECT_TRUE(timers_.IsTimerName("T1"));
  EXPECT_FALSE(timers_.IsTimerName("t2"));
}

TEST_F(TimerTest, DisabledTimerNeverFires) {
  ASSERT_TRUE(timers_.CreateTimer("t1").ok());
  clock_.Advance(10'000'000);
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 0u);
  EXPECT_TRUE(fired().empty());
}

TEST_F(TimerTest, FiniteRepeatsCountDown) {
  ASSERT_TRUE(timers_.CreateTimer("t1").ok());
  ASSERT_TRUE(timers_.Set("t1", 1'000'000, 2).ok());
  // Not due yet.
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 0u);
  clock_.Advance(1'000'000);
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 1u);
  clock_.Advance(1'000'000);
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 1u);
  clock_.Advance(10'000'000);
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 0u);  // exhausted
  const auto alarms = fired();
  ASSERT_EQ(alarms.size(), 2u);
  EXPECT_EQ(alarms[0].name, "t1");
  EXPECT_GT(alarms[0].now_secs, 0.0);
}

TEST_F(TimerTest, InfiniteRepeats) {
  ASSERT_TRUE(timers_.CreateTimer("t1").ok());
  ASSERT_TRUE(timers_.Set("t1", 500'000, -1).ok());
  for (int i = 0; i < 5; ++i) {
    clock_.Advance(500'000);
    EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 1u);
  }
  EXPECT_EQ(fired().size(), 5u);
}

TEST_F(TimerTest, ZeroRepeatsDisables) {
  ASSERT_TRUE(timers_.CreateTimer("t1").ok());
  ASSERT_TRUE(timers_.Set("t1", 100'000, -1).ok());
  clock_.Advance(100'000);
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 1u);
  ASSERT_TRUE(timers_.Set("t1", 100'000, 0).ok());  // disable (paper §5.3)
  clock_.Advance(10'000'000);
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 0u);
}

TEST_F(TimerTest, NoBurstCatchUpAfterStall) {
  ASSERT_TRUE(timers_.CreateTimer("t1").ok());
  ASSERT_TRUE(timers_.Set("t1", 100'000, -1).ok());
  // A long stall covers many intervals; only one alarm fires and the timer
  // re-arms from "now".
  clock_.Advance(5'000'000);
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 1u);
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 0u);
  clock_.Advance(100'000);
  EXPECT_EQ(timers_.Poll(clock_.NowMicros()), 1u);
}

TEST_F(TimerTest, MultipleTimersIndependent) {
  ASSERT_TRUE(timers_.CreateTimer("fast").ok());
  ASSERT_TRUE(timers_.CreateTimer("slow").ok());
  ASSERT_TRUE(timers_.Set("fast", 100'000, -1).ok());
  ASSERT_TRUE(timers_.Set("slow", 1'000'000, -1).ok());
  size_t fast = 0, slow = 0;
  for (int i = 0; i < 10; ++i) {
    clock_.Advance(100'000);
    timers_.Poll(clock_.NowMicros());
  }
  for (const TimerRecord& timer : fired()) {
    if (timer.name == "fast") ++fast;
    else ++slow;
  }
  EXPECT_EQ(fast, 10u);
  EXPECT_EQ(slow, 1u);
}

TEST_F(TimerTest, SnapshotExposesState) {
  ASSERT_TRUE(timers_.CreateTimer("t1").ok());
  ASSERT_TRUE(timers_.Set("t1", 2'000'000, 3).ok());
  auto snapshot = timers_.Snapshot(clock_.NowMicros());
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "t1");
  EXPECT_EQ(snapshot[0].remaining_alarms, 3);
  EXPECT_EQ(snapshot[0].interval_micros, 2'000'000);
  EXPECT_DOUBLE_EQ(snapshot[0].now_secs,
                   static_cast<double>(clock_.NowMicros()) / 1e6);
}

TEST_F(TimerTest, SetErrors) {
  EXPECT_TRUE(timers_.Set("missing", 1'000'000, 1).IsNotFound());
  ASSERT_TRUE(timers_.CreateTimer("t1").ok());
  EXPECT_TRUE(timers_.Set("t1", -5, 1).IsInvalidArgument());
  EXPECT_TRUE(timers_.Set("t1", 0, 0).ok());  // disabling needs no interval
}

TEST_F(TimerTest, BackgroundThreadDelivers) {
  // The polling thread reads the mock clock; advancing it triggers alarms
  // without wall-clock waits.
  ASSERT_TRUE(timers_.CreateTimer("bg").ok());
  ASSERT_TRUE(timers_.Set("bg", 50'000, 1).ok());
  timers_.Start();
  clock_.Advance(60'000);
  // Wait (real time) for the 1ms-cadence thread to observe the mock time.
  for (int i = 0; i < 500 && fired().empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  timers_.Stop();
  const auto alarms = fired();
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].name, "bg");
}

}  // namespace
}  // namespace sqlcm::cm
