#include "sqlcm/signature.h"

#include <gtest/gtest.h>

#include "exec/optimizer.h"
#include "exec/planner.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace sqlcm::cm {
namespace {

using common::Value;

class SignatureTest : public ::testing::Test {
 protected:
  SignatureTest() {
    auto t = catalog::TableSchema::Create(
        "t",
        {{"id", catalog::ColumnType::kInt},
         {"grp", catalog::ColumnType::kInt},
         {"val", catalog::ColumnType::kDouble}},
        {"id"});
    table_ = *catalog_.CreateTable(std::move(*t));
    EXPECT_TRUE(table_->CreateIndex("t_grp", {"grp"}).ok());
    for (int64_t i = 0; i < 50; ++i) {
      EXPECT_TRUE(
          table_->Insert({Value::Int(i), Value::Int(i % 5), Value::Double(i)})
              .ok());
    }
  }

  struct Compiled {
    std::unique_ptr<exec::LogicalPlan> logical;
    std::unique_ptr<exec::PhysicalPlan> physical;
  };

  Compiled Compile(const std::string& sql) {
    auto stmt = sql::Parser::ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    exec::Planner planner(&catalog_);
    auto logical = planner.Plan(**stmt);
    EXPECT_TRUE(logical.ok()) << logical.status();
    exec::Optimizer optimizer;
    auto physical = optimizer.Optimize(**logical);
    EXPECT_TRUE(physical.ok()) << physical.status();
    return {std::move(*logical), std::move(*physical)};
  }

  Signature LogicalSig(const std::string& sql) {
    return LogicalQuerySignature(*Compile(sql).logical);
  }
  Signature PhysicalSig(const std::string& sql) {
    return PhysicalPlanSignature(*Compile(sql).physical);
  }

  storage::Catalog catalog_;
  storage::Table* table_;
};

TEST_F(SignatureTest, SameTemplateDifferentConstantsMatch) {
  const auto a = LogicalSig("SELECT val FROM t WHERE id = 1");
  const auto b = LogicalSig("SELECT val FROM t WHERE id = 999");
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.hash, b.hash);
}

TEST_F(SignatureTest, PredicateOrderInsignificant) {
  const auto a = LogicalSig("SELECT val FROM t WHERE grp = 1 AND val > 2");
  const auto b = LogicalSig("SELECT val FROM t WHERE val > 5 AND grp = 9");
  EXPECT_EQ(a.text, b.text);
}

TEST_F(SignatureTest, DifferentStructureDiffers) {
  const auto a = LogicalSig("SELECT val FROM t WHERE id = 1");
  const auto b = LogicalSig("SELECT val FROM t WHERE grp = 1");
  const auto c = LogicalSig("SELECT id FROM t WHERE id = 1");
  EXPECT_NE(a.text, b.text);
  EXPECT_NE(a.text, c.text);
}

TEST_F(SignatureTest, IdentifiedParametersKeepIdentity) {
  // @a = @a matches, @a vs @b differ (paper §4.2: P_i matches only P_i).
  const auto a1 = LogicalSig("SELECT val FROM t WHERE id = @a");
  const auto a2 = LogicalSig("SELECT val FROM t WHERE id = @a");
  const auto b = LogicalSig("SELECT val FROM t WHERE id = @b");
  EXPECT_EQ(a1.text, a2.text);
  EXPECT_NE(a1.text, b.text);
  // Ad-hoc constants wildcard to the same symbol regardless of value, and
  // differ from named parameters.
  const auto c = LogicalSig("SELECT val FROM t WHERE id = 7");
  EXPECT_NE(a1.text, c.text);
}

TEST_F(SignatureTest, PhysicalDiffersWhenAccessPathDiffers) {
  // Same logical shape (single-table filter select on one column) but
  // different access paths: id is the clustered key, val is unindexed.
  const auto seek = PhysicalSig("SELECT val FROM t WHERE id = 1");
  const auto scan = PhysicalSig("SELECT id FROM t WHERE val = 1");
  EXPECT_NE(seek.text, scan.text);
  EXPECT_NE(seek.text.find("IndexSeek"), std::string::npos);
  EXPECT_NE(scan.text.find("SeqScan"), std::string::npos);
}

TEST_F(SignatureTest, PhysicalStableAcrossConstants) {
  const auto a = PhysicalSig("SELECT val FROM t WHERE id = 1");
  const auto b = PhysicalSig("SELECT val FROM t WHERE id = 2");
  EXPECT_EQ(a.text, b.text);
}

TEST_F(SignatureTest, DmlSignatures) {
  const auto u1 = LogicalSig("UPDATE t SET val = 1 WHERE id = 2");
  const auto u2 = LogicalSig("UPDATE t SET val = 9 WHERE id = 4");
  const auto d = LogicalSig("DELETE FROM t WHERE id = 2");
  EXPECT_EQ(u1.text, u2.text);
  EXPECT_NE(u1.text, d.text);
  const auto i1 = LogicalSig("INSERT INTO t VALUES (100, 1, 0.5)");
  const auto i2 = LogicalSig("INSERT INTO t VALUES (101, 2, 1.5)");
  EXPECT_EQ(i1.text, i2.text);
}

TEST_F(SignatureTest, TransactionSignatureSequencing) {
  const auto q1 = LogicalSig("SELECT val FROM t WHERE id = 1");
  const auto q2 = LogicalSig("SELECT val FROM t WHERE grp = 1");
  const auto ab = TransactionSignature({q1.hash, q2.hash});
  const auto ba = TransactionSignature({q2.hash, q1.hash});
  const auto ab2 = TransactionSignature({q1.hash, q2.hash});
  EXPECT_EQ(ab.text, ab2.text);
  EXPECT_NE(ab.text, ba.text);  // order matters: different code paths
  EXPECT_EQ(TransactionSignature({}).text, "[]");
}

TEST_F(SignatureTest, HashIsStableFnv) {
  EXPECT_EQ(HashSignature("abc"), HashSignature("abc"));
  EXPECT_NE(HashSignature("abc"), HashSignature("abd"));
  EXPECT_EQ(HashSignature(""), 0xcbf29ce484222325ull);
}

TEST_F(SignatureTest, JoinShapeCaptured) {
  auto u = catalog::TableSchema::Create(
      "u", {{"id", catalog::ColumnType::kInt}}, {"id"});
  ASSERT_TRUE(catalog_.CreateTable(std::move(*u)).ok());
  const auto join = LogicalSig("SELECT t.val FROM t JOIN u ON t.id = u.id");
  const auto single = LogicalSig("SELECT t.val FROM t");
  EXPECT_NE(join.text, single.text);
  EXPECT_NE(join.text.find("Join"), std::string::npos);
  EXPECT_NE(join.text.find("u"), std::string::npos);
}

}  // namespace
}  // namespace sqlcm::cm
