#include "workload/driver.h"
#include "workload/tpch_gen.h"

#include <gtest/gtest.h>

#include "engine/session.h"

namespace sqlcm::workload {
namespace {

TEST(TpchGenTest, LoadsExpectedRowCounts) {
  engine::Database db;
  TpchConfig config;
  config.num_orders = 500;
  config.num_parts = 50;
  ASSERT_TRUE(LoadTpch(&db, config).ok());

  EXPECT_EQ(db.catalog()->GetTable("part")->row_count(), 50u);
  EXPECT_EQ(db.catalog()->GetTable("orders")->row_count(), 500u);
  EXPECT_EQ(static_cast<int64_t>(db.catalog()->GetTable("lineitem")->row_count()),
            ExpectedLineitemRows(config));
  // Secondary index exists.
  EXPECT_EQ(db.catalog()->GetTable("lineitem")->indexes().size(), 1u);
}

TEST(TpchGenTest, DeterministicInSeed) {
  engine::Database db1, db2;
  TpchConfig config;
  config.num_orders = 100;
  config.num_parts = 20;
  ASSERT_TRUE(LoadTpch(&db1, config).ok());
  ASSERT_TRUE(LoadTpch(&db2, config).ok());
  auto s1 = db1.CreateSession();
  auto s2 = db2.CreateSession();
  auto r1 = s1->Execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 42");
  auto r2 = s2->Execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 42");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->rows[0][0].double_value(), r2->rows[0][0].double_value());
}

TEST(WorkloadTest, MixedWorkloadShapeAndExecution) {
  engine::Database db;
  TpchConfig config;
  config.num_orders = 400;
  config.num_parts = 40;
  ASSERT_TRUE(LoadTpch(&db, config).ok());

  MixedWorkloadConfig mix;
  mix.num_point_selects = 200;
  mix.num_join_selects = 4;
  mix.join_rows_min = 50;
  mix.join_rows_max = 100;
  auto items = GenerateMixedWorkload(config, mix);
  EXPECT_EQ(items.size(), 204u);

  auto session = db.CreateSession();
  auto stats = RunWorkload(session.get(), items);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->statements, 204);
  // Every point select hits exactly one row; joins add more.
  EXPECT_GT(stats->rows_returned, 200);
  EXPECT_GT(stats->wall_micros, 0);
}

TEST(WorkloadTest, JoinSelectsReturnTargetRowCounts) {
  engine::Database db;
  TpchConfig config;
  config.num_orders = 2000;
  config.num_parts = 100;
  ASSERT_TRUE(LoadTpch(&db, config).ok());

  MixedWorkloadConfig mix;
  mix.num_point_selects = 10;
  mix.num_join_selects = 5;
  mix.join_rows_min = 100;
  mix.join_rows_max = 200;
  auto items = GenerateMixedWorkload(config, mix);
  auto session = db.CreateSession();
  for (const auto& item : items) {
    auto result = session->Execute(item.sql, &item.params);
    ASSERT_TRUE(result.ok()) << item.sql << ": " << result.status();
    if (item.sql.find("JOIN") != std::string::npos) {
      // Row counts land near the configured target (±2x: line counts are
      // random per order).
      EXPECT_GT(result->rows.size(), 30u);
      EXPECT_LT(result->rows.size(), 500u);
    }
  }
}

TEST(WorkloadTest, PointSelectWorkloadAlwaysHits) {
  engine::Database db;
  TpchConfig config;
  config.num_orders = 300;
  config.num_parts = 30;
  ASSERT_TRUE(LoadTpch(&db, config).ok());
  auto items = GeneratePointSelectWorkload(config, 100, /*seed=*/3);
  auto session = db.CreateSession();
  auto stats = RunWorkload(session.get(), items);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_returned, 100);  // every select finds its row
}

TEST(WorkloadTest, DeterministicWorkloadGeneration) {
  TpchConfig config;
  config.num_orders = 100;
  MixedWorkloadConfig mix;
  mix.num_point_selects = 50;
  mix.num_join_selects = 2;
  auto a = GenerateMixedWorkload(config, mix);
  auto b = GenerateMixedWorkload(config, mix);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sql, b[i].sql);
    EXPECT_EQ(a[i].params.size(), b[i].params.size());
  }
}

}  // namespace
}  // namespace sqlcm::workload
