// Physical-layer concurrency: table latching must keep B+-tree structure
// and secondary indexes consistent under concurrent mutation, independent
// of transactional locking (which tests/engine_concurrency_test.cc covers).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "storage/table.h"

namespace sqlcm::storage {
namespace {

using common::Random;
using common::Row;
using common::Value;

catalog::TableSchema MakeSchema() {
  return std::move(*catalog::TableSchema::Create(
      "t",
      {{"id", catalog::ColumnType::kInt},
       {"grp", catalog::ColumnType::kInt},
       {"payload", catalog::ColumnType::kString}},
      {"id"}));
}

TEST(TableConcurrencyTest, ParallelInsertsDisjointKeys) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.CreateIndex("by_grp", {"grp"}).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &errors, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t id = static_cast<int64_t>(t) * kPerThread + i;
        auto key = table.Insert(
            {Value::Int(id), Value::Int(id % 16), Value::String("p")});
        if (!key.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(table.row_count(), static_cast<size_t>(kThreads * kPerThread));

  // Every row is reachable through both access paths.
  std::vector<Row> keys, rows;
  ASSERT_TRUE(
      table.IndexPrefixLookup("by_grp", {Value::Int(3)}, &keys, &rows).ok());
  EXPECT_EQ(rows.size(), static_cast<size_t>(kThreads * kPerThread / 16));
}

TEST(TableConcurrencyTest, MixedInsertDeleteReadersStayConsistent) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(table.CreateIndex("by_grp", {"grp"}).ok());
  // Pre-populate.
  for (int64_t id = 0; id < 4000; ++id) {
    ASSERT_TRUE(
        table.Insert({Value::Int(id), Value::Int(id % 8), Value::String("x")})
            .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};

  // Writers: each owns a disjoint id stripe, inserting and deleting.
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&table, w] {
      Random rng(static_cast<uint64_t>(w));
      for (int i = 0; i < 3000; ++i) {
        const int64_t id = 10'000 + w * 100 + static_cast<int64_t>(rng.Uniform(100));
        if (rng.OneIn(2)) {
          (void)table.Insert(
              {Value::Int(id), Value::Int(id % 8), Value::String("y")});
        } else {
          (void)table.Delete({Value::Int(id)});
        }
      }
    });
  }
  // Readers: scans and index lookups must never see torn state (a row
  // reachable via the secondary index resolves through the primary, and
  // batch scans return well-formed rows).
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&table, &stop, &reader_errors] {
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<Row> keys, rows;
        if (!table.IndexPrefixLookup("by_grp", {Value::Int(2)}, &keys, &rows)
                 .ok()) {
          reader_errors.fetch_add(1);
        }
        for (const Row& row : rows) {
          if (row.size() != 3 || !row[0].is_int()) reader_errors.fetch_add(1);
        }
        std::optional<Row> after;
        keys.clear();
        rows.clear();
        (void)table.ScanBatch(after, 256, &keys, &rows);
        if (keys.size() != rows.size()) reader_errors.fetch_add(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(reader_errors.load(), 0);

  // Final physical consistency: primary rows == secondary entries.
  size_t via_secondary = 0;
  for (int g = 0; g < 8; ++g) {
    std::vector<Row> keys, rows;
    ASSERT_TRUE(
        table.IndexPrefixLookup("by_grp", {Value::Int(g)}, &keys, &rows).ok());
    via_secondary += rows.size();
  }
  EXPECT_EQ(via_secondary, table.row_count());
}

TEST(TableConcurrencyTest, ConcurrentUpdatesSameRowLastWriteWins) {
  Table table(1, MakeSchema());
  ASSERT_TRUE(
      table.Insert({Value::Int(1), Value::Int(0), Value::String("init")})
          .ok());
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &errors, t] {
      for (int i = 0; i < 500; ++i) {
        auto old_row = table.Update(
            {Value::Int(1)},
            {Value::Int(1), Value::Int(t), Value::String("w" + std::to_string(t))});
        if (!old_row.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  auto row = table.Get({Value::Int(1)});
  ASSERT_TRUE(row.has_value());
  // Whatever won, the row is well-formed and matches one of the writers.
  EXPECT_EQ((*row)[2].string_value(),
            "w" + std::to_string((*row)[1].int_value()));
}

}  // namespace
}  // namespace sqlcm::storage
