// End-to-end tests of the monitoring engine against the paper's example
// applications (§3): outlier detection, blocking monitoring, top-k,
// auditing with timers, and resource governing.
#include "sqlcm/monitor_engine.h"

#include <gtest/gtest.h>

#include <thread>

#include "engine/session.h"

namespace sqlcm::cm {
namespace {

using common::Value;
using exec::ParamMap;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : monitor_(&db_), session_(db_.CreateSession()) {
    Exec("CREATE TABLE items (id INT, grp INT, val FLOAT, PRIMARY KEY(id))");
    for (int i = 0; i < 50; ++i) {
      Exec("INSERT INTO items VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 5) + ", 1.0)");
    }
  }

  void Exec(const std::string& sql, const ParamMap* params = nullptr) {
    auto result = session_->Execute(sql, params);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  void DefineDurationLat() {
    LatSpec spec;
    spec.name = "Duration_LAT";
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kAvg, "Duration", "Avg_Duration", false},
                       {LatAggFunc::kCount, "", "N", false}};
    ASSERT_TRUE(monitor_.DefineLat(std::move(spec)).ok());
  }

  engine::Database db_;
  MonitorEngine monitor_;
  std::unique_ptr<engine::Session> session_;
};

TEST_F(MonitorTest, NoRulesMeansNoMonitoringWork) {
  // Paper §2.1: no monitoring is performed unless a rule requires it.
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_EQ(monitor_.events_processed(), 0u);
  EXPECT_EQ(monitor_.active_query_count(), 0u);
}

TEST_F(MonitorTest, SignaturesComputedAndCachedWithPlan) {
  Exec("SELECT val FROM items WHERE id = 1");
  auto plan = db_.plan_cache()->Get("SELECT val FROM items WHERE id = 1");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->signatures_computed);
  EXPECT_FALSE(plan->logical_signature.empty());
  EXPECT_FALSE(plan->physical_signature.empty());
  EXPECT_GT(plan->optimize_micros, 0);

  // Same template, other constant: identical signature, separate entry.
  Exec("SELECT val FROM items WHERE id = 2");
  auto plan2 = db_.plan_cache()->Get("SELECT val FROM items WHERE id = 2");
  ASSERT_NE(plan2, nullptr);
  EXPECT_EQ(plan->logical_signature, plan2->logical_signature);
  EXPECT_EQ(plan->physical_signature_hash, plan2->physical_signature_hash);
}

TEST_F(MonitorTest, LatFeedAndGrouping) {
  DefineDurationLat();
  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(Duration_LAT)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());

  ParamMap params;
  for (int i = 0; i < 10; ++i) {
    params = {{"k", Value::Int(i)}};
    Exec("SELECT val FROM items WHERE id = @k", &params);
  }
  for (int i = 0; i < 4; ++i) {
    params = {{"g", Value::Int(i)}};
    Exec("SELECT val FROM items WHERE grp = @g", &params);
  }
  Lat* lat = monitor_.FindLat("Duration_LAT");
  ASSERT_NE(lat, nullptr);
  // Two templates -> two groups.
  EXPECT_EQ(lat->size(), 2u);
  int64_t total = 0;
  for (const auto& row : lat->Snapshot(0)) total += row[2].int_value();
  EXPECT_EQ(total, 14);
}

TEST_F(MonitorTest, OutlierDetectionEndToEnd) {
  DefineDurationLat();
  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(Duration_LAT)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());

  // A deliberately absurd threshold that no query meets, then a trivially
  // met one; checks that the LAT-relative condition is actually evaluated.
  RuleSpec never;
  never.name = "never";
  never.event = "Query.Commit";
  never.condition = "Query.Duration > 1000000 * Duration_LAT.Avg_Duration";
  never.action = "Query.Persist(NeverTable, ID)";
  ASSERT_TRUE(monitor_.AddRule(never).ok());

  RuleSpec always;
  always.name = "always";
  always.event = "Query.Commit";
  always.condition =
      "Query.Duration >= 0 AND Duration_LAT.N >= 1";
  always.action = "Query.Persist(Outliers, ID, Query_Text, Duration)";
  ASSERT_TRUE(monitor_.AddRule(always).ok());

  ParamMap params = {{"k", Value::Int(3)}};
  for (int i = 0; i < 5; ++i) {
    Exec("SELECT val FROM items WHERE id = @k", &params);
  }
  EXPECT_EQ(db_.catalog()->GetTable("NeverTable"), nullptr);
  storage::Table* outliers = db_.catalog()->GetTable("Outliers");
  ASSERT_NE(outliers, nullptr);
  EXPECT_EQ(outliers->schema().num_columns(), 3u);
  // Rules fire in activation order: 'feed' inserts the current query into
  // the LAT before 'always' evaluates, so every execution (including the
  // first) sees a matching LAT row.
  EXPECT_EQ(outliers->row_count(), 5u);
  EXPECT_TRUE(monitor_.last_error().empty()) << monitor_.last_error();
}

TEST_F(MonitorTest, TopKLatWithEvictionRule) {
  LatSpec top;
  top.name = "TopQ";
  top.group_by = {{"ID", ""}};
  top.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false},
                    {LatAggFunc::kFirst, "Query_Text", "Text", false}};
  top.ordering = {{"Dur", true}};
  top.max_rows = 3;
  ASSERT_TRUE(monitor_.DefineLat(std::move(top)).ok());

  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(TopQ)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());

  RuleSpec on_evict;
  on_evict.name = "spill";
  on_evict.event = "TopQ.Evict";
  on_evict.action = "Evicted.Persist(EvictedQ)";
  ASSERT_TRUE(monitor_.AddRule(on_evict).ok());

  for (int i = 0; i < 10; ++i) {
    Exec("SELECT val FROM items WHERE id = " + std::to_string(i));
  }
  Lat* lat = monitor_.FindLat("TopQ");
  EXPECT_EQ(lat->size(), 3u);
  storage::Table* evicted = db_.catalog()->GetTable("EvictedQ");
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->row_count(), 7u);
  EXPECT_TRUE(monitor_.last_error().empty()) << monitor_.last_error();
}

TEST_F(MonitorTest, BlockingMonitoringExample2) {
  // Blocking LAT: total blocking delay per blocker statement template.
  LatSpec blocking;
  blocking.name = "Blocking_LAT";
  blocking.object_class = MonitoredClass::kBlocker;
  blocking.group_by = {{"Logical_Signature", "Sig"}};
  blocking.aggregates = {{LatAggFunc::kSum, "Wait_Secs", "Total_Wait", false},
                         {LatAggFunc::kCount, "", "Conflicts", false},
                         {LatAggFunc::kFirst, "Query_Text", "Example", false}};
  ASSERT_TRUE(monitor_.DefineLat(std::move(blocking)).ok());

  RuleSpec rule;
  rule.name = "blocking";
  rule.event = "Query.Block_Released";
  rule.action = "Blocker.Insert(Blocking_LAT)";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());

  auto holder = db_.CreateSession();
  ASSERT_TRUE(holder->Begin().ok());
  ASSERT_TRUE(holder->Execute("UPDATE items SET val = 2.0 WHERE id = 1").ok());

  std::thread blocked([this] {
    auto waiter = db_.CreateSession();
    auto result = waiter->Execute("UPDATE items SET val = 3.0 WHERE id = 1");
    EXPECT_TRUE(result.ok()) << result.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(holder->Commit().ok());
  blocked.join();

  Lat* lat = monitor_.FindLat("Blocking_LAT");
  auto rows = lat->Snapshot(0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GE(rows[0][1].AsDouble(), 0.04);  // blocked ≥ 40ms
  EXPECT_EQ(rows[0][2].int_value(), 1);
  EXPECT_NE(rows[0][3].ToDisplayString().find("UPDATE items"),
            std::string::npos);
  EXPECT_TRUE(monitor_.last_error().empty()) << monitor_.last_error();
}

TEST_F(MonitorTest, BlockedEventFiresOnConflict) {
  storage::Table* conflicts = nullptr;
  RuleSpec rule;
  rule.name = "conflicts";
  rule.event = "Query.Blocked";
  rule.action = "Blocked.Persist(Conflicts, ID, Query_Text, Resource)";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());

  auto holder = db_.CreateSession();
  ASSERT_TRUE(holder->Begin().ok());
  ASSERT_TRUE(holder->Execute("UPDATE items SET val = 2.0 WHERE id = 7").ok());
  std::thread blocked([this] {
    auto waiter = db_.CreateSession();
    EXPECT_TRUE(
        waiter->Execute("UPDATE items SET val = 3.0 WHERE id = 7").ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(holder->Commit().ok());
  blocked.join();

  conflicts = db_.catalog()->GetTable("Conflicts");
  ASSERT_NE(conflicts, nullptr);
  EXPECT_EQ(conflicts->row_count(), 1u);
}

TEST_F(MonitorTest, ResourceGoverningCancel) {
  // Example 5(a): cancel queries that block others for too long — here,
  // cancel any UPDATE query as soon as it starts (simplest observable
  // variant of the Cancel action wired through the whole stack).
  RuleSpec rule;
  rule.name = "governor";
  rule.event = "Query.Start";
  rule.condition = "Query.Query_Type = 'UPDATE'";
  rule.action = "Query.Cancel()";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());

  auto result = session_->Execute("UPDATE items SET val = 9.9 WHERE id = 2");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  // SELECTs still run.
  auto ok = session_->Execute("SELECT val FROM items WHERE id = 2");
  EXPECT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->rows[0][0].double_value(), 1.0);  // update cancelled
}

TEST_F(MonitorTest, TimerDrivenAuditPersist) {
  DefineDurationLat();
  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(Duration_LAT)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());

  ASSERT_TRUE(monitor_.CreateTimer("audit").ok());
  RuleSpec periodic;
  periodic.name = "audit_persist";
  periodic.event = "audit.Alarm";
  periodic.action = "Duration_LAT.Persist(AuditLog); Reset(Duration_LAT)";
  ASSERT_TRUE(monitor_.AddRule(periodic).ok());
  ASSERT_TRUE(monitor_.SetTimer("audit", /*interval_seconds=*/0.001,
                                /*repeats=*/2).ok());

  Exec("SELECT val FROM items WHERE id = 1");
  Exec("SELECT val FROM items WHERE grp = 1");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(monitor_.timer_manager()->Poll(db_.clock()->NowMicros()), 1u);

  storage::Table* audit = db_.catalog()->GetTable("AuditLog");
  ASSERT_NE(audit, nullptr);
  EXPECT_EQ(audit->row_count(), 2u);
  EXPECT_EQ(monitor_.FindLat("Duration_LAT")->size(), 0u);  // Reset ran

  // Second alarm persists nothing new (LAT was reset), third never fires.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(monitor_.timer_manager()->Poll(db_.clock()->NowMicros()), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(monitor_.timer_manager()->Poll(db_.clock()->NowMicros()), 0u);
}

TEST_F(MonitorTest, TimerRuleIteratesActiveQueries) {
  // Rule over all in-flight queries, triggered by a timer (paper §5.2's
  // unbound-class iteration). A held lock keeps a query in flight.
  ASSERT_TRUE(monitor_.CreateTimer("tick").ok());
  RuleSpec rule;
  rule.name = "inflight";
  rule.event = "tick.Alarm";
  rule.condition = "Query.Duration >= 0 OR Query.Time_Blocked >= 0";
  rule.action = "Query.Persist(InFlight, ID, Query_Text)";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());
  ASSERT_TRUE(monitor_.SetTimer("tick", 0.0005, 1).ok());

  auto holder = db_.CreateSession();
  ASSERT_TRUE(holder->Begin().ok());
  ASSERT_TRUE(holder->Execute("UPDATE items SET val = 5 WHERE id = 30").ok());
  std::thread blocked([this] {
    auto waiter = db_.CreateSession();
    EXPECT_TRUE(waiter->Execute("UPDATE items SET val = 6 WHERE id = 30").ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The waiter's UPDATE is currently active (blocked); the alarm must see it.
  EXPECT_EQ(monitor_.timer_manager()->Poll(db_.clock()->NowMicros()), 1u);
  storage::Table* inflight = db_.catalog()->GetTable("InFlight");
  ASSERT_NE(inflight, nullptr);
  EXPECT_GE(inflight->row_count(), 1u);
  ASSERT_TRUE(holder->Commit().ok());
  blocked.join();
}

TEST_F(MonitorTest, TransactionSignatureDistinguishesCodePaths) {
  LatSpec txn_lat;
  txn_lat.name = "TxnPaths";
  txn_lat.object_class = MonitoredClass::kTransaction;
  txn_lat.group_by = {{"Logical_Signature", "Path"}};
  txn_lat.aggregates = {{LatAggFunc::kCount, "", "N", false},
                        {LatAggFunc::kAvg, "Duration", "AvgDur", false}};
  ASSERT_TRUE(monitor_.DefineLat(std::move(txn_lat)).ok());
  RuleSpec rule;
  rule.name = "txn_feed";
  rule.event = "Transaction.Commit";
  rule.action = "Transaction.Insert(TxnPaths)";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());

  engine::Procedure proc;
  proc.name = "branchy";
  proc.params = {"flag"};
  proc.body.push_back(engine::ProcStep::If(
      "@flag = 1",
      {engine::ProcStep::Sql("SELECT val FROM items WHERE id = @flag")},
      {engine::ProcStep::Sql("SELECT val FROM items WHERE grp = @flag")}));
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());

  Exec("EXEC branchy 1");
  Exec("EXEC branchy 1");
  Exec("EXEC branchy 0");

  Lat* lat = monitor_.FindLat("TxnPaths");
  auto rows = lat->Snapshot(0);
  // Two code paths -> two transaction signatures.
  ASSERT_EQ(rows.size(), 2u);
  int64_t total = 0;
  for (const auto& row : rows) total += row[1].int_value();
  EXPECT_EQ(total, 3);
}

TEST_F(MonitorTest, SendMailWithTemplateSubstitution) {
  RuleSpec rule;
  rule.name = "mail";
  rule.event = "Query.Commit";
  rule.condition = "Query.Query_Type = 'SELECT'";
  rule.action =
      "SendMail('query {Query.ID} type={Query.Query_Type} took "
      "{Query.Duration}s', 'dba@corp')";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());
  Exec("SELECT val FROM items WHERE id = 4");
  auto mails = monitor_.capturing_mailer()->mails();
  ASSERT_EQ(mails.size(), 1u);
  EXPECT_EQ(mails[0].address, "dba@corp");
  EXPECT_NE(mails[0].body.find("type=SELECT"), std::string::npos);
  EXPECT_EQ(mails[0].body.find("{"), std::string::npos);
}

TEST_F(MonitorTest, RunExternalCaptured) {
  RuleSpec rule;
  rule.name = "run";
  rule.event = "Query.Commit";
  rule.action = "RunExternal('postprocess --id {Query.ID}')";
  ASSERT_TRUE(monitor_.AddRule(rule).ok());
  Exec("SELECT val FROM items WHERE id = 4");
  ASSERT_EQ(monitor_.capturing_launcher()->size(), 1u);
}

TEST_F(MonitorTest, RuleLifecycleDynamics) {
  DefineDurationLat();
  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(Duration_LAT)";
  auto id = monitor_.AddRule(feed);
  ASSERT_TRUE(id.ok());
  Exec("SELECT val FROM items WHERE id = 1");
  EXPECT_EQ(monitor_.FindLat("Duration_LAT")->size(), 1u);

  // Disable: no further inserts.
  ASSERT_TRUE(monitor_.SetRuleEnabled(*id, false).ok());
  Exec("SELECT val FROM items WHERE grp = 1");
  EXPECT_EQ(monitor_.FindLat("Duration_LAT")->size(), 1u);

  ASSERT_TRUE(monitor_.SetRuleEnabled(*id, true).ok());
  Exec("SELECT val FROM items WHERE grp = 1");
  EXPECT_EQ(monitor_.FindLat("Duration_LAT")->size(), 2u);

  // LAT cannot be dropped while referenced.
  EXPECT_FALSE(monitor_.DropLat("Duration_LAT").ok());
  ASSERT_TRUE(monitor_.RemoveRule(*id).ok());
  EXPECT_TRUE(monitor_.DropLat("Duration_LAT").ok());
  EXPECT_TRUE(monitor_.RemoveRule(*id).IsNotFound());
}

TEST_F(MonitorTest, PersistAndSeedLatThroughMonitor) {
  DefineDurationLat();
  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.action = "Query.Insert(Duration_LAT)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());
  Exec("SELECT val FROM items WHERE id = 1");
  ASSERT_TRUE(monitor_.PersistLat("Duration_LAT", "LatSnap").ok());
  storage::Table* snap = db_.catalog()->GetTable("LatSnap");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->row_count(), 1u);

  // "Restart": a fresh LAT seeded from the table resumes with state.
  ASSERT_TRUE(monitor_.RemoveRule(1).ok() || true);
  monitor_.FindLat("Duration_LAT")->Reset();
  ASSERT_TRUE(monitor_.SeedLat("Duration_LAT", "LatSnap").ok());
  EXPECT_EQ(monitor_.FindLat("Duration_LAT")->size(), 1u);
}

TEST_F(MonitorTest, ExecQueriesGroupByProcedure) {
  DefineDurationLat();
  RuleSpec feed;
  feed.name = "feed";
  feed.event = "Query.Commit";
  feed.condition = "Query.Query_Type = 'EXEC'";
  feed.action = "Query.Insert(Duration_LAT)";
  ASSERT_TRUE(monitor_.AddRule(feed).ok());

  engine::Procedure proc;
  proc.name = "p1";
  proc.params = {"k"};
  proc.body.push_back(
      engine::ProcStep::Sql("SELECT val FROM items WHERE id = @k"));
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());
  Exec("EXEC p1 1");
  Exec("EXEC p1 2");
  Exec("EXEC p1 3");

  Lat* lat = monitor_.FindLat("Duration_LAT");
  auto rows = lat->Snapshot(0);
  ASSERT_EQ(rows.size(), 1u);  // all invocations share Exec(p1) signature
  EXPECT_EQ(rows[0][2].int_value(), 3);
}

}  // namespace
}  // namespace sqlcm::cm
