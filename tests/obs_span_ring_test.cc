// Tests for the causal span plane: SpanRing (stamp-CAS MPSC protocol,
// enable gating, wraparound, multi-threaded consistency) and SlowTraceTable
// (top-K retention, floor rejection, whole-trace exemplars).
#include "obs/span_ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace sqlcm::obs {
namespace {

Span MakeSpan(uint64_t trace_id, uint64_t span_id, uint64_t parent_id,
              SpanKind kind, int64_t duration_nanos) {
  Span s;
  s.trace_id = trace_id;
  s.span_id = span_id;
  s.parent_id = parent_id;
  s.kind = kind;
  s.duration_nanos = duration_nanos;
  return s;
}

TEST(SpanRingTest, DisabledRecordsNothing) {
  SpanRing ring(8);
  EXPECT_FALSE(ring.enabled());
  ring.Record(MakeSpan(1, 1, 0, SpanKind::kEvent, 100));
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(SpanRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpanRing(5).capacity(), 8u);
  EXPECT_EQ(SpanRing(16).capacity(), 16u);
  EXPECT_EQ(SpanRing(1).capacity(), 2u);
}

TEST(SpanRingTest, RecordsAllFieldsInOrder) {
  SpanRing ring(8);
  ring.set_enabled(true);
  for (uint64_t i = 1; i <= 5; ++i) {
    Span s = MakeSpan(i, i * 10, i * 10 - 1, SpanKind::kCondition,
                      static_cast<int64_t>(i) * 1000);
    s.ref = i * 7;
    s.start_nanos = static_cast<int64_t>(i) * 100;
    s.detail = static_cast<uint8_t>(i);
    s.depth = static_cast<uint8_t>(i + 1);
    ring.Record(s);
  }
  const auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  for (size_t i = 0; i < spans.size(); ++i) {
    const uint64_t n = i + 1;
    EXPECT_EQ(spans[i].trace_id, n);
    EXPECT_EQ(spans[i].span_id, n * 10);
    EXPECT_EQ(spans[i].parent_id, n * 10 - 1);
    EXPECT_EQ(spans[i].ref, n * 7);
    EXPECT_EQ(spans[i].start_nanos, static_cast<int64_t>(n) * 100);
    EXPECT_EQ(spans[i].duration_nanos, static_cast<int64_t>(n) * 1000);
    EXPECT_EQ(spans[i].kind, SpanKind::kCondition);
    EXPECT_EQ(spans[i].detail, static_cast<uint8_t>(n));
    EXPECT_EQ(spans[i].depth, static_cast<uint8_t>(n + 1));
  }
}

TEST(SpanRingTest, WrapsAroundKeepingNewest) {
  SpanRing ring(4);
  ring.set_enabled(true);
  for (uint64_t i = 1; i <= 10; ++i) {
    ring.Record(MakeSpan(i, i, 0, SpanKind::kEvent, 0));
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  const auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().trace_id, 7u);
  EXPECT_EQ(spans.back().trace_id, 10u);
}

TEST(SpanRingTest, SpanKindNamesAreStable) {
  EXPECT_STREQ(SpanKindName(SpanKind::kEvent), "event");
  EXPECT_STREQ(SpanKindName(SpanKind::kCondition), "condition");
  EXPECT_STREQ(SpanKindName(SpanKind::kAction), "action");
  EXPECT_STREQ(SpanKindName(SpanKind::kLatUpsert), "lat_upsert");
  EXPECT_STREQ(SpanKindName(SpanKind::kCheckpoint), "checkpoint");
}

// Concurrent writers + a racing reader: every snapshotted span must be
// internally consistent (payload fields all derive from span_id), and after
// quiescing the ring must hold capacity distinct spans. Run under TSan in CI.
TEST(SpanRingTest, ConcurrentWritersProduceConsistentSlots) {
  constexpr size_t kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  SpanRing ring(1024);
  ring.set_enabled(true);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Span& s : ring.Snapshot()) {
        // A torn slot would break these invariants; Snapshot must have
        // dropped it instead.
        ASSERT_EQ(s.trace_id, s.span_id * 3);
        ASSERT_EQ(s.ref, s.span_id * 7);
        ASSERT_EQ(s.duration_nanos, static_cast<int64_t>(s.span_id % 4096));
      }
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const uint64_t id = w * kPerWriter + i + 1;
        Span s = MakeSpan(id * 3, id, 0, SpanKind::kAction,
                          static_cast<int64_t>(id % 4096));
        s.ref = id * 7;
        ring.Record(s);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(ring.total_recorded(), kWriters * kPerWriter);
  const auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), ring.capacity());
  std::set<uint64_t> ids;
  for (const Span& s : spans) ids.insert(s.span_id);
  EXPECT_EQ(ids.size(), spans.size());
}

// Many threads each emit a full cascade trace (event -> condition -> action
// -> nested events, depth 0..3); after quiescing, every trace in the ring
// must reconstruct as a tree whose parent links and depths are intact.
TEST(SpanRingTest, ConcurrentCascadesReconstructAsTreesAtDepth3) {
  constexpr size_t kThreads = 4;
  constexpr uint64_t kTracesPerThread = 500;
  constexpr uint64_t kSpansPerTrace = 8;  // id block per trace (6 used)
  SpanRing ring(4096);
  ring.set_enabled(true);
  std::atomic<uint64_t> next_span{1};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kTracesPerThread; ++i) {
        const uint64_t trace_id = t * kTracesPerThread + i + 1;
        // Root event, condition + action under it, then a chain of nested
        // (cascaded) events each one level deeper, as the engine emits for
        // LAT-eviction cascades.
        const uint64_t root = next_span.fetch_add(kSpansPerTrace);
        ring.Record(MakeSpan(trace_id, root, 0, SpanKind::kEvent, 100));
        ring.Record(
            MakeSpan(trace_id, root + 1, root, SpanKind::kCondition, 10));
        Span action = MakeSpan(trace_id, root + 2, root, SpanKind::kAction, 50);
        action.depth = 1;
        ring.Record(action);
        uint64_t parent = root + 2;
        for (uint8_t depth = 1; depth <= 3; ++depth) {
          Span nested = MakeSpan(trace_id, root + 2 + depth, parent,
                                 SpanKind::kEvent, 20);
          nested.depth = depth;
          ring.Record(nested);
          parent = nested.span_id;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Group the retained spans by trace and validate each complete trace.
  std::map<uint64_t, std::vector<Span>> traces;
  for (const Span& s : ring.Snapshot()) traces[s.trace_id].push_back(s);
  size_t complete = 0;
  for (const auto& [trace_id, spans] : traces) {
    if (spans.size() < 6) continue;  // truncated by ring wraparound
    ++complete;
    std::map<uint64_t, const Span*> by_id;
    for (const Span& s : spans) by_id[s.span_id] = &s;
    uint8_t max_depth = 0;
    for (const Span& s : spans) {
      max_depth = std::max(max_depth, s.depth);
      if (s.parent_id == 0) {
        EXPECT_EQ(s.kind, SpanKind::kEvent);
        continue;
      }
      // Every non-root span's parent must be in the same trace, one of the
      // event/action spans, and no deeper than its child.
      auto it = by_id.find(s.parent_id);
      ASSERT_NE(it, by_id.end()) << "dangling parent in trace " << trace_id;
      EXPECT_EQ(it->second->trace_id, trace_id);
      EXPECT_LE(it->second->depth, s.depth);
    }
    EXPECT_GE(max_depth, 3u) << "trace " << trace_id;
  }
  EXPECT_GT(complete, 0u);
}

TEST(SlowTraceTableTest, AdmitsEverythingUntilFull) {
  SlowTraceTable table(3);
  std::vector<Span> spans = {MakeSpan(1, 1, 0, SpanKind::kEvent, 10)};
  table.Offer(1, 10, spans);
  table.Offer(2, 5, spans);
  table.Offer(3, 20, spans);
  const auto snap = table.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].trace_id, 3u);
  EXPECT_EQ(snap[0].total_nanos, 20);
  EXPECT_EQ(snap[2].trace_id, 2u);
  EXPECT_EQ(table.offers(), 3u);
  EXPECT_EQ(table.admits(), 3u);
}

TEST(SlowTraceTableTest, EvictsCheapestWhenFull) {
  SlowTraceTable table(2);
  std::vector<Span> spans;
  table.Offer(1, 100, spans);
  table.Offer(2, 200, spans);
  table.Offer(3, 50, spans);   // below floor: rejected
  table.Offer(4, 150, spans);  // evicts trace 1
  const auto snap = table.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].trace_id, 2u);
  EXPECT_EQ(snap[1].trace_id, 4u);
  EXPECT_EQ(table.offers(), 4u);
  EXPECT_EQ(table.admits(), 3u);
}

TEST(SlowTraceTableTest, RetainsWholeSpanVector) {
  SlowTraceTable table(1);
  std::vector<Span> spans = {
      MakeSpan(7, 1, 0, SpanKind::kCondition, 5),
      MakeSpan(7, 2, 1, SpanKind::kAction, 15),
      MakeSpan(7, 3, 0, SpanKind::kEvent, 30),
  };
  table.Offer(7, 30, spans);
  const auto snap = table.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  ASSERT_EQ(snap[0].spans.size(), 3u);
  EXPECT_EQ(snap[0].spans[1].parent_id, 1u);
  EXPECT_EQ(snap[0].spans[2].kind, SpanKind::kEvent);
}

TEST(SlowTraceTableTest, ClearResetsRetention) {
  SlowTraceTable table(2);
  std::vector<Span> spans;
  table.Offer(1, 100, spans);
  table.Offer(2, 200, spans);
  table.Clear();
  EXPECT_TRUE(table.Snapshot().empty());
  // Floor must reset too: a cheap trace is admitted again post-Clear.
  table.Offer(3, 1, spans);
  ASSERT_EQ(table.Snapshot().size(), 1u);
}

TEST(SlowTraceTableTest, ConcurrentOffersKeepTopK) {
  constexpr size_t kThreads = 4;
  constexpr int64_t kPerThread = 5000;
  SlowTraceTable table(8);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<Span> spans;
      for (int64_t i = 1; i <= kPerThread; ++i) {
        const int64_t cost = static_cast<int64_t>(t) * kPerThread + i;
        table.Offer(static_cast<uint64_t>(cost), cost, spans);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = table.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // The global top-8 costs are the 8 largest of thread 3's range; every
  // retained trace must at least beat all of threads 0-2.
  for (const auto& e : snap) {
    EXPECT_GT(e.total_nanos, 3 * kPerThread);
  }
  EXPECT_EQ(snap.front().total_nanos, 4 * kPerThread);
}

}  // namespace
}  // namespace sqlcm::obs
