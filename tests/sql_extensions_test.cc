// Tests for the extended SQL surface: DISTINCT, BETWEEN, IN, LIKE, and the
// LIKE pattern matcher itself.
#include <gtest/gtest.h>

#include "engine/session.h"
#include "exec/expression.h"
#include "sqlcm/monitor_engine.h"
#include "sql/parser.h"

namespace sqlcm {
namespace {

using common::Value;

TEST(LikeMatcherTest, Literals) {
  EXPECT_TRUE(exec::MatchLikePattern("abc", "abc"));
  EXPECT_FALSE(exec::MatchLikePattern("abc", "abd"));
  EXPECT_FALSE(exec::MatchLikePattern("abc", "ab"));
  EXPECT_FALSE(exec::MatchLikePattern("ab", "abc"));
  EXPECT_TRUE(exec::MatchLikePattern("", ""));
}

TEST(LikeMatcherTest, Underscore) {
  EXPECT_TRUE(exec::MatchLikePattern("abc", "a_c"));
  EXPECT_TRUE(exec::MatchLikePattern("abc", "___"));
  EXPECT_FALSE(exec::MatchLikePattern("abc", "____"));
  EXPECT_FALSE(exec::MatchLikePattern("", "_"));
}

TEST(LikeMatcherTest, Percent) {
  EXPECT_TRUE(exec::MatchLikePattern("abc", "%"));
  EXPECT_TRUE(exec::MatchLikePattern("", "%"));
  EXPECT_TRUE(exec::MatchLikePattern("abc", "a%"));
  EXPECT_TRUE(exec::MatchLikePattern("abc", "%c"));
  EXPECT_TRUE(exec::MatchLikePattern("abc", "%b%"));
  EXPECT_FALSE(exec::MatchLikePattern("abc", "%d%"));
  EXPECT_TRUE(exec::MatchLikePattern("aXbYc", "a%b%c"));
  EXPECT_TRUE(exec::MatchLikePattern("mississippi", "%iss%ppi"));
  EXPECT_FALSE(exec::MatchLikePattern("mississippi", "%iss%ppx"));
  EXPECT_TRUE(exec::MatchLikePattern("abc", "%%%"));
  EXPECT_TRUE(exec::MatchLikePattern("ab", "a%_"));
  EXPECT_FALSE(exec::MatchLikePattern("a", "a%_"));
}

TEST(LikeMatcherTest, CaseSensitive) {
  EXPECT_FALSE(exec::MatchLikePattern("ABC", "abc"));
}

class SqlExtensionsTest : public ::testing::Test {
 protected:
  SqlExtensionsTest() : session_(db_.CreateSession()) {
    Exec("CREATE TABLE t (id INT, name VARCHAR(32), grp INT, "
         "PRIMARY KEY(id))");
    Exec("INSERT INTO t VALUES (1, 'alpha', 1), (2, 'beta', 1), "
         "(3, 'alphabet', 2), (4, 'gamma', 2), (5, 'beta', 3)");
  }

  exec::QueryResult Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : exec::QueryResult{};
  }

  engine::Database db_;
  std::unique_ptr<engine::Session> session_;
};

TEST_F(SqlExtensionsTest, Between) {
  auto result = Exec("SELECT id FROM t WHERE id BETWEEN 2 AND 4 ORDER BY id");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][0].int_value(), 2);
  EXPECT_EQ(result.rows[2][0].int_value(), 4);

  auto negated = Exec("SELECT id FROM t WHERE id NOT BETWEEN 2 AND 4");
  EXPECT_EQ(negated.rows.size(), 2u);
}

TEST_F(SqlExtensionsTest, InList) {
  auto result = Exec("SELECT id FROM t WHERE id IN (1, 3, 99) ORDER BY id");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[1][0].int_value(), 3);

  auto strings = Exec("SELECT id FROM t WHERE name IN ('beta') ORDER BY id");
  EXPECT_EQ(strings.rows.size(), 2u);

  auto negated = Exec("SELECT COUNT(*) FROM t WHERE grp NOT IN (1, 2)");
  EXPECT_EQ(negated.rows[0][0].int_value(), 1);
}

TEST_F(SqlExtensionsTest, Like) {
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE name LIKE 'alpha%'")
                .rows[0][0]
                .int_value(),
            2);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE name LIKE '%a'")
                .rows[0][0]
                .int_value(),
            4);  // alpha, gamma, and both betas
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE name LIKE '_eta'")
                .rows[0][0]
                .int_value(),
            2);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM t WHERE name NOT LIKE '%a%'")
                .rows[0][0]
                .int_value(),
            0);
}

TEST_F(SqlExtensionsTest, Distinct) {
  auto result = Exec("SELECT DISTINCT name FROM t ORDER BY name");
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0][0].string_value(), "alpha");

  auto pairs = Exec("SELECT DISTINCT name, grp FROM t");
  EXPECT_EQ(pairs.rows.size(), 5u);  // (beta,1) and (beta,3) are distinct

  auto with_limit = Exec("SELECT DISTINCT grp FROM t ORDER BY grp LIMIT 2");
  ASSERT_EQ(with_limit.rows.size(), 2u);
  EXPECT_EQ(with_limit.rows[1][0].int_value(), 2);
}

TEST_F(SqlExtensionsTest, BetweenIsSargable) {
  // BETWEEN desugars to >= AND <=, which the optimizer turns into an index
  // range on the clustered key.
  auto result = Exec("SELECT COUNT(*) FROM t WHERE id BETWEEN 1 AND 3");
  EXPECT_EQ(result.rows[0][0].int_value(), 3);
}

TEST_F(SqlExtensionsTest, LikeInRuleConditionsViaMonitor) {
  cm::MonitorEngine monitor(&db_);
  cm::RuleSpec rule;
  rule.name = "selects-on-t";
  rule.event = "Query.Commit";
  rule.condition = "Query.Query_Text LIKE '%FROM t WHERE name%'";
  rule.action = "Query.Persist(Matched, ID)";
  ASSERT_TRUE(monitor.AddRule(rule).ok());
  Exec("SELECT id FROM t WHERE name = 'alpha'");
  Exec("SELECT id FROM t WHERE id = 1");
  storage::Table* matched = db_.catalog()->GetTable("Matched");
  ASSERT_NE(matched, nullptr);
  EXPECT_EQ(matched->row_count(), 1u);
}

TEST(SqlExtensionsParseTest, NotWithoutPostfixStillParses) {
  // NOT as a plain boolean operator must be unaffected.
  auto expr = sql::Parser::ParseExpression("NOT a > 1");
  ASSERT_TRUE(expr.ok());
  auto complex_expr =
      sql::Parser::ParseExpression("NOT (a BETWEEN 1 AND 2) AND b IN (1)");
  ASSERT_TRUE(complex_expr.ok());
  EXPECT_FALSE(sql::Parser::ParseExpression("a NOT 5").ok());
  EXPECT_FALSE(sql::Parser::ParseExpression("a BETWEEN 1").ok());
  EXPECT_FALSE(sql::Parser::ParseExpression("a IN 1").ok());
}

}  // namespace
}  // namespace sqlcm
