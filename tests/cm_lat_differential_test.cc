// Randomized differential test: the production sharded LAT against the
// naive recompute-from-history ReferenceLat oracle (SQLancer-style).
//
// A single driver interleaves inserts, mock-clock advances, shed-aging
// toggles, Resets and full checkpoint/restore cycles (ExportState →
// version-negotiated snapshot file (v3 when sketch cells are present, v2
// otherwise) → LoadTableCsv → ImportState into a fresh Lat), then
// periodically compares every group's materialized row between the two
// implementations. Batched configs route production inserts through
// Lat::InsertBatch (the async pipeline's vectorized flush) against the
// same per-op oracle, proving deferred drain reaches the sync end state. Doubles must agree within 1 ulp (in practice they are
// bit-exact: the oracle replicates the production fold order); everything
// else must match exactly. Shedding and snapshot round-trips are invisible
// to the oracle by design, so any post-shed or post-restore divergence is
// a production bug.
//
// Budget and seed are environment-overridable for CI fuzzing:
//   SQLCM_DIFF_OPS   ops per test case (default 4000; CI runs >= 100000)
//   SQLCM_DIFF_SEED  PRNG seed (default fixed; CI logs a random one)

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/value.h"
#include "sqlcm/lat.h"
#include "sqlcm/reference_lat.h"
#include "sqlcm/sketch.h"
#include "storage/table.h"
#include "storage/table_io.h"

namespace sqlcm::cm {
namespace {

using common::Row;
using common::Value;
using common::ValueKind;

constexpr int64_t kBlockMicros = 1000;
constexpr int64_t kWindowMicros = 10 * kBlockMicros;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

bool WithinOneUlp(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (a == b) return true;  // covers +0.0 vs -0.0 (display-equal)
  return std::nextafter(a, b) == b;
}

bool ValuesAgree(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return false;
  if (a.is_double()) return WithinOneUlp(a.double_value(), b.double_value());
  if (a.is_null()) return true;
  return a.Compare(b) == 0;
}

catalog::ColumnType TypeForKind(ValueKind kind) {
  switch (kind) {
    case ValueKind::kInt: return catalog::ColumnType::kInt;
    case ValueKind::kDouble: return catalog::ColumnType::kDouble;
    case ValueKind::kBool: return catalog::ColumnType::kBool;
    default: return catalog::ColumnType::kString;
  }
}

std::unique_ptr<storage::Table> MakeStateTable(const Lat& lat) {
  const std::vector<std::string> cols = lat.StateColumnNames();
  const std::vector<ValueKind> kinds = lat.StateColumnKinds();
  std::vector<catalog::Column> columns;
  columns.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    columns.push_back({cols[i], TypeForKind(kinds[i])});
  }
  auto schema =
      catalog::TableSchema::Create("diff_state", std::move(columns), {});
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  return std::make_unique<storage::Table>(0, std::move(*schema));
}

LatSpec DiffSpec(bool bounded, size_t shard_count, bool sketch,
                 size_t sketch_budget) {
  LatSpec spec;
  spec.name = "Diff";
  spec.object_class = MonitoredClass::kQuery;
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                     {LatAggFunc::kSum, "Duration", "SumDur", false},
                     {LatAggFunc::kAvg, "Duration", "AvgDur", false},
                     {LatAggFunc::kStdev, "Duration", "SdDur", false},
                     {LatAggFunc::kMin, "Duration", "MinDur", false},
                     {LatAggFunc::kMax, "Duration", "MaxDur", false},
                     {LatAggFunc::kFirst, "Query_Text", "FirstText", false},
                     {LatAggFunc::kLast, "Query_Text", "LastText", false},
                     {LatAggFunc::kCount, "", "AgN", true},
                     {LatAggFunc::kSum, "Duration", "AgSum", true},
                     {LatAggFunc::kAvg, "Duration", "AgAvg", true},
                     {LatAggFunc::kStdev, "Duration", "AgSd", true},
                     {LatAggFunc::kMin, "Duration", "AgMin", true},
                     {LatAggFunc::kMax, "Duration", "AgMax", true},
                     {LatAggFunc::kMin, "Query_Text", "AgMinText", true}};
  if (sketch) {
    // Sketch aggregates are non-aging by contract; the aging classic
    // aggregates above still exercise block rotation in the same spec.
    spec.aggregates.push_back({LatAggFunc::kQuantile, "Duration", "P50",
                               false, 0.5});
    spec.aggregates.push_back({LatAggFunc::kQuantile, "Duration", "P90",
                               false, 0.9});
    spec.aggregates.push_back({LatAggFunc::kDistinct, "Query_Text", "DText",
                               false});
    spec.aggregates.push_back({LatAggFunc::kDistinct, "Duration", "DDur",
                               false});
    spec.quantile_sketch_bytes = sketch_budget;  // 0 = unbounded
  }
  spec.aging_window_micros = kWindowMicros;
  spec.aging_block_micros = kBlockMicros;
  spec.shard_count = shard_count;
  if (bounded) {
    // Non-aging COUNT + group-column ordering: the production LAT's cached
    // ordering keys are always current for these, so eviction choices are
    // deterministic and comparable (see reference_lat.h on scope).
    spec.ordering = {{"N", true}, {"Sig", true}};
    spec.max_rows = 24;
  }
  return spec;
}

struct DiffCase {
  bool bounded;
  size_t shard_count;
  /// Drive the production LAT through InsertBatch (the async pipeline's
  /// vectorized flush path) while the oracle applies the same records
  /// per-op: proves batched ≡ per-item end state, 1-ulp, including across
  /// Reset and checkpoint/restore. Unbounded configs only — bounded
  /// eviction is batch-granular by design (one EvictOverBudget per batch),
  /// so per-item stepwise eviction is not the same contract.
  bool batched = false;
  /// Append QUANTILE(P50/P90 over Duration) and DISTINCT(Query_Text,
  /// Duration) columns. These are compared against the oracle's exact
  /// recompute within documented error bounds instead of 1 ulp.
  bool sketch = false;
  /// LatSpec::quantile_sketch_bytes for sketch configs. 0 keeps the sketch
  /// unbounded (level 0, alpha = kBaseAlpha, hostile duration shapes). A
  /// positive budget forces observable collapse; those configs use tame
  /// positive durations so the worst-case collapse level — and hence the
  /// quantile error bound — stays derivable in the test.
  size_t sketch_budget = 0;
};

class LatDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(LatDifferentialTest, ProductionMatchesReferenceOracle) {
  const DiffCase& param = GetParam();
  const uint64_t ops = EnvOr("SQLCM_DIFF_OPS", 4000);
  const uint64_t seed = EnvOr("SQLCM_DIFF_SEED", 0xD1FFBEEF);
  // Always print the seed so any failure is reproducible via
  // SQLCM_DIFF_SEED (PR-2 seed-logging convention).
  std::fprintf(stderr,
               "[differential] ops=%llu seed=%llu bounded=%d shards=%zu "
               "batched=%d sketch=%d budget=%zu\n",
               static_cast<unsigned long long>(ops),
               static_cast<unsigned long long>(seed), param.bounded ? 1 : 0,
               param.shard_count, param.batched ? 1 : 0,
               param.sketch ? 1 : 0, param.sketch_budget);
  RecordProperty("sqlcm_diff_seed", std::to_string(seed));

  const LatSpec spec = DiffSpec(param.bounded, param.shard_count,
                                param.sketch, param.sketch_budget);
  auto lat_or = Lat::Create(spec);
  ASSERT_TRUE(lat_or.ok()) << lat_or.status().ToString();
  std::unique_ptr<Lat> lat = std::move(*lat_or);
  auto ref_or = ReferenceLat::Create(spec);
  ASSERT_TRUE(ref_or.ok()) << ref_or.status().ToString();
  std::unique_ptr<ReferenceLat> ref = std::move(*ref_or);

  // Sketch columns are approximate by contract: compare them against the
  // oracle's exact recompute within documented error bounds instead of the
  // 1-ulp rule used everywhere else.
  enum class ColBound { kExact, kQuantile, kDistinct };
  std::vector<ColBound> col_bounds(
      spec.group_by.size() + spec.aggregates.size(), ColBound::kExact);
  for (size_t a = 0; a < spec.aggregates.size(); ++a) {
    if (spec.aggregates[a].func == LatAggFunc::kQuantile) {
      col_bounds[spec.group_by.size() + a] = ColBound::kQuantile;
    } else if (spec.aggregates[a].func == LatAggFunc::kDistinct) {
      col_bounds[spec.group_by.size() + a] = ColBound::kDistinct;
    }
  }
  // Unbounded sketches stay at level 0: relative error kBaseAlpha. Budgeted
  // configs feed log-uniform durations over an ln-range of 13.8 (see the
  // insert arm), so collapse stops by level 4 (bucket width 0.02 * 2^4
  // covers the range in <= 46 buckets, well inside a 4096-byte budget);
  // alpha(4) = tanh(0.02 * 16 / 2) ~= 0.159.
  const double quantile_rel_bound =
      param.sketch_budget > 0 ? 0.17 : QuantileSketch::kBaseAlpha + 1e-6;
  // HLL at kDefaultPrecision=10 has stderr 1.04/sqrt(1024) ~= 3.25%; allow
  // 4 sigma plus absolute slack for the small-cardinality regime.
  auto distinct_abs_bound = [](double exact) {
    return std::max(5.0, 0.13 * exact + 3.0);
  };

  common::Random rng(seed);
  common::MockClock clock(1);
  const std::string snapshot_path =
      ::testing::TempDir() + "/lat_differential_" +
      std::to_string(param.bounded) + "_" +
      std::to_string(param.shard_count) + "_" +
      std::to_string(param.sketch) + "_" +
      std::to_string(param.sketch_budget) + ".snap";
  std::remove(snapshot_path.c_str());
  std::remove((snapshot_path + ".bak").c_str());

  constexpr size_t kKeyPool = 40;
  // Texts include the state-codec delimiters and CSV metacharacters so a
  // checkpoint cycle exercises both escaping layers.
  const std::vector<std::string> kTexts = {
      "plain", "with space", "a:b;c%d", "quote'quote", "comma,semi;",
      "100%:done", "", "NULL"};

  bool shed = false;
  // Batched mode: inserts buffer here (the oracle still applies per-op)
  // and flush through InsertBatch before any state-visible operation —
  // exactly the async pipeline's worker-drain pattern. A deque keeps the
  // record pointers stable while buffered.
  std::deque<QueryRecord> pending_records;
  std::vector<LatBatchItem> pending_items;
  auto flush_batch = [&] {
    if (pending_items.empty()) return;
    lat->InsertBatch(pending_items.data(), pending_items.size());
    pending_items.clear();
    pending_records.clear();
  };
  auto compare_all = [&](uint64_t op) {
    ASSERT_EQ(lat->size(), ref->size()) << "row-count divergence at op " << op;
    const int64_t now = clock.NowMicros();
    for (size_t k = 0; k < kKeyPool; ++k) {
      const Row key = {Value::String("sig" + std::to_string(k))};
      Row got, want;
      const bool in_lat = lat->LookupByKey(key, now, &got);
      const bool in_ref = ref->LookupByKey(key, now, &want);
      ASSERT_EQ(in_lat, in_ref)
          << "liveness divergence for sig" << k << " at op " << op
          << " (seed " << seed << ")";
      if (!in_lat) continue;
      ASSERT_EQ(got.size(), want.size());
      for (size_t c = 0; c < got.size(); ++c) {
        const auto context = [&]() {
          return "at op " + std::to_string(op) + " (seed " +
                 std::to_string(seed) + ") key sig" + std::to_string(k) +
                 " column '" + lat->column_names()[c] +
                 "': production=" + got[c].ToString() +
                 " reference=" + want[c].ToString();
        };
        if (col_bounds[c] == ColBound::kQuantile) {
          ASSERT_EQ(got[c].is_null(), want[c].is_null())
              << "quantile nullness divergence " << context();
          if (got[c].is_null()) continue;
          const double g = got[c].double_value();
          const double w = want[c].double_value();
          ASSERT_LE(std::abs(g - w),
                    quantile_rel_bound * std::abs(w) + 1e-9)
              << "quantile out of error bound " << context();
        } else if (col_bounds[c] == ColBound::kDistinct) {
          const double g = static_cast<double>(got[c].int_value());
          const double w = static_cast<double>(want[c].int_value());
          ASSERT_LE(std::abs(g - w), distinct_abs_bound(w))
              << "distinct out of error bound " << context();
        } else {
          ASSERT_TRUE(ValuesAgree(got[c], want[c]))
              << "divergence " << context();
        }
      }
    }
  };

  for (uint64_t op = 0; op < ops; ++op) {
    const uint64_t r = rng.Uniform(1000);
    if (r < 700) {
      QueryRecord rec;
      rec.logical_signature = "sig" + std::to_string(rng.Uniform(kKeyPool));
      rec.text = kTexts[rng.Uniform(kTexts.size())];
      const uint64_t shape = rng.Uniform(16);
      if (param.sketch_budget > 0) {
        // Tame positive log-uniform range [~1e-3, 1e3]: ln-range 13.8 keeps
        // the worst-case collapse level — and hence quantile_rel_bound —
        // derivable. Other configs keep the hostile shapes below.
        rec.duration_secs = std::exp(rng.NextDouble() * 13.8 - 6.9);
      } else if (shape == 0) {
        rec.duration_secs = -rng.NextDouble() * 1e3;  // negative
      } else if (shape == 1) {
        rec.duration_secs = rng.NextDouble() * 1e300;  // huge magnitude
      } else if (shape == 2) {
        rec.duration_secs = 5e-324 * static_cast<double>(rng.Uniform(64));
      } else if (shape == 3) {
        rec.duration_secs = static_cast<double>(rng.UniformInt(-50, 50));
      } else {
        rec.duration_secs = rng.NextDouble() * 1e3;
      }
      const int64_t now = clock.NowMicros();
      if (param.batched) {
        pending_records.push_back(rec);
        pending_items.push_back({&pending_records.back(), now});
        // Uneven flush threshold: batches of many sizes get exercised.
        if (pending_items.size() >= 37) flush_batch();
      } else {
        lat->Insert(&rec, now);
      }
      ref->Insert(&rec, now);
    } else if (r < 870) {
      clock.Advance(rng.UniformInt(1, 2500));
    } else if (r < 920) {
      flush_batch();  // shed mode must not change mid-batch vs the oracle
      shed = !shed;
      lat->set_shed_aging(shed);  // invisible to the oracle by contract
    } else if (r < 923) {
      flush_batch();  // the engine drains the queue before a Reset
      lat->Reset();
      ref->Reset();
    } else if (r < 960) {
      flush_batch();
      // Full checkpoint/restore cycle through the version-negotiated
      // snapshot container (v3 when sketch cells are present, v2 otherwise):
      // raw state -> CSV file -> fresh staging table -> fresh Lat.
      const int snap_version = lat->HasSketchAggs()
                                   ? storage::kSnapshotVersionV3
                                   : storage::kSnapshotVersionV2;
      ASSERT_EQ(lat->HasSketchAggs(), param.sketch);
      const int64_t now = clock.NowMicros();
      auto staging = MakeStateTable(*lat);
      auto status = lat->ExportState(staging.get(), now);
      ASSERT_TRUE(status.ok()) << status.ToString();
      status = storage::WriteTableCsv(*staging, snapshot_path, snap_version);
      ASSERT_TRUE(status.ok()) << status.ToString();
      auto loaded = MakeStateTable(*lat);
      storage::SnapshotLoadInfo info;
      status = storage::LoadTableCsv(loaded.get(), snapshot_path, nullptr,
                                     &info);
      ASSERT_TRUE(status.ok()) << status.ToString();
      ASSERT_EQ(info.version, snap_version);
      auto fresh = Lat::Create(spec);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      status = (*fresh)->ImportState(*loaded, now);
      ASSERT_TRUE(status.ok()) << status.ToString();
      (*fresh)->set_shed_aging(shed);
      lat = std::move(*fresh);
      ASSERT_NO_FATAL_FAILURE(compare_all(op)) << "post-restore";
    }
    if (op % 64 == 63) {
      flush_batch();
      ASSERT_NO_FATAL_FAILURE(compare_all(op));
    }
  }
  flush_batch();
  ASSERT_NO_FATAL_FAILURE(compare_all(ops));
  std::remove(snapshot_path.c_str());
  std::remove((snapshot_path + ".bak").c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LatDifferentialTest,
    ::testing::Values(DiffCase{false, 1}, DiffCase{false, 8},
                      DiffCase{true, 1}, DiffCase{true, 8},
                      DiffCase{false, 1, true}, DiffCase{false, 8, true},
                      DiffCase{false, 1, false, true},
                      DiffCase{true, 8, false, true},
                      DiffCase{false, 8, true, true},
                      DiffCase{false, 8, false, true, 4096}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      std::string name =
          std::string(info.param.bounded ? "Bounded" : "Unbounded") +
          "Shards" + std::to_string(info.param.shard_count);
      if (info.param.batched) name += "Batched";
      if (info.param.sketch) {
        name += info.param.sketch_budget > 0 ? "SketchBudgeted" : "Sketch";
      }
      return name;
    });

}  // namespace
}  // namespace sqlcm::cm
