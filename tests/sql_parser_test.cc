#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace sqlcm::sql {
namespace {

using common::Value;

TEST(LexerTest, BasicTokens) {
  auto tokens = Lexer("SELECT a, 1.5 'x''y' @p <= <> !=").Tokenize();
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kIdentifier,
                TokenKind::kComma, TokenKind::kFloat, TokenKind::kString,
                TokenKind::kParam, TokenKind::kLe, TokenKind::kNe,
                TokenKind::kNe, TokenKind::kEof}));
  EXPECT_EQ((*tokens)[4].text, "x'y");
  EXPECT_EQ((*tokens)[5].text, "p");
}

TEST(LexerTest, LineCommentsSkipped) {
  auto tokens = Lexer("a -- comment\nb").Tokenize();
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, NumbersWithExponent) {
  auto tokens = Lexer("1e3 2.5e-2 10").Tokenize();
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[0].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 0.025);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kInteger);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lexer("'abc").Tokenize().ok());
}

TEST(ParserTest, SelectFull) {
  auto stmt = Parser::ParseStatement(
      "SELECT a, b AS bee, t.c FROM t JOIN u ON t.a = u.a "
      "WHERE a > 1 AND b < 2 GROUP BY a, b, t.c ORDER BY a DESC, b LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& select = static_cast<const SelectStmt&>(**stmt);
  EXPECT_EQ(select.items.size(), 3u);
  EXPECT_EQ(select.items[1].alias, "bee");
  EXPECT_EQ(select.from.table, "t");
  ASSERT_EQ(select.joins.size(), 1u);
  EXPECT_EQ(select.joins[0].table.table, "u");
  ASSERT_NE(select.where, nullptr);
  EXPECT_EQ(select.group_by.size(), 3u);
  ASSERT_EQ(select.order_by.size(), 2u);
  EXPECT_TRUE(select.order_by[0].descending);
  EXPECT_FALSE(select.order_by[1].descending);
  EXPECT_EQ(select.limit, 5);
}

TEST(ParserTest, SelectStarAndAlias) {
  auto stmt = Parser::ParseStatement("SELECT * FROM t x");
  ASSERT_TRUE(stmt.ok());
  const auto& select = static_cast<const SelectStmt&>(**stmt);
  EXPECT_TRUE(select.items[0].star);
  EXPECT_EQ(select.from.alias, "x");
}

TEST(ParserTest, ExpressionPrecedence) {
  auto expr = Parser::ParseExpression("1 + 2 * 3 = 7 AND NOT a OR b");
  ASSERT_TRUE(expr.ok());
  // ((((1+(2*3))=7) AND (NOT a)) OR b)
  EXPECT_EQ((*expr)->ToString(),
            "((((1 + (2 * 3)) = 7) AND (NOT a)) OR b)");
}

TEST(ParserTest, UnaryMinusAndParens) {
  auto expr = Parser::ParseExpression("-(1 + 2) * 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->ToString(), "((-(1 + 2)) * 3)");
}

TEST(ParserTest, InsertMultiRow) {
  auto stmt = Parser::ParseStatement(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
  ASSERT_TRUE(stmt.ok());
  const auto& insert = static_cast<const InsertStmt&>(**stmt);
  EXPECT_EQ(insert.table, "t");
  EXPECT_EQ(insert.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_TRUE(insert.rows[1][1]->literal.is_null());
}

TEST(ParserTest, UpdateAndDelete) {
  auto update = Parser::ParseStatement("UPDATE t SET a = a + 1, b = 2 WHERE c = 3");
  ASSERT_TRUE(update.ok());
  const auto& u = static_cast<const UpdateStmt&>(**update);
  EXPECT_EQ(u.assignments.size(), 2u);
  ASSERT_NE(u.where, nullptr);

  auto del = Parser::ParseStatement("DELETE FROM t");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(static_cast<const DeleteStmt&>(**del).where, nullptr);
}

TEST(ParserTest, CreateTableWithKeyAndTypes) {
  auto stmt = Parser::ParseStatement(
      "CREATE TABLE t (a INT, b VARCHAR(32), c FLOAT, PRIMARY KEY(a, b))");
  ASSERT_TRUE(stmt.ok());
  const auto& create = static_cast<const CreateTableStmt&>(**stmt);
  ASSERT_EQ(create.columns.size(), 3u);
  EXPECT_EQ(create.columns[1].type_name, "VARCHAR");
  EXPECT_EQ(create.primary_key, (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, CreateIndexAndDrop) {
  auto idx = Parser::ParseStatement("CREATE INDEX i ON t (a, b)");
  ASSERT_TRUE(idx.ok());
  const auto& create = static_cast<const CreateIndexStmt&>(**idx);
  EXPECT_EQ(create.index, "i");
  EXPECT_EQ(create.columns.size(), 2u);

  auto drop = Parser::ParseStatement("DROP TABLE t");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ((*drop)->kind, StatementKind::kDropTable);
}

TEST(ParserTest, TransactionControl) {
  EXPECT_EQ((*Parser::ParseStatement("BEGIN TRANSACTION"))->kind,
            StatementKind::kBegin);
  EXPECT_EQ((*Parser::ParseStatement("commit"))->kind, StatementKind::kCommit);
  EXPECT_EQ((*Parser::ParseStatement("ROLLBACK;"))->kind,
            StatementKind::kRollback);
}

TEST(ParserTest, ExecWithArgs) {
  auto stmt = Parser::ParseStatement("EXEC myproc 1, 'x', @p");
  ASSERT_TRUE(stmt.ok());
  const auto& exec = static_cast<const ExecProcedureStmt&>(**stmt);
  EXPECT_EQ(exec.procedure, "myproc");
  EXPECT_EQ(exec.args.size(), 3u);
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto script = Parser::ParseScript("SELECT a FROM t; SELECT b FROM u;");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 2u);
}

TEST(ParserTest, FunctionCallNormalized) {
  auto expr = Parser::ParseExpression("count(*)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->func_name, "COUNT");
  EXPECT_TRUE((*expr)->star_arg);
}

TEST(ParserTest, ExprClone) {
  auto expr = Parser::ParseExpression("a + 2 * f(x)");
  ASSERT_TRUE(expr.ok());
  auto clone = (*expr)->Clone();
  EXPECT_EQ(clone->ToString(), (*expr)->ToString());
}

struct BadSqlCase {
  const char* sql;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSqlCase> {};

TEST_P(ParserErrorTest, RejectsWithParseError) {
  auto stmt = Parser::ParseStatement(GetParam().sql);
  ASSERT_FALSE(stmt.ok()) << GetParam().sql;
  EXPECT_TRUE(stmt.status().IsParseError()) << stmt.status();
}

INSTANTIATE_TEST_SUITE_P(
    BadStatements, ParserErrorTest,
    ::testing::Values(BadSqlCase{"SELECT"}, BadSqlCase{"SELECT FROM t"},
                      BadSqlCase{"SELECT a FROM"},
                      BadSqlCase{"SELECT a FROM t WHERE"},
                      BadSqlCase{"INSERT INTO t VALUES"},
                      BadSqlCase{"UPDATE t SET"},
                      BadSqlCase{"CREATE TABLE t ()"},
                      BadSqlCase{"SELECT a FROM t extra garbage ,"},
                      BadSqlCase{"SELECT a FROM t LIMIT x"},
                      BadSqlCase{"DELETE t"}));

}  // namespace
}  // namespace sqlcm::sql
