// Stored-procedure behaviors: nesting, explicit transactions inside
// bodies, failure atomicity, and how procedures interact with monitoring
// (transaction signatures across nested EXECs).
#include <gtest/gtest.h>

#include "engine/session.h"
#include "sqlcm/monitor_engine.h"

namespace sqlcm::engine {
namespace {

using common::Value;
using exec::ParamMap;

class ProceduresTest : public ::testing::Test {
 protected:
  ProceduresTest() : session_(db_.CreateSession()) {
    Exec("CREATE TABLE t (a INT, b INT, PRIMARY KEY(a))");
    Exec("INSERT INTO t VALUES (1, 10), (2, 20)");
  }

  exec::QueryResult Exec(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : exec::QueryResult{};
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(ProceduresTest, NestedExecs) {
  Procedure inner;
  inner.name = "bump";
  inner.params = {"k"};
  inner.body.push_back(
      ProcStep::Sql("UPDATE t SET b = b + 1 WHERE a = @k"));
  ASSERT_TRUE(db_.CreateProcedure(std::move(inner)).ok());

  Procedure outer;
  outer.name = "bump_both";
  outer.params = {};
  outer.body.push_back(ProcStep::Sql("EXEC bump 1"));
  outer.body.push_back(ProcStep::Sql("EXEC bump 2"));
  ASSERT_TRUE(db_.CreateProcedure(std::move(outer)).ok());

  Exec("EXEC bump_both");
  EXPECT_EQ(Exec("SELECT b FROM t WHERE a = 1").rows[0][0].int_value(), 11);
  EXPECT_EQ(Exec("SELECT b FROM t WHERE a = 2").rows[0][0].int_value(), 21);
}

TEST_F(ProceduresTest, ArgumentsForwardCallerParams) {
  Procedure proc;
  proc.name = "reads";
  proc.params = {"k"};
  proc.body.push_back(ProcStep::Sql("SELECT b FROM t WHERE a = @k"));
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());
  // The EXEC argument references the *caller's* parameter map.
  ParamMap caller = {{"outer_key", Value::Int(2)}};
  auto result = session_->Execute("EXEC reads @outer_key", &caller);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows[0][0].int_value(), 20);
}

TEST_F(ProceduresTest, FailureRollsBackWholeAutocommitInvocation) {
  Procedure proc;
  proc.name = "partial";
  proc.params = {};
  proc.body.push_back(ProcStep::Sql("UPDATE t SET b = 0 WHERE a = 1"));
  proc.body.push_back(ProcStep::Sql("INSERT INTO t VALUES (1, 99)"));  // dup
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());

  auto result = session_->Execute("EXEC partial");
  ASSERT_FALSE(result.ok());
  // The first step's effect was rolled back with the procedure.
  EXPECT_EQ(Exec("SELECT b FROM t WHERE a = 1").rows[0][0].int_value(), 10);
  EXPECT_FALSE(session_->in_transaction());
}

TEST_F(ProceduresTest, NestedIfElse) {
  Procedure proc;
  proc.name = "classify";
  proc.params = {"x"};
  proc.body.push_back(ProcStep::If(
      "@x > 10",
      {ProcStep::If("@x > 100",
                    {ProcStep::Sql("SELECT 'huge' FROM t WHERE a = 1")},
                    {ProcStep::Sql("SELECT 'big' FROM t WHERE a = 1")})},
      {ProcStep::Sql("SELECT 'small' FROM t WHERE a = 1")}));
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());

  EXPECT_EQ(Exec("EXEC classify 5").rows[0][0].string_value(), "small");
  EXPECT_EQ(Exec("EXEC classify 50").rows[0][0].string_value(), "big");
  EXPECT_EQ(Exec("EXEC classify 500").rows[0][0].string_value(), "huge");
}

TEST_F(ProceduresTest, BadConditionSurfacesError) {
  Procedure proc;
  proc.name = "broken";
  proc.params = {};
  proc.body.push_back(ProcStep::If("@missing_param > 1", {}, {}));
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());
  auto result = session_->Execute("EXEC broken");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
}

TEST_F(ProceduresTest, DropProcedure) {
  Procedure proc;
  proc.name = "gone";
  proc.params = {};
  proc.body.push_back(ProcStep::Sql("SELECT a FROM t WHERE a = 1"));
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());
  ASSERT_TRUE(session_->Execute("EXEC gone").ok());
  ASSERT_TRUE(db_.DropProcedure("GONE").ok());  // case-insensitive
  EXPECT_TRUE(session_->Execute("EXEC gone").status().IsNotFound());
  EXPECT_TRUE(db_.DropProcedure("gone").IsNotFound());
}

TEST_F(ProceduresTest, ExplicitTransactionSpansInvocations) {
  Procedure proc;
  proc.name = "bump1";
  proc.params = {};
  proc.body.push_back(ProcStep::Sql("UPDATE t SET b = b + 1 WHERE a = 1"));
  ASSERT_TRUE(db_.CreateProcedure(std::move(proc)).ok());

  Exec("BEGIN");
  Exec("EXEC bump1");
  Exec("EXEC bump1");
  Exec("ROLLBACK");
  EXPECT_EQ(Exec("SELECT b FROM t WHERE a = 1").rows[0][0].int_value(), 10);
}

TEST_F(ProceduresTest, NestedExecTransactionSignatureIncludesInnerQueries) {
  cm::MonitorEngine monitor(&db_);
  cm::LatSpec lat;
  lat.name = "TxnSig";
  lat.object_class = cm::MonitoredClass::kTransaction;
  lat.group_by = {{"Logical_Signature", "Path"}};
  lat.aggregates = {{cm::LatAggFunc::kCount, "", "N", false},
                    {cm::LatAggFunc::kMax, "Num_Queries", "Q", false}};
  ASSERT_TRUE(monitor.DefineLat(std::move(lat)).ok());
  cm::RuleSpec rule;
  rule.name = "txn";
  rule.event = "Transaction.Commit";
  rule.action = "Transaction.Insert(TxnSig)";
  ASSERT_TRUE(monitor.AddRule(rule).ok());

  Procedure inner;
  inner.name = "leaf";
  inner.params = {};
  inner.body.push_back(ProcStep::Sql("SELECT a FROM t WHERE a = 1"));
  ASSERT_TRUE(db_.CreateProcedure(std::move(inner)).ok());
  Procedure outer;
  outer.name = "trunk";
  outer.params = {};
  outer.body.push_back(ProcStep::Sql("EXEC leaf"));
  outer.body.push_back(ProcStep::Sql("SELECT b FROM t WHERE a = 2"));
  ASSERT_TRUE(db_.CreateProcedure(std::move(outer)).ok());

  Exec("EXEC trunk");
  auto rows = monitor.FindLat("TxnSig")->Snapshot(db_.clock()->NowMicros());
  ASSERT_EQ(rows.size(), 1u);
  // 4 query commits inside one transaction: inner SELECT, EXEC leaf,
  // outer SELECT, EXEC trunk.
  EXPECT_EQ(rows[0][2].int_value(), 4);
}

}  // namespace
}  // namespace sqlcm::engine
