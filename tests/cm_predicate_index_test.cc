// Differential oracle for the shared predicate index and online learned
// condition ordering (docs/PERFORMANCE.md §Predicate index): randomized
// rule sets and workloads must produce bit-identical firing decisions with
// the index off (naive per-rule evaluation), the index on in
// authoring-order mode, and the index on with learned ordering — including
// three-valued edges (missing LAT rows, NULL-propagating ORs), mid-event
// LAT mutation, mid-stream CREATE/DROP RULE, and the deferred lane.
#include "sqlcm/predicate_index.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "sqlcm/monitor_engine.h"
#include "sqlcm/system_views.h"

namespace sqlcm::cm {
namespace {

using common::Value;
using exec::ParamMap;
using exec::QueryResult;

/// Per-rule counters that must agree between evaluation strategies. The
/// condition outcome fully determines all four: evaluations (breaker gate),
/// condition_false (reject), fires (pass) and errors (condition faults —
/// the index falls back to naive replay so even those reconcile).
struct RuleOutcome {
  uint64_t evals = 0;
  uint64_t cond_false = 0;
  uint64_t fires = 0;
  uint64_t errors = 0;

  bool operator==(const RuleOutcome& o) const {
    return evals == o.evals && cond_false == o.cond_false &&
           fires == o.fires && errors == o.errors;
  }
};

using OutcomeMap = std::map<std::string, RuleOutcome>;

/// One engine under one Options configuration, with the shared test
/// fixture state (items table) pre-created.
class EngineHarness {
 public:
  explicit EngineHarness(MonitorEngine::Options options) {
    db_ = std::make_unique<engine::Database>();
    monitor_ = std::make_unique<MonitorEngine>(db_.get(), std::move(options));
    session_ = db_->CreateSession();
    Exec("CREATE TABLE items (id INT, grp INT, val FLOAT, PRIMARY KEY(id))");
    for (int i = 0; i < 25; ++i) {
      Exec("INSERT INTO items VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 5) + ", 1.0)");
    }
  }

  void Exec(const std::string& sql, const ParamMap* params = nullptr) {
    auto result = session_->Execute(sql, params);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status();
  }

  QueryResult Query(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *result : QueryResult{};
  }

  void DefineCountLat(const std::string& name) {
    LatSpec spec;
    spec.name = name;
    spec.group_by = {{"Logical_Signature", "Sig"}};
    spec.aggregates = {{LatAggFunc::kCount, "", "N", false}};
    ASSERT_TRUE(monitor_->DefineLat(std::move(spec)).ok());
  }

  void AddRule(const std::string& name, const std::string& condition,
               const std::string& action) {
    RuleSpec spec;
    spec.name = name;
    spec.event = "Query.Commit";
    spec.condition = condition;
    spec.action = action;
    ASSERT_TRUE(monitor_->AddRule(spec).ok()) << name << ": " << condition;
  }

  /// Two query templates (distinct signatures) driven by a deterministic
  /// parameter sequence; every engine given the same `queries` count sees
  /// the same event stream.
  void RunWorkload(int queries) {
    ParamMap params;
    for (int i = 0; i < queries; ++i) {
      params = {{"k", Value::Int(i % 20)}};
      if (i % 3 == 0) {
        Exec("SELECT val FROM items WHERE grp = @k AND val >= 0.0", &params);
      } else {
        Exec("SELECT val FROM items WHERE id = @k", &params);
      }
    }
  }

  OutcomeMap Outcomes() const {
    OutcomeMap out;
    for (const auto& rule : monitor_->SnapshotRules()) {
      RuleOutcome oc;
      oc.evals = rule->stats.evaluations.value();
      oc.cond_false = rule->stats.condition_false.value();
      oc.fires = rule->stats.fires.value();
      oc.errors = rule->stats.errors.value();
      out[rule->name] = oc;
    }
    return out;
  }

  engine::Database* db() { return db_.get(); }
  MonitorEngine* monitor() { return monitor_.get(); }

 private:
  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<MonitorEngine> monitor_;
  std::unique_ptr<engine::Session> session_;
};

MonitorEngine::Options NaiveOptions() {
  MonitorEngine::Options options;
  options.predicate_index = false;
  options.learned_predicate_order = false;
  options.register_system_views = false;
  return options;
}

MonitorEngine::Options IndexedOptions() {
  MonitorEngine::Options options;
  options.predicate_index = true;
  options.learned_predicate_order = false;
  options.register_system_views = false;
  return options;
}

MonitorEngine::Options LearnedOptions() {
  MonitorEngine::Options options;
  options.predicate_index = true;
  options.learned_predicate_order = true;
  // Aggressively small interval so ordering republishes mid-test.
  options.predicate_reorder_interval = 16;
  options.register_system_views = false;
  return options;
}

/// Deterministic predicate pool: no wall-clock-dependent outcomes (query
/// durations only ever compared against 0 or an unreachable bound), so two
/// engines fed the same workload agree event by event.
const char* const kPredicatePool[] = {
    "Query.ID >= 0",
    "Query.ID < 0",
    "Query.Duration >= 0",
    "Query.Duration > 100000000",
    "NOT (Query.ID < 0)",
    "5 < Query.ID",
    "Query.ID > 5",
    "Count_LAT.N >= 1",
    "Count_LAT.N > 2",
    "Count_LAT.N < 0",
    "Count_LAT.N <= 10000",
    "Count_LAT.N >= 1 OR Query.ID < 0",
    "Sparse_LAT.N >= 0",
};
constexpr size_t kPoolSize = sizeof(kPredicatePool) / sizeof(char*);

/// Builds a seeded random rule set over the pool. The Count_LAT feed rule
/// lands at a random position, so rules ahead of it see a missing LAT row
/// on each template's first event; Sparse_LAT is never fed, so predicates
/// on it exercise the implicit-∃ reject (§5.2) on every event. A random
/// "bump" rule re-inserts into Count_LAT mid-event to exercise memo
/// invalidation under randomized orderings.
void AddSeededRules(EngineHarness* h, uint32_t seed) {
  std::mt19937 rng(seed);
  h->DefineCountLat("Count_LAT");
  h->DefineCountLat("Sparse_LAT");

  const int n_rules = 6 + static_cast<int>(rng() % 5);
  const int feed_pos = static_cast<int>(rng() % n_rules);
  const int bump_pos = static_cast<int>(rng() % n_rules);
  for (int r = 0; r < n_rules; ++r) {
    if (r == feed_pos) {
      h->AddRule("feed", "", "Query.Insert(Count_LAT)");
      continue;
    }
    const int conjuncts = 1 + static_cast<int>(rng() % 3);
    std::string condition;
    for (int c = 0; c < conjuncts; ++c) {
      if (c > 0) condition += " AND ";
      condition += kPredicatePool[rng() % kPoolSize];
    }
    const std::string name = "r" + std::to_string(r);
    if (r == bump_pos) {
      h->AddRule(name, condition, "Query.Insert(Count_LAT)");
    } else {
      h->AddRule(name, condition, "Query.Persist(Sink_" + name + ", ID)");
    }
  }
}

TEST(PredicateIndexDifferentialTest, RandomizedRuleSetsFireIdentically) {
  for (uint32_t seed = 1; seed <= 6; ++seed) {
    std::vector<OutcomeMap> outcomes;
    for (int config = 0; config < 3; ++config) {
      EngineHarness h(config == 0   ? NaiveOptions()
                      : config == 1 ? IndexedOptions()
                                    : LearnedOptions());
      AddSeededRules(&h, seed);
      h.RunWorkload(60);
      outcomes.push_back(h.Outcomes());
      if (config > 0) {
        // The index must actually be exercised, or this proves nothing.
        EXPECT_GT(h.monitor()->metrics().predindex_evals.value(), 0u)
            << "seed " << seed;
      }
    }
    EXPECT_EQ(outcomes[0], outcomes[1]) << "naive vs indexed, seed " << seed;
    EXPECT_EQ(outcomes[0], outcomes[2]) << "naive vs learned, seed " << seed;
  }
}

TEST(PredicateIndexDifferentialTest, MissingLatRowRejectsWithoutLeaking) {
  // §5.2 implicit ∃: a predicate over a LAT with no matching row rejects
  // even when trivially true of the values — and the sticky missing-row
  // flag must not leak into the NEXT rule sharing the event's context.
  for (int config = 0; config < 3; ++config) {
    EngineHarness h(config == 0   ? NaiveOptions()
                    : config == 1 ? IndexedOptions()
                                  : LearnedOptions());
    h.DefineCountLat("Missing_LAT");
    h.AddRule("on_missing", "Missing_LAT.N >= 0",
              "Query.Persist(SinkM, ID)");
    h.AddRule("after_missing", "Query.ID >= 0",
              "Query.Persist(SinkA, ID)");
    h.RunWorkload(12);
    const OutcomeMap oc = h.Outcomes();
    EXPECT_EQ(oc.at("on_missing").fires, 0u) << "config " << config;
    EXPECT_EQ(oc.at("on_missing").cond_false, 12u) << "config " << config;
    EXPECT_EQ(oc.at("after_missing").fires, 12u) << "config " << config;
  }
}

TEST(PredicateIndexDifferentialTest, MidEventLatMutationInvalidatesMemo) {
  // reader1 and reader2 share the conjunct "Count_LAT.N <= 1". Between
  // them, "bump" re-inserts the event's query into Count_LAT, so on every
  // event reader2 must see N one higher than reader1 did. A stale memo
  // would replay reader1's verdict and over-fire reader2.
  std::vector<OutcomeMap> outcomes;
  for (int config = 0; config < 3; ++config) {
    EngineHarness h(config == 0   ? NaiveOptions()
                    : config == 1 ? IndexedOptions()
                                  : LearnedOptions());
    h.DefineCountLat("Count_LAT");
    h.AddRule("seed_feed", "", "Query.Insert(Count_LAT)");
    h.AddRule("reader1", "Count_LAT.N <= 1", "Query.Persist(Sink1, ID)");
    h.AddRule("bump", "Count_LAT.N <= 1", "Query.Insert(Count_LAT)");
    h.AddRule("reader2", "Count_LAT.N <= 1", "Query.Persist(Sink2, ID)");
    ParamMap params = {{"k", Value::Int(1)}};
    h.Exec("SELECT val FROM items WHERE id = @k", &params);
    const OutcomeMap oc = h.Outcomes();
    // First event of the template: seed_feed makes N=1, reader1 and bump
    // both see N=1 (fire), bump's insert makes N=2, reader2 must reject.
    EXPECT_EQ(oc.at("reader1").fires, 1u) << "config " << config;
    EXPECT_EQ(oc.at("bump").fires, 1u) << "config " << config;
    EXPECT_EQ(oc.at("reader2").fires, 0u) << "config " << config;
    if (config > 0) {
      EXPECT_GT(h.monitor()->metrics().predindex_invalidations.value(), 0u);
    }
    outcomes.push_back(oc);
  }
  EXPECT_EQ(outcomes[0], outcomes[1]);
  EXPECT_EQ(outcomes[0], outcomes[2]);
}

TEST(PredicateIndexDifferentialTest, ThreeValuedOrEdgesAgree) {
  // OR conjuncts interact with the missing-row flag in both operand
  // orders; all strategies must agree (the conjunct is one predicate, so
  // this pins EvaluatePredicate's classification, not just the walk).
  std::vector<OutcomeMap> outcomes;
  for (int config = 0; config < 3; ++config) {
    EngineHarness h(config == 0   ? NaiveOptions()
                    : config == 1 ? IndexedOptions()
                                  : LearnedOptions());
    h.DefineCountLat("Missing_LAT");
    h.AddRule("or_left_live", "Query.ID >= 0 OR Missing_LAT.N > 0",
              "Query.Persist(SinkL, ID)");
    h.AddRule("or_right_live", "Missing_LAT.N > 0 OR Query.ID >= 0",
              "Query.Persist(SinkR, ID)");
    h.AddRule("not_wrapped", "NOT (Query.ID < 0) AND Query.Duration >= 0",
              "Query.Persist(SinkN, ID)");
    h.RunWorkload(9);
    outcomes.push_back(h.Outcomes());
    EXPECT_EQ(outcomes.back().at("not_wrapped").fires, 9u)
        << "config " << config;
  }
  EXPECT_EQ(outcomes[0], outcomes[1]);
  EXPECT_EQ(outcomes[0], outcomes[2]);
}

TEST(PredicateIndexDifferentialTest, MidStreamRuleChurnKeepsAgreement) {
  // CREATE/DROP RULE mid-stream republishes the RCU table and rebuilds the
  // index (re-applying any learned ranks); outcomes must keep matching.
  std::vector<OutcomeMap> outcomes;
  for (int config = 0; config < 3; ++config) {
    EngineHarness h(config == 0   ? NaiveOptions()
                    : config == 1 ? IndexedOptions()
                                  : LearnedOptions());
    h.DefineCountLat("Count_LAT");
    h.AddRule("feed", "", "Query.Insert(Count_LAT)");
    RuleSpec dropme;
    dropme.name = "dropme";
    dropme.event = "Query.Commit";
    dropme.condition = "Count_LAT.N >= 1";
    dropme.action = "Query.Persist(SinkD, ID)";
    auto dropme_id = h.monitor()->AddRule(dropme);
    ASSERT_TRUE(dropme_id.ok());
    h.AddRule("keeper", "Count_LAT.N >= 1 AND Query.ID >= 0",
              "Query.Persist(SinkK, ID)");
    h.RunWorkload(30);
    ASSERT_TRUE(h.monitor()->RemoveRule(*dropme_id).ok());
    h.AddRule("late", "Count_LAT.N > 2", "Query.Persist(SinkLate, ID)");
    h.RunWorkload(30);
    outcomes.push_back(h.Outcomes());
    EXPECT_GT(outcomes.back().at("late").fires, 0u) << "config " << config;
  }
  EXPECT_EQ(outcomes[0], outcomes[1]);
  EXPECT_EQ(outcomes[0], outcomes[2]);
}

TEST(PredicateIndexDifferentialTest, DeferredLaneFiresIdentically) {
  // Same oracle through the async pipeline: deferrable rules drain on a
  // single worker (FIFO), with the deferred-lane index on vs off. Deferred
  // Insert actions flush at batch boundaries, so live-LAT conditions are
  // batch-timing-dependent even naively — conditions here stick to event
  // attributes and a never-fed LAT (deterministically missing).
  std::vector<OutcomeMap> outcomes;
  for (int config = 0; config < 3; ++config) {
    MonitorEngine::Options options = config == 0   ? NaiveOptions()
                                     : config == 1 ? IndexedOptions()
                                                   : LearnedOptions();
    options.async_rule_eval = true;
    options.monitor_threads = 1;
    EngineHarness h(options);
    h.DefineCountLat("Count_LAT");
    h.DefineCountLat("Sparse_LAT");
    h.AddRule("feed", "", "Query.Insert(Count_LAT)");
    h.AddRule("d0", "Query.ID >= 0 AND Query.Duration >= 0",
              "Query.Persist(Sink_d0, ID)");
    h.AddRule("d1", "5 < Query.ID AND NOT (Query.ID < 0)",
              "Query.Persist(Sink_d1, ID)");
    h.AddRule("d2", "Sparse_LAT.N >= 0", "Query.Persist(Sink_d2, ID)");
    h.AddRule("d3", "Query.Duration > 100000000 AND Query.ID >= 0",
              "Query.Persist(Sink_d3, ID)");
    h.AddRule("d4", "Query.ID > 5 OR Query.ID < 0",
              "Query.Persist(Sink_d4, ID)");
    h.RunWorkload(60);
    h.monitor()->DrainEventQueue();
    outcomes.push_back(h.Outcomes());
    EXPECT_GT(h.monitor()->metrics().queue_enqueued.value(), 0u)
        << "config " << config;
  }
  EXPECT_EQ(outcomes[0], outcomes[1]);
  EXPECT_EQ(outcomes[0], outcomes[2]);
}

TEST(PredicateIndexTest, SharedConjunctsDeduplicateAcrossRules) {
  EngineHarness h(IndexedOptions());
  h.DefineCountLat("Count_LAT");
  h.AddRule("feed", "", "Query.Insert(Count_LAT)");
  // Same conjunct authored three ways: verbatim, duplicated, and mirrored
  // (literal-first comparison) — canonicalization must fold all of them.
  h.AddRule("a", "Count_LAT.N >= 1 AND Query.ID > 5",
            "Query.Persist(SinkA, ID)");
  h.AddRule("b", "Count_LAT.N >= 1 AND Query.Duration >= 0",
            "Query.Persist(SinkB, ID)");
  h.AddRule("c", "5 < Query.ID", "Query.Persist(SinkC, ID)");
  h.RunWorkload(20);

  bool found_shared_lat = false;
  bool found_mirrored = false;
  for (const auto& row : h.monitor()->SnapshotPredicateStats()) {
    if (row.text == "(count_lat.N >= 1)") {
      found_shared_lat = true;
      EXPECT_EQ(row.subscribers, 2u);
      EXPECT_GT(row.evals, 0u);
    }
    if (row.text == "(Query.ID > 5)") {
      found_mirrored = true;
      EXPECT_EQ(row.subscribers, 2u) << "mirror normalization should fold "
                                        "'5 < Query.ID' into 'Query.ID > 5'";
    }
  }
  EXPECT_TRUE(found_shared_lat);
  EXPECT_TRUE(found_mirrored);
  // Sharing shows up as memo hits: at least the duplicated conjuncts were
  // answered without re-evaluation.
  EXPECT_GT(h.monitor()->metrics().predindex_memo_hits.value(), 0u);
}

TEST(PredicateIndexTest, RulePredicateStatsViewIsQueryable) {
  MonitorEngine::Options options = IndexedOptions();
  options.register_system_views = true;
  EngineHarness h(options);
  h.DefineCountLat("Count_LAT");
  h.AddRule("feed", "", "Query.Insert(Count_LAT)");
  h.AddRule("a", "Count_LAT.N >= 1 AND Query.ID >= 0",
            "Query.Persist(SinkA, ID)");
  h.AddRule("b", "Count_LAT.N >= 1", "Query.Persist(SinkB, ID)");
  h.RunWorkload(20);

  const QueryResult result = h.Query(
      "SELECT event, lane, predicate, rules, eval_count, pass_count, "
      "pass_rate, rank FROM sqlcm_rule_predicate_stats");
  ASSERT_GE(result.rows.size(), 2u);
  bool found = false;
  for (const auto& row : result.rows) {
    if (row[2].ToDisplayString() != "(count_lat.N >= 1)") continue;
    found = true;
    EXPECT_EQ(row[0].ToDisplayString(), "Query.Commit");
    EXPECT_EQ(row[1].ToDisplayString(), "sync");
    EXPECT_EQ(row[3].int_value(), 2);
    EXPECT_GT(row[4].int_value(), 0);
    EXPECT_GT(row[6].double_value(), 0.0);  // passes once the row exists
  }
  EXPECT_TRUE(found);
}

TEST(PredicateIndexTest, LearnedOrderConvergesAndKeepsSemantics) {
  // A cheap never-true conjunct authored AFTER an expensive LAT conjunct:
  // learned ordering should promote the rejector to rank 0 among that
  // rule's predicates, and the rule must never fire either way.
  EngineHarness h(LearnedOptions());
  h.DefineCountLat("Count_LAT");
  h.AddRule("feed", "", "Query.Insert(Count_LAT)");
  h.AddRule("expensive_first",
            "Count_LAT.N + Count_LAT.N + Count_LAT.N >= 0 AND Query.ID < 0",
            "Query.Persist(SinkE, ID)");
  h.RunWorkload(200);

  const OutcomeMap oc = h.Outcomes();
  EXPECT_EQ(oc.at("expensive_first").fires, 0u);
  EXPECT_EQ(oc.at("expensive_first").cond_false, 200u);
  EXPECT_GT(h.monitor()->metrics().predindex_reorders.value(), 0u);

  int64_t rejector_rank = -1;
  int64_t expensive_rank = -1;
  for (const auto& row : h.monitor()->SnapshotPredicateStats()) {
    if (row.text == "(Query.ID < 0)") rejector_rank = row.rank;
    if (row.text.find("count_lat.N + count_lat.N") != std::string::npos) {
      expensive_rank = row.rank;
    }
  }
  ASSERT_GE(rejector_rank, 0);
  ASSERT_GE(expensive_rank, 0);
  EXPECT_LT(rejector_rank, expensive_rank)
      << "always-false cheap conjunct should be walked first";
}

TEST(PredicateIndexTest, ConcurrentEvalChurnAndReorderIsRaceFree) {
  // TSan target: query threads evaluating through the index while a churn
  // thread republishes the rule table and the reorderer republishes ranks.
  MonitorEngine::Options options = LearnedOptions();
  EngineHarness h(options);
  h.DefineCountLat("Count_LAT");
  h.AddRule("feed", "", "Query.Insert(Count_LAT)");
  h.AddRule("stable", "Count_LAT.N >= 1 AND Query.Duration >= 0",
            "Query.Persist(SinkS, ID)");

  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&h, t] {
      auto session = h.db()->CreateSession();
      ParamMap params;
      for (int i = 0; i < 200; ++i) {
        params = {{"k", Value::Int((t * 7 + i) % 20)}};
        auto result =
            session->Execute("SELECT val FROM items WHERE id = @k", &params);
        ASSERT_TRUE(result.ok()) << result.status();
      }
    });
  }
  std::thread churn([&h] {
    for (int i = 0; i < 40; ++i) {
      RuleSpec spec;
      spec.name = "churn";
      spec.event = "Query.Commit";
      spec.condition = "Count_LAT.N >= 1";
      spec.action = "Query.Persist(SinkC, ID)";
      auto id = h.monitor()->AddRule(spec);
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(h.monitor()->RemoveRule(*id).ok());
    }
  });
  for (auto& w : workers) w.join();
  churn.join();

  const OutcomeMap oc = h.Outcomes();
  EXPECT_EQ(oc.at("stable").evals, 600u);
  EXPECT_EQ(oc.at("stable").errors, 0u);
}

}  // namespace
}  // namespace sqlcm::cm
