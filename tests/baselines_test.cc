#include "baselines/pull.h"
#include "baselines/query_logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/session.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"

namespace sqlcm::baselines {
namespace {

using common::Value;

TEST(QueryLoggingTest, LogsEveryCommittedQuery) {
  engine::Database db;
  QueryLoggingMonitor::Options options;
  options.table_name = "qlog";
  options.sync_file = ::testing::TempDir() + "/qlog_test.csv";
  auto monitor = QueryLoggingMonitor::Create(&db, options);
  ASSERT_TRUE(monitor.ok()) << monitor.status();

  auto session = db.CreateSession();
  ASSERT_TRUE(
      session->Execute("CREATE TABLE t (a INT, PRIMARY KEY(a))").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        session->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  ASSERT_TRUE(session->Execute("SELECT a FROM t WHERE a = 3").ok());

  EXPECT_EQ((*monitor)->rows_logged(), 6u);
  storage::Table* log = db.catalog()->GetTable("qlog");
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->row_count(), 6u);
  std::remove(options.sync_file.c_str());
}

TEST(QueryLoggingTest, FailedStatementsNotLogged) {
  engine::Database db;
  auto monitor = QueryLoggingMonitor::Create(&db, {});
  ASSERT_TRUE(monitor.ok());
  auto session = db.CreateSession();
  ASSERT_TRUE(session->Execute("CREATE TABLE t (a INT, PRIMARY KEY(a))").ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_FALSE(session->Execute("INSERT INTO t VALUES (1)").ok());  // dup
  EXPECT_EQ((*monitor)->rows_logged(), 1u);
}

size_t CountLines(const std::string& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

void RunLoggedQueries(QueryLoggingMonitor::Options options, int queries) {
  engine::Database db;
  auto monitor = QueryLoggingMonitor::Create(&db, std::move(options));
  ASSERT_TRUE(monitor.ok()) << monitor.status();
  auto session = db.CreateSession();
  ASSERT_TRUE(session->Execute("CREATE TABLE t (a INT, PRIMARY KEY(a))").ok());
  for (int i = 1; i < queries; ++i) {
    ASSERT_TRUE(
        session->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
  }
}

TEST(QueryLoggingTest, SyncLogAppendsAcrossRestartsUnlessTruncated) {
  QueryLoggingMonitor::Options options;
  options.sync_file = ::testing::TempDir() + "/qlog_restart.csv";
  std::remove(options.sync_file.c_str());

  // Two "engine lifetimes" with the default open mode: the second run must
  // keep the first run's rows (append semantics survive a restart). Each
  // run logs queries-1 rows (the CREATE TABLE is DDL and is not logged).
  RunLoggedQueries(options, 3);
  EXPECT_EQ(CountLines(options.sync_file), 2u);
  RunLoggedQueries(options, 2);
  EXPECT_EQ(CountLines(options.sync_file), 3u);

  // Explicit truncate discards the history on startup.
  options.truncate_log = true;
  RunLoggedQueries(options, 3);
  EXPECT_EQ(CountLines(options.sync_file), 2u);
  std::remove(options.sync_file.c_str());
}

class PullTest : public ::testing::Test {
 protected:
  PullTest() {
    engine::Database::Options options;
    options.enable_statement_snapshot = true;
    options.enable_statement_history = true;
    db_ = std::make_unique<engine::Database>(options);
    session_ = db_->CreateSession();
    EXPECT_TRUE(
        session_->Execute("CREATE TABLE t (a INT, PRIMARY KEY(a))").ok());
    EXPECT_TRUE(session_->Execute("INSERT INTO t VALUES (1)").ok());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<engine::Session> session_;
};

TEST_F(PullTest, SnapshotSeesOnlyInFlightStatements) {
  // Nothing running between statements.
  EXPECT_TRUE(db_->SnapshotActiveStatements().empty());
  PullMonitor pull(db_.get(), {});
  pull.PollOnce();
  EXPECT_EQ(pull.observed_count(), 0u);
}

TEST_F(PullTest, HistoryCapturesCompletedStatements) {
  PullHistoryMonitor history(db_.get(), {});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(session_->Execute("SELECT a FROM t WHERE a = 1").ok());
  }
  EXPECT_EQ(db_->StatementHistorySize(), 4u + 1u /* insert in fixture */);
  history.PollOnce();
  EXPECT_EQ(history.observed_count(), 5u);
  EXPECT_GE(history.max_history_seen(), 5u);
  // Drained: second poll adds nothing.
  history.PollOnce();
  EXPECT_EQ(history.observed_count(), 5u);
  EXPECT_EQ(db_->StatementHistorySize(), 0u);

  auto top = history.TopK(3);
  EXPECT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].duration_micros, top[1].duration_micros);
}

TEST_F(PullTest, PullMissesShortQueriesHistoryDoesNot) {
  // The §6.2.2 accuracy claim in miniature: statements that complete
  // between polls are invisible to PULL but exact in PULL_history.
  PullMonitor pull(db_.get(), {});
  PullHistoryMonitor history(db_.get(), {});
  for (int i = 2; i < 20; ++i) {
    ASSERT_TRUE(session_
                    ->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                              ")")
                    .ok());
  }
  pull.PollOnce();     // after the fact: sees nothing
  history.PollOnce();  // exact
  EXPECT_EQ(pull.observed_count(), 0u);
  EXPECT_EQ(history.observed_count(), 19u);
}

TEST(ObservationStoreTest, KeepsMaxAndOrdersTopK) {
  ObservationStore store;
  store.Observe(1, "q1", 100);
  store.Observe(1, "q1", 50);   // smaller: ignored
  store.Observe(2, "q2", 300);
  store.Observe(3, "q3", 200);
  auto top = store.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].query_id, 2u);
  EXPECT_EQ(top[1].query_id, 3u);
  EXPECT_EQ(store.TopK(10).size(), 3u);
}

}  // namespace
}  // namespace sqlcm::baselines
