// Multi-threaded LAT stress over the sharded directory (§6.1): concurrent
// inserts, evictions, snapshots, resets and checkpoint/restore racing across
// shard boundaries. CI runs this binary under ThreadSanitizer (the
// `concurrency` filter of the tsan job), so the assertions here are mostly
// "invariants hold"; the interleavings themselves are the test.
//
// Also proves the determinism contract of LatSpec::shard_count: the shard
// count changes contention behaviour only, never aggregate results.
#include "sqlcm/lat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/catalog.h"

namespace sqlcm::cm {
namespace {

using common::Row;
using common::Value;

QueryRecord MakeQuery(const std::string& sig, double duration) {
  QueryRecord rec;
  rec.logical_signature = sig;
  rec.duration_secs = duration;
  rec.text = "q";
  rec.id = 1;
  return rec;
}

LatSpec CountSumSpec(const std::string& name, size_t shard_count) {
  LatSpec spec;
  spec.name = name;
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false},
                     {LatAggFunc::kSum, "Duration", "S", false}};
  spec.shard_count = shard_count;
  return spec;
}

// ---------------------------------------------------------------------------
// Determinism: shard count never changes results
// ---------------------------------------------------------------------------

std::vector<Row> SortedByKey(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a[0].string_value() < b[0].string_value();
  });
  return rows;
}

TEST(LatShardDeterminismTest, AggregatesIndependentOfShardCount) {
  auto one = *Lat::Create(CountSumSpec("one", 1));
  auto many = *Lat::Create(CountSumSpec("many", 8));
  EXPECT_EQ(one->shard_count(), 1u);
  EXPECT_EQ(many->shard_count(), 8u);

  common::Random rng(7);
  for (int i = 0; i < 2000; ++i) {
    auto rec = MakeQuery("sig" + std::to_string(rng.Uniform(64)),
                         static_cast<double>(rng.UniformInt(0, 100)) / 4.0);
    one->Insert(&rec, 0);
    many->Insert(&rec, 0);
  }

  ASSERT_EQ(one->size(), many->size());
  const auto rows1 = SortedByKey(one->Snapshot(0));
  const auto rows8 = SortedByKey(many->Snapshot(0));
  ASSERT_EQ(rows1.size(), rows8.size());
  for (size_t i = 0; i < rows1.size(); ++i) {
    ASSERT_EQ(rows1[i].size(), rows8[i].size());
    EXPECT_EQ(rows1[i][0].string_value(), rows8[i][0].string_value());
    EXPECT_EQ(rows1[i][1].int_value(), rows8[i][1].int_value());
    EXPECT_DOUBLE_EQ(rows1[i][2].AsDouble(), rows8[i][2].AsDouble());
  }
}

TEST(LatShardDeterminismTest, EvictionOrderIndependentOfShardCount) {
  // Eviction must pick the globally least-important row even though each
  // shard keeps its own heap — so a size-limited LAT retains exactly the
  // same top-k set at any shard count.
  auto make = [](size_t shard_count) {
    LatSpec spec;
    spec.name = "top";
    spec.group_by = {{"ID", ""}};
    spec.aggregates = {{LatAggFunc::kMax, "Duration", "Dur", false}};
    spec.ordering = {{"Dur", true}};
    spec.max_rows = 12;
    spec.shard_count = shard_count;
    return *Lat::Create(std::move(spec));
  };
  auto one = make(1);
  auto many = make(8);

  common::Random rng(11);
  for (int i = 1; i <= 500; ++i) {
    QueryRecord rec;
    rec.id = static_cast<uint64_t>(i);
    // Unique durations -> an unambiguous top-12 set.
    rec.duration_secs =
        static_cast<double>(i) + static_cast<double>(rng.Uniform(50)) * 1000.0;
    one->Insert(&rec, 0);
    many->Insert(&rec, 0);
  }
  const auto rows1 = one->Snapshot(0);
  const auto rows8 = many->Snapshot(0);
  ASSERT_EQ(rows1.size(), 12u);
  ASSERT_EQ(rows8.size(), 12u);
  for (size_t i = 0; i < rows1.size(); ++i) {
    EXPECT_EQ(rows1[i][0].int_value(), rows8[i][0].int_value()) << "rank " << i;
    EXPECT_DOUBLE_EQ(rows1[i][1].AsDouble(), rows8[i][1].AsDouble());
  }
}

// ---------------------------------------------------------------------------
// Cross-shard races
// ---------------------------------------------------------------------------

TEST(LatConcurrencyTest, InsertSnapshotResetRace) {
  auto spec = CountSumSpec("race", 8);
  auto lat = *Lat::Create(std::move(spec));

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&lat, t] {
      common::Random rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerWriter; ++i) {
        auto rec = MakeQuery("sig" + std::to_string(rng.Uniform(32)), 1.0);
        lat->Insert(&rec, 0);
      }
    });
  }
  // Reader thread: snapshots and point lookups racing the writers.
  threads.emplace_back([&lat, &done] {
    Row row;
    while (!done.load(std::memory_order_acquire)) {
      const auto rows = lat->Snapshot(0);
      ASSERT_LE(rows.size(), 32u);
      for (const Row& r : rows) {
        ASSERT_EQ(r.size(), 3u);
        ASSERT_GE(r[1].int_value(), 1);
      }
      lat->LookupByKey({Value::String("sig0")}, 0, &row);
    }
  });
  // Reset thread: periodically drops everything mid-stream.
  threads.emplace_back([&lat, &done] {
    int resets = 0;
    while (!done.load(std::memory_order_acquire) && resets < 50) {
      lat->Reset();
      ++resets;
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < kWriters; ++t) threads[static_cast<size_t>(t)].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Post-race coherence: counters balance and a final Reset empties it.
  EXPECT_LE(lat->size(), 32u);
  EXPECT_EQ(lat->Snapshot(0).size(), lat->size());
  lat->Reset();
  EXPECT_EQ(lat->size(), 0u);
  EXPECT_EQ(lat->approx_bytes(), 0u);
  auto rec = MakeQuery("fresh", 2.0);
  lat->Insert(&rec, 0);
  Row row;
  ASSERT_TRUE(lat->LookupForObject(&rec, 0, &row));
  EXPECT_EQ(row[1].int_value(), 1);
}

TEST(LatConcurrencyTest, EvictionRaceAcrossShards) {
  LatSpec spec;
  spec.name = "evict";
  spec.group_by = {{"ID", ""}};
  spec.aggregates = {{LatAggFunc::kMax, "Duration", "D", false}};
  spec.ordering = {{"D", true}};
  spec.max_rows = 24;
  spec.shard_count = 8;
  auto lat = *Lat::Create(std::move(spec));
  std::atomic<size_t> evictions{0};
  lat->set_evict_callback([&](Row row) {
    ASSERT_EQ(row.size(), 2u);
    evictions.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kThreads = 6;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lat, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryRecord rec;
        rec.id = static_cast<uint64_t>(t * kPerThread + i + 1);
        rec.duration_secs = static_cast<double>(rec.id % 4093);
        lat->Insert(&rec, 0);
      }
    });
  }
  // A racing resetter makes eviction contend with wholesale teardown.
  threads.emplace_back([&lat] {
    for (int i = 0; i < 20; ++i) {
      lat->Reset();
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_LE(lat->size(), 24u);
  EXPECT_EQ(lat->Snapshot(0).size(), lat->size());
  EXPECT_GT(evictions.load(), 0u);
}

TEST(LatConcurrencyTest, ByteBudgetRace) {
  LatSpec spec;
  spec.name = "bytes";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kCount, "", "N", false}};
  spec.ordering = {{"N", true}};
  spec.max_bytes = 4096;
  spec.shard_count = 4;
  auto lat = *Lat::Create(std::move(spec));

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lat, t] {
      for (int i = 0; i < 3000; ++i) {
        auto rec = MakeQuery(
            "thread" + std::to_string(t) + "_key" + std::to_string(i % 512),
            1.0);
        lat->Insert(&rec, 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  // The budget may overshoot transiently but must hold once quiesced
  // (one more insert runs the eviction loop to completion).
  auto rec = MakeQuery("final", 1.0);
  lat->Insert(&rec, 0);
  EXPECT_LE(lat->approx_bytes(), 4096u + 512u);  // one row of slack
  EXPECT_GE(lat->size(), 1u);
}

TEST(LatConcurrencyTest, CheckpointRestoreRace) {
  storage::Catalog catalog;
  auto schema = catalog::TableSchema::Create(
      "snap",
      {{"Sig", catalog::ColumnType::kString},
       {"N", catalog::ColumnType::kInt},
       {"S", catalog::ColumnType::kDouble},
       {"ts", catalog::ColumnType::kInt}},
      {});
  storage::Table* table = *catalog.CreateTable(std::move(*schema));

  auto lat = *Lat::Create(CountSumSpec("ckpt", 8));
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&lat, t] {
      for (int i = 0; i < 4000; ++i) {
        auto rec = MakeQuery("sig" + std::to_string((t * 7 + i) % 48), 0.5);
        lat->Insert(&rec, 0);
      }
    });
  }
  // Checkpointer: persists the live LAT and restores into a fresh one while
  // writers keep mutating rows across every shard.
  threads.emplace_back([&lat, table, &done] {
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(lat->PersistTo(table, /*timestamp=*/1, 0).ok());
      auto restored = *Lat::Create(CountSumSpec("restored", 2));
      ASSERT_TRUE(restored->SeedFrom(*table, 0).ok());
      // The restore is a coherent point-in-time image: every seeded group
      // has a positive count.
      for (const Row& row : restored->Snapshot(0)) {
        ASSERT_GE(row[1].int_value(), 1);
      }
      table->Truncate();
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < 3; ++t) threads[static_cast<size_t>(t)].join();
  done.store(true, std::memory_order_release);
  threads.back().join();

  // Quiesced totals are exact: 3 writers x 4000 inserts.
  int64_t total = 0;
  for (const Row& row : lat->Snapshot(0)) total += row[1].int_value();
  EXPECT_EQ(total, 3 * 4000);
}

TEST(LatConcurrencyTest, HeapSkipOnUnchangedOrderingKey) {
  LatSpec spec;
  spec.name = "skip";
  spec.group_by = {{"Logical_Signature", "Sig"}};
  spec.aggregates = {{LatAggFunc::kMax, "Duration", "MaxDur", false}};
  spec.ordering = {{"MaxDur", true}};
  spec.max_rows = 4;
  auto lat = *Lat::Create(std::move(spec));

  auto hi = MakeQuery("a", 5.0);
  auto lo = MakeQuery("a", 3.0);
  lat->Insert(&hi, 0);  // creates the row: full heap maintenance
  EXPECT_EQ(lat->stats().heap_skips.value(), 0u);
  lat->Insert(&lo, 0);  // MAX unchanged -> ordering key unchanged -> skip
  EXPECT_EQ(lat->stats().heap_skips.value(), 1u);
  lat->Insert(&hi, 0);  // still unchanged
  EXPECT_EQ(lat->stats().heap_skips.value(), 2u);
  auto higher = MakeQuery("a", 9.0);
  lat->Insert(&higher, 0);  // key changes -> maintenance runs
  EXPECT_EQ(lat->stats().heap_skips.value(), 2u);

  // The skipped maintenance must not have stranded the row: it still
  // evicts in the right order.
  Row row;
  ASSERT_TRUE(lat->LookupForObject(&hi, 0, &row));
  EXPECT_DOUBLE_EQ(row[1].AsDouble(), 9.0);
}

TEST(LatConcurrencyTest, ShardCountEnvOverrideAndClamp) {
  // spec.shard_count is rounded up to a power of two and clamped.
  auto spec = CountSumSpec("clamp", 5);
  auto lat = *Lat::Create(std::move(spec));
  EXPECT_EQ(lat->shard_count(), 8u);

  auto big = CountSumSpec("big", 100000);
  auto lat2 = *Lat::Create(std::move(big));
  EXPECT_EQ(lat2->shard_count(), 1024u);
}

}  // namespace
}  // namespace sqlcm::cm
