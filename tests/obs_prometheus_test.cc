// Golden-format tests for the Prometheus text exposition (version 0.0.4):
// name sanitization, HELP escaping, counter/gauge/histogram rendering, and
// bucket-series invariants (cumulative monotonicity, +Inf == _count).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sqlcm::obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusNameTest, SanitizesForbiddenCharacters) {
  EXPECT_EQ(PrometheusMetricName("hook.on_query_commit.calls"),
            "sqlcm_hook_on_query_commit_calls");
  EXPECT_EQ(PrometheusMetricName("a-b c/d"), "sqlcm_a_b_c_d");
  EXPECT_EQ(PrometheusMetricName("already_ok:colon"),
            "sqlcm_already_ok:colon");
  EXPECT_EQ(PrometheusMetricName("x", "pre_"), "pre_x");
}

TEST(PrometheusEscapeTest, EscapesHelpText) {
  EXPECT_EQ(PrometheusEscapeHelp("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeHelp("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusEscapeHelp("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(PrometheusEscapeHelp("a\\b\nc"), "a\\\\b\\nc");
}

TEST(PrometheusDumpTest, CounterGoldenFormat) {
  MetricsRegistry registry;
  Counter c;
  c.Inc(42);
  registry.RegisterCounter("engine.events_processed", &c);
  const auto lines = Lines(registry.DumpPrometheus());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "# HELP sqlcm_engine_events_processed_total "
            "engine.events_processed");
  EXPECT_EQ(lines[1], "# TYPE sqlcm_engine_events_processed_total counter");
  EXPECT_EQ(lines[2], "sqlcm_engine_events_processed_total 42");
}

TEST(PrometheusDumpTest, GaugeGoldenFormat) {
  MetricsRegistry registry;
  Gauge g;
  g.Set(-7);
  registry.RegisterGauge("governor.level", &g);
  const auto lines = Lines(registry.DumpPrometheus());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "# HELP sqlcm_governor_level governor.level");
  EXPECT_EQ(lines[1], "# TYPE sqlcm_governor_level gauge");
  EXPECT_EQ(lines[2], "sqlcm_governor_level -7");
}

TEST(PrometheusDumpTest, HistogramBucketsAreCumulativeAndMonotone) {
  MetricsRegistry registry;
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(3);
  h.Record(1000);
  h.Record(1 << 30);
  registry.RegisterHistogram("hook.latency", &h);
  const auto lines = Lines(registry.DumpPrometheus());

  // HELP + TYPE + kNumBuckets bucket lines + _sum + _count.
  ASSERT_EQ(lines.size(), 2 + LatencyHistogram::kNumBuckets + 2);
  EXPECT_EQ(lines[0], "# HELP sqlcm_hook_latency hook.latency (microseconds)");
  EXPECT_EQ(lines[1], "# TYPE sqlcm_hook_latency histogram");

  uint64_t prev = 0;
  uint64_t inf_value = 0;
  size_t buckets_seen = 0;
  for (size_t i = 2; i < 2 + LatencyHistogram::kNumBuckets; ++i) {
    const std::string& line = lines[i];
    ASSERT_EQ(line.rfind("sqlcm_hook_latency_bucket{le=\"", 0), 0u) << line;
    const size_t value_pos = line.rfind("} ");
    ASSERT_NE(value_pos, std::string::npos);
    const uint64_t value = std::stoull(line.substr(value_pos + 2));
    EXPECT_GE(value, prev) << "buckets must be cumulative: " << line;
    prev = value;
    ++buckets_seen;
    if (line.find("le=\"+Inf\"") != std::string::npos) {
      inf_value = value;
      EXPECT_EQ(buckets_seen, LatencyHistogram::kNumBuckets)
          << "+Inf must be the last bucket";
    }
  }
  EXPECT_EQ(inf_value, 5u);

  const std::string& sum_line = lines[2 + LatencyHistogram::kNumBuckets];
  const std::string& count_line = lines[3 + LatencyHistogram::kNumBuckets];
  EXPECT_EQ(sum_line.rfind("sqlcm_hook_latency_sum ", 0), 0u) << sum_line;
  EXPECT_EQ(count_line, "sqlcm_hook_latency_count 5");
}

TEST(PrometheusDumpTest, BucketBoundsMatchHistogramMath) {
  MetricsRegistry registry;
  LatencyHistogram h;
  h.Record(5);  // falls in bucket [4, 7]
  registry.RegisterHistogram("m", &h);
  const std::string dump = registry.DumpPrometheus();
  // The first bucket whose cumulative count reaches 1 must be le="7".
  EXPECT_NE(dump.find("sqlcm_m_bucket{le=\"7\"} 1\n"), std::string::npos);
  EXPECT_NE(dump.find("sqlcm_m_bucket{le=\"3\"} 0\n"), std::string::npos);
}

TEST(PrometheusDumpTest, MixedRegistryKeepsRegistrationOrder) {
  MetricsRegistry registry;
  Counter c;
  Gauge g;
  registry.RegisterCounter("first", &c);
  registry.RegisterGauge("second", &g);
  const std::string dump = registry.DumpPrometheus();
  EXPECT_LT(dump.find("sqlcm_first_total"), dump.find("sqlcm_second"));
}

// Every non-comment line must parse as `name{labels} value` or `name value`
// with a valid metric name — the same check the CI lint step applies to the
// exported file.
TEST(PrometheusDumpTest, EveryLineMatchesExpositionGrammar) {
  MetricsRegistry registry;
  Counter c;
  Gauge g;
  LatencyHistogram h;
  h.Record(12);
  registry.RegisterCounter("a.counter", &c);
  registry.RegisterGauge("a.gauge", &g);
  registry.RegisterHistogram("a.hist", &h);
  for (const std::string& line : Lines(registry.DumpPrometheus())) {
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name_part = line.substr(0, space);
    const std::string value_part = line.substr(space + 1);
    EXPECT_FALSE(value_part.empty()) << line;
    EXPECT_NO_THROW((void)std::stod(value_part)) << line;
    // Name: [a-zA-Z_:][a-zA-Z0-9_:]* with an optional {…} label block.
    const size_t brace = name_part.find('{');
    const std::string bare =
        brace == std::string::npos ? name_part : name_part.substr(0, brace);
    ASSERT_FALSE(bare.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(bare[0])) ||
                bare[0] == '_' || bare[0] == ':')
        << line;
    for (char ch : bare) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
                  ch == ':')
          << line;
    }
    if (brace != std::string::npos) {
      EXPECT_EQ(name_part.back(), '}') << line;
    }
  }
}

}  // namespace
}  // namespace sqlcm::obs
