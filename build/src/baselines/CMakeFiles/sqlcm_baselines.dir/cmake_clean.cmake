file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_baselines.dir/pull.cc.o"
  "CMakeFiles/sqlcm_baselines.dir/pull.cc.o.d"
  "CMakeFiles/sqlcm_baselines.dir/query_logging.cc.o"
  "CMakeFiles/sqlcm_baselines.dir/query_logging.cc.o.d"
  "libsqlcm_baselines.a"
  "libsqlcm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
