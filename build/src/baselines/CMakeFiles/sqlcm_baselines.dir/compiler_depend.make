# Empty compiler generated dependencies file for sqlcm_baselines.
# This may be replaced when dependencies are built.
