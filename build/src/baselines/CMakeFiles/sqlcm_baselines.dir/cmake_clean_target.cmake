file(REMOVE_RECURSE
  "libsqlcm_baselines.a"
)
