
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlcm/actions_io.cc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/actions_io.cc.o" "gcc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/actions_io.cc.o.d"
  "/root/repo/src/sqlcm/lat.cc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/lat.cc.o" "gcc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/lat.cc.o.d"
  "/root/repo/src/sqlcm/monitor_engine.cc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/monitor_engine.cc.o" "gcc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/monitor_engine.cc.o.d"
  "/root/repo/src/sqlcm/rule.cc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/rule.cc.o" "gcc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/rule.cc.o.d"
  "/root/repo/src/sqlcm/schema.cc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/schema.cc.o" "gcc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/schema.cc.o.d"
  "/root/repo/src/sqlcm/signature.cc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/signature.cc.o" "gcc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/signature.cc.o.d"
  "/root/repo/src/sqlcm/timer.cc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/timer.cc.o" "gcc" "src/sqlcm/CMakeFiles/sqlcm_cm.dir/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/sqlcm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sqlcm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/sqlcm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sqlcm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sqlcm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sqlcm_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqlcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
