file(REMOVE_RECURSE
  "libsqlcm_cm.a"
)
