# Empty compiler generated dependencies file for sqlcm_cm.
# This may be replaced when dependencies are built.
