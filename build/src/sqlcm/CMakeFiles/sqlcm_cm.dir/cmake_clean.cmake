file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_cm.dir/actions_io.cc.o"
  "CMakeFiles/sqlcm_cm.dir/actions_io.cc.o.d"
  "CMakeFiles/sqlcm_cm.dir/lat.cc.o"
  "CMakeFiles/sqlcm_cm.dir/lat.cc.o.d"
  "CMakeFiles/sqlcm_cm.dir/monitor_engine.cc.o"
  "CMakeFiles/sqlcm_cm.dir/monitor_engine.cc.o.d"
  "CMakeFiles/sqlcm_cm.dir/rule.cc.o"
  "CMakeFiles/sqlcm_cm.dir/rule.cc.o.d"
  "CMakeFiles/sqlcm_cm.dir/schema.cc.o"
  "CMakeFiles/sqlcm_cm.dir/schema.cc.o.d"
  "CMakeFiles/sqlcm_cm.dir/signature.cc.o"
  "CMakeFiles/sqlcm_cm.dir/signature.cc.o.d"
  "CMakeFiles/sqlcm_cm.dir/timer.cc.o"
  "CMakeFiles/sqlcm_cm.dir/timer.cc.o.d"
  "libsqlcm_cm.a"
  "libsqlcm_cm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_cm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
