file(REMOVE_RECURSE
  "libsqlcm_exec.a"
)
