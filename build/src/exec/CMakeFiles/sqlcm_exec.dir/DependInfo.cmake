
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/sqlcm_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/sqlcm_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/exec/CMakeFiles/sqlcm_exec.dir/expression.cc.o" "gcc" "src/exec/CMakeFiles/sqlcm_exec.dir/expression.cc.o.d"
  "/root/repo/src/exec/logical_plan.cc" "src/exec/CMakeFiles/sqlcm_exec.dir/logical_plan.cc.o" "gcc" "src/exec/CMakeFiles/sqlcm_exec.dir/logical_plan.cc.o.d"
  "/root/repo/src/exec/optimizer.cc" "src/exec/CMakeFiles/sqlcm_exec.dir/optimizer.cc.o" "gcc" "src/exec/CMakeFiles/sqlcm_exec.dir/optimizer.cc.o.d"
  "/root/repo/src/exec/physical_plan.cc" "src/exec/CMakeFiles/sqlcm_exec.dir/physical_plan.cc.o" "gcc" "src/exec/CMakeFiles/sqlcm_exec.dir/physical_plan.cc.o.d"
  "/root/repo/src/exec/planner.cc" "src/exec/CMakeFiles/sqlcm_exec.dir/planner.cc.o" "gcc" "src/exec/CMakeFiles/sqlcm_exec.dir/planner.cc.o.d"
  "/root/repo/src/exec/row_schema.cc" "src/exec/CMakeFiles/sqlcm_exec.dir/row_schema.cc.o" "gcc" "src/exec/CMakeFiles/sqlcm_exec.dir/row_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/sqlcm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/sqlcm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sqlcm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sqlcm_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqlcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
