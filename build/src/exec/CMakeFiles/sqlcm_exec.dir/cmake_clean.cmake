file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_exec.dir/executor.cc.o"
  "CMakeFiles/sqlcm_exec.dir/executor.cc.o.d"
  "CMakeFiles/sqlcm_exec.dir/expression.cc.o"
  "CMakeFiles/sqlcm_exec.dir/expression.cc.o.d"
  "CMakeFiles/sqlcm_exec.dir/logical_plan.cc.o"
  "CMakeFiles/sqlcm_exec.dir/logical_plan.cc.o.d"
  "CMakeFiles/sqlcm_exec.dir/optimizer.cc.o"
  "CMakeFiles/sqlcm_exec.dir/optimizer.cc.o.d"
  "CMakeFiles/sqlcm_exec.dir/physical_plan.cc.o"
  "CMakeFiles/sqlcm_exec.dir/physical_plan.cc.o.d"
  "CMakeFiles/sqlcm_exec.dir/planner.cc.o"
  "CMakeFiles/sqlcm_exec.dir/planner.cc.o.d"
  "CMakeFiles/sqlcm_exec.dir/row_schema.cc.o"
  "CMakeFiles/sqlcm_exec.dir/row_schema.cc.o.d"
  "libsqlcm_exec.a"
  "libsqlcm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
