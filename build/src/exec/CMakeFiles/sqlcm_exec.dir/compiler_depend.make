# Empty compiler generated dependencies file for sqlcm_exec.
# This may be replaced when dependencies are built.
