file(REMOVE_RECURSE
  "libsqlcm_workload.a"
)
