file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_workload.dir/driver.cc.o"
  "CMakeFiles/sqlcm_workload.dir/driver.cc.o.d"
  "CMakeFiles/sqlcm_workload.dir/tpch_gen.cc.o"
  "CMakeFiles/sqlcm_workload.dir/tpch_gen.cc.o.d"
  "libsqlcm_workload.a"
  "libsqlcm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
