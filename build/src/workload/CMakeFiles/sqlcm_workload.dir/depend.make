# Empty dependencies file for sqlcm_workload.
# This may be replaced when dependencies are built.
