file(REMOVE_RECURSE
  "libsqlcm_engine.a"
)
