# Empty dependencies file for sqlcm_engine.
# This may be replaced when dependencies are built.
