file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_engine.dir/database.cc.o"
  "CMakeFiles/sqlcm_engine.dir/database.cc.o.d"
  "CMakeFiles/sqlcm_engine.dir/plan_cache.cc.o"
  "CMakeFiles/sqlcm_engine.dir/plan_cache.cc.o.d"
  "CMakeFiles/sqlcm_engine.dir/session.cc.o"
  "CMakeFiles/sqlcm_engine.dir/session.cc.o.d"
  "libsqlcm_engine.a"
  "libsqlcm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
