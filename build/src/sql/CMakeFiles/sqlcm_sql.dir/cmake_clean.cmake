file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_sql.dir/ast.cc.o"
  "CMakeFiles/sqlcm_sql.dir/ast.cc.o.d"
  "CMakeFiles/sqlcm_sql.dir/lexer.cc.o"
  "CMakeFiles/sqlcm_sql.dir/lexer.cc.o.d"
  "CMakeFiles/sqlcm_sql.dir/parser.cc.o"
  "CMakeFiles/sqlcm_sql.dir/parser.cc.o.d"
  "libsqlcm_sql.a"
  "libsqlcm_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
