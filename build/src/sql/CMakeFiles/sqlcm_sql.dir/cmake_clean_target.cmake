file(REMOVE_RECURSE
  "libsqlcm_sql.a"
)
