# Empty compiler generated dependencies file for sqlcm_sql.
# This may be replaced when dependencies are built.
