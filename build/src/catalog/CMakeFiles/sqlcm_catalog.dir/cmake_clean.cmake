file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_catalog.dir/schema.cc.o"
  "CMakeFiles/sqlcm_catalog.dir/schema.cc.o.d"
  "CMakeFiles/sqlcm_catalog.dir/types.cc.o"
  "CMakeFiles/sqlcm_catalog.dir/types.cc.o.d"
  "libsqlcm_catalog.a"
  "libsqlcm_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
