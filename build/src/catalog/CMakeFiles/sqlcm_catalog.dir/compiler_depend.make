# Empty compiler generated dependencies file for sqlcm_catalog.
# This may be replaced when dependencies are built.
