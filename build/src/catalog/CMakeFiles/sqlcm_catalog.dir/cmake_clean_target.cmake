file(REMOVE_RECURSE
  "libsqlcm_catalog.a"
)
