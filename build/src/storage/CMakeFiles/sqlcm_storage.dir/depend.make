# Empty dependencies file for sqlcm_storage.
# This may be replaced when dependencies are built.
