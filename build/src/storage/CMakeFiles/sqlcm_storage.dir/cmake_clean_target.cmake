file(REMOVE_RECURSE
  "libsqlcm_storage.a"
)
