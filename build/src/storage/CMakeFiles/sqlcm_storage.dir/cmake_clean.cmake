file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_storage.dir/catalog.cc.o"
  "CMakeFiles/sqlcm_storage.dir/catalog.cc.o.d"
  "CMakeFiles/sqlcm_storage.dir/table.cc.o"
  "CMakeFiles/sqlcm_storage.dir/table.cc.o.d"
  "CMakeFiles/sqlcm_storage.dir/table_io.cc.o"
  "CMakeFiles/sqlcm_storage.dir/table_io.cc.o.d"
  "libsqlcm_storage.a"
  "libsqlcm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
