# Empty compiler generated dependencies file for sqlcm_common.
# This may be replaced when dependencies are built.
