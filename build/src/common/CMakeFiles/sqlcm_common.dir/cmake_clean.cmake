file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_common.dir/clock.cc.o"
  "CMakeFiles/sqlcm_common.dir/clock.cc.o.d"
  "CMakeFiles/sqlcm_common.dir/status.cc.o"
  "CMakeFiles/sqlcm_common.dir/status.cc.o.d"
  "CMakeFiles/sqlcm_common.dir/string_util.cc.o"
  "CMakeFiles/sqlcm_common.dir/string_util.cc.o.d"
  "CMakeFiles/sqlcm_common.dir/value.cc.o"
  "CMakeFiles/sqlcm_common.dir/value.cc.o.d"
  "libsqlcm_common.a"
  "libsqlcm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
