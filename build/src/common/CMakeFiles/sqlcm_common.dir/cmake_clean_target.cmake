file(REMOVE_RECURSE
  "libsqlcm_common.a"
)
