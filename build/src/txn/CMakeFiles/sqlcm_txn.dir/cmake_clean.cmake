file(REMOVE_RECURSE
  "CMakeFiles/sqlcm_txn.dir/lock_manager.cc.o"
  "CMakeFiles/sqlcm_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/sqlcm_txn.dir/transaction.cc.o"
  "CMakeFiles/sqlcm_txn.dir/transaction.cc.o.d"
  "libsqlcm_txn.a"
  "libsqlcm_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlcm_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
