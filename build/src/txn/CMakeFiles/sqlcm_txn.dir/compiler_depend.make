# Empty compiler generated dependencies file for sqlcm_txn.
# This may be replaced when dependencies are built.
