file(REMOVE_RECURSE
  "libsqlcm_txn.a"
)
