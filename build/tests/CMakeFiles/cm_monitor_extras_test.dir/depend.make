# Empty dependencies file for cm_monitor_extras_test.
# This may be replaced when dependencies are built.
