file(REMOVE_RECURSE
  "CMakeFiles/cm_monitor_extras_test.dir/cm_monitor_extras_test.cc.o"
  "CMakeFiles/cm_monitor_extras_test.dir/cm_monitor_extras_test.cc.o.d"
  "cm_monitor_extras_test"
  "cm_monitor_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_monitor_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
