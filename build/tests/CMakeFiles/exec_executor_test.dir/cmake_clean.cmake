file(REMOVE_RECURSE
  "CMakeFiles/exec_executor_test.dir/exec_executor_test.cc.o"
  "CMakeFiles/exec_executor_test.dir/exec_executor_test.cc.o.d"
  "exec_executor_test"
  "exec_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
