file(REMOVE_RECURSE
  "CMakeFiles/catalog_types_test.dir/catalog_types_test.cc.o"
  "CMakeFiles/catalog_types_test.dir/catalog_types_test.cc.o.d"
  "catalog_types_test"
  "catalog_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
