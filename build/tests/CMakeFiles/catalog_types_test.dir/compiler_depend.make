# Empty compiler generated dependencies file for catalog_types_test.
# This may be replaced when dependencies are built.
