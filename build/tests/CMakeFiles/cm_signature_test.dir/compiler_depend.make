# Empty compiler generated dependencies file for cm_signature_test.
# This may be replaced when dependencies are built.
