file(REMOVE_RECURSE
  "CMakeFiles/cm_signature_test.dir/cm_signature_test.cc.o"
  "CMakeFiles/cm_signature_test.dir/cm_signature_test.cc.o.d"
  "cm_signature_test"
  "cm_signature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_signature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
