# Empty dependencies file for cm_lat_test.
# This may be replaced when dependencies are built.
