file(REMOVE_RECURSE
  "CMakeFiles/cm_lat_test.dir/cm_lat_test.cc.o"
  "CMakeFiles/cm_lat_test.dir/cm_lat_test.cc.o.d"
  "cm_lat_test"
  "cm_lat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_lat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
