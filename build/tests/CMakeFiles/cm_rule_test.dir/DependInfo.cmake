
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cm_rule_test.cc" "tests/CMakeFiles/cm_rule_test.dir/cm_rule_test.cc.o" "gcc" "tests/CMakeFiles/cm_rule_test.dir/cm_rule_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sqlcm/CMakeFiles/sqlcm_cm.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sqlcm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sqlcm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sqlcm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sqlcm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sqlcm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/sqlcm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sqlcm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/sqlcm_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqlcm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
