# Empty dependencies file for cm_rule_test.
# This may be replaced when dependencies are built.
