file(REMOVE_RECURSE
  "CMakeFiles/cm_rule_test.dir/cm_rule_test.cc.o"
  "CMakeFiles/cm_rule_test.dir/cm_rule_test.cc.o.d"
  "cm_rule_test"
  "cm_rule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_rule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
