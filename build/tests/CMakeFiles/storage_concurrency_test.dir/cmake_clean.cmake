file(REMOVE_RECURSE
  "CMakeFiles/storage_concurrency_test.dir/storage_concurrency_test.cc.o"
  "CMakeFiles/storage_concurrency_test.dir/storage_concurrency_test.cc.o.d"
  "storage_concurrency_test"
  "storage_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
