file(REMOVE_RECURSE
  "CMakeFiles/txn_lock_manager_test.dir/txn_lock_manager_test.cc.o"
  "CMakeFiles/txn_lock_manager_test.dir/txn_lock_manager_test.cc.o.d"
  "txn_lock_manager_test"
  "txn_lock_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_lock_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
