# Empty dependencies file for cm_monitor_test.
# This may be replaced when dependencies are built.
