file(REMOVE_RECURSE
  "CMakeFiles/cm_monitor_test.dir/cm_monitor_test.cc.o"
  "CMakeFiles/cm_monitor_test.dir/cm_monitor_test.cc.o.d"
  "cm_monitor_test"
  "cm_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
