# Empty dependencies file for exec_expression_test.
# This may be replaced when dependencies are built.
