file(REMOVE_RECURSE
  "CMakeFiles/exec_expression_test.dir/exec_expression_test.cc.o"
  "CMakeFiles/exec_expression_test.dir/exec_expression_test.cc.o.d"
  "exec_expression_test"
  "exec_expression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_expression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
