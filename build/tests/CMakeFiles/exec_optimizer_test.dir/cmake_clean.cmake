file(REMOVE_RECURSE
  "CMakeFiles/exec_optimizer_test.dir/exec_optimizer_test.cc.o"
  "CMakeFiles/exec_optimizer_test.dir/exec_optimizer_test.cc.o.d"
  "exec_optimizer_test"
  "exec_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
