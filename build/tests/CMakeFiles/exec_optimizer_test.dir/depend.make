# Empty dependencies file for exec_optimizer_test.
# This may be replaced when dependencies are built.
