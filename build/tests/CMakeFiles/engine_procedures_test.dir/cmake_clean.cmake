file(REMOVE_RECURSE
  "CMakeFiles/engine_procedures_test.dir/engine_procedures_test.cc.o"
  "CMakeFiles/engine_procedures_test.dir/engine_procedures_test.cc.o.d"
  "engine_procedures_test"
  "engine_procedures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_procedures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
