file(REMOVE_RECURSE
  "CMakeFiles/storage_bplus_tree_test.dir/storage_bplus_tree_test.cc.o"
  "CMakeFiles/storage_bplus_tree_test.dir/storage_bplus_tree_test.cc.o.d"
  "storage_bplus_tree_test"
  "storage_bplus_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_bplus_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
