# Empty dependencies file for storage_bplus_tree_test.
# This may be replaced when dependencies are built.
