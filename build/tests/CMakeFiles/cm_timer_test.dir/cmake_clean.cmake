file(REMOVE_RECURSE
  "CMakeFiles/cm_timer_test.dir/cm_timer_test.cc.o"
  "CMakeFiles/cm_timer_test.dir/cm_timer_test.cc.o.d"
  "cm_timer_test"
  "cm_timer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
