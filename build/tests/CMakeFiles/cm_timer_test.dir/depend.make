# Empty dependencies file for cm_timer_test.
# This may be replaced when dependencies are built.
