# Empty compiler generated dependencies file for engine_session_test.
# This may be replaced when dependencies are built.
