file(REMOVE_RECURSE
  "CMakeFiles/engine_session_test.dir/engine_session_test.cc.o"
  "CMakeFiles/engine_session_test.dir/engine_session_test.cc.o.d"
  "engine_session_test"
  "engine_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
