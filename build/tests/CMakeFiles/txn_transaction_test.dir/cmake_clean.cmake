file(REMOVE_RECURSE
  "CMakeFiles/txn_transaction_test.dir/txn_transaction_test.cc.o"
  "CMakeFiles/txn_transaction_test.dir/txn_transaction_test.cc.o.d"
  "txn_transaction_test"
  "txn_transaction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_transaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
