# Empty dependencies file for txn_transaction_test.
# This may be replaced when dependencies are built.
