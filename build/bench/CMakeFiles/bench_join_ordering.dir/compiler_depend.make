# Empty compiler generated dependencies file for bench_join_ordering.
# This may be replaced when dependencies are built.
