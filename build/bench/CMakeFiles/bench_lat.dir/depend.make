# Empty dependencies file for bench_lat.
# This may be replaced when dependencies are built.
