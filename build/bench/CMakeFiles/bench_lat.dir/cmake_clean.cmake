file(REMOVE_RECURSE
  "CMakeFiles/bench_lat.dir/bench_lat.cc.o"
  "CMakeFiles/bench_lat.dir/bench_lat.cc.o.d"
  "bench_lat"
  "bench_lat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
