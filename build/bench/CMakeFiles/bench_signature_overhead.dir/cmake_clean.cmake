file(REMOVE_RECURSE
  "CMakeFiles/bench_signature_overhead.dir/bench_signature_overhead.cc.o"
  "CMakeFiles/bench_signature_overhead.dir/bench_signature_overhead.cc.o.d"
  "bench_signature_overhead"
  "bench_signature_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signature_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
