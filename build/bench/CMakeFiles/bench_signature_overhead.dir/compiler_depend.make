# Empty compiler generated dependencies file for bench_signature_overhead.
# This may be replaced when dependencies are built.
