file(REMOVE_RECURSE
  "CMakeFiles/bench_pull_accuracy.dir/bench_pull_accuracy.cc.o"
  "CMakeFiles/bench_pull_accuracy.dir/bench_pull_accuracy.cc.o.d"
  "bench_pull_accuracy"
  "bench_pull_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pull_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
