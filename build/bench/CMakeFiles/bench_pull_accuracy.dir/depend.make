# Empty dependencies file for bench_pull_accuracy.
# This may be replaced when dependencies are built.
