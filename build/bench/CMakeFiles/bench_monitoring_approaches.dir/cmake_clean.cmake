file(REMOVE_RECURSE
  "CMakeFiles/bench_monitoring_approaches.dir/bench_monitoring_approaches.cc.o"
  "CMakeFiles/bench_monitoring_approaches.dir/bench_monitoring_approaches.cc.o.d"
  "bench_monitoring_approaches"
  "bench_monitoring_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitoring_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
