# Empty dependencies file for bench_monitoring_approaches.
# This may be replaced when dependencies are built.
