file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_overhead.dir/bench_rule_overhead.cc.o"
  "CMakeFiles/bench_rule_overhead.dir/bench_rule_overhead.cc.o.d"
  "bench_rule_overhead"
  "bench_rule_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
