# Empty dependencies file for resource_governor.
# This may be replaced when dependencies are built.
