file(REMOVE_RECURSE
  "CMakeFiles/resource_governor.dir/resource_governor.cpp.o"
  "CMakeFiles/resource_governor.dir/resource_governor.cpp.o.d"
  "resource_governor"
  "resource_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
