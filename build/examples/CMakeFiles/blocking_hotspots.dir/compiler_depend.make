# Empty compiler generated dependencies file for blocking_hotspots.
# This may be replaced when dependencies are built.
