file(REMOVE_RECURSE
  "CMakeFiles/blocking_hotspots.dir/blocking_hotspots.cpp.o"
  "CMakeFiles/blocking_hotspots.dir/blocking_hotspots.cpp.o.d"
  "blocking_hotspots"
  "blocking_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
