file(REMOVE_RECURSE
  "CMakeFiles/outlier_detection.dir/outlier_detection.cpp.o"
  "CMakeFiles/outlier_detection.dir/outlier_detection.cpp.o.d"
  "outlier_detection"
  "outlier_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
