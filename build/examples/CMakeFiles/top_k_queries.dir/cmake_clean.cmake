file(REMOVE_RECURSE
  "CMakeFiles/top_k_queries.dir/top_k_queries.cpp.o"
  "CMakeFiles/top_k_queries.dir/top_k_queries.cpp.o.d"
  "top_k_queries"
  "top_k_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/top_k_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
