# Empty dependencies file for top_k_queries.
# This may be replaced when dependencies are built.
