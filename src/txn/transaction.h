// Transactions: 2PL + logical undo for rollback.
#ifndef SQLCM_TXN_TRANSACTION_H_
#define SQLCM_TXN_TRANSACTION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/catalog.h"
#include "txn/lock_manager.h"

namespace sqlcm::txn {

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

/// One logical undo record; applied in reverse order on rollback.
struct UndoRecord {
  enum class Kind : uint8_t { kInsert, kDelete, kUpdate };
  Kind kind;
  uint32_t table_id;
  common::Row key;      // storage key of the affected row
  common::Row old_row;  // pre-image for kDelete / kUpdate
};

/// A transaction. Owned by the TransactionManager; used by exactly one
/// session thread at a time, except for the cancel flag which any thread
/// (e.g. a SQLCM Cancel action) may set.
class Transaction {
 public:
  Transaction(TxnId id, int64_t start_micros)
      : id_(id), start_micros_(start_micros) {}
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  int64_t start_micros() const { return start_micros_; }

  /// Cross-thread cancellation: executors poll this; lock waits abort on it.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  const std::atomic<bool>* cancelled_flag() const { return &cancelled_; }

  void LogInsert(uint32_t table_id, common::Row key) {
    undo_.push_back({UndoRecord::Kind::kInsert, table_id, std::move(key), {}});
  }
  void LogDelete(uint32_t table_id, common::Row key, common::Row old_row) {
    undo_.push_back({UndoRecord::Kind::kDelete, table_id, std::move(key),
                     std::move(old_row)});
  }
  void LogUpdate(uint32_t table_id, common::Row key, common::Row old_row) {
    undo_.push_back({UndoRecord::Kind::kUpdate, table_id, std::move(key),
                     std::move(old_row)});
  }

  size_t undo_size() const { return undo_.size(); }

 private:
  friend class TransactionManager;

  const TxnId id_;
  const int64_t start_micros_;
  TxnState state_ = TxnState::kActive;
  std::atomic<bool> cancelled_{false};
  std::vector<UndoRecord> undo_;
};

/// Creates, commits and aborts transactions; owns the LockManager.
class TransactionManager {
 public:
  TransactionManager(common::Clock* clock, storage::Catalog* catalog)
      : clock_(clock), catalog_(catalog), lock_manager_(clock) {}
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  LockManager* lock_manager() { return &lock_manager_; }

  Transaction* Begin();

  /// Releases all locks; the transaction must be active.
  common::Status Commit(Transaction* txn);

  /// Applies undo records in reverse, then releases all locks.
  common::Status Abort(Transaction* txn);

  /// Looks up an active transaction by id (used by Cancel actions reaching
  /// across sessions). nullptr when unknown or finished.
  Transaction* FindActive(TxnId id) const;

  size_t active_count() const;

 private:
  void Finish(Transaction* txn, TxnState final_state);

  common::Clock* clock_;
  storage::Catalog* catalog_;
  LockManager lock_manager_;

  mutable std::mutex mutex_;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> active_;
  std::atomic<TxnId> next_id_{1};
};

}  // namespace sqlcm::txn

#endif  // SQLCM_TXN_TRANSACTION_H_
