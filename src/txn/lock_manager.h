// Two-phase-locking lock manager with a waits-for graph.
//
// Provides the lock-conflict machinery SQLCM instruments (§6.1): the
// monitor's Blocker/Blocked objects are produced either by piggybacking on
// conflict detection here (LockEventObserver) or by traversing the
// lock-resource graph on demand (SnapshotBlockedPairs, used by
// Timer-triggered rules).
#ifndef SQLCM_TXN_LOCK_MANAGER_H_
#define SQLCM_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/value.h"

namespace sqlcm::txn {

using TxnId = uint64_t;

enum class LockMode : uint8_t { kShared, kExclusive };

const char* LockModeName(LockMode mode);

/// True if a holder in `held` permits a new `requested` lock.
inline bool LockCompatible(LockMode held, LockMode requested) {
  return held == LockMode::kShared && requested == LockMode::kShared;
}

/// Identifies a lockable resource: a whole table (empty key) or one row.
struct ResourceId {
  uint32_t table_id = 0;
  common::Row key;  // empty = table-level lock

  bool is_table_lock() const { return key.empty(); }
  bool operator==(const ResourceId& other) const {
    return table_id == other.table_id &&
           common::RowEq()(key, other.key);
  }
  std::string ToString() const;
};

struct ResourceIdHasher {
  size_t operator()(const ResourceId& r) const {
    return std::hash<uint32_t>()(r.table_id) * 1000003u ^
           common::HashRow(r.key);
  }
};

/// One edge of the lock-resource graph exposed to the monitor.
struct BlockedPair {
  TxnId blocked_txn = 0;
  TxnId blocker_txn = 0;   // designated blocker (first incompatible holder)
  ResourceId resource;
  int64_t waiting_since_micros = 0;
};

/// Synchronous instrumentation callbacks; invoked from the thread that
/// detects the conflict, outside the lock-table mutex. Implementations may
/// take LAT latches and table latches but must not call back into the
/// LockManager for the same transaction.
class LockEventObserver {
 public:
  virtual ~LockEventObserver() = default;
  /// The requesting transaction is about to block.
  virtual void OnBlocked(TxnId blocked, TxnId blocker,
                         const ResourceId& resource) = 0;
  /// The blocked transaction has been granted (or gave up); `wait_micros`
  /// is the total time it spent waiting on this resource.
  virtual void OnBlockReleased(TxnId blocked, TxnId blocker,
                               const ResourceId& resource,
                               int64_t wait_micros) = 0;
};

/// Result of one lock acquisition.
enum class LockOutcome { kGranted, kDeadlock, kCancelled, kTimeout };

class LockManager {
 public:
  explicit LockManager(common::Clock* clock) : clock_(clock) {}
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// At most one observer; set before concurrent use.
  void set_observer(LockEventObserver* observer) { observer_ = observer; }

  /// Acquires (or upgrades to) `mode` on `resource` for `txn_id`, blocking
  /// until granted. `cancelled`, if non-null, is polled during waits; a set
  /// flag aborts the wait with kCancelled. `timeout_micros` < 0 disables
  /// the timeout. Deadlocks abort the *requesting* transaction (the waiter
  /// that would close the cycle) with kDeadlock.
  LockOutcome Acquire(TxnId txn_id, const ResourceId& resource, LockMode mode,
                      const std::atomic<bool>* cancelled = nullptr,
                      int64_t timeout_micros = -1);

  /// Releases every lock held by `txn_id` (2PL release point) and wakes
  /// compatible waiters.
  void ReleaseAll(TxnId txn_id);

  /// Traverses the lock-resource graph and reports all (blocked, blocker)
  /// pairs, designating the first incompatible holder as the blocker when
  /// several hold the resource (paper §6.1).
  std::vector<BlockedPair> SnapshotBlockedPairs() const;

  /// Number of locks currently held by `txn_id` (diagnostics/tests).
  size_t HeldLockCount(TxnId txn_id) const;

  /// Total granted locks across all transactions (diagnostics/tests).
  size_t TotalGrantedLocks() const;

 private:
  struct Request {
    TxnId txn;
    LockMode mode;
    bool granted = false;
    int64_t wait_start_micros = 0;
  };
  struct Queue {
    std::deque<Request> requests;
    std::condition_variable cv;
  };

  /// True if a (re-)evaluated request at position `pos` in `queue` can be
  /// granted now: compatible with all granted requests of other txns, and
  /// no earlier ungranted waiter exists (FIFO fairness), except that lock
  /// upgrades jump the queue.
  static bool CanGrantLocked(const Queue& queue, size_t pos);

  /// Grants every now-grantable waiter in FIFO order. Caller holds mutex_.
  static void GrantWaitersLocked(Queue* queue);

  /// True if txn `from` (waiting) can reach txn `to` through the waits-for
  /// graph. Caller holds mutex_.
  bool WaitsForPathLocked(TxnId from, TxnId to,
                          std::unordered_set<TxnId>* visited) const;

  /// First granted holder in `queue` incompatible with `mode`, excluding
  /// `self`. 0 if none. Caller holds mutex_.
  static TxnId DesignatedBlockerLocked(const Queue& queue, TxnId self,
                                       LockMode mode);

  common::Clock* clock_;
  LockEventObserver* observer_ = nullptr;

  mutable std::mutex mutex_;
  std::unordered_map<ResourceId, Queue, ResourceIdHasher> table_;
  // txn -> resources it holds (granted) — for ReleaseAll.
  std::unordered_map<TxnId, std::vector<ResourceId>> held_;
  // txn -> the single resource it currently waits on (waits-for edges are
  // derived: waiter waits for all granted holders of that resource).
  std::unordered_map<TxnId, ResourceId> waiting_on_;
};

}  // namespace sqlcm::txn

#endif  // SQLCM_TXN_LOCK_MANAGER_H_
