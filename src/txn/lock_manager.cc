#include "txn/lock_manager.h"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace sqlcm::txn {

const char* LockModeName(LockMode mode) {
  return mode == LockMode::kShared ? "S" : "X";
}

std::string ResourceId::ToString() const {
  std::string out = "table#" + std::to_string(table_id);
  if (!key.empty()) {
    out += "[";
    for (size_t i = 0; i < key.size(); ++i) {
      if (i > 0) out += ",";
      out += key[i].ToString();
    }
    out += "]";
  }
  return out;
}

// Pending S->X upgrades are represented as granted=true with
// mode=kExclusive: the S lock stays held while the upgrade waits. A real
// granted-X holder never has CanGrantLocked evaluated for its position (its
// Acquire already returned), so the encoding is unambiguous.
bool LockManager::CanGrantLocked(const Queue& queue, size_t pos) {
  const Request& req = queue.requests[pos];
  if (req.granted && req.mode == LockMode::kExclusive) {
    // Pending upgrade: grantable iff this txn is the only granted holder.
    for (size_t i = 0; i < queue.requests.size(); ++i) {
      if (i == pos) continue;
      if (queue.requests[i].granted) return false;
    }
    return true;
  }
  // Normal request: all earlier requests must be granted (FIFO) and all
  // granted requests must be compatible.
  for (size_t i = 0; i < pos; ++i) {
    if (!queue.requests[i].granted) return false;
  }
  for (size_t i = 0; i < queue.requests.size(); ++i) {
    if (i == pos) continue;
    const Request& other = queue.requests[i];
    if (!other.granted) continue;
    if (other.txn == req.txn) continue;
    if (!LockCompatible(other.mode, req.mode)) return false;
    // A granted-S holder with a pending upgrade effectively intends X; we
    // still allow S grants (documented upgrade-starvation tradeoff).
  }
  return true;
}

LockOutcome LockManager::Acquire(TxnId txn_id, const ResourceId& resource,
                                 LockMode mode,
                                 const std::atomic<bool>* cancelled,
                                 int64_t timeout_micros) {
  std::unique_lock<std::mutex> lock(mutex_);
  Queue& queue = table_[resource];

  // Locate an existing request by this transaction.
  size_t pos = queue.requests.size();
  for (size_t i = 0; i < queue.requests.size(); ++i) {
    if (queue.requests[i].txn == txn_id) {
      pos = i;
      break;
    }
  }

  bool is_upgrade = false;
  if (pos < queue.requests.size()) {
    Request& mine = queue.requests[pos];
    if (mine.granted) {
      if (mine.mode == LockMode::kExclusive || mode == LockMode::kShared) {
        return LockOutcome::kGranted;  // already sufficient
      }
      // S -> X upgrade: keep the granted S, wait for exclusivity.
      is_upgrade = true;
      mine.mode = LockMode::kExclusive;
      // Re-check below whether it is immediately grantable.
    }
    // (An ungranted duplicate request cannot exist: one outstanding
    // Acquire per transaction.)
  } else {
    Request req;
    req.txn = txn_id;
    req.mode = mode;
    req.granted = false;
    req.wait_start_micros = clock_->NowMicros();
    queue.requests.push_back(req);
    pos = queue.requests.size() - 1;
  }

  auto grant_mine = [&]() {
    Request& mine = queue.requests[pos];
    const bool was_granted = mine.granted;  // true for upgrades
    mine.granted = true;
    if (!was_granted || !is_upgrade) {
      // First grant on this resource: remember it for ReleaseAll.
      auto& held = held_[txn_id];
      if (std::find(held.begin(), held.end(), resource) == held.end()) {
        held.push_back(resource);
      }
    }
  };

  if (CanGrantLocked(queue, pos)) {
    if (is_upgrade) {
      // Already granted=true; nothing else to flip.
      auto& held = held_[txn_id];
      if (std::find(held.begin(), held.end(), resource) == held.end()) {
        held.push_back(resource);
      }
      return LockOutcome::kGranted;
    }
    grant_mine();
    return LockOutcome::kGranted;
  }

  // We must wait. For upgrades the request stays granted=true with mode=X;
  // "waiting" is detected via waiting_on_.
  waiting_on_[txn_id] = resource;
  const int64_t wait_start = clock_->NowMicros();

  // Deadlock check: we are about to add edges txn -> holders/earlier
  // waiters. If any of them (transitively) waits for us, a cycle forms.
  {
    std::unordered_set<TxnId> visited;
    bool cycle = false;
    // Edge set: every granted holder, plus (for normal requests, which sit
    // at the back of the queue) every earlier waiter. Pending upgrades wait
    // only on the other granted holders.
    for (const Request& other : queue.requests) {
      if (other.txn == txn_id) continue;
      if (is_upgrade && !other.granted) continue;
      visited.clear();
      if (WaitsForPathLocked(other.txn, txn_id, &visited)) {
        cycle = true;
        break;
      }
    }
    if (cycle) {
      waiting_on_.erase(txn_id);
      if (is_upgrade) {
        // Restore the granted S lock.
        queue.requests[pos].mode = LockMode::kShared;
      } else {
        queue.requests.erase(queue.requests.begin() + pos);
        GrantWaitersLocked(&queue);
        queue.cv.notify_all();
      }
      return LockOutcome::kDeadlock;
    }
  }

  const TxnId blocker = DesignatedBlockerLocked(queue, txn_id, mode);
  LockEventObserver* observer = observer_;
  if (observer != nullptr) {
    lock.unlock();
    observer->OnBlocked(txn_id, blocker, resource);
    lock.lock();
  }

  LockOutcome outcome = LockOutcome::kGranted;
  for (;;) {
    // Re-locate our request; the queue may have shifted.
    pos = queue.requests.size();
    for (size_t i = 0; i < queue.requests.size(); ++i) {
      if (queue.requests[i].txn == txn_id) {
        pos = i;
        break;
      }
    }
    if (pos == queue.requests.size()) {
      // Should not happen; treat as cancelled.
      outcome = LockOutcome::kCancelled;
      break;
    }
    if (is_upgrade) {
      if (CanGrantLocked(queue, pos)) {
        outcome = LockOutcome::kGranted;
        break;
      }
    } else if (queue.requests[pos].granted) {
      auto& held = held_[txn_id];
      if (std::find(held.begin(), held.end(), resource) == held.end()) {
        held.push_back(resource);
      }
      outcome = LockOutcome::kGranted;
      break;
    } else if (CanGrantLocked(queue, pos)) {
      grant_mine();
      outcome = LockOutcome::kGranted;
      break;
    }
    if (cancelled != nullptr &&
        cancelled->load(std::memory_order_acquire)) {
      outcome = LockOutcome::kCancelled;
    } else if (timeout_micros >= 0 &&
               clock_->NowMicros() - wait_start > timeout_micros) {
      outcome = LockOutcome::kTimeout;
    }
    if (outcome != LockOutcome::kGranted) {
      if (is_upgrade) {
        queue.requests[pos].mode = LockMode::kShared;  // keep the S lock
      } else {
        queue.requests.erase(queue.requests.begin() + pos);
      }
      GrantWaitersLocked(&queue);
      queue.cv.notify_all();
      break;
    }
    queue.cv.wait_for(lock, std::chrono::milliseconds(1));
  }

  waiting_on_.erase(txn_id);
  const int64_t wait_micros = clock_->NowMicros() - wait_start;
  if (observer != nullptr) {
    lock.unlock();
    observer->OnBlockReleased(txn_id, blocker, resource, wait_micros);
    lock.lock();
  }
  return outcome;
}

void LockManager::ReleaseAll(TxnId txn_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto held_it = held_.find(txn_id);
  if (held_it != held_.end()) {
    for (const ResourceId& resource : held_it->second) {
      auto table_it = table_.find(resource);
      if (table_it == table_.end()) continue;
      Queue& queue = table_it->second;
      for (size_t i = 0; i < queue.requests.size();) {
        if (queue.requests[i].txn == txn_id) {
          queue.requests.erase(queue.requests.begin() + i);
        } else {
          ++i;
        }
      }
      if (queue.requests.empty()) {
        table_.erase(table_it);
      } else {
        GrantWaitersLocked(&queue);
        queue.cv.notify_all();
      }
    }
    held_.erase(held_it);
  }
  waiting_on_.erase(txn_id);
}

void LockManager::GrantWaitersLocked(Queue* queue) {
  for (size_t i = 0; i < queue->requests.size(); ++i) {
    Request& req = queue->requests[i];
    if (req.granted && req.mode == LockMode::kShared) continue;
    if (req.granted && req.mode == LockMode::kExclusive) {
      // Either a real X holder or a pending upgrade; both are resolved by
      // the waiter's own thread via CanGrantLocked.
      continue;
    }
    if (CanGrantLocked(*queue, i)) {
      req.granted = true;
      // held_ bookkeeping happens in the waiter's thread on wake-up.
    } else {
      break;  // FIFO: later waiters cannot be granted either
    }
  }
}

bool LockManager::WaitsForPathLocked(TxnId from, TxnId to,
                                     std::unordered_set<TxnId>* visited) const {
  if (from == to) return true;
  if (!visited->insert(from).second) return false;
  auto wait_it = waiting_on_.find(from);
  if (wait_it == waiting_on_.end()) return false;
  auto table_it = table_.find(wait_it->second);
  if (table_it == table_.end()) return false;
  // A waiter depends on every granted holder and on waiters AHEAD of it in
  // the FIFO queue. Waiters behind it are waiting for *us*, not the other
  // way around — treating them as edges manufactures phantom cycles when
  // several transactions queue on one resource.
  bool passed_self = false;
  for (const Request& other : table_it->second.requests) {
    if (other.txn == from) {
      passed_self = true;
      continue;
    }
    const bool is_edge = other.granted || !passed_self;
    if (is_edge && WaitsForPathLocked(other.txn, to, visited)) return true;
  }
  return false;
}

TxnId LockManager::DesignatedBlockerLocked(const Queue& queue, TxnId self,
                                           LockMode mode) {
  for (const Request& req : queue.requests) {
    if (req.txn == self) continue;
    if (req.granted && !LockCompatible(req.mode, mode)) return req.txn;
  }
  // Blocked purely by queue order: designate the first earlier waiter.
  for (const Request& req : queue.requests) {
    if (req.txn == self) break;
    if (!req.granted) return req.txn;
  }
  return 0;
}

std::vector<BlockedPair> LockManager::SnapshotBlockedPairs() const {
  std::vector<BlockedPair> out;
  std::unique_lock<std::mutex> lock(mutex_);
  for (const auto& [txn_id, resource] : waiting_on_) {
    auto table_it = table_.find(resource);
    if (table_it == table_.end()) continue;
    const Queue& queue = table_it->second;
    // Find the waiter's requested mode.
    LockMode mode = LockMode::kExclusive;
    int64_t since = 0;
    for (const Request& req : queue.requests) {
      if (req.txn == txn_id) {
        mode = req.mode;
        since = req.wait_start_micros;
        break;
      }
    }
    BlockedPair pair;
    pair.blocked_txn = txn_id;
    pair.blocker_txn = DesignatedBlockerLocked(queue, txn_id, mode);
    pair.resource = resource;
    pair.waiting_since_micros = since;
    if (pair.blocker_txn != 0) out.push_back(std::move(pair));
  }
  return out;
}

size_t LockManager::HeldLockCount(TxnId txn_id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = held_.find(txn_id);
  return it == held_.end() ? 0 : it->second.size();
}

size_t LockManager::TotalGrantedLocks() const {
  std::unique_lock<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [_, queue] : table_) {
    for (const Request& req : queue.requests) {
      if (req.granted) ++total;
    }
  }
  return total;
}

}  // namespace sqlcm::txn
