#include "txn/transaction.h"

namespace sqlcm::txn {

using common::Status;

Transaction* TransactionManager::Begin() {
  const TxnId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id, clock_->NowMicros());
  Transaction* raw = txn.get();
  std::lock_guard<std::mutex> lock(mutex_);
  active_.emplace(id, std::move(txn));
  return raw;
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->state_ != TxnState::kActive) {
    return Status::InvalidArgument("commit of non-active transaction");
  }
  Finish(txn, TxnState::kCommitted);
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->state_ != TxnState::kActive) {
    return Status::InvalidArgument("abort of non-active transaction");
  }
  // Apply undo records newest-first. Undo is best-effort-must-succeed: a
  // failure here means the engine lost physical consistency, so surface it
  // as Internal (tests assert it never happens).
  Status undo_status = Status::OK();
  for (auto it = txn->undo_.rbegin(); it != txn->undo_.rend(); ++it) {
    storage::Table* table = catalog_->GetTableById(it->table_id);
    if (table == nullptr) continue;  // table dropped mid-txn
    switch (it->kind) {
      case UndoRecord::Kind::kInsert: {
        auto result = table->Delete(it->key);
        if (!result.ok() && undo_status.ok()) {
          undo_status = Status::Internal("undo of insert failed: " +
                                         result.status().ToString());
        }
        break;
      }
      case UndoRecord::Kind::kDelete: {
        Status s = table->InsertWithKey(it->key, it->old_row);
        if (!s.ok() && undo_status.ok()) {
          undo_status =
              Status::Internal("undo of delete failed: " + s.ToString());
        }
        break;
      }
      case UndoRecord::Kind::kUpdate: {
        auto result = table->Update(it->key, it->old_row);
        if (!result.ok() && undo_status.ok()) {
          undo_status = Status::Internal("undo of update failed: " +
                                         result.status().ToString());
        }
        break;
      }
    }
  }
  Finish(txn, TxnState::kAborted);
  return undo_status;
}

void TransactionManager::Finish(Transaction* txn, TxnState final_state) {
  txn->state_ = final_state;
  txn->undo_.clear();
  lock_manager_.ReleaseAll(txn->id_);
  std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(txn->id_);
  // `txn` is destroyed here; callers must not touch it afterwards.
}

Transaction* TransactionManager::FindActive(TxnId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_.find(id);
  return it == active_.end() ? nullptr : it->second.get();
}

size_t TransactionManager::active_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_.size();
}

}  // namespace sqlcm::txn
