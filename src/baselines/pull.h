// PULL and PULL_history baselines (paper §6.2.2(b)/(c)).
//
// PULL: a client thread repeatedly polls the server's active-statement
// snapshot and estimates each statement's execution time from how long it
// has been observed running. Lossy: statements that start and finish
// between polls are never seen, and observed durations undershoot.
//
// PULL_history: the server keeps every completed statement until the
// client picks the history up; exact but the un-drained history consumes
// server memory between polls.
#ifndef SQLCM_BASELINES_PULL_H_
#define SQLCM_BASELINES_PULL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/database.h"

namespace sqlcm::baselines {

struct ObservedQuery {
  uint64_t query_id = 0;
  std::string text;
  /// PULL: longest observed elapsed time; PULL_history: exact duration.
  int64_t duration_micros = 0;
};

/// Common client-side store: per-query maximum observed duration + top-k
/// extraction.
class ObservationStore {
 public:
  void Observe(uint64_t query_id, const std::string& text,
               int64_t duration_micros);
  std::vector<ObservedQuery> TopK(size_t k) const;
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, ObservedQuery> observed_;
};

class PullMonitor {
 public:
  struct Options {
    int64_t poll_interval_micros = 1'000'000;  // paper sweeps 1s .. 5min
  };

  PullMonitor(engine::Database* db, Options options)
      : db_(db), options_(options) {}
  ~PullMonitor() { Stop(); }
  PullMonitor(const PullMonitor&) = delete;
  PullMonitor& operator=(const PullMonitor&) = delete;

  /// One poll: snapshots active statements and records elapsed times.
  void PollOnce();

  /// Background polling at the configured rate.
  void Start();
  void Stop();

  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  std::vector<ObservedQuery> TopK(size_t k) const { return store_.TopK(k); }
  size_t observed_count() const { return store_.size(); }

 private:
  engine::Database* db_;
  Options options_;
  ObservationStore store_;
  std::atomic<uint64_t> polls_{0};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

class PullHistoryMonitor {
 public:
  struct Options {
    int64_t poll_interval_micros = 1'000'000;
  };

  PullHistoryMonitor(engine::Database* db, Options options)
      : db_(db), options_(options) {}
  ~PullHistoryMonitor() { Stop(); }
  PullHistoryMonitor(const PullHistoryMonitor&) = delete;
  PullHistoryMonitor& operator=(const PullHistoryMonitor&) = delete;

  /// One pickup: drains the server-side history into the client store.
  void PollOnce();

  void Start();
  void Stop();

  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  std::vector<ObservedQuery> TopK(size_t k) const { return store_.TopK(k); }
  size_t observed_count() const { return store_.size(); }
  /// Largest server-side history size seen at pickup time (memory cost of
  /// polling too infrequently).
  size_t max_history_seen() const {
    return max_history_seen_.load(std::memory_order_relaxed);
  }

 private:
  engine::Database* db_;
  Options options_;
  ObservationStore store_;
  std::atomic<uint64_t> polls_{0};
  std::atomic<size_t> max_history_seen_{0};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace sqlcm::baselines

#endif  // SQLCM_BASELINES_PULL_H_
