#include "baselines/pull.h"

#include <algorithm>
#include <chrono>

namespace sqlcm::baselines {

void ObservationStore::Observe(uint64_t query_id, const std::string& text,
                               int64_t duration_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  ObservedQuery& entry = observed_[query_id];
  if (entry.query_id == 0) {
    entry.query_id = query_id;
    entry.text = text;
  }
  entry.duration_micros = std::max(entry.duration_micros, duration_micros);
}

std::vector<ObservedQuery> ObservationStore::TopK(size_t k) const {
  std::vector<ObservedQuery> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    all.reserve(observed_.size());
    for (const auto& [_, entry] : observed_) all.push_back(entry);
  }
  std::sort(all.begin(), all.end(),
            [](const ObservedQuery& a, const ObservedQuery& b) {
              if (a.duration_micros != b.duration_micros) {
                return a.duration_micros > b.duration_micros;
              }
              return a.query_id < b.query_id;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

size_t ObservationStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observed_.size();
}

void PullMonitor::PollOnce() {
  const int64_t now = db_->clock()->NowMicros();
  for (const auto& stmt : db_->SnapshotActiveStatements()) {
    store_.Observe(stmt.query_id, stmt.text, now - stmt.start_micros);
  }
  polls_.fetch_add(1, std::memory_order_relaxed);
}

void PullMonitor::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      PollOnce();
      // Sleep in 1ms slices so Stop() is responsive even at 5min rates.
      int64_t remaining = options_.poll_interval_micros;
      while (remaining > 0 && running_.load(std::memory_order_acquire)) {
        const int64_t slice = std::min<int64_t>(remaining, 1000);
        std::this_thread::sleep_for(std::chrono::microseconds(slice));
        remaining -= slice;
      }
    }
  });
}

void PullMonitor::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void PullHistoryMonitor::PollOnce() {
  size_t seen = db_->StatementHistorySize();
  size_t prev = max_history_seen_.load(std::memory_order_relaxed);
  while (seen > prev &&
         !max_history_seen_.compare_exchange_weak(prev, seen)) {
  }
  for (const auto& stmt : db_->DrainStatementHistory()) {
    store_.Observe(stmt.query_id, stmt.text, stmt.duration_micros);
  }
  polls_.fetch_add(1, std::memory_order_relaxed);
}

void PullHistoryMonitor::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      PollOnce();
      int64_t remaining = options_.poll_interval_micros;
      while (remaining > 0 && running_.load(std::memory_order_acquire)) {
        const int64_t slice = std::min<int64_t>(remaining, 1000);
        std::this_thread::sleep_for(std::chrono::microseconds(slice));
        remaining -= slice;
      }
    }
  });
}

void PullHistoryMonitor::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

}  // namespace sqlcm::baselines
