// Query_logging baseline (paper §6.2.2(a)): write out all information on
// each committed query to a reporting table with forced synchronous
// writes — push without in-server filtering, i.e. classic event logging.
// The final answer (e.g. top-10 by duration) is computed afterwards with a
// SQL query over the reporting table.
#ifndef SQLCM_BASELINES_QUERY_LOGGING_H_
#define SQLCM_BASELINES_QUERY_LOGGING_H_

#include <atomic>
#include <memory>
#include <string>

#include "engine/database.h"
#include "engine/monitor_hooks.h"
#include "storage/table_io.h"

namespace sqlcm::baselines {

class QueryLoggingMonitor final : public engine::MonitorHooks {
 public:
  struct Options {
    std::string table_name = "query_log";
    /// When non-empty, every row is additionally appended to this CSV file
    /// with an fdatasync per row — the paper's "forced synchronous writes".
    std::string sync_file;
    bool sync_every_row = true;
    /// By default the sync log is opened for append so a restarted baseline
    /// keeps its history; set to discard any prior log on startup.
    bool truncate_log = false;
  };

  /// Creates the reporting table (query_id, session_id, query_text,
  /// start_time, duration) and attaches to `db` as its monitor.
  static common::Result<std::unique_ptr<QueryLoggingMonitor>> Create(
      engine::Database* db, Options options);

  ~QueryLoggingMonitor() override;

  uint64_t rows_logged() const {
    return rows_logged_.load(std::memory_order_relaxed);
  }

  // -- engine::MonitorHooks ---------------------------------------------------
  void OnStatementCompiled(engine::CachedPlan* plan) override;
  void OnQueryStart(const engine::QueryInfo&) override {}
  void OnQueryCommit(const engine::QueryInfo& info) override;
  void OnQueryCancel(const engine::QueryInfo&) override {}
  void OnQueryRollback(const engine::QueryInfo&) override {}
  void OnTransactionBegin(uint64_t, txn::TxnId) override {}
  void OnTransactionCommit(uint64_t, txn::TxnId, int64_t) override {}
  void OnTransactionRollback(uint64_t, txn::TxnId, int64_t) override {}
  txn::LockEventObserver* lock_event_observer() override { return nullptr; }

 private:
  QueryLoggingMonitor(engine::Database* db, Options options,
                      storage::Table* table,
                      std::unique_ptr<storage::SyncCsvWriter> writer)
      : db_(db), options_(std::move(options)), table_(table),
        writer_(std::move(writer)) {}

  engine::Database* db_;
  Options options_;
  storage::Table* table_;
  std::unique_ptr<storage::SyncCsvWriter> writer_;  // may be null
  std::atomic<uint64_t> rows_logged_{0};
};

}  // namespace sqlcm::baselines

#endif  // SQLCM_BASELINES_QUERY_LOGGING_H_
