#include "baselines/query_logging.h"

namespace sqlcm::baselines {

using common::Result;
using common::Row;
using common::Status;
using common::Value;

Result<std::unique_ptr<QueryLoggingMonitor>> QueryLoggingMonitor::Create(
    engine::Database* db, Options options) {
  storage::Table* table = db->catalog()->GetTable(options.table_name);
  if (table == nullptr) {
    SQLCM_ASSIGN_OR_RETURN(
        auto schema,
        catalog::TableSchema::Create(
            options.table_name,
            {{"query_id", catalog::ColumnType::kInt},
             {"session_id", catalog::ColumnType::kInt},
             {"query_text", catalog::ColumnType::kString},
             {"start_time", catalog::ColumnType::kInt},
             {"duration", catalog::ColumnType::kDouble}},
            {}));
    SQLCM_ASSIGN_OR_RETURN(table, db->catalog()->CreateTable(std::move(schema)));
  }
  std::unique_ptr<storage::SyncCsvWriter> writer;
  if (!options.sync_file.empty()) {
    SQLCM_ASSIGN_OR_RETURN(
        writer,
        storage::SyncCsvWriter::Open(options.sync_file,
                                     options.sync_every_row,
                                     options.truncate_log));
  }
  auto monitor = std::unique_ptr<QueryLoggingMonitor>(new QueryLoggingMonitor(
      db, std::move(options), table, std::move(writer)));
  db->set_monitor_hooks(monitor.get());
  return monitor;
}

QueryLoggingMonitor::~QueryLoggingMonitor() {
  if (db_->monitor_hooks() == this) db_->set_monitor_hooks(nullptr);
}

void QueryLoggingMonitor::OnStatementCompiled(engine::CachedPlan* plan) {
  (void)plan;  // event logging computes no signatures
}

void QueryLoggingMonitor::OnQueryCommit(const engine::QueryInfo& info) {
  Row row;
  row.push_back(Value::Int(static_cast<int64_t>(info.query_id)));
  row.push_back(Value::Int(static_cast<int64_t>(info.session_id)));
  row.push_back(Value::String(info.text != nullptr ? *info.text : ""));
  row.push_back(Value::Int(info.start_micros));
  row.push_back(Value::Double(static_cast<double>(info.duration_micros) / 1e6));
  if (writer_ != nullptr) {
    // Forced synchronous write: this is the dominating cost of the
    // event-logging approach and intentionally sits on the commit path.
    (void)writer_->AppendRow(row);
  }
  (void)table_->Insert(std::move(row));
  rows_logged_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sqlcm::baselines
