#include "engine/database.h"

#include "common/string_util.h"
#include "engine/session.h"
#include "exec/optimizer.h"
#include "exec/planner.h"

namespace sqlcm::engine {

using common::Result;
using common::Status;

Database::Database(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : common::SystemClock::Get()),
      txn_manager_(clock_, &catalog_),
      plan_cache_(options.plan_cache_capacity) {}

Database::~Database() = default;

std::unique_ptr<Session> Database::CreateSession() {
  return std::unique_ptr<Session>(new Session(this, NextSessionId()));
}

void Database::set_monitor_hooks(MonitorHooks* hooks) {
  hooks_ = hooks;
  txn_manager_.lock_manager()->set_observer(
      hooks != nullptr ? hooks->lock_event_observer() : nullptr);
}

Status Database::CreateProcedure(Procedure proc) {
  const std::string key = common::ToLower(proc.name);
  std::lock_guard<std::mutex> lock(proc_mutex_);
  if (procedures_.count(key) != 0) {
    return Status::AlreadyExists("procedure '" + proc.name +
                                 "' already exists");
  }
  procedures_.emplace(key, std::make_unique<Procedure>(std::move(proc)));
  return Status::OK();
}

Status Database::DropProcedure(std::string_view name) {
  const std::string key = common::ToLower(name);
  std::lock_guard<std::mutex> lock(proc_mutex_);
  if (procedures_.erase(key) == 0) {
    return Status::NotFound("procedure '" + std::string(name) +
                            "' not found");
  }
  return Status::OK();
}

const Procedure* Database::FindProcedure(std::string_view name) const {
  const std::string key = common::ToLower(name);
  std::lock_guard<std::mutex> lock(proc_mutex_);
  auto it = procedures_.find(key);
  return it == procedures_.end() ? nullptr : it->second.get();
}

std::vector<Database::StatementRecord> Database::SnapshotActiveStatements()
    const {
  std::lock_guard<std::mutex> lock(statements_mutex_);
  std::vector<StatementRecord> out;
  out.reserve(active_statements_.size());
  for (const auto& [_, record] : active_statements_) out.push_back(record);
  return out;
}

std::vector<Database::StatementRecord> Database::DrainStatementHistory() {
  std::lock_guard<std::mutex> lock(statements_mutex_);
  std::vector<StatementRecord> out;
  out.swap(statement_history_);
  return out;
}

size_t Database::StatementHistorySize() const {
  std::lock_guard<std::mutex> lock(statements_mutex_);
  return statement_history_.size();
}

void Database::RegisterStatement(const StatementRecord& record) {
  std::lock_guard<std::mutex> lock(statements_mutex_);
  if (options_.enable_statement_snapshot) {
    active_statements_.emplace(record.query_id, record);
  }
  // History entries are appended at completion (UnregisterStatement), but
  // when only history is enabled we still need the start info then; keep
  // the record in the active map in that case too.
  if (options_.enable_statement_history &&
      !options_.enable_statement_snapshot) {
    active_statements_.emplace(record.query_id, record);
  }
}

void Database::UnregisterStatement(uint64_t query_id,
                                   int64_t duration_micros) {
  std::lock_guard<std::mutex> lock(statements_mutex_);
  auto it = active_statements_.find(query_id);
  if (it == active_statements_.end()) return;
  if (options_.enable_statement_history) {
    StatementRecord record = std::move(it->second);
    record.duration_micros = duration_micros;
    statement_history_.push_back(std::move(record));
  }
  active_statements_.erase(it);
}

Result<std::shared_ptr<CachedPlan>> Database::Compile(
    const std::string& sql_text, const sql::Statement& stmt) {
  auto plan = std::make_shared<CachedPlan>();
  plan->sql_text = sql_text;

  const int64_t compile_start = clock_->NowMicros();
  exec::Planner planner(&catalog_);
  SQLCM_ASSIGN_OR_RETURN(plan->logical, planner.Plan(stmt));
  exec::Optimizer optimizer;
  SQLCM_ASSIGN_OR_RETURN(plan->physical, optimizer.Optimize(*plan->logical));
  plan->optimize_micros = clock_->NowMicros() - compile_start;

  // The monitor computes signatures here, before the plan is published
  // (paper §4.2: computed during optimization, cached with the plan).
  if (hooks_ != nullptr) {
    hooks_->OnStatementCompiled(plan.get());
  }
  plan_cache_.Put(plan);
  return plan;
}

}  // namespace sqlcm::engine
