// Instrumentation boundary between the engine and SQLCM.
//
// The engine calls these hooks synchronously from its own execution paths
// (paper §6.1: "rule evaluation is triggered in the code path of the event
// ... branching into the SQLCM code and then resuming execution afterwards
// ... no context switching is required"). The engine has no dependency on
// the monitor; cm::MonitorEngine implements this interface and is attached
// via Database::set_monitor_hooks.
//
// When no monitor is attached the hook call sites cost one pointer test —
// the basis for the "no monitoring is performed unless it is required by a
// rule" property (§2.1).
#ifndef SQLCM_ENGINE_MONITOR_HOOKS_H_
#define SQLCM_ENGINE_MONITOR_HOOKS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "engine/plan_cache.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"

namespace sqlcm::engine {

/// Everything the monitor can probe about one executing statement. Field
/// lifetimes: pointers are valid for the duration of the hook call (and,
/// for `plan`, as long as the plan-cache entry lives).
struct QueryInfo {
  uint64_t query_id = 0;         // unique per statement execution
  uint64_t session_id = 0;
  txn::TxnId txn_id = 0;
  txn::Transaction* txn = nullptr;  // for Cancel actions; may be null
  const std::string* text = nullptr;
  const std::string* user = nullptr;         // session user name
  const std::string* application = nullptr;  // session application name
  const CachedPlan* plan = nullptr;  // null for EXEC wrapper queries
  /// Shared ownership of the plan-cache entry; the monitor pins it in the
  /// query record so probe strings can be read in place without copies.
  std::shared_ptr<const CachedPlan> plan_ref;
  const char* statement_type = "SELECT";
  double estimated_cost = 0;
  int64_t start_micros = 0;
  // End-of-query fields (valid in commit/cancel/rollback hooks):
  int64_t duration_micros = 0;
  uint64_t rows_scanned = 0;
  // For EXEC wrapper statements the monitor needs a stable signature even
  // without a plan; the engine provides the canonical strings directly.
  const std::string* override_logical_signature = nullptr;
  const std::string* override_physical_signature = nullptr;
};

class MonitorHooks {
 public:
  virtual ~MonitorHooks() = default;

  /// A statement finished planning+optimization. The monitor computes and
  /// caches the query signatures into `plan` here (called before the entry
  /// is published to the plan cache). `optimize_micros` is the measured
  /// optimization time, used by the signature-overhead experiment (E1).
  virtual void OnStatementCompiled(CachedPlan* plan) = 0;

  /// Query lifecycle events (paper §5.1): Start fires before execution,
  /// exactly one of Commit/Cancel/Rollback fires after.
  virtual void OnQueryStart(const QueryInfo& info) = 0;
  virtual void OnQueryCommit(const QueryInfo& info) = 0;
  virtual void OnQueryCancel(const QueryInfo& info) = 0;
  virtual void OnQueryRollback(const QueryInfo& info) = 0;

  /// Transaction lifecycle (outermost begin/commit brackets, §4.2).
  virtual void OnTransactionBegin(uint64_t session_id, txn::TxnId txn_id) = 0;
  virtual void OnTransactionCommit(uint64_t session_id, txn::TxnId txn_id,
                                   int64_t duration_micros) = 0;
  virtual void OnTransactionRollback(uint64_t session_id, txn::TxnId txn_id,
                                     int64_t duration_micros) = 0;

  /// The lock-conflict observer the engine wires into its LockManager
  /// (Query.Blocked / Query.Block_Released events). May return nullptr.
  virtual txn::LockEventObserver* lock_event_observer() = 0;
};

}  // namespace sqlcm::engine

#endif  // SQLCM_ENGINE_MONITOR_HOOKS_H_
