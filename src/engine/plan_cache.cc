#include "engine/plan_cache.h"

namespace sqlcm::engine {

std::shared_ptr<CachedPlan> PlanCache::Get(const std::string& sql_text) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(sql_text);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.plan;
}

void PlanCache::Put(std::shared_ptr<CachedPlan> plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(plan->sql_text);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.plan = std::move(plan);
    return;
  }
  const std::string key = plan->sql_text;
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(plan), lru_.begin()});
  while (map_.size() > capacity_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

}  // namespace sqlcm::engine
