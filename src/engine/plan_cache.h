// Plan cache: SQL text -> compiled plan (+ cached query signatures).
//
// Paper §4.2: "The logical query signature is computed during query
// optimization and stored as part of the query plan; thus, if a query plan
// is cached, so is its signature, thereby avoiding the need to recompute it
// often." CachedPlan carries monitor-filled signature fields so exactly
// that happens: the monitor computes signatures once at compile time and
// every later execution of the cached plan reuses them.
#ifndef SQLCM_ENGINE_PLAN_CACHE_H_
#define SQLCM_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/logical_plan.h"
#include "exec/physical_plan.h"

namespace sqlcm::engine {

/// One compiled statement. Immutable after compilation except the
/// monitor-owned signature fields (written once, before the entry is
/// published to the cache) and the execution counter.
struct CachedPlan {
  std::string sql_text;
  std::unique_ptr<exec::LogicalPlan> logical;
  std::unique_ptr<exec::PhysicalPlan> physical;

  int64_t optimize_micros = 0;  // planning + optimization wall time

  // --- Monitor-owned (filled by MonitorHooks::OnStatementCompiled) ---
  bool signatures_computed = false;
  std::string logical_signature;     // canonical linearization (paper: BLOB)
  std::string physical_signature;
  uint64_t logical_signature_hash = 0;
  uint64_t physical_signature_hash = 0;
  int64_t signature_micros = 0;      // cost of computing both signatures

  /// Number of executions of this plan (Query.Number_of_instances probe).
  std::atomic<uint64_t> execution_count{0};
};

/// Thread-safe LRU cache keyed by exact SQL text.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// nullptr on miss; refreshes LRU position on hit.
  std::shared_ptr<CachedPlan> Get(const std::string& sql_text);

  /// Inserts (replacing any same-text entry) and evicts LRU overflow.
  void Put(std::shared_ptr<CachedPlan> plan);

  /// Drops everything (called on DDL).
  void Clear();

  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  // LRU list front = most recent; map value holds list iterator + entry.
  std::list<std::string> lru_;
  struct Slot {
    std::shared_ptr<CachedPlan> plan;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Slot> map_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace sqlcm::engine

#endif  // SQLCM_ENGINE_PLAN_CACHE_H_
