// Database: the embedded relational engine instance ("kestrel") that SQLCM
// monitors. Owns catalog, transaction manager, plan cache, stored
// procedures and the monitor attachment point.
#ifndef SQLCM_ENGINE_DATABASE_H_
#define SQLCM_ENGINE_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "engine/monitor_hooks.h"
#include "engine/plan_cache.h"
#include "engine/procedure.h"
#include "storage/catalog.h"
#include "txn/transaction.h"

namespace sqlcm::engine {

class Session;

class Database {
 public:
  struct Options {
    /// Time source; nullptr selects the real SystemClock.
    common::Clock* clock = nullptr;
    /// SELECTs take shared row locks when true (repeatable-read style);
    /// default is latch-consistent read-committed reads.
    bool lock_rows_for_reads = false;
    /// Lock wait timeout; < 0 waits forever (deadlocks still detected).
    int64_t lock_timeout_micros = -1;
    size_t plan_cache_capacity = 4096;
    /// Maintain a snapshot table of currently executing statements (the
    /// sysprocesses-style view the PULL baseline polls, §6.2.2(b)).
    bool enable_statement_snapshot = false;
    /// Keep a history of completed statements until drained (the
    /// PULL_history baseline, §6.2.2(c)).
    bool enable_statement_history = false;
  };

  /// One row of the active-statement snapshot / completed history.
  struct StatementRecord {
    uint64_t query_id = 0;
    uint64_t session_id = 0;
    std::string text;
    int64_t start_micros = 0;
    int64_t duration_micros = 0;  // history only; 0 while running
  };

  Database() : Database(Options()) {}
  explicit Database(Options options);
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a session. Sessions must not outlive the Database.
  std::unique_ptr<Session> CreateSession();

  storage::Catalog* catalog() { return &catalog_; }
  txn::TransactionManager* txn_manager() { return &txn_manager_; }
  PlanCache* plan_cache() { return &plan_cache_; }
  common::Clock* clock() { return clock_; }
  const Options& options() const { return options_; }

  /// Attaches (or detaches, with nullptr) the monitor. Not thread-safe
  /// with respect to concurrently executing sessions; attach during quiesce.
  void set_monitor_hooks(MonitorHooks* hooks);
  MonitorHooks* monitor_hooks() const { return hooks_; }

  // -- Stored procedures ----------------------------------------------------

  common::Status CreateProcedure(Procedure proc);
  common::Status DropProcedure(std::string_view name);
  /// nullptr when absent. Pointers remain valid until DropProcedure.
  const Procedure* FindProcedure(std::string_view name) const;

  // -- Compilation ----------------------------------------------------------

  /// Compiles a plannable statement (SELECT/INSERT/UPDATE/DELETE): plans,
  /// optimizes (timing the whole compilation into optimize_micros), lets
  /// the monitor compute signatures, and publishes to the plan cache.
  common::Result<std::shared_ptr<CachedPlan>> Compile(
      const std::string& sql_text, const sql::Statement& stmt);

  // -- Polling surfaces (PULL baselines) -------------------------------------

  /// Copy of all currently executing statements (requires
  /// enable_statement_snapshot). The poll itself contends with statement
  /// registration — exactly the overhead the paper attributes to polling.
  std::vector<StatementRecord> SnapshotActiveStatements() const;

  /// Removes and returns the completed-statement history (requires
  /// enable_statement_history).
  std::vector<StatementRecord> DrainStatementHistory();

  /// Current size of the un-drained history (models the paper's note that
  /// infrequent pickup makes historical state consume server memory).
  size_t StatementHistorySize() const;

  // Session-internal registration (public for Session only, in effect).
  void RegisterStatement(const StatementRecord& record);
  void UnregisterStatement(uint64_t query_id, int64_t duration_micros);

  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NextSessionId() {
    return next_session_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  const Options options_;
  common::Clock* clock_;
  storage::Catalog catalog_;
  txn::TransactionManager txn_manager_;
  PlanCache plan_cache_;
  MonitorHooks* hooks_ = nullptr;

  mutable std::mutex proc_mutex_;
  std::unordered_map<std::string, std::unique_ptr<Procedure>> procedures_;

  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<uint64_t> next_session_id_{1};

  mutable std::mutex statements_mutex_;
  std::unordered_map<uint64_t, StatementRecord> active_statements_;
  std::vector<StatementRecord> statement_history_;
};

}  // namespace sqlcm::engine

#endif  // SQLCM_ENGINE_DATABASE_H_
