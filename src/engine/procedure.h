// Stored procedures: named, parameterized statement sequences with IF/ELSE
// branching (the paper's motivating shape for transaction signatures,
// §4.2: "IF Condition THEN A ELSE B").
//
// Procedures are registered through the API (Database::CreateProcedure);
// bodies reference parameters as @name inside their SQL text and branch
// conditions.
#ifndef SQLCM_ENGINE_PROCEDURE_H_
#define SQLCM_ENGINE_PROCEDURE_H_

#include <string>
#include <vector>

namespace sqlcm::engine {

struct ProcStep {
  enum class Kind : uint8_t { kSql, kIf };

  Kind kind = Kind::kSql;

  // kSql
  std::string sql;

  // kIf
  std::string condition;  // SQL boolean expression over @params
  std::vector<ProcStep> then_branch;
  std::vector<ProcStep> else_branch;

  static ProcStep Sql(std::string text) {
    ProcStep step;
    step.kind = Kind::kSql;
    step.sql = std::move(text);
    return step;
  }
  static ProcStep If(std::string condition, std::vector<ProcStep> then_branch,
                     std::vector<ProcStep> else_branch = {}) {
    ProcStep step;
    step.kind = Kind::kIf;
    step.condition = std::move(condition);
    step.then_branch = std::move(then_branch);
    step.else_branch = std::move(else_branch);
    return step;
  }
};

struct Procedure {
  std::string name;
  std::vector<std::string> params;  // names without the leading '@'
  std::vector<ProcStep> body;
};

}  // namespace sqlcm::engine

#endif  // SQLCM_ENGINE_PROCEDURE_H_
