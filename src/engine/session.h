// Session: one client connection's statement execution context.
#ifndef SQLCM_ENGINE_SESSION_H_
#define SQLCM_ENGINE_SESSION_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "engine/database.h"
#include "exec/executor.h"

namespace sqlcm::engine {

/// Not thread-safe: one thread drives a session at a time (matching one
/// connection). Cross-thread Cancel is supported via the transaction's
/// cancel flag (used by SQLCM's Cancel action).
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }

  /// Probes used by monitoring rules to group by user/application.
  void set_user(std::string user) { user_ = std::move(user); }
  void set_application(std::string application) {
    application_ = std::move(application);
  }
  const std::string& user() const { return user_; }
  const std::string& application() const { return application_; }

  /// Executes one SQL statement (any kind, including BEGIN/COMMIT/ROLLBACK,
  /// DDL and EXEC). Autocommits when no explicit transaction is open. On
  /// execution failure the enclosing transaction is rolled back.
  common::Result<exec::QueryResult> Execute(
      const std::string& sql, const exec::ParamMap* params = nullptr);

  /// Explicit transaction control (equivalent to the SQL statements).
  common::Status Begin();
  common::Status Commit();
  common::Status Rollback();

  bool in_transaction() const { return txn_ != nullptr; }
  txn::Transaction* current_txn() { return txn_; }

 private:
  friend class Database;
  Session(Database* db, uint64_t id) : db_(db), id_(id) {}

  /// Runs a compiled plan with full query-event instrumentation.
  common::Result<exec::QueryResult> ExecutePlan(
      const std::shared_ptr<CachedPlan>& plan, const exec::ParamMap* params);

  common::Result<exec::QueryResult> ExecuteDdl(const sql::Statement& stmt);
  common::Result<exec::QueryResult> ExecuteProcedure(
      const sql::ExecProcedureStmt& stmt, const exec::ParamMap* params);
  common::Status RunProcSteps(const std::vector<ProcStep>& steps,
                              const exec::ParamMap& params,
                              exec::QueryResult* last_result);

  /// Starts an autocommit transaction if none is open; returns whether one
  /// was started (and must be committed at statement end).
  bool EnsureTxn();
  common::Status CommitTxn();
  common::Status AbortTxn();

  /// Builds the QueryInfo for instrumentation hooks.
  QueryInfo MakeQueryInfo(uint64_t query_id, const std::string* text,
                          const CachedPlan* plan) const;

  Database* db_;
  const uint64_t id_;
  std::string user_ = "dbo";
  std::string application_ = "default";
  txn::Transaction* txn_ = nullptr;
  int64_t txn_start_micros_ = 0;
};

}  // namespace sqlcm::engine

#endif  // SQLCM_ENGINE_SESSION_H_
