#include "engine/session.h"

#include "catalog/types.h"
#include "sql/parser.h"

namespace sqlcm::engine {

using common::Result;
using common::Status;
using exec::ParamMap;
using exec::QueryResult;

Session::~Session() {
  if (txn_ != nullptr) {
    AbortTxn();  // rollback on disconnect
  }
}

bool Session::EnsureTxn() {
  if (txn_ != nullptr) return false;
  txn_ = db_->txn_manager()->Begin();
  txn_start_micros_ = db_->clock()->NowMicros();
  if (MonitorHooks* hooks = db_->monitor_hooks()) {
    hooks->OnTransactionBegin(id_, txn_->id());
  }
  return true;
}

Status Session::CommitTxn() {
  if (txn_ == nullptr) return Status::OK();
  const txn::TxnId txn_id = txn_->id();
  const Status s = db_->txn_manager()->Commit(txn_);
  txn_ = nullptr;
  if (MonitorHooks* hooks = db_->monitor_hooks()) {
    hooks->OnTransactionCommit(id_, txn_id,
                               db_->clock()->NowMicros() - txn_start_micros_);
  }
  return s;
}

Status Session::AbortTxn() {
  if (txn_ == nullptr) return Status::OK();
  const txn::TxnId txn_id = txn_->id();
  const Status s = db_->txn_manager()->Abort(txn_);
  txn_ = nullptr;
  if (MonitorHooks* hooks = db_->monitor_hooks()) {
    hooks->OnTransactionRollback(
        id_, txn_id, db_->clock()->NowMicros() - txn_start_micros_);
  }
  return s;
}

Status Session::Begin() {
  if (txn_ != nullptr) {
    return Status::InvalidArgument("BEGIN inside an open transaction");
  }
  EnsureTxn();
  return Status::OK();
}

Status Session::Commit() {
  if (txn_ == nullptr) {
    return Status::InvalidArgument("COMMIT without an open transaction");
  }
  return CommitTxn();
}

Status Session::Rollback() {
  if (txn_ == nullptr) {
    return Status::InvalidArgument("ROLLBACK without an open transaction");
  }
  return AbortTxn();
}

QueryInfo Session::MakeQueryInfo(uint64_t query_id, const std::string* text,
                                 const CachedPlan* plan) const {
  QueryInfo info;
  info.query_id = query_id;
  info.session_id = id_;
  info.txn_id = txn_ != nullptr ? txn_->id() : 0;
  info.txn = txn_;
  info.text = text;
  info.user = &user_;
  info.application = &application_;
  info.plan = plan;
  info.start_micros = db_->clock()->NowMicros();
  return info;
}

Result<QueryResult> Session::Execute(const std::string& sql,
                                     const ParamMap* params) {
  // Fast path: the plan cache is keyed by exact statement text.
  if (auto cached = db_->plan_cache()->Get(sql)) {
    return ExecutePlan(cached, params);
  }
  SQLCM_ASSIGN_OR_RETURN(auto stmt, sql::Parser::ParseStatement(sql));
  switch (stmt->kind) {
    case sql::StatementKind::kBegin:
      SQLCM_RETURN_IF_ERROR(Begin());
      return QueryResult{};
    case sql::StatementKind::kCommit:
      SQLCM_RETURN_IF_ERROR(Commit());
      return QueryResult{};
    case sql::StatementKind::kRollback:
      SQLCM_RETURN_IF_ERROR(Rollback());
      return QueryResult{};
    case sql::StatementKind::kCreateTable:
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kDropTable:
      return ExecuteDdl(*stmt);
    case sql::StatementKind::kExecProcedure:
      return ExecuteProcedure(
          static_cast<const sql::ExecProcedureStmt&>(*stmt), params);
    default: {
      SQLCM_ASSIGN_OR_RETURN(auto plan, db_->Compile(sql, *stmt));
      return ExecutePlan(plan, params);
    }
  }
}

Result<QueryResult> Session::ExecutePlan(
    const std::shared_ptr<CachedPlan>& plan, const ParamMap* params) {
  const bool autocommit = EnsureTxn();
  MonitorHooks* hooks = db_->monitor_hooks();

  QueryInfo info = MakeQueryInfo(db_->NextQueryId(), &plan->sql_text,
                                 plan.get());
  info.plan_ref = plan;
  info.statement_type = plan->physical->StatementType();
  info.estimated_cost = plan->physical->est_cost;
  if (hooks != nullptr) hooks->OnQueryStart(info);

  const bool track_statement = db_->options().enable_statement_snapshot ||
                               db_->options().enable_statement_history;
  if (track_statement) {
    Database::StatementRecord record;
    record.query_id = info.query_id;
    record.session_id = id_;
    record.text = plan->sql_text;
    record.start_micros = info.start_micros;
    db_->RegisterStatement(record);
  }

  exec::ExecContext ctx;
  ctx.txn = txn_;
  ctx.locks = db_->txn_manager()->lock_manager();
  ctx.clock = db_->clock();
  ctx.params = params;
  ctx.lock_rows_for_reads = db_->options().lock_rows_for_reads;
  ctx.lock_timeout_micros = db_->options().lock_timeout_micros;

  auto result = exec::Executor::Execute(*plan->physical, &ctx);

  info.duration_micros = db_->clock()->NowMicros() - info.start_micros;
  info.rows_scanned = ctx.rows_scanned;
  if (track_statement) {
    db_->UnregisterStatement(info.query_id, info.duration_micros);
  }

  if (result.ok()) {
    plan->execution_count.fetch_add(1, std::memory_order_relaxed);
    if (hooks != nullptr) hooks->OnQueryCommit(info);
    if (autocommit) {
      SQLCM_RETURN_IF_ERROR(CommitTxn());
    }
    return result;
  }
  if (hooks != nullptr) {
    if (result.status().IsCancelled()) {
      hooks->OnQueryCancel(info);
    } else {
      hooks->OnQueryRollback(info);
    }
  }
  // Statement failure aborts the enclosing transaction (documented
  // simplification; no statement-level savepoints).
  AbortTxn();
  return result.status();
}

Result<QueryResult> Session::ExecuteDdl(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kCreateTable: {
      const auto& create = static_cast<const sql::CreateTableStmt&>(stmt);
      std::vector<catalog::Column> columns;
      for (const auto& def : create.columns) {
        SQLCM_ASSIGN_OR_RETURN(auto type, catalog::ParseTypeName(def.type_name));
        columns.push_back({def.name, type});
      }
      SQLCM_ASSIGN_OR_RETURN(
          auto schema, catalog::TableSchema::Create(
                           create.table, std::move(columns),
                           create.primary_key));
      SQLCM_RETURN_IF_ERROR(
          db_->catalog()->CreateTable(std::move(schema)).status());
      break;
    }
    case sql::StatementKind::kCreateIndex: {
      const auto& create = static_cast<const sql::CreateIndexStmt&>(stmt);
      storage::Table* table = db_->catalog()->GetTable(create.table);
      if (table == nullptr) {
        return Status::NotFound("table '" + create.table + "' not found");
      }
      SQLCM_RETURN_IF_ERROR(table->CreateIndex(create.index, create.columns));
      break;
    }
    case sql::StatementKind::kDropTable: {
      const auto& drop = static_cast<const sql::DropTableStmt&>(stmt);
      storage::Table* table = db_->catalog()->GetTable(drop.table);
      if (table != nullptr && table->is_virtual()) {
        return Status::InvalidArgument("table '" + drop.table +
                                       "' is a read-only system view");
      }
      SQLCM_RETURN_IF_ERROR(db_->catalog()->DropTable(drop.table));
      break;
    }
    default:
      return Status::Internal("non-DDL statement in ExecuteDdl");
  }
  // Plans compiled against the old schema are invalid now.
  db_->plan_cache()->Clear();
  return QueryResult{};
}

Result<QueryResult> Session::ExecuteProcedure(
    const sql::ExecProcedureStmt& stmt, const ParamMap* params) {
  const Procedure* proc = db_->FindProcedure(stmt.procedure);
  if (proc == nullptr) {
    return Status::NotFound("procedure '" + stmt.procedure + "' not found");
  }
  if (stmt.args.size() != proc->params.size()) {
    return Status::InvalidArgument(
        "procedure '" + proc->name + "' expects " +
        std::to_string(proc->params.size()) + " arguments, got " +
        std::to_string(stmt.args.size()));
  }
  // Evaluate arguments (constants or references to caller parameters).
  ParamMap proc_params;
  const exec::RowSchema empty_schema;
  for (size_t i = 0; i < stmt.args.size(); ++i) {
    SQLCM_ASSIGN_OR_RETURN(auto bound,
                           exec::BoundExpr::Bind(*stmt.args[i], empty_schema));
    SQLCM_ASSIGN_OR_RETURN(auto value, bound->Eval({}, params));
    proc_params[proc->params[i]] = std::move(value);
  }

  const bool autocommit = EnsureTxn();
  MonitorHooks* hooks = db_->monitor_hooks();

  // The EXEC itself is a monitored Query whose signature groups all
  // invocations of the procedure (Example 1 in the paper groups outliers
  // by this signature); its Duration covers the whole invocation.
  const std::string exec_text = "EXEC " + proc->name;
  const std::string exec_signature = "Exec(" + proc->name + ")";
  QueryInfo info = MakeQueryInfo(db_->NextQueryId(), &exec_text, nullptr);
  info.statement_type = "EXEC";
  info.override_logical_signature = &exec_signature;
  info.override_physical_signature = &exec_signature;
  if (hooks != nullptr) hooks->OnQueryStart(info);

  QueryResult last_result;
  Status run_status = RunProcSteps(proc->body, proc_params, &last_result);

  info.duration_micros = db_->clock()->NowMicros() - info.start_micros;
  if (run_status.ok()) {
    if (hooks != nullptr) hooks->OnQueryCommit(info);
    if (autocommit) {
      SQLCM_RETURN_IF_ERROR(CommitTxn());
    }
    return last_result;
  }
  if (hooks != nullptr) {
    if (run_status.IsCancelled()) {
      hooks->OnQueryCancel(info);
    } else {
      hooks->OnQueryRollback(info);
    }
  }
  AbortTxn();
  return run_status;
}

Status Session::RunProcSteps(const std::vector<ProcStep>& steps,
                             const ParamMap& params,
                             QueryResult* last_result) {
  for (const ProcStep& step : steps) {
    switch (step.kind) {
      case ProcStep::Kind::kSql: {
        auto result = Execute(step.sql, &params);
        if (!result.ok()) return result.status();
        *last_result = std::move(*result);
        break;
      }
      case ProcStep::Kind::kIf: {
        SQLCM_ASSIGN_OR_RETURN(auto cond_ast,
                               sql::Parser::ParseExpression(step.condition));
        const exec::RowSchema empty_schema;
        SQLCM_ASSIGN_OR_RETURN(auto bound,
                               exec::BoundExpr::Bind(*cond_ast, empty_schema));
        SQLCM_ASSIGN_OR_RETURN(bool taken, bound->EvalBool({}, &params));
        SQLCM_RETURN_IF_ERROR(RunProcSteps(
            taken ? step.then_branch : step.else_branch, params, last_result));
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace sqlcm::engine
