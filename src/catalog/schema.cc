#include "catalog/schema.h"

#include "common/string_util.h"

namespace sqlcm::catalog {

using common::Result;
using common::Row;
using common::Status;

Result<TableSchema> TableSchema::Create(
    std::string table_name, std::vector<Column> columns,
    const std::vector<std::string>& primary_key_names) {
  if (columns.empty()) {
    return Status::InvalidArgument("table '" + table_name +
                                   "' must have at least one column");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (common::EqualsIgnoreCase(columns[i].name, columns[j].name)) {
        return Status::InvalidArgument("duplicate column '" + columns[i].name +
                                       "' in table '" + table_name + "'");
      }
    }
  }
  TableSchema schema(std::move(table_name), std::move(columns), {});
  for (const std::string& key_col : primary_key_names) {
    const int ordinal = schema.FindColumn(key_col);
    if (ordinal < 0) {
      return Status::InvalidArgument("primary key column '" + key_col +
                                     "' not found in table '" +
                                     schema.table_name_ + "'");
    }
    schema.primary_key_.push_back(static_cast<size_t>(ordinal));
  }
  return schema;
}

int TableSchema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (common::EqualsIgnoreCase(columns_[i].name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Result<Row> TableSchema::ValidateRow(Row row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table '" +
        table_name_ + "' with " + std::to_string(columns_.size()) +
        " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    SQLCM_ASSIGN_OR_RETURN(row[i], CoerceToType(row[i], columns_[i].type));
  }
  return row;
}

Row TableSchema::KeyOf(const Row& row) const {
  Row key;
  key.reserve(primary_key_.size());
  for (size_t ordinal : primary_key_) key.push_back(row[ordinal]);
  return key;
}

std::string TableSchema::ToString() const {
  std::string out = table_name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ColumnTypeName(columns_[i].type);
  }
  if (!primary_key_.empty()) {
    out += ", PRIMARY KEY(";
    for (size_t i = 0; i < primary_key_.size(); ++i) {
      if (i > 0) out += ", ";
      out += columns_[primary_key_[i]].name;
    }
    out += ")";
  }
  out += ")";
  return out;
}

}  // namespace sqlcm::catalog
