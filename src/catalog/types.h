// Column type system: the static types a table column can have and their
// mapping to runtime common::Value kinds.
#ifndef SQLCM_CATALOG_TYPES_H_
#define SQLCM_CATALOG_TYPES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "common/value.h"

namespace sqlcm::catalog {

enum class ColumnType : uint8_t {
  kInt,      // INT, INTEGER, BIGINT, DATETIME (microseconds since epoch)
  kDouble,   // FLOAT, DOUBLE, REAL
  kString,   // STRING, VARCHAR, TEXT, CHAR, BLOB
  kBool,     // BOOL, BOOLEAN
};

const char* ColumnTypeName(ColumnType type);

/// Maps a SQL type name (case-insensitive) to a ColumnType.
common::Result<ColumnType> ParseTypeName(std::string_view name);

/// Runtime kind a column of this type stores.
common::ValueKind ValueKindForType(ColumnType type);

/// True if `v` may be stored in a column of type `type` (NULL always may;
/// ints are accepted into double columns and silently widened).
bool ValueMatchesType(const common::Value& v, ColumnType type);

/// Coerces `v` for storage into a column of `type` (int→double widening);
/// TypeError if incompatible.
common::Result<common::Value> CoerceToType(const common::Value& v,
                                           ColumnType type);

/// Parses the ToString() rendering of a value of this type (used by CSV
/// restore). Empty string parses as NULL.
common::Result<common::Value> ParseValueText(std::string_view text,
                                             ColumnType type);

}  // namespace sqlcm::catalog

#endif  // SQLCM_CATALOG_TYPES_H_
