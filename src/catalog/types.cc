#include "catalog/types.h"

#include <cstdlib>

#include "common/string_util.h"

namespace sqlcm::catalog {

using common::EqualsIgnoreCase;
using common::Result;
using common::Status;
using common::Value;
using common::ValueKind;

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt: return "INT";
    case ColumnType::kDouble: return "FLOAT";
    case ColumnType::kString: return "STRING";
    case ColumnType::kBool: return "BOOL";
  }
  return "?";
}

Result<ColumnType> ParseTypeName(std::string_view name) {
  for (std::string_view n : {"INT", "INTEGER", "BIGINT", "DATETIME"}) {
    if (EqualsIgnoreCase(name, n)) return ColumnType::kInt;
  }
  for (std::string_view n : {"FLOAT", "DOUBLE", "REAL"}) {
    if (EqualsIgnoreCase(name, n)) return ColumnType::kDouble;
  }
  for (std::string_view n : {"STRING", "VARCHAR", "TEXT", "CHAR", "BLOB"}) {
    if (EqualsIgnoreCase(name, n)) return ColumnType::kString;
  }
  for (std::string_view n : {"BOOL", "BOOLEAN"}) {
    if (EqualsIgnoreCase(name, n)) return ColumnType::kBool;
  }
  return Status::InvalidArgument("unknown column type '" + std::string(name) +
                                 "'");
}

ValueKind ValueKindForType(ColumnType type) {
  switch (type) {
    case ColumnType::kInt: return ValueKind::kInt;
    case ColumnType::kDouble: return ValueKind::kDouble;
    case ColumnType::kString: return ValueKind::kString;
    case ColumnType::kBool: return ValueKind::kBool;
  }
  return ValueKind::kNull;
}

bool ValueMatchesType(const Value& v, ColumnType type) {
  if (v.is_null()) return true;
  switch (type) {
    case ColumnType::kInt: return v.is_int();
    case ColumnType::kDouble: return v.is_numeric();
    case ColumnType::kString: return v.is_string();
    case ColumnType::kBool: return v.is_bool();
  }
  return false;
}

Result<Value> CoerceToType(const Value& v, ColumnType type) {
  if (v.is_null()) return v;
  switch (type) {
    case ColumnType::kInt:
      if (v.is_int()) return v;
      break;
    case ColumnType::kDouble:
      if (v.is_double()) return v;
      if (v.is_int()) return Value::Double(static_cast<double>(v.int_value()));
      break;
    case ColumnType::kString:
      if (v.is_string()) return v;
      break;
    case ColumnType::kBool:
      if (v.is_bool()) return v;
      break;
  }
  return Status::TypeError(std::string("cannot store ") +
                           ValueKindName(v.kind()) + " value " + v.ToString() +
                           " in " + ColumnTypeName(type) + " column");
}

Result<Value> ParseValueText(std::string_view text, ColumnType type) {
  if (text.empty() || text == "NULL") return Value::Null();
  switch (type) {
    case ColumnType::kInt: {
      const std::string s(text);
      char* end = nullptr;
      const int64_t v = std::strtoll(s.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("bad INT literal '" + s + "'");
      }
      return Value::Int(v);
    }
    case ColumnType::kDouble: {
      const std::string s(text);
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("bad FLOAT literal '" + s + "'");
      }
      return Value::Double(v);
    }
    case ColumnType::kString: {
      // Accept either the quoted ToString() form or raw text.
      if (text.size() >= 2 && text.front() == '\'' && text.back() == '\'') {
        std::string body;
        for (size_t i = 1; i + 1 < text.size(); ++i) {
          if (text[i] == '\'' && i + 2 < text.size() && text[i + 1] == '\'') {
            body += '\'';
            ++i;
          } else {
            body += text[i];
          }
        }
        return Value::String(std::move(body));
      }
      return Value::String(std::string(text));
    }
    case ColumnType::kBool:
      if (EqualsIgnoreCase(text, "TRUE") || text == "1") {
        return Value::Bool(true);
      }
      if (EqualsIgnoreCase(text, "FALSE") || text == "0") {
        return Value::Bool(false);
      }
      return Status::ParseError("bad BOOL literal '" + std::string(text) + "'");
  }
  return Status::Internal("unhandled column type");
}

}  // namespace sqlcm::catalog
