// Table schemas: ordered columns with static types plus the primary key.
#ifndef SQLCM_CATALOG_SCHEMA_H_
#define SQLCM_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/status.h"
#include "common/value.h"

namespace sqlcm::catalog {

struct Column {
  std::string name;
  ColumnType type;
};

/// Immutable-after-construction description of a table's shape.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<Column> columns,
              std::vector<size_t> primary_key)
      : table_name_(std::move(table_name)),
        columns_(std::move(columns)),
        primary_key_(std::move(primary_key)) {}

  /// Builds a schema, resolving key column names; validates that column
  /// names are unique (case-insensitive) and key columns exist.
  static common::Result<TableSchema> Create(
      std::string table_name, std::vector<Column> columns,
      const std::vector<std::string>& primary_key_names);

  const std::string& table_name() const { return table_name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Ordinals of the primary-key columns, in key order. Empty means the
  /// table uses an implicit rowid key.
  const std::vector<size_t>& primary_key() const { return primary_key_; }
  bool has_primary_key() const { return !primary_key_.empty(); }

  /// Case-insensitive lookup; returns -1 if absent.
  int FindColumn(std::string_view name) const;

  /// Validates arity and per-column types of a full row, coercing numerics
  /// (int literal into FLOAT column). Returns the coerced row.
  common::Result<common::Row> ValidateRow(common::Row row) const;

  /// Extracts the primary-key values of a row (empty if no declared key).
  common::Row KeyOf(const common::Row& row) const;

  /// "name(col TYPE, ..., PRIMARY KEY(...))" rendering for diagnostics.
  std::string ToString() const;

 private:
  std::string table_name_;
  std::vector<Column> columns_;
  std::vector<size_t> primary_key_;
};

}  // namespace sqlcm::catalog

#endif  // SQLCM_CATALOG_SCHEMA_H_
