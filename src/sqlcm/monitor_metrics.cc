#include "sqlcm/monitor_metrics.h"

#include <string>

#include "common/string_util.h"

namespace sqlcm::cm {

const char* MonitorHookName(MonitorHook hook) {
  switch (hook) {
    case MonitorHook::kStatementCompiled:
      return "on_statement_compiled";
    case MonitorHook::kQueryStart:
      return "on_query_start";
    case MonitorHook::kQueryCommit:
      return "on_query_commit";
    case MonitorHook::kQueryCancel:
      return "on_query_cancel";
    case MonitorHook::kQueryRollback:
      return "on_query_rollback";
    case MonitorHook::kTxnBegin:
      return "on_transaction_begin";
    case MonitorHook::kTxnCommit:
      return "on_transaction_commit";
    case MonitorHook::kTxnRollback:
      return "on_transaction_rollback";
    case MonitorHook::kBlocked:
      return "on_blocked";
    case MonitorHook::kBlockReleased:
      return "on_block_released";
  }
  return "unknown";
}

MonitorMetrics::MonitorMetrics() {
  for (size_t i = 0; i < kNumMonitorHooks; ++i) {
    const std::string base =
        std::string("hook.") + MonitorHookName(static_cast<MonitorHook>(i));
    registry.RegisterCounter(base + ".calls", &hooks[i].calls);
    registry.RegisterHistogram(base, &hooks[i].latency);
  }
  registry.RegisterCounter("engine.fast_path_calls", &fast_path_calls);
  registry.RegisterCounter("engine.events_processed", &events_processed);
  registry.RegisterCounter("engine.rules_fired", &rules_fired);
  registry.RegisterCounter("engine.errors_total", &errors_total);
  registry.RegisterCounter("engine.deferred_events", &deferred_events);
  registry.RegisterHistogram("engine.signature_compute", &signature_micros);
  registry.RegisterHistogram("engine.timer_drift", &timer_drift_micros);
  registry.RegisterCounter("robustness.breaker_trips", &breaker_trips);
  registry.RegisterCounter("robustness.breaker_skips", &breaker_skips);
  registry.RegisterCounter("robustness.events_sampled_out",
                           &events_sampled_out);
  registry.RegisterCounter("robustness.actions_suppressed",
                           &actions_suppressed);
  registry.RegisterCounter("robustness.persist_retries", &persist_retries);
  registry.RegisterCounter("robustness.persist_fallbacks", &persist_fallbacks);
  registry.RegisterGauge("robustness.governor_level", &governor_level);
  registry.RegisterCounter("robustness.governor_raises", &governor_raises);
  registry.RegisterCounter("robustness.governor_drops", &governor_drops);
  registry.RegisterCounter("queue.enqueued", &queue_enqueued);
  registry.RegisterCounter("queue.dropped", &queue_dropped);
  registry.RegisterCounter("queue.shed", &queue_shed);
  registry.RegisterCounter("queue.batches", &queue_batches);
  registry.RegisterCounter("queue.batch_events", &queue_batch_events);
  registry.RegisterHistogram("queue.wait", &queue_wait_micros);
  registry.RegisterCounter("profile.events", &profile_events);
  registry.RegisterCounter("profile.dispatch_nanos", &profile_dispatch_nanos);
  registry.RegisterCounter("profile.checkpoint_spans",
                           &profile_checkpoint_spans);
  registry.RegisterCounter("profile.checkpoint_nanos",
                           &profile_checkpoint_nanos);
  registry.RegisterCounter("profile.queue.spans", &profile_queue_spans);
  registry.RegisterCounter("profile.queue.nanos", &profile_queue_nanos);
  registry.RegisterCounter("profile.trace_overflows", &profile_trace_overflows);
  registry.RegisterCounter("profile.metrics_exports", &metrics_exports);
  registry.RegisterCounter("predindex.evals", &predindex_evals);
  registry.RegisterCounter("predindex.memo_hits", &predindex_memo_hits);
  registry.RegisterCounter("predindex.fallbacks", &predindex_fallbacks);
  registry.RegisterCounter("predindex.invalidations", &predindex_invalidations);
  registry.RegisterCounter("predindex.reorders", &predindex_reorders);
  for (size_t i = 0; i < kNumActionKinds; ++i) {
    const std::string base =
        std::string("profile.action.") +
        common::ToLower(ActionKindName(static_cast<ActionKind>(i)));
    registry.RegisterCounter(base + ".spans", &action_kind_spans[i]);
    registry.RegisterCounter(base + ".nanos", &action_kind_nanos[i]);
  }
}

}  // namespace sqlcm::cm
