#include "sqlcm/lat.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/fault.h"
#include "common/string_util.h"

namespace sqlcm::cm {

using common::Result;
using common::Row;
using common::Status;
using common::Value;
using common::ValueKind;

const char* LatAggFuncName(LatAggFunc func) {
  switch (func) {
    case LatAggFunc::kCount: return "COUNT";
    case LatAggFunc::kSum: return "SUM";
    case LatAggFunc::kAvg: return "AVG";
    case LatAggFunc::kStdev: return "STDEV";
    case LatAggFunc::kMin: return "MIN";
    case LatAggFunc::kMax: return "MAX";
    case LatAggFunc::kFirst: return "FIRST";
    case LatAggFunc::kLast: return "LAST";
  }
  return "?";
}

Result<LatAggFunc> ParseLatAggFunc(std::string_view name) {
  using common::EqualsIgnoreCase;
  if (EqualsIgnoreCase(name, "COUNT")) return LatAggFunc::kCount;
  if (EqualsIgnoreCase(name, "SUM")) return LatAggFunc::kSum;
  if (EqualsIgnoreCase(name, "AVG") || EqualsIgnoreCase(name, "AVERAGE")) {
    return LatAggFunc::kAvg;
  }
  if (EqualsIgnoreCase(name, "STDEV")) return LatAggFunc::kStdev;
  if (EqualsIgnoreCase(name, "MIN")) return LatAggFunc::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return LatAggFunc::kMax;
  if (EqualsIgnoreCase(name, "FIRST")) return LatAggFunc::kFirst;
  if (EqualsIgnoreCase(name, "LAST")) return LatAggFunc::kLast;
  return Status::NotFound("unknown LAT aggregation function '" +
                          std::string(name) + "'");
}

namespace {

bool NeedsNumericInput(LatAggFunc func) {
  return func == LatAggFunc::kSum || func == LatAggFunc::kAvg ||
         func == LatAggFunc::kStdev;
}

}  // namespace

Result<std::unique_ptr<Lat>> Lat::Create(LatSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("LAT must have a name");
  }
  if (spec.object_class == MonitoredClass::kEvicted) {
    return Status::InvalidArgument(
        "LATs over evicted rows are not supported; persist them instead");
  }
  if (spec.group_by.empty()) {
    return Status::InvalidArgument("LAT '" + spec.name +
                                   "' needs at least one grouping column");
  }
  if ((spec.max_rows > 0 || spec.max_bytes > 0) && spec.ordering.empty()) {
    return Status::InvalidArgument(
        "LAT '" + spec.name +
        "' declares a size limit but no ordering columns for eviction");
  }
  const bool any_aging = std::any_of(spec.aggregates.begin(),
                                     spec.aggregates.end(),
                                     [](const LatAggColumn& c) { return c.aging; });
  if (any_aging) {
    if (spec.aging_window_micros <= 0 || spec.aging_block_micros <= 0 ||
        spec.aging_block_micros > spec.aging_window_micros) {
      return Status::InvalidArgument(
          "LAT '" + spec.name +
          "' has aging aggregates but invalid aging window/block sizes");
    }
  }

  auto lat = std::unique_ptr<Lat>(new Lat(std::move(spec)));
  const LatSpec& s = lat->spec_;
  const ObjectSchema& schema = ObjectSchema::Get();

  for (const LatGroupColumn& col : s.group_by) {
    const int attr = schema.FindAttribute(s.object_class, col.attribute);
    if (attr < 0) {
      return Status::NotFound("LAT '" + s.name + "': class " +
                              MonitoredClassName(s.object_class) +
                              " has no attribute '" + col.attribute + "'");
    }
    const AttributeDef& def = schema.attributes(s.object_class)[attr];
    lat->group_getters_.push_back(def.getter);
    lat->column_names_.push_back(col.alias.empty() ? col.attribute : col.alias);
    lat->column_kinds_.push_back(def.kind);
  }
  for (const LatAggColumn& col : s.aggregates) {
    AttributeGetter getter = nullptr;
    ValueKind input_kind = ValueKind::kInt;
    if (!col.attribute.empty()) {
      const int attr = schema.FindAttribute(s.object_class, col.attribute);
      if (attr < 0) {
        return Status::NotFound("LAT '" + s.name + "': class " +
                                MonitoredClassName(s.object_class) +
                                " has no attribute '" + col.attribute + "'");
      }
      const AttributeDef& def = schema.attributes(s.object_class)[attr];
      getter = def.getter;
      input_kind = def.kind;
    } else if (col.func != LatAggFunc::kCount) {
      return Status::InvalidArgument(
          "LAT '" + s.name + "': " + LatAggFuncName(col.func) +
          " needs an input attribute");
    }
    if (NeedsNumericInput(col.func) && input_kind != ValueKind::kInt &&
        input_kind != ValueKind::kDouble) {
      return Status::TypeError("LAT '" + s.name + "': " +
                               LatAggFuncName(col.func) +
                               " requires a numeric attribute, got '" +
                               col.attribute + "'");
    }
    if (col.aging &&
        (col.func == LatAggFunc::kFirst || col.func == LatAggFunc::kLast)) {
      return Status::InvalidArgument(
          "LAT '" + s.name + "': FIRST/LAST have no aging variant");
    }
    lat->agg_getters_.push_back(getter);
    std::string name = col.alias;
    if (name.empty()) {
      name = std::string(LatAggFuncName(col.func)) +
             (col.attribute.empty() ? "" : "_" + col.attribute);
    }
    lat->column_names_.push_back(std::move(name));
    ValueKind out_kind;
    switch (col.func) {
      case LatAggFunc::kCount:
        out_kind = ValueKind::kInt;
        break;
      case LatAggFunc::kSum:
      case LatAggFunc::kAvg:
      case LatAggFunc::kStdev:
        out_kind = ValueKind::kDouble;
        break;
      default:
        out_kind = input_kind;
    }
    lat->column_kinds_.push_back(out_kind);
  }

  // Column names must be unique.
  for (size_t i = 0; i < lat->column_names_.size(); ++i) {
    for (size_t j = i + 1; j < lat->column_names_.size(); ++j) {
      if (common::EqualsIgnoreCase(lat->column_names_[i],
                                   lat->column_names_[j])) {
        return Status::InvalidArgument("LAT '" + s.name +
                                       "': duplicate column name '" +
                                       lat->column_names_[i] + "'");
      }
    }
  }

  for (const LatOrdering& ord : s.ordering) {
    const int idx = lat->FindColumn(ord.column);
    if (idx < 0) {
      return Status::NotFound("LAT '" + s.name + "': ordering column '" +
                              ord.column + "' does not exist");
    }
    lat->ordering_columns_.push_back(idx);
  }
  return lat;
}

int Lat::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (common::EqualsIgnoreCase(column_names_[i], name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Row Lat::GroupKeyFor(const void* record) const {
  Row key;
  key.reserve(group_getters_.size());
  for (AttributeGetter getter : group_getters_) key.push_back(getter(record));
  return key;
}

void Lat::FoldValue(AggState* state, const LatAggColumn& col, Value v,
                    int64_t now_micros) {
  if (col.aging) {
    // Locate (or open) the block for `now`; prune expired blocks.
    if (state->blocks == nullptr) {
      state->blocks = std::make_unique<std::deque<AgingBlock>>();
    }
    std::deque<AgingBlock>& blocks = *state->blocks;
    const int64_t block_start =
        now_micros - (now_micros % spec_.aging_block_micros);
    // Overload shedding: skip pruning and block rotation, folding into the
    // current block (buckets coarsen; AggValue still windows on read).
    const bool shed = shed_aging_.load(std::memory_order_relaxed);
    if (!shed) {
      while (!blocks.empty() &&
             blocks.front().block_start + spec_.aging_block_micros <=
                 now_micros - spec_.aging_window_micros) {
        blocks.pop_front();
      }
    }
    if (blocks.empty() ||
        (!shed && blocks.back().block_start != block_start)) {
      AgingBlock block;
      block.block_start = block_start;
      blocks.push_back(std::move(block));
    }
    AgingBlock& block = blocks.back();
    ++block.count;
    if (v.is_numeric()) {
      const double d = v.AsDouble();
      block.sum += d;
      block.sumsq += d * d;
    }
    if (!v.is_null()) {
      if (!block.any || v.Compare(block.min) < 0) block.min = v;
      if (!block.any || v.Compare(block.max) > 0) block.max = v;
      block.any = true;
    }
    return;
  }
  ++state->count;
  if (v.is_numeric()) {
    const double d = v.AsDouble();
    state->sum += d;
    state->sumsq += d * d;
  }
  if (!v.is_null()) {
    if (!state->any) state->first = v;
    if (!state->any || v.Compare(state->min) < 0) state->min = v;
    if (!state->any || v.Compare(state->max) > 0) state->max = v;
    state->any = true;
    state->last = std::move(v);  // last use; avoids a copy for strings
  } else if (!state->any && col.func == LatAggFunc::kFirst) {
    // FIRST retains the first inserted value even when NULL.
    state->first = v;
  }
}

Value Lat::AggValue(const AggState& state, const LatAggColumn& col,
                    int64_t now_micros) const {
  int64_t count = state.count;
  double sum = state.sum;
  double sumsq = state.sumsq;
  Value min = state.min, max = state.max;
  bool any = state.any;
  if (col.aging) {
    count = 0;
    sum = sumsq = 0;
    any = false;
    min = max = Value::Null();
    if (state.blocks == nullptr) return col.func == LatAggFunc::kCount
                                            ? Value::Int(0)
                                            : Value::Null();
    const int64_t horizon = now_micros - spec_.aging_window_micros;
    for (const AgingBlock& block : *state.blocks) {
      if (block.block_start + spec_.aging_block_micros <= horizon) continue;
      count += block.count;
      sum += block.sum;
      sumsq += block.sumsq;
      if (block.any) {
        if (!any || block.min.Compare(min) < 0) min = block.min;
        if (!any || block.max.Compare(max) > 0) max = block.max;
        any = true;
      }
    }
  }
  switch (col.func) {
    case LatAggFunc::kCount:
      return Value::Int(count);
    case LatAggFunc::kSum:
      return count > 0 ? Value::Double(sum) : Value::Null();
    case LatAggFunc::kAvg:
      return count > 0 ? Value::Double(sum / static_cast<double>(count))
                       : Value::Null();
    case LatAggFunc::kStdev: {
      if (count < 2) return Value::Double(0);
      const double n = static_cast<double>(count);
      const double variance = std::max(0.0, (sumsq - sum * sum / n) / (n - 1));
      return Value::Double(std::sqrt(variance));
    }
    case LatAggFunc::kMin:
      return any ? min : Value::Null();
    case LatAggFunc::kMax:
      return any ? max : Value::Null();
    case LatAggFunc::kFirst:
      return state.first;
    case LatAggFunc::kLast:
      return state.last;
  }
  return Value::Null();
}

Row Lat::MaterializeLocked(const LatRow& row, int64_t now_micros) const {
  Row out = row.group_key;
  out.reserve(num_columns());
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    out.push_back(AggValue(row.aggs[a], spec_.aggregates[a], now_micros));
  }
  return out;
}

Row Lat::OrderingKeyLocked(const LatRow& row, int64_t now_micros) const {
  Row key;
  key.reserve(ordering_columns_.size());
  const size_t groups = group_width();
  for (int col : ordering_columns_) {
    const size_t c = static_cast<size_t>(col);
    if (c < groups) {
      key.push_back(row.group_key[c]);
    } else {
      const size_t a = c - groups;
      key.push_back(AggValue(row.aggs[a], spec_.aggregates[a], now_micros));
    }
  }
  return key;
}

bool Lat::LessImportant(const Row& a, const Row& b) const {
  for (size_t i = 0; i < spec_.ordering.size(); ++i) {
    const int c = a[i].Compare(b[i]);
    if (c == 0) continue;
    // DESC ordering: smaller value = less important (evicted first).
    // ASC ordering: larger value = less important.
    return spec_.ordering[i].descending ? c < 0 : c > 0;
  }
  return false;
}

size_t Lat::ApproxRowBytesLocked(const LatRow& row) {
  size_t bytes = sizeof(LatRow);
  for (const Value& v : row.group_key) bytes += v.ApproxBytes();
  for (const AggState& state : row.aggs) {
    bytes += sizeof(AggState);
    bytes += state.min.ApproxBytes() + state.max.ApproxBytes() +
             state.first.ApproxBytes() + state.last.ApproxBytes();
    if (state.blocks != nullptr) {
      bytes += state.blocks->size() * sizeof(AgingBlock);
    }
  }
  return bytes;
}

namespace {

/// Latch guard for the Insert hot path that feeds LatStats: every
/// acquisition is counted, and a failed try_lock (another thread holds the
/// latch, we must spin) counts as contention.
class CountedLatchGuard {
 public:
  CountedLatchGuard(common::SpinLatch& latch, LatStats& stats)
      : latch_(latch) {
    stats.latch_acquisitions.Inc();
    if (!latch_.try_lock()) {
      stats.latch_contention.Inc();
      latch_.lock();
    } else if (common::FaultFires(kFaultLatLatch)) {
      // Injected stall: account an uncontended acquisition as contention so
      // tests can drive the contention path without real thread races.
      stats.latch_contention.Inc();
    }
  }
  ~CountedLatchGuard() { latch_.unlock(); }
  CountedLatchGuard(const CountedLatchGuard&) = delete;
  CountedLatchGuard& operator=(const CountedLatchGuard&) = delete;

 private:
  common::SpinLatch& latch_;
};

}  // namespace

void Lat::Insert(const void* record, int64_t now_micros) {
  stats_.inserts.Inc();
  Row key = GroupKeyFor(record);

  std::shared_ptr<LatRow> row;
  {
    CountedLatchGuard hash_guard(hash_latch_, stats_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      row = it->second;
    } else {
      row = std::make_shared<LatRow>();
      row->group_key = key;
      row->aggs.resize(spec_.aggregates.size());
      map_.emplace(std::move(key), row);
    }
  }

  const bool bounded = spec_.max_rows > 0 || spec_.max_bytes > 0;
  Row ordering_key;
  size_t row_bytes = 0;
  {
    CountedLatchGuard row_guard(row->latch, stats_);
    for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
      Value v = agg_getters_[a] != nullptr ? agg_getters_[a](record)
                                           : Value::Int(1);
      FoldValue(&row->aggs[a], spec_.aggregates[a], std::move(v), now_micros);
    }
    if (bounded) {
      ordering_key = OrderingKeyLocked(*row, now_micros);
      if (spec_.max_bytes > 0) row_bytes = ApproxRowBytesLocked(*row);
    }
  }

  if (!bounded) return;

  // Maintain the eviction heap; collect overflow victims.
  std::vector<LatRow*> victims;
  {
    CountedLatchGuard heap_guard(heap_latch_, stats_);
    row->ordering_key = std::move(ordering_key);
    if (spec_.max_bytes > 0 && !row->evicted) {
      total_bytes_ += row_bytes - row->approx_bytes;
      row->approx_bytes = row_bytes;
    }
    if (row->evicted) {
      // Racing update to a row already chosen for eviction: drop it.
    } else if (row->heap_index == SIZE_MAX) {
      HeapInsertLocked(row.get());
    } else {
      HeapRepositionLocked(row.get());
    }
    while ((spec_.max_rows > 0 && heap_.size() > spec_.max_rows) ||
           (spec_.max_bytes > 0 && total_bytes_ > spec_.max_bytes &&
            heap_.size() > 1)) {
      LatRow* victim = heap_[0];
      HeapEraseLocked(victim);
      victim->evicted = true;
      total_bytes_ -= victim->approx_bytes;
      victims.push_back(victim);
    }
  }
  if (victims.empty()) return;
  stats_.evictions.Inc(victims.size());

  // Materialize victims (row latch only) when anyone listens, erase from
  // the directory (hash latch only), then notify outside all latches.
  std::vector<Row> evicted_rows;
  if (evict_callback_) {
    for (LatRow* victim : victims) {
      std::lock_guard<common::SpinLatch> row_guard(victim->latch);
      evicted_rows.push_back(MaterializeLocked(*victim, now_micros));
    }
  }
  {
    std::lock_guard<common::SpinLatch> hash_guard(hash_latch_);
    for (LatRow* victim : victims) map_.erase(victim->group_key);
  }
  if (evict_callback_) {
    for (Row& evicted : evicted_rows) evict_callback_(std::move(evicted));
  }
}

void Lat::Reset() {
  std::lock_guard<common::SpinLatch> hash_guard(hash_latch_);
  std::lock_guard<common::SpinLatch> heap_guard(heap_latch_);
  // The only place two LAT latches nest; safe because no other path holds
  // one latch while acquiring another.
  map_.clear();
  heap_.clear();
  total_bytes_ = 0;
}

bool Lat::LookupForObject(const void* record, int64_t now_micros,
                          Row* out) const {
  return LookupByKey(GroupKeyFor(record), now_micros, out);
}

bool Lat::LookupByKey(const Row& group_key, int64_t now_micros,
                      Row* out) const {
  std::shared_ptr<LatRow> row;
  {
    std::lock_guard<common::SpinLatch> hash_guard(hash_latch_);
    auto it = map_.find(group_key);
    if (it == map_.end()) return false;
    row = it->second;
  }
  std::lock_guard<common::SpinLatch> row_guard(row->latch);
  *out = MaterializeLocked(*row, now_micros);
  return true;
}

std::vector<Row> Lat::Snapshot(int64_t now_micros) const {
  std::vector<std::shared_ptr<LatRow>> rows;
  {
    std::lock_guard<common::SpinLatch> hash_guard(hash_latch_);
    rows.reserve(map_.size());
    for (const auto& [_, row] : map_) rows.push_back(row);
  }
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::lock_guard<common::SpinLatch> row_guard(row->latch);
    out.push_back(MaterializeLocked(*row, now_micros));
  }
  if (!ordering_columns_.empty()) {
    const auto& ordering_cols = ordering_columns_;
    std::stable_sort(out.begin(), out.end(),
                     [this, &ordering_cols](const Row& a, const Row& b) {
                       Row ka, kb;
                       for (int c : ordering_cols) {
                         ka.push_back(a[static_cast<size_t>(c)]);
                         kb.push_back(b[static_cast<size_t>(c)]);
                       }
                       // Most important first.
                       return LessImportant(kb, ka);
                     });
  }
  return out;
}

size_t Lat::size() const {
  std::lock_guard<common::SpinLatch> hash_guard(hash_latch_);
  return map_.size();
}

size_t Lat::approx_bytes() const {
  std::lock_guard<common::SpinLatch> heap_guard(heap_latch_);
  return total_bytes_;
}

// ---------------------------------------------------------------------------
// Heap (min-heap on importance; root is the eviction candidate)
// ---------------------------------------------------------------------------

void Lat::HeapInsertLocked(LatRow* row) {
  row->heap_index = heap_.size();
  heap_.push_back(row);
  SiftUpLocked(row->heap_index);
}

void Lat::HeapRepositionLocked(LatRow* row) {
  SiftUpLocked(row->heap_index);
  SiftDownLocked(row->heap_index);
}

void Lat::HeapEraseLocked(LatRow* row) {
  const size_t i = row->heap_index;
  HeapSwapLocked(i, heap_.size() - 1);
  heap_.pop_back();
  row->heap_index = SIZE_MAX;
  if (i < heap_.size()) {
    SiftUpLocked(i);
    SiftDownLocked(i);
  }
}

void Lat::HeapSwapLocked(size_t i, size_t j) {
  if (i == j) return;
  std::swap(heap_[i], heap_[j]);
  heap_[i]->heap_index = i;
  heap_[j]->heap_index = j;
}

void Lat::SiftUpLocked(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!LessImportant(heap_[i]->ordering_key, heap_[parent]->ordering_key)) {
      break;
    }
    HeapSwapLocked(i, parent);
    i = parent;
  }
}

void Lat::SiftDownLocked(size_t i) {
  for (;;) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t smallest = i;
    if (left < heap_.size() &&
        LessImportant(heap_[left]->ordering_key,
                      heap_[smallest]->ordering_key)) {
      smallest = left;
    }
    if (right < heap_.size() &&
        LessImportant(heap_[right]->ordering_key,
                      heap_[smallest]->ordering_key)) {
      smallest = right;
    }
    if (smallest == i) break;
    HeapSwapLocked(i, smallest);
    i = smallest;
  }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

Status Lat::PersistTo(storage::Table* table, int64_t timestamp_micros,
                      int64_t now_micros) const {
  const size_t width = table->schema().num_columns();
  const bool with_timestamp = width == num_columns() + 1;
  if (!with_timestamp && width != num_columns()) {
    return Status::InvalidArgument(
        "table '" + table->name() + "' has " + std::to_string(width) +
        " columns; LAT '" + name() + "' produces " +
        std::to_string(num_columns()) + " (+1 optional timestamp)");
  }
  for (Row& row : Snapshot(now_micros)) {
    if (with_timestamp) row.push_back(Value::Int(timestamp_micros));
    SQLCM_RETURN_IF_ERROR(table->Insert(std::move(row)).status());
  }
  return Status::OK();
}

Status Lat::SeedFrom(const storage::Table& table, int64_t now_micros) {
  const size_t width = table.schema().num_columns();
  const bool with_timestamp = width == num_columns() + 1;
  if (!with_timestamp && width != num_columns()) {
    return Status::InvalidArgument(
        "table '" + table.name() + "' has " + std::to_string(width) +
        " columns; LAT '" + name() + "' expects " +
        std::to_string(num_columns()) + " (+1 optional timestamp)");
  }
  // Locate a COUNT column if one exists (improves AVG reconstruction).
  int count_col = -1;
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    if (spec_.aggregates[a].func == LatAggFunc::kCount) {
      count_col = static_cast<int>(group_width() + a);
      break;
    }
  }

  std::optional<Row> after;
  std::vector<Row> keys, rows;
  for (;;) {
    keys.clear();
    rows.clear();
    if (table.ScanBatch(after, 256, &keys, &rows) == 0) break;
    after = keys.back();
    for (Row& persisted : rows) {
      Row group_key(persisted.begin(),
                    persisted.begin() + static_cast<long>(group_width()));
      auto row = std::make_shared<LatRow>();
      row->group_key = group_key;
      row->aggs.resize(spec_.aggregates.size());
      int64_t seed_count = 1;
      if (count_col >= 0 &&
          persisted[static_cast<size_t>(count_col)].is_int()) {
        seed_count =
            std::max<int64_t>(1, persisted[static_cast<size_t>(count_col)]
                                     .int_value());
      }
      for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
        const Value& v = persisted[group_width() + a];
        AggState& state = row->aggs[a];
        switch (spec_.aggregates[a].func) {
          case LatAggFunc::kCount:
            state.count = v.is_int() ? v.int_value() : 0;
            break;
          case LatAggFunc::kSum:
            state.count = seed_count;
            state.sum = v.is_numeric() ? v.AsDouble() : 0;
            break;
          case LatAggFunc::kAvg:
            state.count = seed_count;
            state.sum =
                v.is_numeric() ? v.AsDouble() * static_cast<double>(seed_count)
                               : 0;
            break;
          case LatAggFunc::kStdev:
            state.count = seed_count;  // variance history lost; STDEV ~ 0
            state.sum = 0;
            state.sumsq = 0;
            break;
          case LatAggFunc::kMin:
          case LatAggFunc::kMax:
          case LatAggFunc::kFirst:
          case LatAggFunc::kLast:
            state.min = state.max = state.first = state.last = v;
            state.any = !v.is_null();
            break;
        }
      }
      {
        std::lock_guard<common::SpinLatch> hash_guard(hash_latch_);
        if (map_.count(group_key) != 0) continue;  // live data wins
        map_.emplace(std::move(group_key), row);
      }
      if (spec_.max_rows > 0 || spec_.max_bytes > 0) {
        Row ordering_key;
        {
          std::lock_guard<common::SpinLatch> row_guard(row->latch);
          ordering_key = OrderingKeyLocked(*row, now_micros);
        }
        std::vector<LatRow*> victims;
        {
          std::lock_guard<common::SpinLatch> heap_guard(heap_latch_);
          row->ordering_key = std::move(ordering_key);
          if (spec_.max_bytes > 0) {
            row->approx_bytes = ApproxRowBytesLocked(*row);
            total_bytes_ += row->approx_bytes;
          }
          HeapInsertLocked(row.get());
          while ((spec_.max_rows > 0 && heap_.size() > spec_.max_rows) ||
                 (spec_.max_bytes > 0 && total_bytes_ > spec_.max_bytes &&
                  heap_.size() > 1)) {
            LatRow* victim = heap_[0];
            HeapEraseLocked(victim);
            victim->evicted = true;
            total_bytes_ -= victim->approx_bytes;
            victims.push_back(victim);
          }
        }
        if (!victims.empty()) {
          std::lock_guard<common::SpinLatch> hash_guard(hash_latch_);
          for (LatRow* victim : victims) map_.erase(victim->group_key);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace sqlcm::cm
