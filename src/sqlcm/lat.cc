#include "sqlcm/lat.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/fault.h"
#include "common/string_util.h"

namespace sqlcm::cm {

using common::Result;
using common::Row;
using common::Status;
using common::Value;
using common::ValueKind;

const char* LatAggFuncName(LatAggFunc func) {
  switch (func) {
    case LatAggFunc::kCount: return "COUNT";
    case LatAggFunc::kSum: return "SUM";
    case LatAggFunc::kAvg: return "AVG";
    case LatAggFunc::kStdev: return "STDEV";
    case LatAggFunc::kMin: return "MIN";
    case LatAggFunc::kMax: return "MAX";
    case LatAggFunc::kFirst: return "FIRST";
    case LatAggFunc::kLast: return "LAST";
    case LatAggFunc::kQuantile: return "QUANTILE";
    case LatAggFunc::kDistinct: return "DISTINCT";
  }
  return "?";
}

Result<LatAggFunc> ParseLatAggFunc(std::string_view name) {
  using common::EqualsIgnoreCase;
  if (EqualsIgnoreCase(name, "COUNT")) return LatAggFunc::kCount;
  if (EqualsIgnoreCase(name, "SUM")) return LatAggFunc::kSum;
  if (EqualsIgnoreCase(name, "AVG") || EqualsIgnoreCase(name, "AVERAGE")) {
    return LatAggFunc::kAvg;
  }
  if (EqualsIgnoreCase(name, "STDEV")) return LatAggFunc::kStdev;
  if (EqualsIgnoreCase(name, "MIN")) return LatAggFunc::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return LatAggFunc::kMax;
  if (EqualsIgnoreCase(name, "FIRST")) return LatAggFunc::kFirst;
  if (EqualsIgnoreCase(name, "LAST")) return LatAggFunc::kLast;
  if (EqualsIgnoreCase(name, "QUANTILE") ||
      EqualsIgnoreCase(name, "PERCENTILE")) {
    return LatAggFunc::kQuantile;
  }
  if (EqualsIgnoreCase(name, "DISTINCT") ||
      EqualsIgnoreCase(name, "COUNT_DISTINCT")) {
    return LatAggFunc::kDistinct;
  }
  return Status::NotFound("unknown LAT aggregation function '" +
                          std::string(name) + "'");
}

namespace {

bool NeedsNumericInput(LatAggFunc func) {
  return func == LatAggFunc::kSum || func == LatAggFunc::kAvg ||
         func == LatAggFunc::kStdev || func == LatAggFunc::kQuantile;
}

/// splitmix64 finalizer: decorrelates HashRow's low bits before they are
/// reused as both the shard selector and the directory key.
uint64_t MixHash(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Resolves LatSpec::shard_count: explicit spec value, else the
/// SQLCM_LAT_SHARDS environment override, else 4 stripes per hardware
/// thread (≥16: containers often under-report concurrency, and idle
/// stripes cost ~100 bytes each).
size_t ResolveShardCount(size_t requested) {
  size_t n = requested;
  if (n == 0) {
    if (const char* env = std::getenv("SQLCM_LAT_SHARDS")) {
      n = static_cast<size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (n == 0) {
    const size_t hw = std::thread::hardware_concurrency();
    n = std::max<size_t>(16, 4 * hw);
  }
  return NextPowerOfTwo(std::clamp<size_t>(n, 1, 1024));
}

/// Thread-local scratch row for group keys: the Insert/Lookup hot path
/// refills it instead of allocating a fresh Row per call. Each use is
/// complete before any callback that could re-enter a LAT runs.
Row& ScratchKey() {
  thread_local Row key;
  return key;
}

}  // namespace

Result<std::unique_ptr<Lat>> Lat::Create(LatSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("LAT must have a name");
  }
  if (spec.object_class == MonitoredClass::kEvicted) {
    return Status::InvalidArgument(
        "LATs over evicted rows are not supported; persist them instead");
  }
  if (spec.group_by.empty()) {
    return Status::InvalidArgument("LAT '" + spec.name +
                                   "' needs at least one grouping column");
  }
  if ((spec.max_rows > 0 || spec.max_bytes > 0) && spec.ordering.empty()) {
    return Status::InvalidArgument(
        "LAT '" + spec.name +
        "' declares a size limit but no ordering columns for eviction");
  }
  const bool any_aging = std::any_of(spec.aggregates.begin(),
                                     spec.aggregates.end(),
                                     [](const LatAggColumn& c) { return c.aging; });
  if (any_aging) {
    if (spec.aging_window_micros <= 0 || spec.aging_block_micros <= 0 ||
        spec.aging_block_micros > spec.aging_window_micros) {
      return Status::InvalidArgument(
          "LAT '" + spec.name +
          "' has aging aggregates but invalid aging window/block sizes");
    }
  }

  auto lat = std::unique_ptr<Lat>(new Lat(std::move(spec)));
  const LatSpec& s = lat->spec_;
  const ObjectSchema& schema = ObjectSchema::Get();
  lat->lower_name_ = common::ToLower(s.name);
  lat->shard_count_ = ResolveShardCount(s.shard_count);
  lat->shards_ = std::make_unique<Shard[]>(lat->shard_count_);
  if (any_aging) {
    // §4.3 bound ⌈2t/Δ⌉, with enough slack (t/Δ + 3) that when the cap
    // triggers the two oldest blocks are provably outside the window — so
    // FoldValue's merge never changes what AggValue reads.
    const int64_t t = s.aging_window_micros;
    const int64_t d = s.aging_block_micros;
    lat->max_aging_blocks_ =
        static_cast<size_t>(std::max((2 * t + d - 1) / d, t / d + 3));
  }

  for (const LatGroupColumn& col : s.group_by) {
    const int attr = schema.FindAttribute(s.object_class, col.attribute);
    if (attr < 0) {
      return Status::NotFound("LAT '" + s.name + "': class " +
                              MonitoredClassName(s.object_class) +
                              " has no attribute '" + col.attribute + "'");
    }
    const AttributeDef& def = schema.attributes(s.object_class)[attr];
    lat->group_getters_.push_back(def.getter);
    lat->column_names_.push_back(col.alias.empty() ? col.attribute : col.alias);
    lat->column_kinds_.push_back(def.kind);
  }
  for (const LatAggColumn& col : s.aggregates) {
    AttributeGetter getter = nullptr;
    ValueKind input_kind = ValueKind::kInt;
    if (!col.attribute.empty()) {
      const int attr = schema.FindAttribute(s.object_class, col.attribute);
      if (attr < 0) {
        return Status::NotFound("LAT '" + s.name + "': class " +
                                MonitoredClassName(s.object_class) +
                                " has no attribute '" + col.attribute + "'");
      }
      const AttributeDef& def = schema.attributes(s.object_class)[attr];
      getter = def.getter;
      input_kind = def.kind;
    } else if (col.func != LatAggFunc::kCount) {
      return Status::InvalidArgument(
          "LAT '" + s.name + "': " + LatAggFuncName(col.func) +
          " needs an input attribute");
    }
    if (NeedsNumericInput(col.func) && input_kind != ValueKind::kInt &&
        input_kind != ValueKind::kDouble) {
      return Status::TypeError("LAT '" + s.name + "': " +
                               LatAggFuncName(col.func) +
                               " requires a numeric attribute, got '" +
                               col.attribute + "'");
    }
    if (col.aging &&
        (col.func == LatAggFunc::kFirst || col.func == LatAggFunc::kLast)) {
      return Status::InvalidArgument(
          "LAT '" + s.name + "': FIRST/LAST have no aging variant");
    }
    if (col.aging && LatAggFuncIsSketch(col.func)) {
      return Status::InvalidArgument(
          "LAT '" + s.name + "': " + LatAggFuncName(col.func) +
          " has no aging variant (per-block sketches are not supported)");
    }
    if (col.func == LatAggFunc::kQuantile &&
        !(col.quantile >= 0.0 && col.quantile <= 1.0)) {
      return Status::InvalidArgument(
          "LAT '" + s.name + "': QUANTILE rank fraction must be in [0, 1]");
    }
    lat->agg_getters_.push_back(getter);
    std::string name = col.alias;
    if (name.empty()) {
      name = std::string(LatAggFuncName(col.func)) +
             (col.attribute.empty() ? "" : "_" + col.attribute);
    }
    lat->column_names_.push_back(std::move(name));
    ValueKind out_kind;
    switch (col.func) {
      case LatAggFunc::kCount:
        out_kind = ValueKind::kInt;
        break;
      case LatAggFunc::kSum:
      case LatAggFunc::kAvg:
      case LatAggFunc::kStdev:
      case LatAggFunc::kQuantile:
        out_kind = ValueKind::kDouble;
        break;
      case LatAggFunc::kDistinct:
        out_kind = ValueKind::kInt;
        break;
      default:
        out_kind = input_kind;
    }
    lat->column_kinds_.push_back(out_kind);
  }

  // State-record geometry: per-aggregate base offsets (sketch-bearing
  // aggregates carry a 10th `#sketch` codec cell).
  lat->distinct_precision_ = std::clamp(s.distinct_precision, 4, 16);
  size_t state_offset = lat->group_width();
  for (const LatAggColumn& col : s.aggregates) {
    lat->state_agg_base_.push_back(state_offset);
    state_offset += LatAggFuncIsSketch(col.func) ? 10 : 9;
    if (LatAggFuncIsSketch(col.func)) lat->has_sketch_ = true;
  }
  lat->state_width_ = state_offset;

  // Column names must be unique.
  for (size_t i = 0; i < lat->column_names_.size(); ++i) {
    for (size_t j = i + 1; j < lat->column_names_.size(); ++j) {
      if (common::EqualsIgnoreCase(lat->column_names_[i],
                                   lat->column_names_[j])) {
        return Status::InvalidArgument("LAT '" + s.name +
                                       "': duplicate column name '" +
                                       lat->column_names_[i] + "'");
      }
    }
  }

  for (const LatOrdering& ord : s.ordering) {
    const int idx = lat->FindColumn(ord.column);
    if (idx < 0) {
      return Status::NotFound("LAT '" + s.name + "': ordering column '" +
                              ord.column + "' does not exist");
    }
    lat->ordering_columns_.push_back(idx);
  }
  return lat;
}

int Lat::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (common::EqualsIgnoreCase(column_names_[i], name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Row Lat::GroupKeyFor(const void* record) const {
  Row key;
  key.reserve(group_getters_.size());
  for (AttributeGetter getter : group_getters_) key.push_back(getter(record));
  return key;
}

uint64_t Lat::HashGroupKey(const Row& key) const {
  return MixHash(static_cast<uint64_t>(common::HashRow(key)));
}

std::shared_ptr<Lat::LatRow> Lat::FindInShardLocked(const Shard& shard,
                                                    uint64_t hash,
                                                    const Row& key) const {
  auto it = shard.map.find(hash);
  if (it == shard.map.end()) return nullptr;
  for (const std::shared_ptr<LatRow>* p = &it->second; *p != nullptr;
       p = &(*p)->next) {
    if (common::RowEq()((*p)->group_key, key)) return *p;
  }
  return nullptr;
}

std::shared_ptr<Lat::LatRow> Lat::FindOrCreateLocked(Shard* shard,
                                                     uint64_t hash,
                                                     const Row& key,
                                                     bool* created) {
  auto [it, _] = shard->map.try_emplace(hash);
  for (const std::shared_ptr<LatRow>* p = &it->second; *p != nullptr;
       p = &(*p)->next) {
    if (common::RowEq()((*p)->group_key, key)) {
      *created = false;
      return *p;
    }
  }
  auto row = std::make_shared<LatRow>();
  row->hash = hash;
  row->group_key = key;
  row->aggs.resize(spec_.aggregates.size());
  row->next = std::move(it->second);
  it->second = row;
  *created = true;
  return row;
}

std::shared_ptr<Lat::LatRow> Lat::UnlinkLocked(Shard* shard, LatRow* row) {
  auto it = shard->map.find(row->hash);
  if (it == shard->map.end()) return nullptr;
  std::shared_ptr<LatRow> unlinked;
  for (std::shared_ptr<LatRow>* p = &it->second; *p != nullptr;
       p = &(*p)->next) {
    if (p->get() == row) {
      unlinked = *p;
      std::shared_ptr<LatRow> next = std::move((*p)->next);
      *p = std::move(next);
      break;
    }
  }
  if (it->second == nullptr) shard->map.erase(it);
  return unlinked;
}

void Lat::FoldValue(AggState* state, const LatAggColumn& col, Value v,
                    int64_t now_micros) {
  if (LatAggFuncIsSketch(col.func)) {
    // Sketch aggregates keep only count + sketch (count drives the
    // federation delta's fresh/changed detection; the scalar moments stay
    // zero so the classic codec cells remain cheap).
    ++state->count;
    if (col.func == LatAggFunc::kQuantile) {
      if (v.is_numeric()) {
        if (state->qsketch == nullptr) {
          state->qsketch = std::make_unique<QuantileSketch>();
        }
        state->qsketch->Add(v.AsDouble());
        const int ups =
            state->qsketch->CollapseToBudget(spec_.quantile_sketch_bytes);
        if (ups > 0) stats_.sketch_collapses.Inc(static_cast<uint64_t>(ups));
      }
    } else if (!v.is_null()) {
      if (state->hll == nullptr) {
        state->hll = std::make_unique<HllSketch>(distinct_precision_);
      }
      state->hll->AddHash(DistinctValueHash(v));
    }
    return;
  }
  if (col.aging) {
    // Locate (or open) the block for `now`; prune expired blocks.
    if (state->blocks == nullptr) {
      state->blocks = std::make_unique<std::deque<AgingBlock>>();
    }
    std::deque<AgingBlock>& blocks = *state->blocks;
    const int64_t block_start =
        now_micros - (now_micros % spec_.aging_block_micros);
    // Overload shedding defers pruning only. Rotation must always run: a
    // fresh value folded into a stale-labelled block would be silently
    // dropped by AggValue's horizon filter, so the current block's label
    // has to match `now` even under shed.
    if (!shed_aging_.load(std::memory_order_relaxed)) {
      while (!blocks.empty() &&
             blocks.front().block_start + spec_.aging_block_micros <=
                 now_micros - spec_.aging_window_micros) {
        blocks.pop_front();
      }
    }
    if (blocks.empty() || blocks.back().block_start != block_start) {
      AgingBlock block;
      block.block_start = block_start;
      blocks.push_back(std::move(block));
      // With pruning deferred the deque would grow one block per Δ without
      // bound; cap it by folding the oldest block into its neighbour. At
      // max_aging_blocks_ both front blocks are already outside the window
      // (the cap includes t/Δ + 3 slack), so the merge only coarsens
      // expired history and is invisible to reads.
      while (blocks.size() > max_aging_blocks_) {
        const AgingBlock& oldest = blocks[0];
        AgingBlock& into = blocks[1];
        into.count += oldest.count;
        into.sum += oldest.sum;
        into.sumsq += oldest.sumsq;
        if (oldest.any) {
          if (!into.any || oldest.min.Compare(into.min) < 0) {
            into.min = oldest.min;
          }
          if (!into.any || oldest.max.Compare(into.max) > 0) {
            into.max = oldest.max;
          }
          into.any = true;
        }
        blocks.pop_front();
        stats_.aging_merges.Inc();
      }
    }
    AgingBlock& block = blocks.back();
    ++block.count;
    if (v.is_numeric()) {
      const double d = v.AsDouble();
      block.sum += d;
      block.sumsq += d * d;
    }
    if (!v.is_null()) {
      if (!block.any || v.Compare(block.min) < 0) block.min = v;
      if (!block.any || v.Compare(block.max) > 0) block.max = v;
      block.any = true;
    }
    return;
  }
  ++state->count;
  if (v.is_numeric()) {
    const double d = v.AsDouble();
    state->sum += d;
    state->sumsq += d * d;
  }
  if (!v.is_null()) {
    if (!state->any) state->first = v;
    if (!state->any || v.Compare(state->min) < 0) state->min = v;
    if (!state->any || v.Compare(state->max) > 0) state->max = v;
    state->any = true;
    state->last = std::move(v);  // last use; avoids a copy for strings
  } else if (!state->any && col.func == LatAggFunc::kFirst) {
    // FIRST retains the first inserted value even when NULL.
    state->first = v;
  }
}

Value Lat::AggValue(const AggState& state, const LatAggColumn& col,
                    int64_t now_micros) const {
  int64_t count = state.count;
  double sum = state.sum;
  double sumsq = state.sumsq;
  Value min = state.min, max = state.max;
  bool any = state.any;
  if (col.aging) {
    // An unallocated block deque and a deque whose blocks have all aged
    // out are the same empty window: both fall through to the shared
    // switch with count = 0 / any = false, so every aggregate's
    // empty-window answer (COUNT 0, STDEV 0, SUM/AVG/MIN/MAX NULL) comes
    // from exactly one code path. (A duplicated early return here once
    // disagreed with the aged-out path for aging STDEV — PR 7 — and the
    // duplication itself was the bug class.)
    count = 0;
    sum = sumsq = 0;
    any = false;
    min = max = Value::Null();
    if (state.blocks != nullptr) {
      const int64_t horizon = now_micros - spec_.aging_window_micros;
      for (const AgingBlock& block : *state.blocks) {
        if (block.block_start + spec_.aging_block_micros <= horizon) continue;
        count += block.count;
        sum += block.sum;
        sumsq += block.sumsq;
        if (block.any) {
          if (!any || block.min.Compare(min) < 0) min = block.min;
          if (!any || block.max.Compare(max) > 0) max = block.max;
          any = true;
        }
      }
    }
  }
  switch (col.func) {
    case LatAggFunc::kCount:
      return Value::Int(count);
    case LatAggFunc::kSum:
      return count > 0 ? Value::Double(sum) : Value::Null();
    case LatAggFunc::kAvg:
      return count > 0 ? Value::Double(sum / static_cast<double>(count))
                       : Value::Null();
    case LatAggFunc::kStdev: {
      if (count < 2) return Value::Double(0);
      const double n = static_cast<double>(count);
      const double variance = std::max(0.0, (sumsq - sum * sum / n) / (n - 1));
      return Value::Double(std::sqrt(variance));
    }
    case LatAggFunc::kMin:
      return any ? min : Value::Null();
    case LatAggFunc::kMax:
      return any ? max : Value::Null();
    case LatAggFunc::kFirst:
      return state.first;
    case LatAggFunc::kLast:
      return state.last;
    case LatAggFunc::kQuantile:
      // NULL until a numeric value has been folded (NaN/NULL inputs do not
      // enter the sketch), mirroring SUM/AVG's empty answer.
      return state.qsketch != nullptr && !state.qsketch->empty()
                 ? Value::Double(state.qsketch->Quantile(col.quantile))
                 : Value::Null();
    case LatAggFunc::kDistinct:
      // 0 (not NULL) for an empty set, matching COUNT's convention.
      return Value::Int(state.hll != nullptr ? state.hll->Estimate() : 0);
  }
  return Value::Null();
}

Row Lat::MaterializeLocked(const LatRow& row, int64_t now_micros) const {
  Row out = row.group_key;
  out.reserve(num_columns());
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    out.push_back(AggValue(row.aggs[a], spec_.aggregates[a], now_micros));
  }
  return out;
}

Row Lat::OrderingKeyLocked(const LatRow& row, int64_t now_micros) const {
  Row key;
  key.reserve(ordering_columns_.size());
  const size_t groups = group_width();
  for (int col : ordering_columns_) {
    const size_t c = static_cast<size_t>(col);
    if (c < groups) {
      key.push_back(row.group_key[c]);
    } else {
      const size_t a = c - groups;
      key.push_back(AggValue(row.aggs[a], spec_.aggregates[a], now_micros));
    }
  }
  return key;
}

bool Lat::LessImportant(const Row& a, const Row& b) const {
  for (size_t i = 0; i < spec_.ordering.size(); ++i) {
    const int c = a[i].Compare(b[i]);
    if (c == 0) continue;
    // DESC ordering: smaller value = less important (evicted first).
    // ASC ordering: larger value = less important.
    return spec_.ordering[i].descending ? c < 0 : c > 0;
  }
  return false;
}

size_t Lat::ApproxRowBytesLocked(const LatRow& row) {
  size_t bytes = sizeof(LatRow);
  for (const Value& v : row.group_key) bytes += v.ApproxBytes();
  for (const AggState& state : row.aggs) {
    bytes += sizeof(AggState);
    bytes += state.min.ApproxBytes() + state.max.ApproxBytes() +
             state.first.ApproxBytes() + state.last.ApproxBytes();
    if (state.blocks != nullptr) {
      bytes += state.blocks->size() * sizeof(AgingBlock);
    }
    if (state.qsketch != nullptr) bytes += state.qsketch->ApproxBytes();
    if (state.hll != nullptr) bytes += state.hll->ApproxBytes();
  }
  return bytes;
}

void Lat::SketchFootprint(size_t* sketch_bytes, size_t* sketch_cells) const {
  size_t bytes = 0;
  size_t cells = 0;
  if (has_sketch_) {
    std::vector<std::shared_ptr<LatRow>> rows;
    rows.reserve(size());
    for (size_t s = 0; s < shard_count_; ++s) {
      const Shard& shard = shards_[s];
      std::lock_guard<common::SpinLatch> map_guard(shard.map_latch);
      for (const auto& [_, head] : shard.map) {
        for (std::shared_ptr<LatRow> row = head; row != nullptr;
             row = row->next) {
          rows.push_back(row);
        }
      }
    }
    for (const auto& row : rows) {
      std::lock_guard<common::SpinLatch> row_guard(row->latch);
      for (const AggState& state : row->aggs) {
        if (state.qsketch != nullptr) {
          bytes += state.qsketch->ApproxBytes();
          cells += state.qsketch->bucket_count();
        }
        if (state.hll != nullptr) {
          bytes += state.hll->ApproxBytes();
          cells += state.hll->register_count();
        }
      }
    }
  }
  if (sketch_bytes != nullptr) *sketch_bytes = bytes;
  if (sketch_cells != nullptr) *sketch_cells = cells;
}

namespace {

/// Latch guard for the Insert hot path that feeds LatStats: every
/// acquisition is counted, and a failed try_lock (another thread holds the
/// latch, we must spin) counts as contention.
class CountedLatchGuard {
 public:
  CountedLatchGuard(common::SpinLatch& latch, LatStats& stats)
      : latch_(latch) {
    stats.latch_acquisitions.Inc();
    if (!latch_.try_lock()) {
      stats.latch_contention.Inc();
      latch_.lock();
    } else if (common::FaultFires(kFaultLatLatch)) {
      // Injected stall: account an uncontended acquisition as contention so
      // tests can drive the contention path without real thread races.
      stats.latch_contention.Inc();
    }
  }
  ~CountedLatchGuard() { latch_.unlock(); }
  CountedLatchGuard(const CountedLatchGuard&) = delete;
  CountedLatchGuard& operator=(const CountedLatchGuard&) = delete;

 private:
  common::SpinLatch& latch_;
};

}  // namespace

void Lat::Insert(const void* record, int64_t now_micros) {
  stats_.inserts.Inc();
  // Probe with the thread-local scratch key: no Row allocation on the hit
  // path, and the directory compares against it lazily (hash first, values
  // only on a chain hit).
  Row& key = ScratchKey();
  key.clear();
  for (AttributeGetter getter : group_getters_) key.push_back(getter(record));
  const uint64_t hash = HashGroupKey(key);
  Shard& shard = ShardFor(hash);

  std::shared_ptr<LatRow> row;
  bool created = false;
  {
    CountedLatchGuard map_guard(shard.map_latch, stats_);
    row = FindOrCreateLocked(&shard, hash, key, &created);
  }
  if (created) total_rows_.fetch_add(1, std::memory_order_acq_rel);

  const bool bounded = spec_.max_rows > 0 || spec_.max_bytes > 0;
  Row ordering_key;
  size_t row_bytes = 0;
  bool skip_heap = false;
  {
    CountedLatchGuard row_guard(row->latch, stats_);
    for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
      Value v = agg_getters_[a] != nullptr ? agg_getters_[a](record)
                                           : Value::Int(1);
      FoldValue(&row->aggs[a], spec_.aggregates[a], std::move(v), now_micros);
    }
    if (bounded) {
      ordering_key = OrderingKeyLocked(*row, now_micros);
      if (spec_.max_bytes > 0) {
        row_bytes = ApproxRowBytesLocked(*row);
      } else if (row->in_heap.load(std::memory_order_acquire) &&
                 common::RowEq()(ordering_key, row->ordering_cache)) {
        // Ordering unchanged (common for MIN/MAX/FIRST orderings) and no
        // byte accounting to refresh: the heap position is already right
        // and the budgets did not move, so skip the heap latch entirely.
        skip_heap = true;
        stats_.heap_skips.Inc();
      }
      if (!skip_heap) row->ordering_cache = ordering_key;
    }
  }

  if (!bounded || skip_heap) return;

  MaintainHeap(&shard, row, std::move(ordering_key), row_bytes);
  EvictOverBudget(now_micros, /*notify=*/true);
}

void Lat::InsertBatch(const LatBatchItem* items, size_t count) {
  if (count == 0) return;
  if (count == 1) {
    Insert(items[0].record, items[0].now_micros);
    return;
  }
  stats_.inserts.Inc(count);

  // Phase 1 (latch-free): probe group keys and hashes for every item.
  std::vector<Row> keys(count);
  std::vector<uint64_t> hashes(count);
  for (size_t i = 0; i < count; ++i) {
    Row& key = keys[i];
    key.reserve(group_getters_.size());
    for (AttributeGetter getter : group_getters_) {
      key.push_back(getter(items[i].record));
    }
    hashes[i] = HashGroupKey(key);
  }

  // Phase 2: resolve rows shard by shard — items stable-sorted by shard so
  // each touched shard's map latch is taken exactly once for its whole run.
  std::vector<size_t> order(count);
  for (size_t i = 0; i < count; ++i) order[i] = i;
  const uint64_t shard_mask = shard_count_ - 1;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (hashes[a] & shard_mask) < (hashes[b] & shard_mask);
  });
  std::vector<std::shared_ptr<LatRow>> rows(count);
  size_t created_rows = 0;
  for (size_t pos = 0; pos < count;) {
    const uint64_t shard_idx = hashes[order[pos]] & shard_mask;
    Shard& shard = shards_[shard_idx];
    size_t end = pos;
    CountedLatchGuard map_guard(shard.map_latch, stats_);
    while (end < count && (hashes[order[end]] & shard_mask) == shard_idx) {
      const size_t i = order[end];
      bool created = false;
      rows[i] = FindOrCreateLocked(&shard, hashes[i], keys[i], &created);
      if (created) ++created_rows;
      ++end;
    }
    pos = end;
  }
  if (created_rows > 0) {
    total_rows_.fetch_add(created_rows, std::memory_order_acq_rel);
  }

  // Phase 3: fold per distinct group — one row latch per group, that
  // group's items in arrival order so FIRST/LAST match a sequential replay.
  std::unordered_map<LatRow*, size_t> row_index;
  row_index.reserve(count);
  std::vector<std::shared_ptr<LatRow>> distinct;
  std::vector<std::vector<size_t>> row_items;
  for (size_t i = 0; i < count; ++i) {
    auto [it, inserted] = row_index.try_emplace(rows[i].get(), distinct.size());
    if (inserted) {
      distinct.push_back(rows[i]);
      row_items.emplace_back();
    }
    row_items[it->second].push_back(i);
  }
  const bool bounded = spec_.max_rows > 0 || spec_.max_bytes > 0;
  for (size_t r = 0; r < distinct.size(); ++r) {
    const std::shared_ptr<LatRow>& row = distinct[r];
    Row ordering_key;
    size_t row_bytes = 0;
    bool skip_heap = false;
    {
      CountedLatchGuard row_guard(row->latch, stats_);
      int64_t row_now = 0;
      for (size_t i : row_items[r]) {
        for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
          Value v = agg_getters_[a] != nullptr ? agg_getters_[a](items[i].record)
                                               : Value::Int(1);
          FoldValue(&row->aggs[a], spec_.aggregates[a], std::move(v),
                    items[i].now_micros);
        }
        row_now = items[i].now_micros;
      }
      if (bounded) {
        ordering_key = OrderingKeyLocked(*row, row_now);
        if (spec_.max_bytes > 0) {
          row_bytes = ApproxRowBytesLocked(*row);
        } else if (row->in_heap.load(std::memory_order_acquire) &&
                   common::RowEq()(ordering_key, row->ordering_cache)) {
          skip_heap = true;
          stats_.heap_skips.Inc();
        }
        if (!skip_heap) row->ordering_cache = ordering_key;
      }
    }
    if (bounded && !skip_heap) {
      MaintainHeap(&ShardFor(row->hash), row, std::move(ordering_key),
                   row_bytes);
    }
  }
  if (bounded) {
    EvictOverBudget(items[count - 1].now_micros, /*notify=*/true);
  }
}

void Lat::MaintainHeap(Shard* shard, const std::shared_ptr<LatRow>& row,
                       Row ordering_key, size_t row_bytes) {
  CountedLatchGuard heap_guard(shard->heap_latch, stats_);
  if (row->evicted) {
    // Racing update to a row already chosen for eviction: drop it.
    return;
  }
  row->ordering_key = std::move(ordering_key);
  if (spec_.max_bytes > 0) {
    // Unsigned wrap-around of the delta is fine: the global sum stays
    // coherent because every delta is eventually balanced.
    total_bytes_.fetch_add(row_bytes - row->approx_bytes,
                           std::memory_order_acq_rel);
    row->approx_bytes = row_bytes;
  }
  if (row->heap_index == SIZE_MAX) {
    HeapInsertLocked(shard, row.get());
    row->in_heap.store(true, std::memory_order_release);
  } else {
    HeapRepositionLocked(shard, row.get());
  }
}

void Lat::EvictOverBudget(int64_t now_micros, bool notify) {
  if (!OverBudget()) return;

  std::vector<std::shared_ptr<LatRow>> victims;
  {
    // The evict latch serializes budget enforcement so concurrent inserters
    // do not over-evict; the common (non-evicting) insert never touches it.
    std::lock_guard<common::SpinLatch> evict_guard(evict_latch_);
    while (OverBudget()) {
      // Pick the globally least-important row: compare shard heap roots
      // (one short heap-latch hold per shard; the evict latch keeps rows
      // from leaving heaps underneath us, so the chosen root can only have
      // been repositioned by a concurrent update).
      size_t best_shard = SIZE_MAX;
      Row best_key;
      for (size_t s = 0; s < shard_count_; ++s) {
        std::lock_guard<common::SpinLatch> heap_guard(shards_[s].heap_latch);
        if (shards_[s].heap.empty()) continue;
        const Row& root_key = shards_[s].heap[0]->ordering_key;
        if (best_shard == SIZE_MAX || LessImportant(root_key, best_key)) {
          best_shard = s;
          best_key = root_key;
        }
      }
      if (best_shard == SIZE_MAX) break;  // every heap empty: nothing to evict
      Shard& shard = shards_[best_shard];
      LatRow* victim;
      {
        std::lock_guard<common::SpinLatch> heap_guard(shard.heap_latch);
        if (shard.heap.empty()) continue;
        victim = shard.heap[0];
        HeapEraseLocked(&shard, victim);
        victim->evicted = true;
        victim->in_heap.store(false, std::memory_order_release);
        total_bytes_.fetch_sub(victim->approx_bytes,
                               std::memory_order_acq_rel);
        total_rows_.fetch_sub(1, std::memory_order_acq_rel);
      }
      // Unlink from the directory while still under the evict latch (which
      // also excludes Reset) so the strong reference below cannot race a
      // concurrent teardown of the map.
      std::lock_guard<common::SpinLatch> map_guard(shard.map_latch);
      if (std::shared_ptr<LatRow> strong = UnlinkLocked(&shard, victim)) {
        victims.push_back(std::move(strong));
      }
    }
  }
  if (victims.empty()) return;
  stats_.evictions.Inc(victims.size());

  // Materialize victims (row latch only) when anyone listens, then notify
  // outside all latches.
  if (notify && evict_callback_) {
    std::vector<Row> evicted_rows;
    evicted_rows.reserve(victims.size());
    for (const auto& victim : victims) {
      std::lock_guard<common::SpinLatch> row_guard(victim->latch);
      evicted_rows.push_back(MaterializeLocked(*victim, now_micros));
    }
    for (Row& evicted : evicted_rows) evict_callback_(std::move(evicted));
  }
}

void Lat::Reset() {
  std::lock_guard<common::SpinLatch> evict_guard(evict_latch_);
  size_t removed_rows = 0;
  size_t removed_bytes = 0;
  for (size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    // Map latch nests the heap latch (fixed order, matching Reset's
    // pre-shard behaviour); no other path holds both.
    std::lock_guard<common::SpinLatch> map_guard(shard.map_latch);
    std::lock_guard<common::SpinLatch> heap_guard(shard.heap_latch);
    for (auto& [_, head] : shard.map) {
      for (LatRow* row = head.get(); row != nullptr; row = row->next.get()) {
        // Mark rows dead so a racing inserter holding a reference drops
        // its heap maintenance instead of sifting a cleared heap.
        row->evicted = true;
        row->heap_index = SIZE_MAX;
        row->in_heap.store(false, std::memory_order_release);
        ++removed_rows;
        removed_bytes += row->approx_bytes;
      }
    }
    shard.map.clear();
    shard.heap.clear();
  }
  // Subtract what was actually removed (rather than storing zero) so rows
  // added concurrently in already-cleared shards stay accounted.
  total_rows_.fetch_sub(removed_rows, std::memory_order_acq_rel);
  total_bytes_.fetch_sub(removed_bytes, std::memory_order_acq_rel);
  reset_generation_.fetch_add(1, std::memory_order_acq_rel);
}

bool Lat::LookupForObject(const void* record, int64_t now_micros,
                          Row* out) const {
  Row& key = ScratchKey();
  key.clear();
  for (AttributeGetter getter : group_getters_) key.push_back(getter(record));
  return LookupByKey(key, now_micros, out);
}

bool Lat::LookupByKey(const Row& group_key, int64_t now_micros,
                      Row* out) const {
  const uint64_t hash = HashGroupKey(group_key);
  Shard& shard = ShardFor(hash);
  std::shared_ptr<LatRow> row;
  {
    std::lock_guard<common::SpinLatch> map_guard(shard.map_latch);
    row = FindInShardLocked(shard, hash, group_key);
  }
  if (row == nullptr) return false;
  std::lock_guard<common::SpinLatch> row_guard(row->latch);
  *out = MaterializeLocked(*row, now_micros);
  return true;
}

std::vector<Row> Lat::Snapshot(int64_t now_micros) const {
  std::vector<std::shared_ptr<LatRow>> rows;
  rows.reserve(size());
  for (size_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<common::SpinLatch> map_guard(shard.map_latch);
    for (const auto& [_, head] : shard.map) {
      for (std::shared_ptr<LatRow> row = head; row != nullptr;
           row = row->next) {
        rows.push_back(row);
      }
    }
  }
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::lock_guard<common::SpinLatch> row_guard(row->latch);
    out.push_back(MaterializeLocked(*row, now_micros));
  }
  if (!ordering_columns_.empty()) {
    const auto& ordering_cols = ordering_columns_;
    std::stable_sort(out.begin(), out.end(),
                     [this, &ordering_cols](const Row& a, const Row& b) {
                       Row ka, kb;
                       for (int c : ordering_cols) {
                         ka.push_back(a[static_cast<size_t>(c)]);
                         kb.push_back(b[static_cast<size_t>(c)]);
                       }
                       // Most important first.
                       return LessImportant(kb, ka);
                     });
  }
  return out;
}

// ---------------------------------------------------------------------------
// Heap (min-heap on importance; root is the eviction candidate)
// ---------------------------------------------------------------------------

void Lat::HeapInsertLocked(Shard* shard, LatRow* row) {
  row->heap_index = shard->heap.size();
  shard->heap.push_back(row);
  SiftUpLocked(shard, row->heap_index);
}

void Lat::HeapRepositionLocked(Shard* shard, LatRow* row) {
  SiftUpLocked(shard, row->heap_index);
  SiftDownLocked(shard, row->heap_index);
}

void Lat::HeapEraseLocked(Shard* shard, LatRow* row) {
  const size_t i = row->heap_index;
  HeapSwapLocked(shard, i, shard->heap.size() - 1);
  shard->heap.pop_back();
  row->heap_index = SIZE_MAX;
  if (i < shard->heap.size()) {
    SiftUpLocked(shard, i);
    SiftDownLocked(shard, i);
  }
}

void Lat::HeapSwapLocked(Shard* shard, size_t i, size_t j) {
  if (i == j) return;
  std::swap(shard->heap[i], shard->heap[j]);
  shard->heap[i]->heap_index = i;
  shard->heap[j]->heap_index = j;
}

void Lat::SiftUpLocked(Shard* shard, size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!LessImportant(shard->heap[i]->ordering_key,
                       shard->heap[parent]->ordering_key)) {
      break;
    }
    HeapSwapLocked(shard, i, parent);
    i = parent;
  }
}

void Lat::SiftDownLocked(Shard* shard, size_t i) {
  for (;;) {
    const size_t left = 2 * i + 1;
    const size_t right = 2 * i + 2;
    size_t smallest = i;
    if (left < shard->heap.size() &&
        LessImportant(shard->heap[left]->ordering_key,
                      shard->heap[smallest]->ordering_key)) {
      smallest = left;
    }
    if (right < shard->heap.size() &&
        LessImportant(shard->heap[right]->ordering_key,
                      shard->heap[smallest]->ordering_key)) {
      smallest = right;
    }
    if (smallest == i) break;
    HeapSwapLocked(shard, i, smallest);
    i = smallest;
  }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

namespace {

/// %-escapes the v2 state-codec delimiters so tagged values can be embedded
/// in the `:`/`;`-delimited blocks codec (and so the codec survives any
/// payload text).
std::string EscapeStateText(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case ':': out += "%3A"; break;
      case ';': out += "%3B"; break;
      default: out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeStateText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    const std::string_view code =
        i + 2 < s.size() ? s.substr(i + 1, 2) : std::string_view();
    if (code == "25") out += '%';
    else if (code == "3A") out += ':';
    else if (code == "3B") out += ';';
    else return Status::ParseError("bad escape in state text '" +
                                   std::string(s) + "'");
    i += 2;
  }
  return out;
}

Result<int64_t> ParseStateInt(std::string_view s) {
  const std::string text(s);
  char* end = nullptr;
  const int64_t v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return Status::ParseError("bad integer in LAT state: '" + text + "'");
  }
  return v;
}

Result<double> ParseStateDouble(std::string_view s) {
  const std::string text(s);
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return Status::ParseError("bad double in LAT state: '" + text + "'");
  }
  return v;
}

/// Kind-tagged rendering of an arbitrary Value for v2 state columns:
/// N (null), B0/B1, I<decimal>, D<shortest round-trip double>,
/// S<escaped text>. Unlike Value::ToString this is unambiguous per kind, so
/// MIN/MAX/FIRST/LAST restore with their exact original kind.
std::string EncodeTaggedValue(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return "N";
    case ValueKind::kBool:
      return v.bool_value() ? "B1" : "B0";
    case ValueKind::kInt:
      return "I" + std::to_string(v.int_value());
    case ValueKind::kDouble:
      return "D" + common::FormatDoubleShortest(v.double_value());
    case ValueKind::kString:
      return "S" + EscapeStateText(v.string_value());
  }
  return "N";
}

Result<Value> DecodeTaggedValue(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty tagged value in LAT state");
  const std::string_view payload = s.substr(1);
  switch (s[0]) {
    case 'N':
      return Value::Null();
    case 'B':
      return Value::Bool(payload == "1");
    case 'I': {
      SQLCM_ASSIGN_OR_RETURN(const int64_t v, ParseStateInt(payload));
      return Value::Int(v);
    }
    case 'D': {
      SQLCM_ASSIGN_OR_RETURN(const double v, ParseStateDouble(payload));
      return Value::Double(v);
    }
    case 'S': {
      SQLCM_ASSIGN_OR_RETURN(std::string text, UnescapeStateText(payload));
      return Value::String(std::move(text));
    }
    default:
      return Status::ParseError("bad tagged value '" + std::string(s) +
                                "' in LAT state");
  }
}

std::vector<std::string_view> SplitStateField(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

Status Lat::PersistTo(storage::Table* table, int64_t timestamp_micros,
                      int64_t now_micros) const {
  const size_t width = table->schema().num_columns();
  const bool with_timestamp = width == num_columns() + 1;
  if (!with_timestamp && width != num_columns()) {
    return Status::InvalidArgument(
        "table '" + table->name() + "' has " + std::to_string(width) +
        " columns; LAT '" + name() + "' produces " +
        std::to_string(num_columns()) + " (+1 optional timestamp)");
  }
  for (Row& row : Snapshot(now_micros)) {
    if (with_timestamp) row.push_back(Value::Int(timestamp_micros));
    SQLCM_RETURN_IF_ERROR(table->Insert(std::move(row)).status());
  }
  return Status::OK();
}

bool Lat::AdoptSeededRow(std::shared_ptr<LatRow> row, int64_t now_micros) {
  const uint64_t hash = row->hash;
  Shard& shard = ShardFor(hash);
  {
    std::lock_guard<common::SpinLatch> map_guard(shard.map_latch);
    if (FindInShardLocked(shard, hash, row->group_key) != nullptr) {
      return false;  // live data wins
    }
    row->next = std::move(shard.map[hash]);
    shard.map[hash] = row;
  }
  total_rows_.fetch_add(1, std::memory_order_acq_rel);
  if (spec_.max_rows > 0 || spec_.max_bytes > 0) {
    Row ordering_key;
    {
      std::lock_guard<common::SpinLatch> row_guard(row->latch);
      ordering_key = OrderingKeyLocked(*row, now_micros);
      row->ordering_cache = ordering_key;
    }
    const size_t row_bytes =
        spec_.max_bytes > 0 ? ApproxRowBytesLocked(*row) : 0;
    MaintainHeap(&shard, row, std::move(ordering_key), row_bytes);
    EvictOverBudget(now_micros, /*notify=*/false);
  }
  return true;
}

Status Lat::SeedFrom(const storage::Table& table, int64_t now_micros) {
  if (has_sketch_) {
    // A materialized row carries only the sketch's point answer (one
    // quantile / one estimate); reconstructing sketch state from it via the
    // COUNT-driven ladder would seed garbage that then merges and ships as
    // if it were real history. Fail cleanly instead — sketch-bearing LATs
    // restore from v3 state snapshots (ImportState) only.
    return Status::InvalidArgument(
        "LAT '" + name() +
        "' has sketch aggregates (QUANTILE/DISTINCT); materialized rows "
        "cannot reconstruct sketch state — restore from a v3 state "
        "snapshot (ImportState) instead");
  }
  const size_t width = table.schema().num_columns();
  const bool with_timestamp = width == num_columns() + 1;
  if (!with_timestamp && width != num_columns()) {
    return Status::InvalidArgument(
        "table '" + table.name() + "' has " + std::to_string(width) +
        " columns; LAT '" + name() + "' expects " +
        std::to_string(num_columns()) + " (+1 optional timestamp)");
  }
  // The first non-aging COUNT column drives the seed count n for
  // SUM/AVG/STDEV reconstruction (n = 1 when absent).
  int count_col = -1;
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    if (spec_.aggregates[a].func == LatAggFunc::kCount &&
        !spec_.aggregates[a].aging) {
      count_col = static_cast<int>(group_width() + a);
      break;
    }
  }
  // For every STDEV aggregate, a same-attribute non-aging AVG (preferred)
  // or SUM column recovers the first moment; without one the sum seeds 0.
  // Either way sumsq is derived so the materialized STDEV value
  // round-trips: variance = (sumsq - sum²/n)/(n-1) = s².
  std::vector<int> stdev_source(spec_.aggregates.size(), -1);
  std::vector<bool> stdev_source_is_avg(spec_.aggregates.size(), false);
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    if (spec_.aggregates[a].func != LatAggFunc::kStdev ||
        spec_.aggregates[a].aging) {
      continue;
    }
    for (size_t b = 0; b < spec_.aggregates.size(); ++b) {
      const LatAggColumn& src = spec_.aggregates[b];
      if (src.aging || src.attribute != spec_.aggregates[a].attribute) {
        continue;
      }
      if (src.func == LatAggFunc::kAvg) {
        stdev_source[a] = static_cast<int>(group_width() + b);
        stdev_source_is_avg[a] = true;
        break;  // AVG preferred; stop looking
      }
      if (src.func == LatAggFunc::kSum && stdev_source[a] < 0) {
        stdev_source[a] = static_cast<int>(group_width() + b);
      }
    }
  }

  std::optional<Row> after;
  std::vector<Row> keys, rows;
  for (;;) {
    keys.clear();
    rows.clear();
    if (table.ScanBatch(after, 256, &keys, &rows) == 0) break;
    after = keys.back();
    for (Row& persisted : rows) {
      Row group_key(persisted.begin(),
                    persisted.begin() + static_cast<long>(group_width()));
      auto row = std::make_shared<LatRow>();
      row->hash = HashGroupKey(group_key);
      row->group_key = std::move(group_key);
      row->aggs.resize(spec_.aggregates.size());
      int64_t seed_count = 1;
      if (count_col >= 0 &&
          persisted[static_cast<size_t>(count_col)].is_int()) {
        seed_count =
            std::max<int64_t>(1, persisted[static_cast<size_t>(count_col)]
                                     .int_value());
      }
      for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
        const LatAggColumn& col = spec_.aggregates[a];
        if (col.aging) {
          // A materialized row holds only the windowed output value, not
          // the block history; reconstruction would mislabel old data as
          // current. v2 state snapshots (ImportState) restore these.
          continue;
        }
        const Value& v = persisted[group_width() + a];
        AggState& state = row->aggs[a];
        switch (col.func) {
          case LatAggFunc::kCount:
            state.count = v.is_int() ? v.int_value() : 0;
            break;
          case LatAggFunc::kSum:
            state.count = seed_count;
            state.sum = v.is_numeric() ? v.AsDouble() : 0;
            break;
          case LatAggFunc::kAvg:
            state.count = seed_count;
            state.sum =
                v.is_numeric() ? v.AsDouble() * static_cast<double>(seed_count)
                               : 0;
            break;
          case LatAggFunc::kStdev: {
            state.count = seed_count;
            double sum = 0;
            if (stdev_source[a] >= 0) {
              const Value& src = persisted[static_cast<size_t>(stdev_source[a])];
              if (src.is_numeric()) {
                sum = stdev_source_is_avg[a]
                          ? src.AsDouble() * static_cast<double>(seed_count)
                          : src.AsDouble();
              }
            }
            const double s = v.is_numeric() ? v.AsDouble() : 0;
            const double n = static_cast<double>(seed_count);
            state.sum = sum;
            state.sumsq =
                seed_count >= 2 ? s * s * (n - 1) + sum * sum / n : sum * sum;
            break;
          }
          case LatAggFunc::kMin:
          case LatAggFunc::kMax:
          case LatAggFunc::kFirst:
          case LatAggFunc::kLast:
            state.min = state.max = state.first = state.last = v;
            state.any = !v.is_null();
            break;
          case LatAggFunc::kQuantile:
          case LatAggFunc::kDistinct:
            break;  // unreachable: sketch-bearing specs rejected above
        }
      }
      AdoptSeededRow(std::move(row), now_micros);
    }
  }
  return Status::OK();
}

std::vector<std::string> Lat::StateColumnNames() const {
  std::vector<std::string> names(
      column_names_.begin(),
      column_names_.begin() + static_cast<long>(group_width()));
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    const std::string& alias = column_names_[group_width() + a];
    for (const char* part : {"#count", "#sum", "#sumsq", "#any", "#min",
                             "#max", "#first", "#last", "#blocks"}) {
      names.push_back(alias + part);
    }
    if (LatAggFuncIsSketch(spec_.aggregates[a].func)) {
      names.push_back(alias + "#sketch");
    }
  }
  return names;
}

std::vector<ValueKind> Lat::StateColumnKinds() const {
  std::vector<ValueKind> kinds(
      column_kinds_.begin(),
      column_kinds_.begin() + static_cast<long>(group_width()));
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    kinds.push_back(ValueKind::kInt);     // #count
    kinds.push_back(ValueKind::kDouble);  // #sum
    kinds.push_back(ValueKind::kDouble);  // #sumsq
    kinds.push_back(ValueKind::kBool);    // #any
    for (int i = 0; i < 5; ++i) {
      kinds.push_back(ValueKind::kString);  // #min/#max/#first/#last/#blocks
    }
    if (LatAggFuncIsSketch(spec_.aggregates[a].func)) {
      kinds.push_back(ValueKind::kString);  // #sketch
    }
  }
  return kinds;
}

Status Lat::ExportState(storage::Table* table,
                        int64_t timestamp_micros) const {
  const size_t state_width = this->state_width();
  const size_t width = table->schema().num_columns();
  const bool with_timestamp = width == state_width + 1;
  if (!with_timestamp && width != state_width) {
    return Status::InvalidArgument(
        "table '" + table->name() + "' has " + std::to_string(width) +
        " columns; LAT '" + name() + "' state records have " +
        std::to_string(state_width) + " (+1 optional timestamp)");
  }
  std::vector<std::shared_ptr<LatRow>> lat_rows;
  lat_rows.reserve(size());
  for (size_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<common::SpinLatch> map_guard(shard.map_latch);
    for (const auto& [_, head] : shard.map) {
      for (std::shared_ptr<LatRow> row = head; row != nullptr;
           row = row->next) {
        lat_rows.push_back(row);
      }
    }
  }
  for (const auto& row : lat_rows) {
    Row record;
    record.reserve(width);
    {
      std::lock_guard<common::SpinLatch> row_guard(row->latch);
      record.insert(record.end(), row->group_key.begin(),
                    row->group_key.end());
      AppendStateAggs(row->aggs, &record);
    }
    if (with_timestamp) record.push_back(Value::Int(timestamp_micros));
    SQLCM_RETURN_IF_ERROR(table->Insert(std::move(record)).status());
  }
  return Status::OK();
}

void Lat::AppendStateAggs(const std::vector<AggState>& aggs,
                          Row* record) const {
  for (size_t a = 0; a < aggs.size(); ++a) {
    const AggState& state = aggs[a];
    record->push_back(Value::Int(state.count));
    record->push_back(Value::Double(state.sum));
    record->push_back(Value::Double(state.sumsq));
    record->push_back(Value::Bool(state.any));
    record->push_back(Value::String(EncodeTaggedValue(state.min)));
    record->push_back(Value::String(EncodeTaggedValue(state.max)));
    record->push_back(Value::String(EncodeTaggedValue(state.first)));
    record->push_back(Value::String(EncodeTaggedValue(state.last)));
    std::string blocks;
    if (state.blocks != nullptr) {
      for (const AgingBlock& block : *state.blocks) {
        if (!blocks.empty()) blocks += ';';
        blocks += std::to_string(block.block_start);
        blocks += ':';
        blocks += std::to_string(block.count);
        blocks += ':';
        blocks += common::FormatDoubleShortest(block.sum);
        blocks += ':';
        blocks += common::FormatDoubleShortest(block.sumsq);
        blocks += ':';
        blocks += block.any ? '1' : '0';
        blocks += ':';
        blocks += EncodeTaggedValue(block.min);
        blocks += ':';
        blocks += EncodeTaggedValue(block.max);
      }
    }
    record->push_back(Value::String(std::move(blocks)));
    if (LatAggFuncIsSketch(spec_.aggregates[a].func)) {
      // Empty sketches (no pointer yet) encode to "" so untouched cells
      // stay compact; the codecs never emit `,`/`"`/newline, so the cell is
      // CSV-safe without escaping.
      std::string sketch;
      if (state.qsketch != nullptr) sketch = state.qsketch->Encode();
      if (state.hll != nullptr) sketch = state.hll->Encode();
      record->push_back(Value::String(std::move(sketch)));
    }
  }
}

Status Lat::ImportState(const storage::Table& table, int64_t now_micros) {
  const size_t state_width = this->state_width();
  const size_t width = table.schema().num_columns();
  const bool with_timestamp = width == state_width + 1;
  if (!with_timestamp && width != state_width) {
    return Status::InvalidArgument(
        "table '" + table.name() + "' has " + std::to_string(width) +
        " columns; LAT '" + name() + "' state records have " +
        std::to_string(state_width) + " (+1 optional timestamp)");
  }
  std::optional<Row> after;
  std::vector<Row> keys, rows;
  for (;;) {
    keys.clear();
    rows.clear();
    if (table.ScanBatch(after, 256, &keys, &rows) == 0) break;
    after = keys.back();
    for (Row& persisted : rows) {
      Row group_key(persisted.begin(),
                    persisted.begin() + static_cast<long>(group_width()));
      auto row = std::make_shared<LatRow>();
      row->hash = HashGroupKey(group_key);
      row->group_key = std::move(group_key);
      SQLCM_RETURN_IF_ERROR(ParseStateAggs(persisted, &row->aggs));
      AdoptSeededRow(std::move(row), now_micros);
    }
  }
  return Status::OK();
}

Status Lat::ParseStateAggs(const Row& record,
                           std::vector<AggState>* aggs) const {
  aggs->clear();
  aggs->resize(spec_.aggregates.size());
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    const size_t base = state_agg_base_[a];
    AggState& state = (*aggs)[a];
    const Value& count_v = record[base];
    const Value& sum_v = record[base + 1];
    const Value& sumsq_v = record[base + 2];
    const Value& any_v = record[base + 3];
    state.count = count_v.is_int() ? count_v.int_value() : 0;
    state.sum = sum_v.is_numeric() ? sum_v.AsDouble() : 0;
    state.sumsq = sumsq_v.is_numeric() ? sumsq_v.AsDouble() : 0;
    state.any = any_v.is_bool() && any_v.bool_value();
    Value* const dest[4] = {&state.min, &state.max, &state.first,
                            &state.last};
    for (int i = 0; i < 4; ++i) {
      const Value& cell = record[base + 4 + static_cast<size_t>(i)];
      if (cell.is_null()) continue;
      if (!cell.is_string()) {
        return Status::ParseError("LAT '" + name() +
                                  "' state: expected tagged value");
      }
      SQLCM_ASSIGN_OR_RETURN(*dest[i],
                             DecodeTaggedValue(cell.string_value()));
    }
    const Value& blocks_v = record[base + 8];
    if (blocks_v.is_string() && !blocks_v.string_value().empty()) {
      auto blocks = std::make_unique<std::deque<AgingBlock>>();
      for (std::string_view part :
           SplitStateField(blocks_v.string_value(), ';')) {
        const auto fields = SplitStateField(part, ':');
        if (fields.size() != 7) {
          return Status::ParseError("LAT '" + name() +
                                    "' state: bad aging-block record");
        }
        AgingBlock block;
        SQLCM_ASSIGN_OR_RETURN(block.block_start, ParseStateInt(fields[0]));
        SQLCM_ASSIGN_OR_RETURN(block.count, ParseStateInt(fields[1]));
        SQLCM_ASSIGN_OR_RETURN(block.sum, ParseStateDouble(fields[2]));
        SQLCM_ASSIGN_OR_RETURN(block.sumsq, ParseStateDouble(fields[3]));
        block.any = fields[4] == "1";
        SQLCM_ASSIGN_OR_RETURN(block.min, DecodeTaggedValue(fields[5]));
        SQLCM_ASSIGN_OR_RETURN(block.max, DecodeTaggedValue(fields[6]));
        blocks->push_back(std::move(block));
      }
      state.blocks = std::move(blocks);
    }
    if (LatAggFuncIsSketch(spec_.aggregates[a].func)) {
      const Value& sketch_v = record[base + 9];
      if (sketch_v.is_string() && !sketch_v.string_value().empty()) {
        if (spec_.aggregates[a].func == LatAggFunc::kQuantile) {
          SQLCM_ASSIGN_OR_RETURN(
              QuantileSketch sketch,
              QuantileSketch::Decode(sketch_v.string_value()));
          state.qsketch = std::make_unique<QuantileSketch>(std::move(sketch));
        } else {
          SQLCM_ASSIGN_OR_RETURN(HllSketch sketch,
                                 HllSketch::Decode(sketch_v.string_value()));
          if (sketch.precision() != distinct_precision_) {
            // Mixed precisions cannot max-merge; surfacing the mismatch at
            // decode keeps every later fold infallible.
            return Status::ParseError(
                "LAT '" + name() + "' state: DISTINCT sketch precision " +
                std::to_string(sketch.precision()) + " does not match spec " +
                std::to_string(distinct_precision_));
          }
          state.hll = std::make_unique<HllSketch>(std::move(sketch));
        }
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Federation state arithmetic (delta shipping; src/fed, docs/FEDERATION.md)
// ---------------------------------------------------------------------------

Status Lat::CheckStateRecordWidth(const Row& record) const {
  const size_t state_width = this->state_width();
  if (record.size() != state_width) {
    return Status::InvalidArgument(
        "state record has " + std::to_string(record.size()) +
        " cells; LAT '" + name() + "' state records have " +
        std::to_string(state_width));
  }
  return Status::OK();
}

void Lat::FoldAggState(AggState* dst, const AggState& src) {
  dst->count += src.count;
  dst->sum += src.sum;
  dst->sumsq += src.sumsq;
  if (src.any) {
    if (!dst->any) dst->first = src.first;
    if (!dst->any || src.min.Compare(dst->min) < 0) dst->min = src.min;
    if (!dst->any || src.max.Compare(dst->max) > 0) dst->max = src.max;
    dst->last = src.last;
    dst->any = true;
  }
  if (src.qsketch != nullptr) {
    if (dst->qsketch == nullptr) {
      dst->qsketch = std::make_unique<QuantileSketch>(*src.qsketch);
    } else {
      dst->qsketch->Merge(*src.qsketch);
    }
    const int ups =
        dst->qsketch->CollapseToBudget(spec_.quantile_sketch_bytes);
    if (ups > 0) stats_.sketch_collapses.Inc(static_cast<uint64_t>(ups));
  }
  if (src.hll != nullptr) {
    if (dst->hll == nullptr) {
      dst->hll = std::make_unique<HllSketch>(*src.hll);
    } else {
      // Same-precision by construction: ParseStateAggs rejects records
      // whose HLL precision differs from this LAT's spec.
      (void)dst->hll->Merge(*src.hll);
    }
  }
  if (src.blocks == nullptr) return;
  if (dst->blocks == nullptr) {
    dst->blocks = std::make_unique<std::deque<AgingBlock>>();
  }
  // Merge-join by block_start; both deques are ascending (blocks are
  // created in time order and shipped in deque order).
  std::deque<AgingBlock> merged;
  auto di = dst->blocks->begin();
  const auto dend = dst->blocks->end();
  for (const AgingBlock& sb : *src.blocks) {
    while (di != dend && di->block_start < sb.block_start) {
      merged.push_back(std::move(*di++));
    }
    if (di != dend && di->block_start == sb.block_start) {
      AgingBlock b = std::move(*di++);
      b.count += sb.count;
      b.sum += sb.sum;
      b.sumsq += sb.sumsq;
      if (sb.any) {
        if (!b.any || sb.min.Compare(b.min) < 0) b.min = sb.min;
        if (!b.any || sb.max.Compare(b.max) > 0) b.max = sb.max;
        b.any = true;
      }
      merged.push_back(std::move(b));
    } else {
      merged.push_back(sb);
    }
  }
  while (di != dend) merged.push_back(std::move(*di++));
  *dst->blocks = std::move(merged);
}

void Lat::PruneMergedBlocks(AggState* state, int64_t now_micros) {
  if (state->blocks == nullptr) return;
  std::deque<AgingBlock>& blocks = *state->blocks;
  while (!blocks.empty() &&
         blocks.front().block_start + spec_.aging_block_micros <=
             now_micros - spec_.aging_window_micros) {
    blocks.pop_front();
  }
  while (blocks.size() > std::max<size_t>(max_aging_blocks_, 1)) {
    const AgingBlock& oldest = blocks[0];
    AgingBlock& into = blocks[1];
    into.count += oldest.count;
    into.sum += oldest.sum;
    into.sumsq += oldest.sumsq;
    if (oldest.any) {
      if (!into.any || oldest.min.Compare(into.min) < 0) into.min = oldest.min;
      if (!into.any || oldest.max.Compare(into.max) > 0) into.max = oldest.max;
      into.any = true;
    }
    blocks.pop_front();
    stats_.aging_merges.Inc();
  }
}

Result<Lat::StateDeltaMode> Lat::DiffStateRecord(const Row& current,
                                                 const Row* baseline,
                                                 Row* delta) const {
  SQLCM_RETURN_IF_ERROR(CheckStateRecordWidth(current));
  delta->clear();
  std::vector<AggState> cur;
  SQLCM_RETURN_IF_ERROR(ParseStateAggs(current, &cur));

  // No baseline (new group) and a restarted group (any additive count went
  // backwards) both ship the full cumulative record.
  bool fresh = baseline == nullptr;
  std::vector<AggState> base;
  if (!fresh) {
    SQLCM_RETURN_IF_ERROR(CheckStateRecordWidth(*baseline));
    SQLCM_RETURN_IF_ERROR(ParseStateAggs(*baseline, &base));
    for (size_t a = 0; a < cur.size() && !fresh; ++a) {
      if (cur[a].count < base[a].count) fresh = true;
      if (cur[a].blocks == nullptr || base[a].blocks == nullptr) continue;
      auto bi = base[a].blocks->begin();
      const auto bend = base[a].blocks->end();
      for (const AgingBlock& cb : *cur[a].blocks) {
        while (bi != bend && bi->block_start < cb.block_start) ++bi;
        if (bi != bend && bi->block_start == cb.block_start &&
            cb.count < bi->count) {
          fresh = true;
          break;
        }
      }
    }
  }
  if (fresh) {
    bool any_data = false;
    for (const AggState& state : cur) {
      if (state.count != 0 || state.any) any_data = true;
      if (state.blocks != nullptr && !state.blocks->empty()) any_data = true;
    }
    if (!any_data) return StateDeltaMode::kNone;
    *delta = current;
    return StateDeltaMode::kFresh;
  }

  // Incremental: additive moments diff; cumulative fields pass through.
  // Every state mutation increments an additive count (top-level or block),
  // so "all count increments are zero" is a complete no-change test.
  bool changed = false;
  std::vector<AggState> diff(cur.size());
  for (size_t a = 0; a < cur.size(); ++a) {
    AggState& d = diff[a];
    d.count = cur[a].count - base[a].count;
    d.sum = cur[a].sum - base[a].sum;
    d.sumsq = cur[a].sumsq - base[a].sumsq;
    d.any = cur[a].any;
    d.min = cur[a].min;
    d.max = cur[a].max;
    d.first = cur[a].first;
    d.last = cur[a].last;
    if (d.count != 0) changed = true;
    if (cur[a].qsketch != nullptr) {
      // Quantile sketches are additive: ship the bucket-count increments
      // since the baseline (Subtract aligns the baseline up to the current
      // collapse level first, so a mid-epoch collapse still diffs cleanly).
      auto dq = std::make_unique<QuantileSketch>(*cur[a].qsketch);
      if (base[a].qsketch != nullptr) dq->Subtract(*base[a].qsketch);
      if (!dq->empty()) d.qsketch = std::move(dq);
    }
    if (cur[a].hll != nullptr) {
      // HLL registers are fold-stable (max-merge is idempotent): the delta
      // carries the cumulative register array, like #min/#max.
      d.hll = std::make_unique<HllSketch>(*cur[a].hll);
    }
    if (cur[a].blocks == nullptr) continue;
    auto bi = base[a].blocks != nullptr ? base[a].blocks->begin()
                                        : std::deque<AgingBlock>::iterator();
    const auto bend = base[a].blocks != nullptr
                          ? base[a].blocks->end()
                          : std::deque<AgingBlock>::iterator();
    std::deque<AgingBlock> shipped;
    for (const AgingBlock& cb : *cur[a].blocks) {
      while (bi != bend && bi->block_start < cb.block_start) ++bi;
      if (bi != bend && bi->block_start == cb.block_start) {
        if (cb.count == bi->count) continue;  // untouched since baseline
        AgingBlock inc = cb;  // cumulative min/max/any pass through
        inc.count = cb.count - bi->count;
        inc.sum = cb.sum - bi->sum;
        inc.sumsq = cb.sumsq - bi->sumsq;
        shipped.push_back(std::move(inc));
      } else {
        shipped.push_back(cb);  // block opened since baseline: whole block
      }
      changed = true;
    }
    if (!shipped.empty()) {
      d.blocks = std::make_unique<std::deque<AgingBlock>>(std::move(shipped));
    }
  }
  if (!changed) return StateDeltaMode::kNone;
  delta->reserve(current.size());
  delta->insert(delta->end(), current.begin(),
                current.begin() + static_cast<long>(group_width()));
  AppendStateAggs(diff, delta);
  return StateDeltaMode::kIncremental;
}

Result<Row> Lat::CombineStateRecords(const Row& base, const Row& delta,
                                     StateDeltaMode mode) const {
  if (mode == StateDeltaMode::kNone) return base;
  if (mode == StateDeltaMode::kFresh) {
    SQLCM_RETURN_IF_ERROR(CheckStateRecordWidth(delta));
    return delta;
  }
  SQLCM_RETURN_IF_ERROR(CheckStateRecordWidth(base));
  SQLCM_RETURN_IF_ERROR(CheckStateRecordWidth(delta));
  std::vector<AggState> out, inc;
  SQLCM_RETURN_IF_ERROR(ParseStateAggs(base, &out));
  SQLCM_RETURN_IF_ERROR(ParseStateAggs(delta, &inc));
  for (size_t a = 0; a < out.size(); ++a) {
    AggState& r = out[a];
    const AggState& d = inc[a];
    r.count += d.count;
    r.sum += d.sum;
    r.sumsq += d.sumsq;
    // Cumulative fields: the delta carries the diffed record's values
    // verbatim, so they replace (any never regresses outside kFresh).
    r.any = d.any;
    r.min = d.min;
    r.max = d.max;
    r.first = d.first;
    r.last = d.last;
    if (d.qsketch != nullptr) {
      // Additive: add the shipped increments onto the baseline's sketch.
      if (r.qsketch == nullptr) {
        r.qsketch = std::make_unique<QuantileSketch>(*d.qsketch);
      } else {
        r.qsketch->Merge(*d.qsketch);
      }
    }
    if (d.hll != nullptr) {
      // Cumulative: the delta's register array replaces, like #min/#max.
      r.hll = std::make_unique<HllSketch>(*d.hll);
    }
    if (d.blocks == nullptr) continue;
    if (r.blocks == nullptr) {
      r.blocks = std::make_unique<std::deque<AgingBlock>>();
    }
    std::deque<AgingBlock> merged;
    auto bi = r.blocks->begin();
    const auto bend = r.blocks->end();
    for (const AgingBlock& db : *d.blocks) {
      while (bi != bend && bi->block_start < db.block_start) {
        merged.push_back(std::move(*bi++));
      }
      if (bi != bend && bi->block_start == db.block_start) {
        AgingBlock b = std::move(*bi++);
        b.count += db.count;
        b.sum += db.sum;
        b.sumsq += db.sumsq;
        b.min = db.min;  // cumulative per block in the delta
        b.max = db.max;
        b.any = db.any;
        merged.push_back(std::move(b));
      } else {
        merged.push_back(db);
      }
    }
    while (bi != bend) merged.push_back(std::move(*bi++));
    *r.blocks = std::move(merged);
  }
  Row combined;
  combined.reserve(base.size());
  combined.insert(combined.end(), delta.begin(),
                  delta.begin() + static_cast<long>(group_width()));
  AppendStateAggs(out, &combined);
  return combined;
}

Status Lat::MergeState(const storage::Table& table, int64_t now_micros) {
  const size_t state_width = this->state_width();
  const size_t width = table.schema().num_columns();
  const bool with_timestamp = width == state_width + 1;
  if (!with_timestamp && width != state_width) {
    return Status::InvalidArgument(
        "table '" + table.name() + "' has " + std::to_string(width) +
        " columns; LAT '" + name() + "' state records have " +
        std::to_string(state_width) + " (+1 optional timestamp)");
  }
  const bool bounded = spec_.max_rows > 0 || spec_.max_bytes > 0;
  std::optional<Row> after;
  std::vector<Row> keys, rows;
  for (;;) {
    keys.clear();
    rows.clear();
    if (table.ScanBatch(after, 256, &keys, &rows) == 0) break;
    after = keys.back();
    for (Row& persisted : rows) {
      std::vector<AggState> incoming;
      SQLCM_RETURN_IF_ERROR(ParseStateAggs(persisted, &incoming));
      Row key(persisted.begin(),
              persisted.begin() + static_cast<long>(group_width()));
      const uint64_t hash = HashGroupKey(key);
      Shard& shard = ShardFor(hash);
      std::shared_ptr<LatRow> row;
      bool created = false;
      {
        std::lock_guard<common::SpinLatch> map_guard(shard.map_latch);
        row = FindOrCreateLocked(&shard, hash, key, &created);
      }
      if (created) total_rows_.fetch_add(1, std::memory_order_acq_rel);
      Row ordering_key;
      size_t row_bytes = 0;
      {
        std::lock_guard<common::SpinLatch> row_guard(row->latch);
        for (size_t a = 0; a < row->aggs.size(); ++a) {
          FoldAggState(&row->aggs[a], incoming[a]);
          PruneMergedBlocks(&row->aggs[a], now_micros);
        }
        if (bounded) {
          ordering_key = OrderingKeyLocked(*row, now_micros);
          row->ordering_cache = ordering_key;
          if (spec_.max_bytes > 0) row_bytes = ApproxRowBytesLocked(*row);
        }
      }
      if (bounded) {
        MaintainHeap(&shard, row, std::move(ordering_key), row_bytes);
        EvictOverBudget(now_micros, /*notify=*/false);
      }
    }
  }
  return Status::OK();
}

}  // namespace sqlcm::cm
