#include "sqlcm/event_queue.h"

#include <bit>
#include <chrono>

namespace sqlcm::cm {

size_t KindRunLength(const DeferredEvent* events, size_t pos, size_t count) {
  size_t end = pos + 1;
  while (end < count && events[end].kind == events[pos].kind) ++end;
  return end - pos;
}

EventQueue::EventQueue(size_t capacity) {
  if (capacity < 2) capacity = 2;
  capacity_ = std::bit_ceil(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].stamp.store(i, std::memory_order_relaxed);
  }
}

bool EventQueue::TryPush(DeferredEvent&& ev) {
  uint64_t ticket = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[ticket & mask_];
    const uint64_t stamp = slot.stamp.load(std::memory_order_acquire);
    const int64_t dif =
        static_cast<int64_t>(stamp) - static_cast<int64_t>(ticket);
    if (dif == 0) {
      if (head_.compare_exchange_weak(ticket, ticket + 1,
                                      std::memory_order_relaxed)) {
        slot.ev = std::move(ev);
        slot.stamp.store(ticket + 1, std::memory_order_release);
        if (consumer_sleepers_.load(std::memory_order_acquire) > 0) {
          NotifyConsumers();
        }
        return true;
      }
      // CAS failure reloaded `ticket`; retry with the fresh value.
    } else if (dif < 0) {
      // The slot still holds last lap's event: full.
      return false;
    } else {
      ticket = head_.load(std::memory_order_relaxed);
    }
  }
}

bool EventQueue::PushBlocking(DeferredEvent&& ev) {
  for (;;) {
    if (TryPush(std::move(ev))) return true;
    if (shutdown_.load(std::memory_order_acquire)) return false;
    std::unique_lock<std::mutex> lock(wait_mutex_);
    producer_sleepers_.fetch_add(1, std::memory_order_acq_rel);
    // Bounded wait: the consumer-side notify can race the sleeper-count
    // publication, so never sleep unconditionally.
    not_full_.wait_for(lock, std::chrono::milliseconds(1));
    producer_sleepers_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

bool EventQueue::TryPop(DeferredEvent* out) {
  uint64_t ticket = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[ticket & mask_];
    const uint64_t stamp = slot.stamp.load(std::memory_order_acquire);
    const int64_t dif =
        static_cast<int64_t>(stamp) - static_cast<int64_t>(ticket + 1);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                      std::memory_order_relaxed)) {
        *out = std::move(slot.ev);
        // Drop the moved-from shell eagerly so record keepalives are not
        // stretched a full lap.
        slot.ev = DeferredEvent();
        slot.stamp.store(ticket + capacity_, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      ticket = tail_.load(std::memory_order_relaxed);
    }
  }
}

size_t EventQueue::PopBatch(DeferredEvent* out, size_t max) {
  size_t n = 0;
  while (n < max && TryPop(&out[n])) ++n;
  if (n > 0 && producer_sleepers_.load(std::memory_order_acquire) > 0) {
    NotifyProducers();
  }
  return n;
}

bool EventQueue::WaitNonEmpty(int64_t micros) {
  if (ApproxDepth() > 0 || shutdown_.load(std::memory_order_acquire)) {
    return true;
  }
  std::unique_lock<std::mutex> lock(wait_mutex_);
  consumer_sleepers_.fetch_add(1, std::memory_order_acq_rel);
  not_empty_.wait_for(lock, std::chrono::microseconds(micros), [this] {
    return ApproxDepth() > 0 || shutdown_.load(std::memory_order_acquire);
  });
  consumer_sleepers_.fetch_sub(1, std::memory_order_acq_rel);
  return ApproxDepth() > 0;
}

void EventQueue::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  NotifyConsumers();
  NotifyProducers();
}

void EventQueue::NotifyConsumers() {
  // The lock pairs the notification with the waiter's predicate check.
  std::lock_guard<std::mutex> lock(wait_mutex_);
  not_empty_.notify_all();
}

void EventQueue::NotifyProducers() {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  not_full_.notify_all();
}

size_t EventQueue::ApproxDepth() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  return head > tail ? static_cast<size_t>(head - tail) : 0;
}

}  // namespace sqlcm::cm
