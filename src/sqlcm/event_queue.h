// Bounded lock-free event queue for the deferred-evaluation pipeline
// (ROADMAP item 1): hooks encode a fixed-size event record and return;
// monitor worker threads drain in batches and evaluate the deferrable
// rules off the query thread.
//
// The queue is a Vyukov-style bounded MPMC ring: every slot carries its own
// sequence stamp, so producers and consumers synchronize per slot with one
// CAS on the shared cursor each — no mutex on either hot path. This grows
// the stamp protocol of the MPSC obs rings (trace_ring.h/span_ring.h) into
// a consumable queue: those rings overwrite and never pop; this one hands
// each record to exactly one consumer, in FIFO order per producer, and adds
// a consumer-side batch-pop so workers amortize rule-table dispatch across
// a whole batch.
//
// Blocking coordination (full producers under the kBlock policy, idle
// consumers) uses a mutex+condvar pair on the *slow* path only; both sides
// keep a sleeper count so the lock-free paths skip notification entirely
// while nobody waits.
#ifndef SQLCM_SQLCM_EVENT_QUEUE_H_
#define SQLCM_SQLCM_EVENT_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "sqlcm/rule.h"
#include "sqlcm/schema.h"

namespace sqlcm::cm {

/// One deferred event, captured at hook time. Only terminal events are
/// deferrable (EventKindDeferrable), so the bound record is immutable by
/// enqueue time; the shared_ptr keepalives let the worker evaluate it after
/// the engine registries dropped their references.
struct DeferredEvent {
  EventKind kind = EventKind::kQueryCommit;
  /// Event sequence number allocated by the hook (trace id = seq + 1).
  uint64_t seq = 0;
  /// The hook's single clock read; workers reuse it so deferred rules see
  /// the same event timestamp sync evaluation would have.
  int64_t now_micros = 0;
  /// Steady-clock enqueue time; drain latency = pop time - this.
  int64_t enqueue_nanos = 0;
  /// Span-sampling decision, made once per event at the hook.
  bool sampled = false;
  std::shared_ptr<QueryRecord> query;     // kQuery* events
  std::shared_ptr<TransactionRecord> txn; // kTransaction* events
};

/// Length of the run of consecutive events sharing events[pos].kind, up to
/// `count`. Batch consumers use this to resolve per-kind dispatch state
/// (rule list, predicate index) once per run instead of once per event,
/// without re-sorting the batch — cross-kind order is load-bearing for
/// FIRST/LAST LAT aggregates.
size_t KindRunLength(const DeferredEvent* events, size_t pos, size_t count);

class EventQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit EventQueue(size_t capacity);

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Lock-free enqueue; false when the queue is full (the caller applies
  /// its full-policy: block, drop or shed).
  bool TryPush(DeferredEvent&& ev);

  /// Enqueue, waiting for space when full. Returns false only after
  /// Shutdown() (the event is dropped then).
  bool PushBlocking(DeferredEvent&& ev);

  /// Pops up to `max` events into `out` (which must hold `max` slots).
  /// Returns the number popped (0 = queue empty). Each event is delivered
  /// to exactly one consumer.
  size_t PopBatch(DeferredEvent* out, size_t max);

  /// Blocks the calling consumer until the queue looks non-empty, `micros`
  /// elapsed, or Shutdown(). Returns true when the queue may be non-empty.
  bool WaitNonEmpty(int64_t micros);

  /// Wakes every sleeping producer and consumer, permanently: subsequent
  /// waits return immediately. Pushes after shutdown still succeed while
  /// space remains (workers drain the residue before exiting).
  void Shutdown();
  bool shutdown() const { return shutdown_.load(std::memory_order_acquire); }

  /// Approximate depth (racy by nature; exact when producers/consumers are
  /// quiescent, which is how the drain barrier uses it).
  size_t ApproxDepth() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    /// Stamp protocol (per slot, lap-aware like the obs rings):
    ///   stamp == ticket           slot free for the producer with `ticket`
    ///   stamp == ticket + 1       slot filled, ready for that consumer
    ///   stamp == ticket + cap     slot recycled for the next lap
    std::atomic<uint64_t> stamp{0};
    DeferredEvent ev;
  };

  bool TryPop(DeferredEvent* out);
  void NotifyConsumers();
  void NotifyProducers();

  size_t capacity_ = 0;
  uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<uint64_t> head_{0};  // next producer ticket
  alignas(64) std::atomic<uint64_t> tail_{0};  // next consumer ticket

  // Slow-path coordination only; hot paths check the sleeper counts and
  // skip the mutex while nobody waits.
  std::mutex wait_mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::atomic<int> consumer_sleepers_{0};
  std::atomic<int> producer_sleepers_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_EVENT_QUEUE_H_
