// Mergeable sketch summaries backing the QUANTILE and DISTINCT LAT
// aggregates (ROADMAP item 3; docs/RULE_LANGUAGE.md documents the SQL-facing
// semantics).
//
// Both sketches are designed around the same contract the v2 raw-moment
// codec established for the classic aggregates:
//   * merging is associative and commutative, so aggregation order —
//     per-thread folds, cross-shard batches, federated delta fold at the
//     FleetAggregator — never changes the answer;
//   * the full state round-trips losslessly through a printable encoding
//     (Encode/Decode), so checkpoint→restore and delta shipping preserve
//     the sketch bit-exactly;
//   * the error bound is *documented and stable*: QuantileSketch guarantees
//     relative error `alpha()` for every rank at its current collapse
//     level, and HllSketch the standard ~1.04/sqrt(2^p) cardinality error
//     (exact in the linear-counting regime that small groups live in).
//
// QuantileSketch is a DDSketch-style log-bucketed histogram: value v > 0
// lands in bucket ⌈log_γ v⌉ so every bucket spans a constant relative
// width. Collapse under a byte budget is *level-based*: level k uses
// γ_k = γ₀^(2^k), and raising the level re-indexes buckets by i ↦ ⌈i/2⌉ —
// bucket boundaries at level k+1 are a subset of level k's, which is what
// makes two sketches at different levels mergeable (align the finer one
// up, then add counts). Negative values mirror into a second store keyed
// by |v|; exact zeros count separately.
//
// HllSketch is a classic HyperLogLog register array with max-merge (fold
// order irrelevant, duplicate delivery a no-op) and the linear-counting
// small-range correction. Hashing is process-independent (FNV-1a over a
// canonical byte rendering + splitmix64 finalizer) so registers computed on
// different fleet nodes agree on equal values.
#ifndef SQLCM_SQLCM_SKETCH_H_
#define SQLCM_SQLCM_SKETCH_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace sqlcm::cm {

/// Process-independent 64-bit hash of a Value for DISTINCT counting:
/// FNV-1a over a kind tag + canonical payload bytes (int64/double bit
/// patterns little-endian, raw string bytes), splitmix64-finalized.
/// -0.0 normalizes to +0.0 and an integral double hashes like the equal
/// int, so 2 and 2.0 count as one distinct value (Value::Compare agrees).
uint64_t DistinctValueHash(const common::Value& v);

class QuantileSketch {
 public:
  /// Relative accuracy at level 0: γ₀ = (1+α₀)/(1−α₀). Collapsing squares
  /// γ, so the documented bound at level k is alpha() below.
  static constexpr double kBaseAlpha = 0.01;
  /// Bookkeeping bytes charged per bucket against the byte budget
  /// (std::map node: key + count + tree overhead).
  static constexpr size_t kBytesPerBucket = 48;

  QuantileSketch() = default;

  /// Folds one value. NaN is ignored (it has no rank); ±0 counts in the
  /// exact-zero bucket.
  void Add(double v);

  /// Merges `other` in: aligns both sketches to max(level, other.level)
  /// and adds bucket counts. Associative and commutative.
  void Merge(const QuantileSketch& other);

  /// Subtracts `baseline` (a previous snapshot of this sketch) after
  /// aligning it up to this sketch's level; used to build federation
  /// deltas. Counts never go negative when `baseline` really is a past
  /// state of `this` (bucket counts are monotone under Add/Merge).
  void Subtract(const QuantileSketch& baseline);

  /// q ∈ [0,1]; the value at rank ⌊q·(count−1)⌋ of the folded multiset,
  /// within alpha() relative error (exact for zeros). Requires count() > 0.
  double Quantile(double q) const;

  int64_t count() const { return zero_count_ + neg_count_ + pos_count_; }
  bool empty() const { return count() == 0; }
  size_t bucket_count() const { return neg_.size() + pos_.size(); }
  size_t ApproxBytes() const {
    return sizeof(QuantileSketch) + bucket_count() * kBytesPerBucket;
  }
  int level() const { return level_; }
  /// Documented relative-error bound at the current level.
  double alpha() const;

  /// Collapses (level-up) until ApproxBytes() <= max_bytes or a single
  /// bucket remains per store. Returns the number of level-ups performed.
  /// 0 = unbounded (no-op).
  int CollapseToBudget(size_t max_bytes);

  /// Printable, CSV-safe state: "Q1 <level> <zero> <nneg> <npos> i:c ...".
  /// Empty sketches encode to "" so untouched cells stay compact.
  std::string Encode() const;
  static common::Result<QuantileSketch> Decode(std::string_view s);

  bool operator==(const QuantileSketch& other) const {
    return level_ == other.level_ && zero_count_ == other.zero_count_ &&
           neg_ == other.neg_ && pos_ == other.pos_;
  }

 private:
  int32_t IndexFor(double magnitude) const;
  double EstimateFor(int32_t index) const;
  void LevelUp();
  /// Raises a bucket map from `from_level` to this sketch's level in place.
  static void AlignUp(std::map<int32_t, int64_t>* buckets, int levels);

  int level_ = 0;
  int64_t zero_count_ = 0;
  int64_t neg_count_ = 0;  // cached sum of neg_ counts
  int64_t pos_count_ = 0;  // cached sum of pos_ counts
  std::map<int32_t, int64_t> neg_;  // keyed by index of |v|
  std::map<int32_t, int64_t> pos_;
};

class HllSketch {
 public:
  /// precision p: 2^p byte registers. Clamped to [4, 16] by Create/Decode.
  static constexpr int kDefaultPrecision = 10;

  explicit HllSketch(int precision = kDefaultPrecision);

  /// Folds one pre-hashed value (DistinctValueHash).
  void AddHash(uint64_t hash);

  /// Register-wise max; associative, commutative and idempotent (merging
  /// the same sketch twice is a no-op — the fold-stable property the
  /// federation delta grammar relies on).
  common::Status Merge(const HllSketch& other);

  /// Cardinality estimate with the linear-counting small-range correction;
  /// exact up to rounding while any register is still zero and the true
  /// cardinality is well under 2^p.
  int64_t Estimate() const;

  int precision() const { return precision_; }
  size_t register_count() const { return registers_.size(); }
  size_t ApproxBytes() const {
    return sizeof(HllSketch) + registers_.size();
  }
  /// Documented relative standard error: 1.04 / sqrt(2^p).
  double StandardError() const;

  /// Printable, CSV-safe state: "H1 <p> <hex registers>". A sketch with
  /// every register zero encodes to "" so untouched cells stay compact.
  std::string Encode() const;
  static common::Result<HllSketch> Decode(std::string_view s);

  bool operator==(const HllSketch& other) const {
    return precision_ == other.precision_ && registers_ == other.registers_;
  }

 private:
  int precision_ = kDefaultPrecision;
  std::vector<uint8_t> registers_;
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_SKETCH_H_
