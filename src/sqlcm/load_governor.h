// Graceful degradation under overload (robustness layer).
//
// The paper's premise is that monitoring must be cheap enough to leave on
// in production (§1: "the overhead ... is low enough"). The LoadGovernor
// enforces that promise at runtime: it watches the fraction of wall-clock
// time spent inside monitor hooks over a sliding window, and when the
// fraction exceeds the configured budget it walks down a shed ladder, each
// level giving up a little fidelity to win back overhead:
//
//   level 0  full fidelity
//   level 1  detailed per-action timing off (saves clock reads)
//   level 2  event trace recording off
//   level 3  LAT aging-block pruning deferred (expired blocks accumulate
//            up to a cap, then merge; reads stay exact)
//   level 4  rule evaluation sampled 1-in-2^sample_shift events
//
// When the measured overhead drops back below budget * recover_ratio the
// governor climbs back up one level per window (hysteresis prevents
// flapping). Levels and shed counts are visible in sqlcm_engine_stats; see
// docs/ROBUSTNESS.md.
#ifndef SQLCM_SQLCM_LOAD_GOVERNOR_H_
#define SQLCM_SQLCM_LOAD_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

namespace sqlcm::cm {

class LoadGovernor {
 public:
  struct Options {
    /// Target ceiling for (hook time / wall time). 0 disables governing.
    double overhead_budget = 0.05;
    /// Recover (drop a level) when overhead < budget * recover_ratio.
    double recover_ratio = 0.5;
    /// Sliding-window length for the overhead estimate.
    int64_t window_micros = 100'000;
    /// Windows with fewer hook samples than this are not judged.
    int min_hooks_per_window = 16;
    int max_level = kLevelSampleEvents;
    /// At kLevelSampleEvents, evaluate rules for 1 in 2^sample_shift events.
    int sample_shift = 3;
  };

  enum Level : int {
    kLevelFull = 0,
    kLevelNoDetailedTiming = 1,
    kLevelNoTrace = 2,
    kLevelShedAging = 3,
    kLevelSampleEvents = 4,
  };

  LoadGovernor() = default;
  explicit LoadGovernor(Options options) : options_(options) {}

  /// Called whenever a shed level transition happens (with the governor's
  /// internal lock NOT held). Used by the engine to propagate level changes
  /// into LATs / trace / timing flags. Set before traffic starts.
  void SetLevelListener(std::function<void(int old_level, int new_level)> fn) {
    listener_ = std::move(fn);
  }

  /// Feeds one hook execution into the overhead estimate and rolls the
  /// window when it is full. Hot path: two relaxed atomic adds; the window
  /// roll takes a try-lock so concurrent hooks never queue behind it.
  void RecordHook(int64_t hook_micros, int64_t now_micros);

  int level() const { return level_.load(std::memory_order_relaxed); }
  bool shed_detailed_timing() const { return level() >= kLevelNoDetailedTiming; }
  bool shed_trace() const { return level() >= kLevelNoTrace; }
  bool shed_aging() const { return level() >= kLevelShedAging; }
  bool sample_events() const { return level() >= kLevelSampleEvents; }

  /// True when the event with this sequence number should get full rule
  /// evaluation. Always true below kLevelSampleEvents.
  bool AdmitEvent(uint64_t event_seq) const {
    if (!sample_events()) return true;
    return (event_seq & ((1u << options_.sample_shift) - 1)) == 0;
  }

  /// Pins the shed level (tests, benchmarks, operator override). Fires the
  /// listener like a measured transition would.
  void ForceLevel(int level);
  /// Returns to measured (automatic) level selection.
  void ClearForce();
  bool forced() const { return forced_.load(std::memory_order_relaxed); }

  /// Overhead fraction measured in the last completed window.
  double last_overhead_fraction() const;
  uint64_t level_raises() const { return raises_.load(std::memory_order_relaxed); }
  uint64_t level_drops() const { return drops_.load(std::memory_order_relaxed); }

  const Options& options() const { return options_; }

 private:
  void TransitionTo(int new_level, bool count);

  Options options_;
  std::function<void(int, int)> listener_;

  std::atomic<int> level_{kLevelFull};
  std::atomic<bool> forced_{false};
  std::atomic<uint64_t> raises_{0};
  std::atomic<uint64_t> drops_{0};

  std::atomic<int64_t> busy_micros_{0};
  std::atomic<int64_t> hook_count_{0};
  std::atomic<int64_t> window_start_micros_{0};

  mutable std::mutex roll_mutex_;
  double last_fraction_ = 0.0;
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_LOAD_GOVERNOR_H_
