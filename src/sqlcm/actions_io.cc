#include "sqlcm/actions_io.h"

#include <fstream>

#include "common/fault.h"

namespace sqlcm::cm {

using common::Status;

Status FileAppendingSink::SendMail(const std::string& body,
                                   const std::string& address) {
  return AppendLine("MAIL to=" + address + " body=" + body);
}

Status FileAppendingSink::RunExternal(const std::string& command) {
  return AppendLine("RUN " + command);
}

Status FileAppendingSink::AppendLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (common::FaultFires(kFaultActionAppend)) {
    return Status::IOError("fault injected: append to '" + path_ + "' failed");
  }
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    return Status::IOError("cannot open '" + path_ + "' for append");
  }
  out << line << '\n';
  return out ? Status::OK() : Status::IOError("append to '" + path_ + "' failed");
}

}  // namespace sqlcm::cm
