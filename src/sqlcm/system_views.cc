#include "sqlcm/system_views.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "catalog/schema.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "obs/span_ring.h"
#include "sqlcm/monitor_engine.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace sqlcm::cm {

using common::Row;
using common::Status;
using common::Value;

namespace {

catalog::ColumnType TypeCode(char code) {
  switch (code) {
    case 'i': return catalog::ColumnType::kInt;
    case 'd': return catalog::ColumnType::kDouble;
    case 'b': return catalog::ColumnType::kBool;
    default: return catalog::ColumnType::kString;
  }
}

// 64-bit hashes (qualifier / LAT-name refs) render as fixed-width hex so
// sqlcm_event_trace.qualifier_hash joins against sqlcm_trace_spans.detail
// without signed-overflow surprises.
std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

SystemViews::SystemViews(MonitorEngine* monitor, engine::Database* db)
    : monitor_(monitor), db_(db) {
  if (storage::Table* t = Register(kEngineStatsView,
                                   {{"name", 's'},
                                    {"kind", 's'},
                                    {"value", 'd'},
                                    {"detail", 's'}},
                                   {})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshEngineStats(t);
    });
  }
  if (storage::Table* t = Register(kRuleStatsView,
                                   {{"rule_id", 'i'},
                                    {"name", 's'},
                                    {"event", 's'},
                                    {"enabled", 'b'},
                                    {"evaluations", 'i'},
                                    {"condition_false", 'i'},
                                    {"fires", 'i'},
                                    {"errors", 'i'},
                                    {"action_count", 'i'},
                                    {"action_p50_us", 'd'},
                                    {"action_p95_us", 'd'},
                                    {"action_p99_us", 'd'},
                                    {"action_max_us", 'd'},
                                    {"quarantine_state", 's'},
                                    {"quarantine_trips", 'i'},
                                    {"quarantine_skipped", 'i'},
                                    {"actions_suppressed", 'i'},
                                    {"eval_mode", 's'},
                                    {"inline_reason", 's'}},
                                   {"rule_id"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshRuleStats(t);
    });
  }
  if (storage::Table* t = Register(kLatStatsView,
                                   {{"name", 's'},
                                    {"object_class", 's'},
                                    {"rows", 'i'},
                                    {"max_rows", 'i'},
                                    {"approx_bytes", 'i'},
                                    {"inserts", 'i'},
                                    {"evictions", 'i'},
                                    {"latch_acquisitions", 'i'},
                                    {"latch_contention", 'i'},
                                    {"aging_merges", 'i'},
                                    {"sketch_bytes", 'i'},
                                    {"sketch_cells", 'i'},
                                    {"sketch_collapses", 'i'},
                                    {"upsert_count", 'i'},
                                    {"upsert_p50_us", 'd'},
                                    {"upsert_p95_us", 'd'},
                                    {"upsert_p99_us", 'd'}},
                                   {"name"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshLatStats(t);
    });
  }
  if (storage::Table* t = Register(kEventTraceView,
                                   {{"seq", 'i'},
                                    {"ts_micros", 'i'},
                                    {"event", 's'},
                                    {"qualifier", 's'},
                                    {"qualifier_hash", 's'},
                                    {"rules_fired", 'i'},
                                    {"dispatch_micros", 'i'}},
                                   {"seq"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshEventTrace(t);
    });
  }
  if (storage::Table* t = Register(kFaultPointsView,
                                   {{"point", 's'},
                                    {"kind", 's'},
                                    {"probability", 'd'},
                                    {"max_fires", 'i'},
                                    {"hits", 'i'},
                                    {"fires", 'i'}},
                                   {"point"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshFaultPoints(t);
    });
  }
  if (storage::Table* t = Register(kTraceSpansView,
                                   {{"trace_id", 'i'},
                                    {"span_id", 'i'},
                                    {"parent_id", 'i'},
                                    {"depth", 'i'},
                                    {"kind", 's'},
                                    {"name", 's'},
                                    {"detail", 's'},
                                    {"duration_us", 'd'}},
                                   {"span_id"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshTraceSpans(t);
    });
  }
  if (storage::Table* t = Register(kSlowEventsView,
                                   {{"rank", 'i'},
                                    {"trace_id", 'i'},
                                    {"total_us", 'd'},
                                    {"span_id", 'i'},
                                    {"parent_id", 'i'},
                                    {"depth", 'i'},
                                    {"kind", 's'},
                                    {"name", 's'},
                                    {"detail", 's'},
                                    {"start_offset_us", 'd'},
                                    {"duration_us", 'd'}},
                                   {})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshSlowEvents(t);
    });
  }
  if (storage::Table* t = Register(kProfileView,
                                   {{"component", 's'},
                                    {"name", 's'},
                                    {"spans", 'i'},
                                    {"self_micros", 'd'},
                                    {"share_pct", 'd'}},
                                   {})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshProfile(t);
    });
  }
  if (storage::Table* t = Register(kRulePredicateStatsView,
                                   {{"event", 's'},
                                    {"lane", 's'},
                                    {"hash", 's'},
                                    {"predicate", 's'},
                                    {"rules", 'i'},
                                    {"eval_count", 'i'},
                                    {"pass_count", 'i'},
                                    {"pass_rate", 'd'},
                                    {"mean_cost_ns", 'd'},
                                    {"rank", 'i'}},
                                   {"event", "lane", "hash"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshRulePredicateStats(t);
    });
  }
}

SystemViews::~SystemViews() {
  for (const std::string& name : registered_) {
    (void)db_->catalog()->DropTable(name);
  }
}

storage::Table* SystemViews::Register(
    const std::string& name,
    std::vector<std::pair<std::string, char>> columns,
    const std::vector<std::string>& primary_key) {
  std::vector<catalog::Column> cols;
  cols.reserve(columns.size());
  for (auto& [col_name, code] : columns) {
    cols.push_back({std::move(col_name), TypeCode(code)});
  }
  auto schema = catalog::TableSchema::Create(name, std::move(cols),
                                             primary_key);
  if (!schema.ok()) return nullptr;
  auto created = db_->catalog()->CreateTable(std::move(*schema));
  if (!created.ok()) {
    // A user table (or an earlier monitor's leftover view) owns the name;
    // don't hijack it.
    return nullptr;
  }
  registered_.push_back(name);
  return *created;
}

void SystemViews::RefreshEngineStats(storage::Table* table) {
  table->Truncate();
  auto add = [table](const std::string& name, const char* kind, double value,
                     std::string detail) {
    Row row;
    row.push_back(Value::String(name));
    row.push_back(Value::String(kind));
    row.push_back(Value::Double(value));
    row.push_back(Value::String(std::move(detail)));
    (void)table->Insert(std::move(row));
  };

  for (const auto& sample : monitor_->metrics().registry.Snapshot()) {
    add(sample.name, sample.kind, sample.value, "");
  }

  const engine::PlanCache* cache = db_->plan_cache();
  add("plan_cache.hits", "counter", static_cast<double>(cache->hits()), "");
  add("plan_cache.misses", "counter", static_cast<double>(cache->misses()),
      "");
  add("plan_cache.evictions", "counter",
      static_cast<double>(cache->evictions()), "");
  add("plan_cache.size", "gauge", static_cast<double>(cache->size()), "");

  add("monitor.active_queries", "gauge",
      static_cast<double>(monitor_->active_query_count()), "");
  add("monitor.rules", "gauge", static_cast<double>(monitor_->rule_count()),
      "");
  add("monitor.lats", "gauge",
      static_cast<double>(monitor_->SnapshotLats().size()), "");
  add("monitor.detailed_timing", "gauge",
      monitor_->detailed_timing() ? 1.0 : 0.0, "");

  const obs::TraceRing& trace = *monitor_->trace_ring();
  add("trace.enabled", "gauge", trace.enabled() ? 1.0 : 0.0, "");
  add("trace.capacity", "gauge", static_cast<double>(trace.capacity()), "");
  add("trace.total_recorded", "counter",
      static_cast<double>(trace.total_recorded()), "");
  add("trace.snapshot_drops", "counter",
      static_cast<double>(trace.snapshot_drops()), "");

  const obs::SpanRing& spans = *monitor_->span_ring();
  add("spans.enabled", "gauge", spans.enabled() ? 1.0 : 0.0, "");
  add("spans.capacity", "gauge", static_cast<double>(spans.capacity()), "");
  add("spans.total_recorded", "counter",
      static_cast<double>(spans.total_recorded()), "");
  add("spans.snapshot_drops", "counter",
      static_cast<double>(spans.snapshot_drops()), "");
  add("spans.sample_rate", "gauge", monitor_->span_sample_rate(), "");

  const obs::SlowTraceTable& slow = *monitor_->slow_traces();
  add("slow_traces.capacity", "gauge", static_cast<double>(slow.capacity()),
      "");
  add("slow_traces.retained", "gauge",
      static_cast<double>(slow.Snapshot().size()), "");
  add("slow_traces.offers", "counter", static_cast<double>(slow.offers()), "");
  add("slow_traces.admits", "counter", static_cast<double>(slow.admits()), "");

  const LoadGovernor& governor = *monitor_->governor();
  add("governor.overhead_fraction", "gauge",
      governor.last_overhead_fraction(), "");
  add("governor.overhead_budget", "gauge",
      governor.options().overhead_budget, "");
  add("governor.forced", "gauge", governor.forced() ? 1.0 : 0.0, "");

  // Deferred-evaluation pipeline gauges (counters surface through the
  // registry snapshot above as queue.*).
  add("queue.depth", "gauge",
      static_cast<double>(monitor_->event_queue_depth()), "");
  add("queue.capacity", "gauge",
      static_cast<double>(monitor_->event_queue_capacity()), "");

  add("errors.total", "counter", static_cast<double>(monitor_->total_errors()),
      "");
  add("errors.dropped", "counter",
      static_cast<double>(monitor_->dropped_errors()), "");
  for (const auto& err : monitor_->recent_errors()) {
    add("error." + std::to_string(err.seq), "error",
        static_cast<double>(err.ts_micros), err.message);
  }
}

void SystemViews::RefreshRuleStats(storage::Table* table) {
  table->Truncate();
  for (const auto& rule : monitor_->SnapshotRules()) {
    const RuleStats& stats = rule->stats;
    const auto pct = stats.action_micros.ComputePercentiles();
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(rule->id)));
    row.push_back(Value::String(rule->name));
    row.push_back(Value::String(EventKindName(rule->event.kind)));
    row.push_back(Value::Bool(rule->enabled));
    row.push_back(Value::Int(static_cast<int64_t>(stats.evaluations.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.condition_false.value())));
    row.push_back(Value::Int(static_cast<int64_t>(stats.fires.value())));
    row.push_back(Value::Int(static_cast<int64_t>(stats.errors.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.action_micros.count())));
    row.push_back(Value::Double(pct.p50));
    row.push_back(Value::Double(pct.p95));
    row.push_back(Value::Double(pct.p99));
    row.push_back(
        Value::Double(static_cast<double>(stats.action_micros.max_micros())));
    row.push_back(Value::String(rule->breaker.state_name()));
    row.push_back(Value::Int(static_cast<int64_t>(rule->breaker.trips())));
    row.push_back(Value::Int(static_cast<int64_t>(rule->breaker.skipped())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.actions_suppressed.value())));
    row.push_back(Value::String(rule->deferrable ? "deferred" : "inline"));
    row.push_back(Value::String(rule->inline_reason));
    (void)table->Insert(std::move(row));
  }
}

void SystemViews::RefreshRulePredicateStats(storage::Table* table) {
  table->Truncate();
  for (const auto& pred : monitor_->SnapshotPredicateStats()) {
    Row row;
    row.push_back(Value::String(pred.event));
    row.push_back(Value::String(pred.lane));
    row.push_back(Value::String(HexU64(pred.hash)));
    row.push_back(Value::String(pred.text));
    row.push_back(Value::Int(static_cast<int64_t>(pred.subscribers)));
    row.push_back(Value::Int(static_cast<int64_t>(pred.evals)));
    row.push_back(Value::Int(static_cast<int64_t>(pred.passes)));
    row.push_back(Value::Double(
        pred.evals == 0 ? 0.0
                        : static_cast<double>(pred.passes) /
                              static_cast<double>(pred.evals)));
    row.push_back(Value::Double(pred.mean_cost_ns));
    row.push_back(Value::Int(pred.rank));
    (void)table->Insert(std::move(row));
  }
}

void SystemViews::RefreshFaultPoints(storage::Table* table) {
  table->Truncate();
  for (const auto& point : common::FaultRegistry::Get()->Snapshot()) {
    Row row;
    row.push_back(Value::String(point.point));
    row.push_back(Value::String(common::FaultKindName(point.spec.kind)));
    row.push_back(Value::Double(point.spec.probability));
    row.push_back(Value::Int(point.spec.max_fires));
    row.push_back(Value::Int(static_cast<int64_t>(point.hits)));
    row.push_back(Value::Int(static_cast<int64_t>(point.fires)));
    (void)table->Insert(std::move(row));
  }
}

void SystemViews::RefreshLatStats(storage::Table* table) {
  table->Truncate();
  for (const auto& lat : monitor_->SnapshotLats()) {
    const LatStats& stats = lat->stats();
    const auto pct = stats.upsert_micros.ComputePercentiles();
    Row row;
    row.push_back(Value::String(lat->name()));
    row.push_back(
        Value::String(MonitoredClassName(lat->spec().object_class)));
    row.push_back(Value::Int(static_cast<int64_t>(lat->size())));
    row.push_back(Value::Int(static_cast<int64_t>(lat->spec().max_rows)));
    row.push_back(Value::Int(static_cast<int64_t>(lat->approx_bytes())));
    row.push_back(Value::Int(static_cast<int64_t>(stats.inserts.value())));
    row.push_back(Value::Int(static_cast<int64_t>(stats.evictions.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.latch_acquisitions.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.latch_contention.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.aging_merges.value())));
    size_t sketch_bytes = 0, sketch_cells = 0;
    lat->SketchFootprint(&sketch_bytes, &sketch_cells);
    row.push_back(Value::Int(static_cast<int64_t>(sketch_bytes)));
    row.push_back(Value::Int(static_cast<int64_t>(sketch_cells)));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.sketch_collapses.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.upsert_micros.count())));
    row.push_back(Value::Double(pct.p50));
    row.push_back(Value::Double(pct.p95));
    row.push_back(Value::Double(pct.p99));
    (void)table->Insert(std::move(row));
  }
}

void SystemViews::RefreshEventTrace(storage::Table* table) {
  table->Truncate();
  for (const auto& ev : monitor_->trace_ring()->Snapshot()) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(ev.seq)));
    row.push_back(Value::Int(ev.ts_micros));
    row.push_back(
        Value::String(EventKindName(static_cast<EventKind>(ev.kind))));
    row.push_back(Value::String(ev.qualifier));
    row.push_back(Value::String(HexU64(ev.qualifier_hash)));
    row.push_back(Value::Int(static_cast<int64_t>(ev.rules_fired)));
    row.push_back(Value::Int(ev.dispatch_micros));
    (void)table->Insert(std::move(row));
  }
}

namespace {

/// Shared name/detail resolution for span rows: rule ids resolve through the
/// rule snapshot, LAT name hashes through Fnv1a64 of the snapshot names.
struct SpanNameResolver {
  std::unordered_map<uint64_t, std::string> rules;
  std::unordered_map<uint64_t, std::string> lats;

  explicit SpanNameResolver(MonitorEngine* monitor) {
    for (const auto& rule : monitor->SnapshotRules()) {
      rules.emplace(rule->id, rule->name);
    }
    for (const auto& lat : monitor->SnapshotLats()) {
      lats.emplace(common::Fnv1a64(lat->lower_name()), lat->name());
    }
  }

  std::string Name(const obs::Span& span) const {
    switch (span.kind) {
      case obs::SpanKind::kEvent:
        return EventKindName(static_cast<EventKind>(span.detail));
      case obs::SpanKind::kCondition:
      case obs::SpanKind::kAction: {
        auto it = rules.find(span.ref);
        if (it != rules.end()) return it->second;
        return "rule#" + std::to_string(span.ref);
      }
      case obs::SpanKind::kLatUpsert:
      case obs::SpanKind::kCheckpoint: {
        auto it = lats.find(span.ref);
        if (it != lats.end()) return it->second;
        return "lat#" + HexU64(span.ref);
      }
      case obs::SpanKind::kShip:
      case obs::SpanKind::kIngest:
        // ref is the federation node-id hash; no local name table.
        return "node#" + HexU64(span.ref);
      case obs::SpanKind::kQueueWait:
        // detail carries the deferred event's kind.
        return EventKindName(static_cast<EventKind>(span.detail));
    }
    return "";
  }

  std::string Detail(const obs::Span& span) const {
    switch (span.kind) {
      case obs::SpanKind::kEvent:
        // ref holds the qualifier hash; joins sqlcm_event_trace.
        return HexU64(span.ref);
      case obs::SpanKind::kAction:
        return ActionKindName(static_cast<ActionKind>(span.detail));
      default:
        return "";
    }
  }
};

}  // namespace

void SystemViews::RefreshTraceSpans(storage::Table* table) {
  table->Truncate();
  const SpanNameResolver resolver(monitor_);
  for (const auto& span : monitor_->span_ring()->Snapshot()) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(span.trace_id)));
    row.push_back(Value::Int(static_cast<int64_t>(span.span_id)));
    row.push_back(Value::Int(static_cast<int64_t>(span.parent_id)));
    row.push_back(Value::Int(span.depth));
    row.push_back(Value::String(obs::SpanKindName(span.kind)));
    row.push_back(Value::String(resolver.Name(span)));
    row.push_back(Value::String(resolver.Detail(span)));
    row.push_back(Value::Double(static_cast<double>(span.duration_nanos) /
                                1000.0));
    (void)table->Insert(std::move(row));
  }
}

void SystemViews::RefreshSlowEvents(storage::Table* table) {
  table->Truncate();
  const SpanNameResolver resolver(monitor_);
  int64_t rank = 0;
  for (const auto& exemplar : monitor_->slow_traces()->Snapshot()) {
    ++rank;
    int64_t base_nanos = 0;
    if (!exemplar.spans.empty()) {
      base_nanos = exemplar.spans.front().start_nanos;
      for (const auto& span : exemplar.spans) {
        base_nanos = std::min(base_nanos, span.start_nanos);
      }
    }
    for (const auto& span : exemplar.spans) {
      Row row;
      row.push_back(Value::Int(rank));
      row.push_back(Value::Int(static_cast<int64_t>(exemplar.trace_id)));
      row.push_back(Value::Double(
          static_cast<double>(exemplar.total_nanos) / 1000.0));
      row.push_back(Value::Int(static_cast<int64_t>(span.span_id)));
      row.push_back(Value::Int(static_cast<int64_t>(span.parent_id)));
      row.push_back(Value::Int(span.depth));
      row.push_back(Value::String(obs::SpanKindName(span.kind)));
      row.push_back(Value::String(resolver.Name(span)));
      row.push_back(Value::String(resolver.Detail(span)));
      row.push_back(Value::Double(
          static_cast<double>(span.start_nanos - base_nanos) / 1000.0));
      row.push_back(Value::Double(static_cast<double>(span.duration_nanos) /
                                  1000.0));
      (void)table->Insert(std::move(row));
    }
  }
}

void SystemViews::RefreshProfile(storage::Table* table) {
  table->Truncate();
  const MonitorMetrics& metrics = monitor_->metrics();
  const double dispatch_nanos =
      static_cast<double>(metrics.profile_dispatch_nanos.value());
  auto add = [table, dispatch_nanos](const char* component,
                                     const std::string& name, uint64_t spans,
                                     double nanos) {
    Row row;
    row.push_back(Value::String(component));
    row.push_back(Value::String(name));
    row.push_back(Value::Int(static_cast<int64_t>(spans)));
    row.push_back(Value::Double(nanos / 1000.0));
    row.push_back(Value::Double(
        dispatch_nanos > 0 ? nanos / dispatch_nanos * 100.0 : 0.0));
    (void)table->Insert(std::move(row));
  };

  add("dispatch", "total", metrics.profile_events.value(), dispatch_nanos);
  for (const auto& rule : monitor_->SnapshotRules()) {
    // Per-rule time is condition + action wall time (inclusive of any LAT
    // upserts the actions performed), so rule rows sum to ~dispatch total.
    add("rule", rule->name, rule->stats.profiled_evals.value(),
        static_cast<double>(rule->stats.condition_nanos.value() +
                            rule->stats.action_nanos.value()));
  }
  for (size_t i = 0; i < kNumActionKinds; ++i) {
    const uint64_t count = metrics.action_kind_spans[i].value();
    if (count == 0) continue;
    add("action", ActionKindName(static_cast<ActionKind>(i)), count,
        static_cast<double>(metrics.action_kind_nanos[i].value()));
  }
  for (const auto& lat : monitor_->SnapshotLats()) {
    const LatStats& stats = lat->stats();
    if (stats.upsert_spans.value() == 0) continue;
    add("lat", lat->name(), stats.upsert_spans.value(),
        static_cast<double>(stats.upsert_nanos.value()));
  }
  // Checkpoint I/O runs on the timer thread, outside event dispatch; its
  // share is still expressed against dispatch time for comparability.
  add("checkpoint", "total", metrics.profile_checkpoint_spans.value(),
      static_cast<double>(metrics.profile_checkpoint_nanos.value()));
  // Deferred-event queue wait (enqueue->drain) is latency, not CPU; like
  // checkpoint it is expressed against dispatch time for comparability.
  add("queue", "wait", metrics.profile_queue_spans.value(),
      static_cast<double>(metrics.profile_queue_nanos.value()));
}

}  // namespace sqlcm::cm
