#include "sqlcm/system_views.h"

#include <utility>

#include "catalog/schema.h"
#include "common/fault.h"
#include "engine/database.h"
#include "sqlcm/monitor_engine.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace sqlcm::cm {

using common::Row;
using common::Status;
using common::Value;

namespace {

catalog::ColumnType TypeCode(char code) {
  switch (code) {
    case 'i': return catalog::ColumnType::kInt;
    case 'd': return catalog::ColumnType::kDouble;
    case 'b': return catalog::ColumnType::kBool;
    default: return catalog::ColumnType::kString;
  }
}

}  // namespace

SystemViews::SystemViews(MonitorEngine* monitor, engine::Database* db)
    : monitor_(monitor), db_(db) {
  if (storage::Table* t = Register(kEngineStatsView,
                                   {{"name", 's'},
                                    {"kind", 's'},
                                    {"value", 'd'},
                                    {"detail", 's'}},
                                   {})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshEngineStats(t);
    });
  }
  if (storage::Table* t = Register(kRuleStatsView,
                                   {{"rule_id", 'i'},
                                    {"name", 's'},
                                    {"event", 's'},
                                    {"enabled", 'b'},
                                    {"evaluations", 'i'},
                                    {"condition_false", 'i'},
                                    {"fires", 'i'},
                                    {"errors", 'i'},
                                    {"action_count", 'i'},
                                    {"action_p50_us", 'd'},
                                    {"action_p95_us", 'd'},
                                    {"action_p99_us", 'd'},
                                    {"action_max_us", 'd'},
                                    {"quarantine_state", 's'},
                                    {"quarantine_trips", 'i'},
                                    {"quarantine_skipped", 'i'}},
                                   {"rule_id"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshRuleStats(t);
    });
  }
  if (storage::Table* t = Register(kLatStatsView,
                                   {{"name", 's'},
                                    {"object_class", 's'},
                                    {"rows", 'i'},
                                    {"max_rows", 'i'},
                                    {"approx_bytes", 'i'},
                                    {"inserts", 'i'},
                                    {"evictions", 'i'},
                                    {"latch_acquisitions", 'i'},
                                    {"latch_contention", 'i'},
                                    {"aging_merges", 'i'},
                                    {"upsert_count", 'i'},
                                    {"upsert_p50_us", 'd'},
                                    {"upsert_p95_us", 'd'},
                                    {"upsert_p99_us", 'd'}},
                                   {"name"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshLatStats(t);
    });
  }
  if (storage::Table* t = Register(kEventTraceView,
                                   {{"seq", 'i'},
                                    {"ts_micros", 'i'},
                                    {"event", 's'},
                                    {"qualifier", 's'},
                                    {"rules_fired", 'i'},
                                    {"dispatch_micros", 'i'}},
                                   {"seq"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshEventTrace(t);
    });
  }
  if (storage::Table* t = Register(kFaultPointsView,
                                   {{"point", 's'},
                                    {"kind", 's'},
                                    {"probability", 'd'},
                                    {"max_fires", 'i'},
                                    {"hits", 'i'},
                                    {"fires", 'i'}},
                                   {"point"})) {
    t->SetVirtualRefresh([this, t] {
      std::lock_guard<std::mutex> lock(refresh_mutex_);
      RefreshFaultPoints(t);
    });
  }
}

SystemViews::~SystemViews() {
  for (const std::string& name : registered_) {
    (void)db_->catalog()->DropTable(name);
  }
}

storage::Table* SystemViews::Register(
    const std::string& name,
    std::vector<std::pair<std::string, char>> columns,
    const std::vector<std::string>& primary_key) {
  std::vector<catalog::Column> cols;
  cols.reserve(columns.size());
  for (auto& [col_name, code] : columns) {
    cols.push_back({std::move(col_name), TypeCode(code)});
  }
  auto schema = catalog::TableSchema::Create(name, std::move(cols),
                                             primary_key);
  if (!schema.ok()) return nullptr;
  auto created = db_->catalog()->CreateTable(std::move(*schema));
  if (!created.ok()) {
    // A user table (or an earlier monitor's leftover view) owns the name;
    // don't hijack it.
    return nullptr;
  }
  registered_.push_back(name);
  return *created;
}

void SystemViews::RefreshEngineStats(storage::Table* table) {
  table->Truncate();
  auto add = [table](const std::string& name, const char* kind, double value,
                     std::string detail) {
    Row row;
    row.push_back(Value::String(name));
    row.push_back(Value::String(kind));
    row.push_back(Value::Double(value));
    row.push_back(Value::String(std::move(detail)));
    (void)table->Insert(std::move(row));
  };

  for (const auto& sample : monitor_->metrics().registry.Snapshot()) {
    add(sample.name, sample.kind, sample.value, "");
  }

  const engine::PlanCache* cache = db_->plan_cache();
  add("plan_cache.hits", "counter", static_cast<double>(cache->hits()), "");
  add("plan_cache.misses", "counter", static_cast<double>(cache->misses()),
      "");
  add("plan_cache.evictions", "counter",
      static_cast<double>(cache->evictions()), "");
  add("plan_cache.size", "gauge", static_cast<double>(cache->size()), "");

  add("monitor.active_queries", "gauge",
      static_cast<double>(monitor_->active_query_count()), "");
  add("monitor.rules", "gauge", static_cast<double>(monitor_->rule_count()),
      "");
  add("monitor.lats", "gauge",
      static_cast<double>(monitor_->SnapshotLats().size()), "");
  add("monitor.detailed_timing", "gauge",
      monitor_->detailed_timing() ? 1.0 : 0.0, "");

  const obs::TraceRing& trace = *monitor_->trace_ring();
  add("trace.enabled", "gauge", trace.enabled() ? 1.0 : 0.0, "");
  add("trace.capacity", "gauge", static_cast<double>(trace.capacity()), "");
  add("trace.total_recorded", "counter",
      static_cast<double>(trace.total_recorded()), "");

  const LoadGovernor& governor = *monitor_->governor();
  add("governor.overhead_fraction", "gauge",
      governor.last_overhead_fraction(), "");
  add("governor.overhead_budget", "gauge",
      governor.options().overhead_budget, "");
  add("governor.forced", "gauge", governor.forced() ? 1.0 : 0.0, "");

  add("errors.total", "counter", static_cast<double>(monitor_->total_errors()),
      "");
  for (const auto& err : monitor_->recent_errors()) {
    add("error." + std::to_string(err.seq), "error",
        static_cast<double>(err.ts_micros), err.message);
  }
}

void SystemViews::RefreshRuleStats(storage::Table* table) {
  table->Truncate();
  for (const auto& rule : monitor_->SnapshotRules()) {
    const RuleStats& stats = rule->stats;
    const auto pct = stats.action_micros.ComputePercentiles();
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(rule->id)));
    row.push_back(Value::String(rule->name));
    row.push_back(Value::String(EventKindName(rule->event.kind)));
    row.push_back(Value::Bool(rule->enabled));
    row.push_back(Value::Int(static_cast<int64_t>(stats.evaluations.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.condition_false.value())));
    row.push_back(Value::Int(static_cast<int64_t>(stats.fires.value())));
    row.push_back(Value::Int(static_cast<int64_t>(stats.errors.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.action_micros.count())));
    row.push_back(Value::Double(pct.p50));
    row.push_back(Value::Double(pct.p95));
    row.push_back(Value::Double(pct.p99));
    row.push_back(
        Value::Double(static_cast<double>(stats.action_micros.max_micros())));
    row.push_back(Value::String(rule->breaker.state_name()));
    row.push_back(Value::Int(static_cast<int64_t>(rule->breaker.trips())));
    row.push_back(Value::Int(static_cast<int64_t>(rule->breaker.skipped())));
    (void)table->Insert(std::move(row));
  }
}

void SystemViews::RefreshFaultPoints(storage::Table* table) {
  table->Truncate();
  for (const auto& point : common::FaultRegistry::Get()->Snapshot()) {
    Row row;
    row.push_back(Value::String(point.point));
    row.push_back(Value::String(common::FaultKindName(point.spec.kind)));
    row.push_back(Value::Double(point.spec.probability));
    row.push_back(Value::Int(point.spec.max_fires));
    row.push_back(Value::Int(static_cast<int64_t>(point.hits)));
    row.push_back(Value::Int(static_cast<int64_t>(point.fires)));
    (void)table->Insert(std::move(row));
  }
}

void SystemViews::RefreshLatStats(storage::Table* table) {
  table->Truncate();
  for (const auto& lat : monitor_->SnapshotLats()) {
    const LatStats& stats = lat->stats();
    const auto pct = stats.upsert_micros.ComputePercentiles();
    Row row;
    row.push_back(Value::String(lat->name()));
    row.push_back(
        Value::String(MonitoredClassName(lat->spec().object_class)));
    row.push_back(Value::Int(static_cast<int64_t>(lat->size())));
    row.push_back(Value::Int(static_cast<int64_t>(lat->spec().max_rows)));
    row.push_back(Value::Int(static_cast<int64_t>(lat->approx_bytes())));
    row.push_back(Value::Int(static_cast<int64_t>(stats.inserts.value())));
    row.push_back(Value::Int(static_cast<int64_t>(stats.evictions.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.latch_acquisitions.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.latch_contention.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.aging_merges.value())));
    row.push_back(
        Value::Int(static_cast<int64_t>(stats.upsert_micros.count())));
    row.push_back(Value::Double(pct.p50));
    row.push_back(Value::Double(pct.p95));
    row.push_back(Value::Double(pct.p99));
    (void)table->Insert(std::move(row));
  }
}

void SystemViews::RefreshEventTrace(storage::Table* table) {
  table->Truncate();
  for (const auto& ev : monitor_->trace_ring()->Snapshot()) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(ev.seq)));
    row.push_back(Value::Int(ev.ts_micros));
    row.push_back(
        Value::String(EventKindName(static_cast<EventKind>(ev.kind))));
    row.push_back(Value::String(ev.qualifier));
    row.push_back(Value::Int(static_cast<int64_t>(ev.rules_fired)));
    row.push_back(Value::Int(ev.dispatch_micros));
    (void)table->Insert(std::move(row));
  }
}

}  // namespace sqlcm::cm
