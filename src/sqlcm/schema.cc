#include "sqlcm/schema.h"

#include "common/string_util.h"

namespace sqlcm::cm {

using common::Result;
using common::Status;
using common::Value;
using common::ValueKind;

const char* MonitoredClassName(MonitoredClass cls) {
  switch (cls) {
    case MonitoredClass::kQuery: return "Query";
    case MonitoredClass::kTransaction: return "Transaction";
    case MonitoredClass::kBlocker: return "Blocker";
    case MonitoredClass::kBlocked: return "Blocked";
    case MonitoredClass::kTimer: return "Timer";
    case MonitoredClass::kEvicted: return "Evicted";
  }
  return "?";
}

Result<MonitoredClass> ParseMonitoredClassName(std::string_view name) {
  using common::EqualsIgnoreCase;
  if (EqualsIgnoreCase(name, "Query")) return MonitoredClass::kQuery;
  if (EqualsIgnoreCase(name, "Transaction")) return MonitoredClass::kTransaction;
  if (EqualsIgnoreCase(name, "Blocker")) return MonitoredClass::kBlocker;
  if (EqualsIgnoreCase(name, "Blocked")) return MonitoredClass::kBlocked;
  if (EqualsIgnoreCase(name, "Timer")) return MonitoredClass::kTimer;
  if (EqualsIgnoreCase(name, "Evicted")) return MonitoredClass::kEvicted;
  return Status::NotFound("unknown monitored class '" + std::string(name) +
                          "'");
}

namespace {

const QueryRecord& AsQuery(const void* record) {
  return *static_cast<const QueryRecord*>(record);
}
const BlockEventView& AsBlock(const void* record) {
  return *static_cast<const BlockEventView*>(record);
}
const TransactionRecord& AsTxn(const void* record) {
  return *static_cast<const TransactionRecord*>(record);
}
const TimerRecord& AsTimer(const void* record) {
  return *static_cast<const TimerRecord*>(record);
}

std::vector<AttributeDef> QueryAttributes() {
  return {
      {"ID", ValueKind::kInt,
       [](const void* r) { return Value::Int(static_cast<int64_t>(AsQuery(r).id)); }},
      {"Query_Text", ValueKind::kString,
       [](const void* r) { return Value::String(AsQuery(r).query_text()); }},
      {"Logical_Signature", ValueKind::kString,
       [](const void* r) { return Value::String(AsQuery(r).logical_sig()); }},
      {"Physical_Signature", ValueKind::kString,
       [](const void* r) { return Value::String(AsQuery(r).physical_sig()); }},
      {"Start_Time", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsQuery(r).start_micros); }},
      {"Duration", ValueKind::kDouble,
       [](const void* r) { return Value::Double(AsQuery(r).duration_secs); }},
      {"Estimated_Cost", ValueKind::kDouble,
       [](const void* r) { return Value::Double(AsQuery(r).estimated_cost); }},
      {"Time_Blocked", ValueKind::kDouble,
       [](const void* r) { return Value::Double(AsQuery(r).time_blocked_secs); }},
      {"Times_Blocked", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsQuery(r).times_blocked); }},
      {"Queries_Blocked", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsQuery(r).queries_blocked); }},
      {"Number_of_instances", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsQuery(r).number_of_instances); }},
      {"Query_Type", ValueKind::kString,
       [](const void* r) { return Value::String(AsQuery(r).query_type); }},
      {"Session_ID", ValueKind::kInt,
       [](const void* r) { return Value::Int(static_cast<int64_t>(AsQuery(r).session_id)); }},
      {"Transaction_ID", ValueKind::kInt,
       [](const void* r) { return Value::Int(static_cast<int64_t>(AsQuery(r).txn_id)); }},
      {"User", ValueKind::kString,
       [](const void* r) { return Value::String(AsQuery(r).user); }},
      {"Application", ValueKind::kString,
       [](const void* r) { return Value::String(AsQuery(r).application); }},
      {"Concurrent_User_Queries", ValueKind::kInt,
       [](const void* r) {
         return Value::Int(AsQuery(r).concurrent_user_queries);
       }},
  };
}

/// Blocker/Blocked: the full Query schema (delegating to the underlying
/// query) plus the conflict context.
std::vector<AttributeDef> BlockAttributes() {
  std::vector<AttributeDef> defs = {
      {"ID", ValueKind::kInt,
       [](const void* r) { return Value::Int(static_cast<int64_t>(AsBlock(r).query->id)); }},
      {"Query_Text", ValueKind::kString,
       [](const void* r) { return Value::String(AsBlock(r).query->query_text()); }},
      {"Logical_Signature", ValueKind::kString,
       [](const void* r) { return Value::String(AsBlock(r).query->logical_sig()); }},
      {"Physical_Signature", ValueKind::kString,
       [](const void* r) { return Value::String(AsBlock(r).query->physical_sig()); }},
      {"Start_Time", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsBlock(r).query->start_micros); }},
      {"Duration", ValueKind::kDouble,
       [](const void* r) { return Value::Double(AsBlock(r).query->duration_secs); }},
      {"Estimated_Cost", ValueKind::kDouble,
       [](const void* r) { return Value::Double(AsBlock(r).query->estimated_cost); }},
      {"Time_Blocked", ValueKind::kDouble,
       [](const void* r) { return Value::Double(AsBlock(r).query->time_blocked_secs); }},
      {"Times_Blocked", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsBlock(r).query->times_blocked); }},
      {"Queries_Blocked", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsBlock(r).query->queries_blocked); }},
      {"Query_Type", ValueKind::kString,
       [](const void* r) { return Value::String(AsBlock(r).query->query_type); }},
      {"Session_ID", ValueKind::kInt,
       [](const void* r) { return Value::Int(static_cast<int64_t>(AsBlock(r).query->session_id)); }},
      {"Transaction_ID", ValueKind::kInt,
       [](const void* r) { return Value::Int(static_cast<int64_t>(AsBlock(r).query->txn_id)); }},
      {"User", ValueKind::kString,
       [](const void* r) { return Value::String(AsBlock(r).query->user); }},
      {"Application", ValueKind::kString,
       [](const void* r) { return Value::String(AsBlock(r).query->application); }},
      // Conflict context.
      {"Wait_Secs", ValueKind::kDouble,
       [](const void* r) { return Value::Double(AsBlock(r).wait_secs); }},
      {"Resource", ValueKind::kString,
       [](const void* r) { return Value::String(AsBlock(r).resource); }},
  };
  return defs;
}

std::vector<AttributeDef> TransactionAttributes() {
  return {
      {"ID", ValueKind::kInt,
       [](const void* r) { return Value::Int(static_cast<int64_t>(AsTxn(r).id)); }},
      {"Logical_Signature", ValueKind::kString,
       [](const void* r) { return Value::String(AsTxn(r).logical_signature); }},
      {"Physical_Signature", ValueKind::kString,
       [](const void* r) { return Value::String(AsTxn(r).physical_signature); }},
      {"Start_Time", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsTxn(r).start_micros); }},
      {"Duration", ValueKind::kDouble,
       [](const void* r) { return Value::Double(AsTxn(r).duration_secs); }},
      {"Num_Queries", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsTxn(r).num_queries); }},
      {"Session_ID", ValueKind::kInt,
       [](const void* r) { return Value::Int(static_cast<int64_t>(AsTxn(r).session_id)); }},
      {"User", ValueKind::kString,
       [](const void* r) { return Value::String(AsTxn(r).user); }},
      {"Application", ValueKind::kString,
       [](const void* r) { return Value::String(AsTxn(r).application); }},
  };
}

std::vector<AttributeDef> TimerAttributes() {
  return {
      {"Name", ValueKind::kString,
       [](const void* r) { return Value::String(AsTimer(r).name); }},
      {"Current_Time", ValueKind::kDouble,
       [](const void* r) { return Value::Double(AsTimer(r).now_secs); }},
      {"Interval", ValueKind::kDouble,
       [](const void* r) {
         return Value::Double(static_cast<double>(AsTimer(r).interval_micros) /
                              1e6);
       }},
      {"Remaining_Alarms", ValueKind::kInt,
       [](const void* r) { return Value::Int(AsTimer(r).remaining_alarms); }},
  };
}

}  // namespace

ObjectSchema::ObjectSchema() {
  attributes_[static_cast<size_t>(MonitoredClass::kQuery)] = QueryAttributes();
  attributes_[static_cast<size_t>(MonitoredClass::kTransaction)] =
      TransactionAttributes();
  attributes_[static_cast<size_t>(MonitoredClass::kBlocker)] =
      BlockAttributes();
  attributes_[static_cast<size_t>(MonitoredClass::kBlocked)] =
      BlockAttributes();
  attributes_[static_cast<size_t>(MonitoredClass::kTimer)] = TimerAttributes();
  // kEvicted: dynamic (LAT columns); left empty here.
}

const ObjectSchema& ObjectSchema::Get() {
  static const ObjectSchema* const kSchema = new ObjectSchema();
  return *kSchema;
}

int ObjectSchema::FindAttribute(MonitoredClass cls,
                                std::string_view name) const {
  const auto& defs = attributes(cls);
  for (size_t i = 0; i < defs.size(); ++i) {
    if (common::EqualsIgnoreCase(defs[i].name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace sqlcm::cm
