// Shared predicate index + online learned condition ordering (ROADMAP
// item 2; paper §5 evaluates each rule's condition independently in
// authoring order).
//
// Rules on one event class typically share conjuncts — variants of
// `Query.Duration > k * LAT.Avg_Duration` — so the engine decomposes every
// compiled condition into its top-level AND-chain, canonicalizes each
// conjunct to text, and groups rules by conjunct hash. During dispatch each
// distinct conjunct is evaluated at most once per event; its three-valued
// outcome is memoized and fanned out to every subscribing rule. LAT-row
// lookups are likewise shared through the per-event `EvalContext::lat_rows`
// cache, which now survives across rules of one event (it is invalidated
// whenever a fired rule mutates LAT state mid-event, so every rule still
// sees exactly the LAT state naive evaluation would).
//
// On top of the shared index sits online learned ordering: each canonical
// predicate carries observed pass-rate and cost EWMAs, and a UCB1-style
// explore/exploit score (adapted from FrancoDB's QueryPlanOptimizer /
// PredicateSelectivity) periodically re-sorts every rule's conjunct walk so
// the cheapest, most-rejective predicates run first. Learned state is keyed
// by canonical hash in an engine-level registry, so it survives CREATE
// RULE / DROP RULE index rebuilds.
//
// Firing semantics are identical to naive per-rule evaluation: FALSE, NULL
// and missing-LAT-row conjuncts all reject (§5.2). With learned ordering
// off, error reporting is also bit-identical (the walk mirrors naive
// left-to-right AND evaluation: FALSE short-circuits, NULL does not, and
// any error falls back to the naive evaluator for exact accounting). With
// learned ordering on, a reordered walk may reject before reaching a
// conjunct whose evaluation would have raised an error — strictly fewer
// errors, same fires. See docs/PERFORMANCE.md §"Predicate index".
#ifndef SQLCM_SQLCM_PREDICATE_INDEX_H_
#define SQLCM_SQLCM_PREDICATE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sqlcm/rule.h"

namespace sqlcm::cm {

/// Lock-free learning state for one canonical predicate. Shared (via
/// shared_ptr) by every index generation containing the predicate so
/// selectivity/cost learned before a CREATE/DROP RULE swap or a reorder is
/// not thrown away.
struct PredicateStats {
  std::atomic<uint64_t> evals{0};   // conjunct evaluations actually run
  std::atomic<uint64_t> passes{0};  // evaluations that yielded TRUE
  /// EWMA of sampled evaluation cost in nanoseconds (alpha = 1/8; roughly
  /// 1 in 16 evaluations is timed to keep the hot path at its one-clock-
  /// read-per-event discipline). Updated racy-lossy — plain atomic
  /// load/store, lost samples are harmless.
  std::atomic<uint64_t> cost_ewma_ns{0};
  /// Rank assigned by the most recent reorder (0 = tried first within its
  /// index); -1 until a reorder ran. Surfaced in sqlcm_rule_predicate_stats.
  std::atomic<int64_t> rank{-1};

  double PassRate() const {
    const uint64_t n = evals.load(std::memory_order_relaxed);
    if (n == 0) return 0.5;  // uninformed prior
    return static_cast<double>(passes.load(std::memory_order_relaxed)) /
           static_cast<double>(n);
  }
};

/// Engine-owned registry keyed by canonical-text hash; read/extended at
/// every index build under the engine's registry mutex.
using PredicateStatsRegistry =
    std::unordered_map<uint64_t, std::shared_ptr<PredicateStats>>;

/// Memoized outcome of one conjunct under the current event's context.
/// kFalse and kNull are kept distinct because naive AND evaluation
/// short-circuits on FALSE but keeps evaluating past NULL (a later conjunct
/// may still raise an error); kNull also covers missing-LAT-row (§5.2 both
/// reject). kError sends the whole rule to the naive evaluator.
enum class PredOutcome : uint8_t { kUnknown = 0, kPass, kFalse, kNull, kError };

/// Verdict of a memoized condition walk.
enum class IndexVerdict : uint8_t { kFire, kReject, kError };

/// One shared conjunct. `expr` points into the owning rule's compiled tree;
/// `owner` pins that rule for the life of the index snapshot.
struct IndexedPredicate {
  const CmExpr* expr = nullptr;
  std::shared_ptr<const CompiledRule> owner;
  /// Attr-vs-literal comparison evaluable without the tree interpreter.
  bool is_fast = false;
  FastAtom atom;
  /// Conjunct reads at least one LAT row; its memo entry (and the shared
  /// lat_rows cache) must be dropped when a fired rule mutates LAT state.
  bool reads_lats = false;
  std::string text;   // canonical form; also the view's display text
  uint64_t hash = 0;  // Fnv1a64(text)
  uint32_t subscribers = 0;  // rules in this index containing the conjunct
  std::shared_ptr<PredicateStats> stats;
};

/// Per-rule entry, positionally parallel to the lane's rule vector.
struct IndexedRule {
  /// False = the rule bypasses the index (unbound-class iteration or
  /// evicted-row context) and runs through the naive path unchanged.
  bool indexed = false;
  /// Firing this rule on this lane mutates LAT state before the next rule
  /// of the same event (sync lane: Insert/Reset actions; deferred lane:
  /// Reset only — Inserts are buffered until the batch flush).
  bool mutates_lats = false;
  /// Predicate ids (indexes into PredicateIndex::preds) in walk order:
  /// authoring order at build time, learned order after reorders.
  std::vector<uint32_t> preds;
};

/// Immutable-once-published index for one (event kind, dispatch lane);
/// embedded in the engine's RCU rule table and swapped with it.
struct PredicateIndex {
  std::vector<IndexedPredicate> preds;
  std::vector<IndexedRule> entries;
  bool any_indexed = false;
};

/// Per-thread memo of conjunct outcomes for the current event.
/// Epoch-stamped: BeginEvent is O(1), no per-event clearing.
class PredicateMemo {
 public:
  void BeginEvent(size_t num_preds) {
    ++epoch_;
    if (stamp_.size() < num_preds) {
      stamp_.resize(num_preds, 0);
      state_.resize(num_preds, PredOutcome::kUnknown);
    }
  }
  PredOutcome Get(uint32_t id) const {
    return stamp_[id] == epoch_ ? state_[id] : PredOutcome::kUnknown;
  }
  void Set(uint32_t id, PredOutcome outcome) {
    stamp_[id] = epoch_;
    state_[id] = outcome;
  }
  /// Drops memoized outcomes of LAT-reading predicates (a fired rule just
  /// mutated LAT state); attribute-only outcomes stay valid.
  void InvalidateLatReaders(const PredicateIndex& index) {
    for (uint32_t id = 0; id < index.preds.size(); ++id) {
      if (index.preds[id].reads_lats && stamp_[id] == epoch_) {
        state_[id] = PredOutcome::kUnknown;
      }
    }
  }

 private:
  std::vector<uint64_t> stamp_;
  std::vector<PredOutcome> state_;
  uint64_t epoch_ = 0;
};

/// Locally accumulated walk counters, flushed to engine metrics once per
/// dispatch (keeps per-conjunct atomics off the hot path).
struct PredWalkCounters {
  uint64_t evals = 0;      // conjuncts actually evaluated
  uint64_t memo_hits = 0;  // conjunct lookups served from the memo
};

/// Canonical text of a predicate subtree. Deterministic under
/// re-compilation; the only normalization applied is mirroring
/// literal-vs-expr comparisons to expr-vs-literal (safe: comparisons
/// evaluate both operands unconditionally). AND/OR operand order is never
/// touched — it is semantically significant (short-circuit vs errors).
std::string CanonicalPredicateText(const CmExpr& expr);

/// Flattens the top-level AND-chain of `expr` into conjuncts, left to
/// right (naive evaluation order).
void CollectConjuncts(const CmExpr* expr, std::vector<const CmExpr*>* out);

/// Builds the index for one lane's rule vector. `deferred_lane` selects
/// which actions count as mid-event LAT mutations. Stats objects are
/// resolved through (and inserted into) `registry` by canonical hash.
void BuildPredicateIndex(
    const std::vector<std::shared_ptr<const CompiledRule>>& rules,
    bool deferred_lane, PredicateStatsRegistry* registry,
    PredicateIndex* out);

/// Re-sorts every entry's walk order by the UCB1 explore/exploit score
/// (high observed reject rate and low observed cost first; an exploration
/// bonus keeps under-measured predicates from starving) and publishes
/// per-predicate ranks into their stats. Ties keep their current order.
void ReorderPredicateIndex(PredicateIndex* index);

/// Memoized condition walk for one indexed rule. `strict_order` = walk in
/// stored (authoring) order with naive short-circuit semantics (exact
/// error parity); false = short-circuit on any rejecting conjunct (learned
/// mode). Uses ctx's shared lat_rows cache; flags per-conjunct missing
/// rows itself. Returns kError when any conjunct's evaluation errors or
/// yields a non-boolean — the caller then re-runs the rule naively.
IndexVerdict EvalIndexedCondition(const PredicateIndex& index,
                                  const IndexedRule& entry, bool strict_order,
                                  EvalContext* ctx, PredicateMemo* memo,
                                  PredWalkCounters* counters);

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_PREDICATE_INDEX_H_
