// The SQLCM schema (paper §2.2, Appendix A): monitored classes, their
// probe attributes, and the record types the monitor assembles from engine
// instrumentation.
//
// Probes are exposed through a registry of (name, type, getter) attribute
// definitions per class, so new monitored objects and probes can be added
// without touching the rule engine (paper §4.1: "SQLCM offers a generic
// interface to integrate new monitored objects, events and probes into the
// schema"). All probe values are cast to engine Value types, enabling every
// aggregation function of the server for LAT aggregation as well.
#ifndef SQLCM_SQLCM_SCHEMA_H_
#define SQLCM_SQLCM_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "engine/plan_cache.h"
#include "txn/transaction.h"

namespace sqlcm::cm {

enum class MonitoredClass : uint8_t {
  kQuery = 0,
  kTransaction,
  kBlocker,  // query holding a lock another query waits on
  kBlocked,  // query waiting on a lock
  kTimer,
  kEvicted,  // row evicted from a LAT (attributes are the LAT's columns)
};
inline constexpr size_t kNumMonitoredClasses = 6;

const char* MonitoredClassName(MonitoredClass cls);
common::Result<MonitoredClass> ParseMonitoredClassName(std::string_view name);

// ---------------------------------------------------------------------------
// Record types assembled by the monitor
// ---------------------------------------------------------------------------

/// One statement execution, live from Query.Start until its terminal event.
///
/// Probe strings (text, signatures) are not copied per execution: when the
/// statement ran from a cached plan, `plan` pins the plan-cache entry and
/// the accessors below read the strings in place (hot path of Figure 2/3).
/// The string fields are authoritative only when `plan` is null (EXEC
/// wrapper queries, hand-built records in tests).
struct QueryRecord {
  uint64_t id = 0;
  std::shared_ptr<const engine::CachedPlan> plan;
  std::string text;
  std::string logical_signature;
  std::string physical_signature;
  uint64_t logical_hash = 0;
  uint64_t physical_hash = 0;
  int64_t start_micros = 0;
  double duration_secs = 0;      // filled at the terminal event
  double estimated_cost = 0;
  double time_blocked_secs = 0;  // accumulated lock-wait time
  int64_t times_blocked = 0;
  int64_t queries_blocked = 0;   // how many queries this one has blocked
  int64_t number_of_instances = 0;  // executions of the cached plan
  std::string query_type;        // SELECT/INSERT/UPDATE/DELETE/EXEC
  uint64_t session_id = 0;
  uint64_t txn_id = 0;
  std::string user;
  std::string application;
  /// Number of queries by the same user (including this one) that were
  /// executing when this query started — the probe behind per-user MPL
  /// limits (paper §3 Example 5(b)).
  int64_t concurrent_user_queries = 1;
  /// For the Cancel action; valid while the query is live.
  txn::Transaction* txn = nullptr;

  const std::string& query_text() const {
    return plan != nullptr ? plan->sql_text : text;
  }
  const std::string& logical_sig() const {
    return plan != nullptr ? plan->logical_signature : logical_signature;
  }
  const std::string& physical_sig() const {
    return plan != nullptr ? plan->physical_signature : physical_signature;
  }
};

/// Blocker/Blocked objects: a query plus the lock-conflict context. The
/// underlying query attributes are exposed directly on these classes
/// (Appendix A: "they have the same schema as the Query object") plus
/// Wait_Secs (the wait involved in this conflict) and Resource.
struct BlockEventView {
  const QueryRecord* query = nullptr;
  double wait_secs = 0;
  std::string resource;
};

struct TransactionRecord {
  uint64_t id = 0;
  uint64_t session_id = 0;
  int64_t start_micros = 0;
  double duration_secs = 0;
  int64_t num_queries = 0;
  std::vector<uint64_t> logical_seq;   // per-query logical signature hashes
  std::vector<uint64_t> physical_seq;
  std::string logical_signature;       // "[h1,h2,...]" (paper: list of ints)
  std::string physical_signature;
  std::string user;
  std::string application;
};

struct TimerRecord {
  std::string name;
  int64_t interval_micros = 0;
  /// Alarms left; 0 = disabled, negative = infinite (paper §5.3 Set()).
  int64_t remaining_alarms = 0;
  int64_t next_due_micros = 0;
  /// Filled by the monitor just before rule evaluation so the Current_Time
  /// attribute probe needs no clock access.
  double now_secs = 0;
};

// ---------------------------------------------------------------------------
// Attribute registry
// ---------------------------------------------------------------------------

/// Probe accessor: extracts one attribute from a record (the void* is the
/// record type of the attribute's class).
using AttributeGetter = common::Value (*)(const void* record);

struct AttributeDef {
  const char* name;
  common::ValueKind kind;
  AttributeGetter getter;
};

/// Immutable registry of the static classes' attributes (kEvicted is
/// resolved dynamically against a LAT's columns by the rule compiler).
class ObjectSchema {
 public:
  /// Process-wide schema instance.
  static const ObjectSchema& Get();

  const std::vector<AttributeDef>& attributes(MonitoredClass cls) const {
    return attributes_[static_cast<size_t>(cls)];
  }

  /// Case-insensitive; -1 when absent.
  int FindAttribute(MonitoredClass cls, std::string_view name) const;

  common::Value GetValue(MonitoredClass cls, int attr_index,
                         const void* record) const {
    return attributes(cls)[static_cast<size_t>(attr_index)].getter(record);
  }

 private:
  ObjectSchema();
  std::vector<AttributeDef> attributes_[kNumMonitoredClasses];
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_SCHEMA_H_
