#include "sqlcm/rule.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/expression.h"
#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace sqlcm::cm {

using common::EqualsIgnoreCase;
using common::Result;
using common::Status;
using common::ToLower;
using common::Value;

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryStart: return "Query.Start";
    case EventKind::kQueryCommit: return "Query.Commit";
    case EventKind::kQueryCancel: return "Query.Cancel";
    case EventKind::kQueryRollback: return "Query.Rollback";
    case EventKind::kQueryBlocked: return "Query.Blocked";
    case EventKind::kQueryBlockReleased: return "Query.Block_Released";
    case EventKind::kTransactionBegin: return "Transaction.Begin";
    case EventKind::kTransactionCommit: return "Transaction.Commit";
    case EventKind::kTransactionRollback: return "Transaction.Rollback";
    case EventKind::kTimerAlarm: return "Timer.Alarm";
    case EventKind::kLatEvict: return "Lat.Evict";
  }
  return "?";
}

const char* ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kInsert: return "Insert";
    case ActionKind::kReset: return "Reset";
    case ActionKind::kPersist: return "Persist";
    case ActionKind::kSendMail: return "SendMail";
    case ActionKind::kRunExternal: return "RunExternal";
    case ActionKind::kCancel: return "Cancel";
    case ActionKind::kSetTimer: return "Set";
  }
  return "?";
}

bool EventKindDeferrable(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryCommit:
    case EventKind::kQueryCancel:
    case EventKind::kQueryRollback:
    case EventKind::kTransactionCommit:
    case EventKind::kTransactionRollback:
      // Terminal events: the bound record is finalized before the event
      // fires, so a worker thread sees an immutable snapshot.
      return true;
    case EventKind::kQueryStart:
    case EventKind::kQueryBlocked:
    case EventKind::kQueryBlockReleased:
    case EventKind::kTransactionBegin:
    case EventKind::kTimerAlarm:
    case EventKind::kLatEvict:
      return false;
  }
  return false;
}

std::vector<MonitoredClass> EventBoundClasses(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryStart:
    case EventKind::kQueryCommit:
    case EventKind::kQueryCancel:
    case EventKind::kQueryRollback:
      return {MonitoredClass::kQuery};
    case EventKind::kQueryBlocked:
    case EventKind::kQueryBlockReleased:
      return {MonitoredClass::kBlocker, MonitoredClass::kBlocked};
    case EventKind::kTransactionBegin:
    case EventKind::kTransactionCommit:
    case EventKind::kTransactionRollback:
      return {MonitoredClass::kTransaction};
    case EventKind::kTimerAlarm:
      return {MonitoredClass::kTimer};
    case EventKind::kLatEvict:
      return {MonitoredClass::kEvicted};
  }
  return {};
}

// ---------------------------------------------------------------------------
// Event parsing
// ---------------------------------------------------------------------------

Result<EventKey> RuleCompiler::ParseEvent(std::string_view text,
                                          const LatResolver& resolver) {
  const std::string_view trimmed = common::Trim(text);
  const size_t dot = trimmed.find('.');
  if (dot == std::string_view::npos) {
    return Status::ParseError("event must have the form Class.Event: '" +
                              std::string(trimmed) + "'");
  }
  const std::string_view first = trimmed.substr(0, dot);
  const std::string_view second = trimmed.substr(dot + 1);

  EventKey key;
  if (EqualsIgnoreCase(first, "Query")) {
    if (EqualsIgnoreCase(second, "Start")) key.kind = EventKind::kQueryStart;
    else if (EqualsIgnoreCase(second, "Commit")) key.kind = EventKind::kQueryCommit;
    else if (EqualsIgnoreCase(second, "Cancel")) key.kind = EventKind::kQueryCancel;
    else if (EqualsIgnoreCase(second, "Rollback")) key.kind = EventKind::kQueryRollback;
    else if (EqualsIgnoreCase(second, "Blocked")) key.kind = EventKind::kQueryBlocked;
    else if (EqualsIgnoreCase(second, "Block_Released")) key.kind = EventKind::kQueryBlockReleased;
    else return Status::ParseError("unknown Query event '" + std::string(second) + "'");
    return key;
  }
  if (EqualsIgnoreCase(first, "Transaction")) {
    if (EqualsIgnoreCase(second, "Begin")) key.kind = EventKind::kTransactionBegin;
    else if (EqualsIgnoreCase(second, "Commit")) key.kind = EventKind::kTransactionCommit;
    else if (EqualsIgnoreCase(second, "Rollback")) key.kind = EventKind::kTransactionRollback;
    else return Status::ParseError("unknown Transaction event '" + std::string(second) + "'");
    return key;
  }
  const bool is_alarm_name =
      EqualsIgnoreCase(second, "Alarm") || EqualsIgnoreCase(second, "Alert");
  if (EqualsIgnoreCase(first, "Timer") && is_alarm_name) {
    key.kind = EventKind::kTimerAlarm;
    return key;  // any timer
  }
  if (is_alarm_name && resolver.IsTimerName(first)) {
    key.kind = EventKind::kTimerAlarm;
    key.qualifier = ToLower(first);
    return key;
  }
  if (EqualsIgnoreCase(second, "Evict")) {
    if (resolver.FindLat(first) == nullptr) {
      return Status::NotFound("LAT '" + std::string(first) +
                              "' in event '" + std::string(trimmed) +
                              "' does not exist");
    }
    key.kind = EventKind::kLatEvict;
    key.qualifier = ToLower(first);
    return key;
  }
  return Status::ParseError("unknown event '" + std::string(trimmed) + "'");
}

// ---------------------------------------------------------------------------
// Condition compilation
// ---------------------------------------------------------------------------

namespace {

Result<std::unique_ptr<CmExpr>> CompileExpr(const sql::Expr& e,
                                            const LatResolver& resolver,
                                            const EventKey& event) {
  auto out = std::make_unique<CmExpr>();
  switch (e.kind) {
    case sql::ExprKind::kLiteral:
      out->kind = CmExpr::Kind::kLiteral;
      out->literal = e.literal;
      return out;
    case sql::ExprKind::kColumnRef: {
      if (e.table.empty()) {
        return Status::ParseError(
            "unqualified reference '" + e.column +
            "' in rule condition; use Class.Attribute or Lat.Column");
      }
      auto cls = ParseMonitoredClassName(e.table);
      if (cls.ok()) {
        out->kind = CmExpr::Kind::kAttrRef;
        out->cls = *cls;
        if (*cls == MonitoredClass::kEvicted) {
          if (event.kind != EventKind::kLatEvict) {
            return Status::ParseError(
                "Evicted.* may only be referenced in <Lat>.Evict rules");
          }
          Lat* lat = resolver.FindLat(event.qualifier);
          const int col = lat->FindColumn(e.column);
          if (col < 0) {
            return Status::NotFound("LAT '" + lat->name() +
                                    "' has no column '" + e.column + "'");
          }
          out->attr_index = col;
          return out;
        }
        const int attr = ObjectSchema::Get().FindAttribute(*cls, e.column);
        if (attr < 0) {
          return Status::NotFound("class " + std::string(e.table) +
                                  " has no attribute '" + e.column + "'");
        }
        out->attr_index = attr;
        return out;
      }
      Lat* lat = resolver.FindLat(e.table);
      if (lat == nullptr) {
        return Status::NotFound("'" + e.table +
                                "' is neither a monitored class nor a LAT");
      }
      const int col = lat->FindColumn(e.column);
      if (col < 0) {
        return Status::NotFound("LAT '" + lat->name() + "' has no column '" +
                                e.column + "'");
      }
      out->kind = CmExpr::Kind::kLatColRef;
      out->lat = lat;
      out->lat_col = col;
      return out;
    }
    case sql::ExprKind::kParam:
      return Status::ParseError("parameters are not allowed in rule conditions");
    case sql::ExprKind::kUnary: {
      out->kind = CmExpr::Kind::kUnary;
      out->unary_op = static_cast<uint8_t>(e.unary_op);
      SQLCM_ASSIGN_OR_RETURN(out->left, CompileExpr(*e.left, resolver, event));
      return out;
    }
    case sql::ExprKind::kBinary: {
      out->kind = CmExpr::Kind::kBinary;
      out->binary_op = static_cast<uint8_t>(e.binary_op);
      SQLCM_ASSIGN_OR_RETURN(out->left, CompileExpr(*e.left, resolver, event));
      SQLCM_ASSIGN_OR_RETURN(out->right, CompileExpr(*e.right, resolver, event));
      return out;
    }
    case sql::ExprKind::kFuncCall:
      return Status::ParseError(
          "function calls are not allowed in rule conditions (use LAT "
          "aggregates instead)");
  }
  return Status::Internal("unhandled expression kind in rule condition");
}

}  // namespace

// ---------------------------------------------------------------------------
// Condition evaluation
// ---------------------------------------------------------------------------

Result<Value> CmExpr::Eval(EvalContext* ctx) const {
  switch (kind) {
    case Kind::kLiteral:
      return literal;
    case Kind::kAttrRef: {
      if (cls == MonitoredClass::kEvicted) {
        if (ctx->evicted_row == nullptr) {
          return Status::Internal("no evicted row in context");
        }
        return (*ctx->evicted_row)[static_cast<size_t>(attr_index)];
      }
      const void* record = ctx->Bound(cls);
      if (record == nullptr) {
        return Status::Internal(std::string("no object of class ") +
                                MonitoredClassName(cls) + " in rule context");
      }
      return ObjectSchema::Get().GetValue(cls, attr_index, record);
    }
    case Kind::kLatColRef: {
      // Resolve (with per-evaluation caching) the LAT row matching the
      // in-context object of the LAT's class.
      for (const auto& entry : ctx->lat_rows) {
        if (entry.lat == lat) {
          if (!entry.present) {
            ctx->lat_row_missing = true;
            return Value::Null();
          }
          return entry.row[static_cast<size_t>(lat_col)];
        }
      }
      EvalContext::LatRowEntry entry;
      entry.lat = lat;
      const void* record = ctx->Bound(lat->spec().object_class);
      entry.present =
          record != nullptr &&
          lat->LookupForObject(record, ctx->now_micros, &entry.row);
      ctx->lat_rows.push_back(entry);
      if (!entry.present) {
        ctx->lat_row_missing = true;
        return Value::Null();
      }
      return entry.row[static_cast<size_t>(lat_col)];
    }
    case Kind::kUnary: {
      SQLCM_ASSIGN_OR_RETURN(Value v, left->Eval(ctx));
      if (static_cast<sql::UnaryOp>(unary_op) == sql::UnaryOp::kNeg) {
        return common::ValueNeg(v);
      }
      if (v.is_null()) return Value::Null();
      if (!v.is_bool()) {
        return Status::TypeError("NOT applied to non-boolean " + v.ToString());
      }
      return Value::Bool(!v.bool_value());
    }
    case Kind::kBinary: {
      const auto op = static_cast<sql::BinaryOp>(binary_op);
      if (op == sql::BinaryOp::kAnd || op == sql::BinaryOp::kOr) {
        SQLCM_ASSIGN_OR_RETURN(Value l, left->Eval(ctx));
        const bool is_and = op == sql::BinaryOp::kAnd;
        if (l.is_bool()) {
          if (is_and && !l.bool_value()) return Value::Bool(false);
          if (!is_and && l.bool_value()) return Value::Bool(true);
        } else if (!l.is_null()) {
          return Status::TypeError("AND/OR on non-boolean " + l.ToString());
        }
        SQLCM_ASSIGN_OR_RETURN(Value r, right->Eval(ctx));
        if (r.is_bool()) {
          if (is_and && !r.bool_value()) return Value::Bool(false);
          if (!is_and && r.bool_value()) return Value::Bool(true);
        } else if (!r.is_null()) {
          return Status::TypeError("AND/OR on non-boolean " + r.ToString());
        }
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(is_and ? (l.bool_value() && r.bool_value())
                                  : (l.bool_value() || r.bool_value()));
      }
      SQLCM_ASSIGN_OR_RETURN(Value l, left->Eval(ctx));
      SQLCM_ASSIGN_OR_RETURN(Value r, right->Eval(ctx));
      switch (op) {
        case sql::BinaryOp::kAdd: return common::ValueAdd(l, r);
        case sql::BinaryOp::kSub: return common::ValueSub(l, r);
        case sql::BinaryOp::kMul: return common::ValueMul(l, r);
        case sql::BinaryOp::kDiv: return common::ValueDiv(l, r);
        case sql::BinaryOp::kMod: {
          if (l.is_null() || r.is_null()) return Value::Null();
          if (!l.is_int() || !r.is_int() || r.int_value() == 0) {
            return Status::TypeError("bad %% operands in rule condition");
          }
          return Value::Int(l.int_value() % r.int_value());
        }
        case sql::BinaryOp::kLike:
          return exec::EvalLike(l, r);
        default:
          return exec::EvalComparison(op, l, r);
      }
    }
  }
  return Status::Internal("unhandled rule expression kind");
}

Result<bool> CmExpr::EvalCondition(EvalContext* ctx) const {
  // Self-contained missing-row accounting: a stale flag left by a previous
  // rule sharing this context must never reject this one (the lat_rows
  // cache, by contrast, may be shared deliberately — cached absent rows
  // re-set the flag on hit).
  ctx->lat_row_missing = false;
  SQLCM_ASSIGN_OR_RETURN(Value v, Eval(ctx));
  if (ctx->lat_row_missing) return false;  // implicit ∃ over LAT rows
  if (v.is_null()) return false;
  if (!v.is_bool()) {
    return Status::TypeError("rule condition did not yield a boolean: " +
                             v.ToString());
  }
  return v.bool_value();
}

void CmExpr::CollectClasses(std::vector<MonitoredClass>* classes) const {
  if (kind == Kind::kAttrRef) classes->push_back(cls);
  if (kind == Kind::kLatColRef) classes->push_back(lat->spec().object_class);
  if (left != nullptr) left->CollectClasses(classes);
  if (right != nullptr) right->CollectClasses(classes);
}

void CmExpr::CollectLats(std::vector<const Lat*>* lats) const {
  if (kind == Kind::kLatColRef) lats->push_back(lat);
  if (left != nullptr) left->CollectLats(lats);
  if (right != nullptr) right->CollectLats(lats);
}

void CmExpr::CollectAttrRefs(
    std::vector<std::pair<MonitoredClass, int>>* refs) const {
  if (kind == Kind::kAttrRef && cls != MonitoredClass::kEvicted) {
    refs->emplace_back(cls, attr_index);
  }
  if (left != nullptr) left->CollectAttrRefs(refs);
  if (right != nullptr) right->CollectAttrRefs(refs);
}

// ---------------------------------------------------------------------------
// Action parsing
// ---------------------------------------------------------------------------

namespace {

struct RawArg {
  enum class Kind { kIdent, kString, kNumber };
  Kind kind;
  std::string text;
  double number = 0;
};

struct RawAction {
  std::string target;  // may be empty
  std::string name;
  std::vector<RawArg> args;
};

Result<std::vector<RawAction>> ParseRawActions(std::string_view text) {
  sql::Lexer lexer(text);
  SQLCM_ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  std::vector<RawAction> actions;
  size_t pos = 0;
  auto peek = [&]() -> const sql::Token& { return tokens[pos]; };
  while (peek().kind != sql::TokenKind::kEof) {
    RawAction action;
    if (peek().kind != sql::TokenKind::kIdentifier) {
      return Status::ParseError("expected action name at offset " +
                                std::to_string(peek().offset));
    }
    action.name = tokens[pos++].text;
    if (peek().kind == sql::TokenKind::kDot) {
      ++pos;
      if (peek().kind != sql::TokenKind::kIdentifier) {
        return Status::ParseError("expected action name after '.'");
      }
      action.target = std::move(action.name);
      action.name = tokens[pos++].text;
    }
    if (peek().kind != sql::TokenKind::kLParen) {
      return Status::ParseError("expected '(' after action name '" +
                                action.name + "'");
    }
    ++pos;
    if (peek().kind != sql::TokenKind::kRParen) {
      for (;;) {
        RawArg arg;
        bool negative = false;
        if (peek().kind == sql::TokenKind::kMinus) {
          negative = true;
          ++pos;
        }
        switch (peek().kind) {
          case sql::TokenKind::kIdentifier:
            arg.kind = RawArg::Kind::kIdent;
            arg.text = peek().text;
            break;
          case sql::TokenKind::kString:
            arg.kind = RawArg::Kind::kString;
            arg.text = peek().text;
            break;
          case sql::TokenKind::kInteger:
            arg.kind = RawArg::Kind::kNumber;
            arg.number = static_cast<double>(peek().int_value);
            break;
          case sql::TokenKind::kFloat:
            arg.kind = RawArg::Kind::kNumber;
            arg.number = peek().double_value;
            break;
          default:
            return Status::ParseError("bad action argument at offset " +
                                      std::to_string(peek().offset));
        }
        if (negative) {
          if (arg.kind != RawArg::Kind::kNumber) {
            return Status::ParseError("'-' before non-numeric action argument");
          }
          arg.number = -arg.number;
        }
        ++pos;
        action.args.push_back(std::move(arg));
        if (peek().kind == sql::TokenKind::kComma) {
          ++pos;
          continue;
        }
        break;
      }
    }
    if (peek().kind != sql::TokenKind::kRParen) {
      return Status::ParseError("expected ')' in action '" + action.name + "'");
    }
    ++pos;
    actions.push_back(std::move(action));
    if (peek().kind == sql::TokenKind::kSemicolon) {
      ++pos;
      continue;
    }
    break;
  }
  if (peek().kind != sql::TokenKind::kEof) {
    return Status::ParseError("trailing input after actions");
  }
  if (actions.empty()) {
    return Status::ParseError("rule has no actions");
  }
  return actions;
}

Result<CompiledAction> ResolveAction(const RawAction& raw,
                                     const LatResolver& resolver,
                                     const EventKey& event) {
  CompiledAction action;
  auto need_args = [&raw](size_t min, size_t max) -> Status {
    if (raw.args.size() < min || raw.args.size() > max) {
      return Status::InvalidArgument("action '" + raw.name +
                                     "' has wrong argument count");
    }
    return Status::OK();
  };

  if (EqualsIgnoreCase(raw.name, "Insert")) {
    action.kind = ActionKind::kInsert;
    SQLCM_RETURN_IF_ERROR(need_args(1, 1));
    Lat* lat = resolver.FindLat(raw.args[0].text);
    if (lat == nullptr) {
      return Status::NotFound("LAT '" + raw.args[0].text + "' not found");
    }
    action.lat = lat;
    action.source_class = lat->spec().object_class;
    if (!raw.target.empty()) {
      SQLCM_ASSIGN_OR_RETURN(auto cls, ParseMonitoredClassName(raw.target));
      if (cls != lat->spec().object_class) {
        return Status::TypeError("LAT '" + lat->name() + "' aggregates " +
                                 MonitoredClassName(lat->spec().object_class) +
                                 " objects, not " + raw.target);
      }
    }
    return action;
  }
  if (EqualsIgnoreCase(raw.name, "Reset")) {
    action.kind = ActionKind::kReset;
    SQLCM_RETURN_IF_ERROR(need_args(1, 1));
    Lat* lat = resolver.FindLat(raw.args[0].text);
    if (lat == nullptr) {
      return Status::NotFound("LAT '" + raw.args[0].text + "' not found");
    }
    action.lat = lat;
    return action;
  }
  if (EqualsIgnoreCase(raw.name, "Persist")) {
    action.kind = ActionKind::kPersist;
    SQLCM_RETURN_IF_ERROR(need_args(1, 64));
    action.table_name = raw.args[0].text;
    if (!raw.target.empty()) {
      Lat* lat = resolver.FindLat(raw.target);
      if (lat != nullptr) {
        action.lat = lat;
        action.lat_source = true;
        if (raw.args.size() != 1) {
          return Status::InvalidArgument(
              "Lat.Persist takes only the table name");
        }
        return action;
      }
      SQLCM_ASSIGN_OR_RETURN(auto cls, ParseMonitoredClassName(raw.target));
      action.source_class = cls;
      if (cls == MonitoredClass::kEvicted) {
        action.evicted_source = true;
        if (event.kind != EventKind::kLatEvict) {
          return Status::ParseError(
              "Evicted.Persist is only valid in <Lat>.Evict rules");
        }
        action.lat = resolver.FindLat(event.qualifier);
        if (raw.args.size() != 1) {
          return Status::InvalidArgument(
              "Evicted.Persist takes only the table name (all columns are "
              "persisted)");
        }
        return action;
      }
    } else {
      action.source_class = MonitoredClass::kQuery;
    }
    const ObjectSchema& schema = ObjectSchema::Get();
    for (size_t i = 1; i < raw.args.size(); ++i) {
      const std::string& attr = raw.args[i].text;
      const int idx = schema.FindAttribute(action.source_class, attr);
      if (idx < 0) {
        return Status::NotFound(std::string("class ") +
                                MonitoredClassName(action.source_class) +
                                " has no attribute '" + attr + "'");
      }
      action.attr_indexes.push_back(idx);
      action.attr_names.push_back(attr);
    }
    if (action.attr_indexes.empty()) {
      // Persist every attribute.
      const auto& defs = schema.attributes(action.source_class);
      for (size_t i = 0; i < defs.size(); ++i) {
        action.attr_indexes.push_back(static_cast<int>(i));
        action.attr_names.push_back(defs[i].name);
      }
    }
    return action;
  }
  if (EqualsIgnoreCase(raw.name, "SendMail")) {
    action.kind = ActionKind::kSendMail;
    SQLCM_RETURN_IF_ERROR(need_args(2, 2));
    action.text = raw.args[0].text;
    action.address = raw.args[1].text;
    return action;
  }
  if (EqualsIgnoreCase(raw.name, "RunExternal")) {
    action.kind = ActionKind::kRunExternal;
    SQLCM_RETURN_IF_ERROR(need_args(1, 1));
    action.text = raw.args[0].text;
    return action;
  }
  if (EqualsIgnoreCase(raw.name, "Cancel")) {
    action.kind = ActionKind::kCancel;
    SQLCM_RETURN_IF_ERROR(need_args(0, 0));
    if (raw.target.empty()) {
      action.source_class = MonitoredClass::kQuery;
    } else {
      SQLCM_ASSIGN_OR_RETURN(action.source_class,
                             ParseMonitoredClassName(raw.target));
    }
    if (action.source_class != MonitoredClass::kQuery &&
        action.source_class != MonitoredClass::kBlocker &&
        action.source_class != MonitoredClass::kBlocked) {
      return Status::InvalidArgument(
          "Cancel applies only to Query, Blocker or Blocked objects");
    }
    return action;
  }
  if (EqualsIgnoreCase(raw.name, "Set")) {
    action.kind = ActionKind::kSetTimer;
    SQLCM_RETURN_IF_ERROR(need_args(2, 2));
    if (raw.args[0].kind != RawArg::Kind::kNumber ||
        raw.args[1].kind != RawArg::Kind::kNumber) {
      return Status::InvalidArgument("Set(seconds, number_alarms) expects numbers");
    }
    action.timer_seconds = raw.args[0].number;
    action.timer_repeats = static_cast<int64_t>(raw.args[1].number);
    if (raw.target.empty() || EqualsIgnoreCase(raw.target, "Timer")) {
      action.timer_name = "";  // in-context timer
      action.source_class = MonitoredClass::kTimer;
    } else {
      if (!resolver.IsTimerName(raw.target)) {
        return Status::NotFound("timer '" + raw.target + "' not found");
      }
      action.timer_name = ToLower(raw.target);
    }
    return action;
  }
  return Status::ParseError("unknown action '" + raw.name + "'");
}

}  // namespace

namespace {

/// Flattens `expr` into comparison atoms if it is an AND-chain of
/// attr-vs-literal comparisons with statically comparable kinds; returns
/// false (leaving *atoms in an unspecified state) otherwise.
bool TryExtractFastAtoms(const CmExpr& expr, std::vector<FastAtom>* atoms) {
  if (expr.kind == CmExpr::Kind::kBinary &&
      static_cast<sql::BinaryOp>(expr.binary_op) == sql::BinaryOp::kAnd) {
    return TryExtractFastAtoms(*expr.left, atoms) &&
           TryExtractFastAtoms(*expr.right, atoms);
  }
  FastAtom atom;
  if (!TryCompileFastAtom(expr, &atom)) return false;
  atoms->push_back(std::move(atom));
  return true;
}

}  // namespace

bool TryCompileFastAtom(const CmExpr& expr, FastAtom* out) {
  if (expr.kind != CmExpr::Kind::kBinary) return false;
  switch (static_cast<sql::BinaryOp>(expr.binary_op)) {
    case sql::BinaryOp::kEq:
    case sql::BinaryOp::kNe:
    case sql::BinaryOp::kLt:
    case sql::BinaryOp::kLe:
    case sql::BinaryOp::kGt:
    case sql::BinaryOp::kGe:
      break;
    default:
      return false;
  }
  const CmExpr* attr = nullptr;
  const CmExpr* lit = nullptr;
  bool attr_on_left = true;
  if (expr.left->kind == CmExpr::Kind::kAttrRef &&
      expr.right->kind == CmExpr::Kind::kLiteral) {
    attr = expr.left.get();
    lit = expr.right.get();
  } else if (expr.right->kind == CmExpr::Kind::kAttrRef &&
             expr.left->kind == CmExpr::Kind::kLiteral) {
    attr = expr.right.get();
    lit = expr.left.get();
    attr_on_left = false;
  } else {
    return false;
  }
  if (attr->cls == MonitoredClass::kEvicted) return false;
  const AttributeDef& def =
      ObjectSchema::Get().attributes(attr->cls)[static_cast<size_t>(
          attr->attr_index)];
  // Static comparability: numeric-vs-numeric or same kind.
  const bool attr_numeric = def.kind == common::ValueKind::kInt ||
                            def.kind == common::ValueKind::kDouble;
  const bool comparable =
      (attr_numeric && lit->literal.is_numeric()) ||
      (def.kind == common::ValueKind::kString && lit->literal.is_string()) ||
      (def.kind == common::ValueKind::kBool && lit->literal.is_bool());
  if (!comparable) return false;
  out->getter = def.getter;
  out->cls = attr->cls;
  out->op = expr.binary_op;
  out->literal = lit->literal;
  out->attr_on_left = attr_on_left;
  return true;
}

bool EvalFastAtom(const FastAtom& atom, const EvalContext& ctx) {
  const void* record = ctx.Bound(atom.cls);
  if (record == nullptr) return false;
  const common::Value v = atom.getter(record);
  if (v.is_null()) return false;
  int cmp = v.Compare(atom.literal);
  if (!atom.attr_on_left) cmp = -cmp;
  switch (static_cast<sql::BinaryOp>(atom.op)) {
    case sql::BinaryOp::kEq: return cmp == 0;
    case sql::BinaryOp::kNe: return cmp != 0;
    case sql::BinaryOp::kLt: return cmp < 0;
    case sql::BinaryOp::kLe: return cmp <= 0;
    case sql::BinaryOp::kGt: return cmp > 0;
    case sql::BinaryOp::kGe: return cmp >= 0;
    default: return false;
  }
}

/// Evaluates the flattened atoms with short-circuit AND semantics.
bool EvalFastAtoms(const std::vector<FastAtom>& atoms,
                   const EvalContext& ctx) {
  for (const FastAtom& atom : atoms) {
    if (!EvalFastAtom(atom, ctx)) return false;
  }
  return true;
}

Result<std::unique_ptr<CompiledRule>> RuleCompiler::Compile(
    const RuleSpec& spec, const LatResolver& resolver) {
  auto rule = std::make_unique<CompiledRule>();
  rule->name = spec.name;
  SQLCM_ASSIGN_OR_RETURN(rule->event, ParseEvent(spec.event, resolver));

  if (!common::Trim(spec.condition).empty()) {
    SQLCM_ASSIGN_OR_RETURN(auto ast,
                           sql::Parser::ParseExpression(spec.condition));
    SQLCM_ASSIGN_OR_RETURN(rule->condition,
                           CompileExpr(*ast, resolver, rule->event));
  }

  if (rule->condition != nullptr) {
    std::vector<FastAtom> atoms;
    if (TryExtractFastAtoms(*rule->condition, &atoms)) {
      rule->fast_atoms = std::move(atoms);
      rule->use_fast_condition = true;
    }
  }

  SQLCM_ASSIGN_OR_RETURN(auto raw_actions, ParseRawActions(spec.action));
  for (const RawAction& raw : raw_actions) {
    SQLCM_ASSIGN_OR_RETURN(auto action,
                           ResolveAction(raw, resolver, rule->event));
    rule->actions.push_back(std::move(action));
  }

  // Determine which referenced classes the event does not bind; the engine
  // iterates over all live objects of those (paper §5.2).
  std::vector<MonitoredClass> referenced;
  if (rule->condition != nullptr) rule->condition->CollectClasses(&referenced);
  for (const CompiledAction& action : rule->actions) {
    switch (action.kind) {
      case ActionKind::kInsert:
        referenced.push_back(action.lat->spec().object_class);
        break;
      case ActionKind::kPersist:
        if (!action.lat_source && !action.evicted_source) {
          referenced.push_back(action.source_class);
        }
        break;
      case ActionKind::kCancel:
        referenced.push_back(action.source_class);
        break;
      case ActionKind::kSetTimer:
        if (action.timer_name.empty()) {
          referenced.push_back(MonitoredClass::kTimer);
        }
        break;
      default:
        break;
    }
  }
  // Collect LAT references (DropLat refuses while a rule references one).
  std::vector<const Lat*> lats;
  if (rule->condition != nullptr) rule->condition->CollectLats(&lats);
  for (const CompiledAction& action : rule->actions) {
    if (action.lat != nullptr) lats.push_back(action.lat);
  }
  std::sort(lats.begin(), lats.end());
  lats.erase(std::unique(lats.begin(), lats.end()), lats.end());
  rule->referenced_lats = std::move(lats);

  // Probe-scope flags: which optional counters must the monitor maintain
  // for this rule? Collected from attribute references in the condition,
  // Persist column lists, and the attribute sets of referenced LATs.
  {
    std::vector<std::string> attr_names;
    std::vector<std::pair<MonitoredClass, int>> refs;
    if (rule->condition != nullptr) rule->condition->CollectAttrRefs(&refs);
    const ObjectSchema& schema = ObjectSchema::Get();
    for (const auto& [cls, idx] : refs) {
      attr_names.push_back(schema.attributes(cls)[static_cast<size_t>(idx)].name);
    }
    for (const CompiledAction& action : rule->actions) {
      for (const std::string& name : action.attr_names) {
        attr_names.push_back(name);
      }
      if (action.lat != nullptr) {
        for (const auto& col : action.lat->spec().group_by) {
          attr_names.push_back(col.attribute);
        }
        for (const auto& col : action.lat->spec().aggregates) {
          attr_names.push_back(col.attribute);
        }
      }
    }
    auto references = [&attr_names](std::string_view needle) {
      for (const std::string& name : attr_names) {
        if (EqualsIgnoreCase(name, needle)) return true;
      }
      return false;
    };
    rule->needs_blocking_probes =
        references("Time_Blocked") || references("Times_Blocked") ||
        references("Queries_Blocked") || references("Wait_Secs") ||
        references("Resource");
    rule->needs_concurrency_probe = references("Concurrent_User_Queries");
  }

  const std::vector<MonitoredClass> bound = EventBoundClasses(rule->event.kind);
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  for (MonitoredClass cls : referenced) {
    if (std::find(bound.begin(), bound.end(), cls) != bound.end()) continue;
    if (cls == MonitoredClass::kEvicted) {
      return Status::InvalidArgument(
          "Evicted objects are only available in <Lat>.Evict rules");
    }
    rule->iterate_classes.push_back(cls);
  }

  // Inline-vs-deferred classification (async pipeline, ROADMAP item 1).
  // A rule may run on a monitor worker after the hook returns only when
  // nothing about it needs the triggering thread: Cancel must be able to
  // stop the query synchronously (paper §3), non-terminal events bind
  // still-mutating records, and unbound-class iteration snapshots live
  // registries whose contents are only meaningful at event time.
  const bool has_cancel =
      std::any_of(rule->actions.begin(), rule->actions.end(),
                  [](const CompiledAction& a) {
                    return a.kind == ActionKind::kCancel;
                  });
  if (has_cancel) {
    rule->inline_reason = "cancel-action";
  } else if (!EventKindDeferrable(rule->event.kind)) {
    rule->inline_reason = "event-kind";
  } else if (!rule->iterate_classes.empty()) {
    rule->inline_reason = "class-iteration";
  } else {
    rule->deferrable = true;
  }
  const std::string_view mode = common::Trim(spec.eval_mode);
  if (EqualsIgnoreCase(mode, "inline") || EqualsIgnoreCase(mode, "sync")) {
    if (rule->deferrable) {
      rule->deferrable = false;
      rule->inline_reason = "override";
    }
  } else if (EqualsIgnoreCase(mode, "deferred") ||
             EqualsIgnoreCase(mode, "async")) {
    if (!rule->deferrable) {
      return Status::InvalidArgument(
          "rule '" + spec.name + "' cannot be deferred (" +
          rule->inline_reason +
          "): Cancel actions, non-terminal events and unbound-class "
          "iteration require inline evaluation");
    }
  } else if (!mode.empty() && !EqualsIgnoreCase(mode, "auto")) {
    return Status::InvalidArgument(
        "unknown eval_mode '" + std::string(mode) +
        "' (expected \"\", auto, inline or deferred)");
  }
  return rule;
}

// ---------------------------------------------------------------------------
// RuleBreaker
// ---------------------------------------------------------------------------

const char* RuleBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "?";
}

const char* RuleBreaker::state_name() const { return StateName(state()); }

void RuleBreaker::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
}

bool RuleBreaker::Allow(int64_t now_micros) {
  if (state_.load(std::memory_order_relaxed) == State::kClosed) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_.load(std::memory_order_relaxed)) {
    case State::kClosed:
      return true;  // closed while we waited for the lock
    case State::kOpen:
      if (now_micros - tripped_at_micros_ < options_.cooldown_micros) {
        ++skipped_;
        return false;
      }
      state_.store(State::kHalfOpen, std::memory_order_relaxed);
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        ++skipped_;
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void RuleBreaker::OnSuccess(int64_t) {
  if (state_.load(std::memory_order_relaxed) == State::kClosed) {
    std::lock_guard<std::mutex> lock(mutex_);
    consecutive_failures_ = 0;
    if (++window_events_ >= options_.window_size) {
      window_events_ = 0;
      window_errors_ = 0;
    }
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_.load(std::memory_order_relaxed) == State::kHalfOpen) {
    // Probe succeeded: the rule has recovered.
    state_.store(State::kClosed, std::memory_order_relaxed);
    probe_in_flight_ = false;
    consecutive_failures_ = 0;
    window_events_ = 0;
    window_errors_ = 0;
  }
}

bool RuleBreaker::ShouldTripLocked() const {
  if (consecutive_failures_ >= options_.consecutive_failure_threshold) {
    return true;
  }
  return window_events_ >= options_.min_window_events &&
         static_cast<double>(window_errors_) >=
             options_.error_rate_threshold *
                 static_cast<double>(window_events_);
}

bool RuleBreaker::OnFailure(int64_t now_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  const State state = state_.load(std::memory_order_relaxed);
  if (state == State::kHalfOpen) {
    // Probe failed: straight back to open, cooldown restarts.
    state_.store(State::kOpen, std::memory_order_relaxed);
    probe_in_flight_ = false;
    tripped_at_micros_ = now_micros;
    ++trips_;
    return true;
  }
  if (state == State::kOpen) return false;  // late failure, already tripped
  ++consecutive_failures_;
  ++window_events_;
  ++window_errors_;
  if (!ShouldTripLocked()) {
    if (window_events_ >= options_.window_size) {
      window_events_ = 0;
      window_errors_ = 0;
    }
    return false;
  }
  state_.store(State::kOpen, std::memory_order_relaxed);
  tripped_at_micros_ = now_micros;
  ++trips_;
  return true;
}

void RuleBreaker::Reinstate() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_.store(State::kClosed, std::memory_order_relaxed);
  probe_in_flight_ = false;
  consecutive_failures_ = 0;
  window_events_ = 0;
  window_errors_ = 0;
}

int64_t RuleBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

uint64_t RuleBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

uint64_t RuleBreaker::skipped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return skipped_;
}

int64_t RuleBreaker::tripped_at_micros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tripped_at_micros_;
}

// ---------------------------------------------------------------------------
// ActionRateLimiter
// ---------------------------------------------------------------------------

void ActionRateLimiter::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  recent_.clear();
  next_ = 0;
  const bool on = options.max_actions > 0 && options.window_micros > 0;
  if (on) recent_.reserve(static_cast<size_t>(options.max_actions));
  enabled_.store(on, std::memory_order_release);
}

bool ActionRateLimiter::Admit(int64_t now_micros) {
  if (!enabled_.load(std::memory_order_acquire)) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.max_actions <= 0 || options_.window_micros <= 0) return true;
  if (recent_.size() < static_cast<size_t>(options_.max_actions)) {
    recent_.push_back(now_micros);
    return true;
  }
  // Buffer full: the slot at next_ holds the oldest of the last
  // `max_actions` admissions. If it fell outside the trailing window, this
  // admission is within budget and takes its slot.
  if (recent_[next_] <= now_micros - options_.window_micros) {
    recent_[next_] = now_micros;
    next_ = (next_ + 1) % recent_.size();
    return true;
  }
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace sqlcm::cm
