// Side-effecting action backends: SendMail and RunExternal (paper §5.3).
//
// The paper's prototype sends real email and launches real processes; the
// default backends here capture the requests in memory (tests, examples)
// and a file-appending backend is provided for operational use. Both are
// pluggable via MonitorEngine options.
#ifndef SQLCM_SQLCM_ACTIONS_IO_H_
#define SQLCM_SQLCM_ACTIONS_IO_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqlcm::cm {

/// SendMail backend.
class Mailer {
 public:
  virtual ~Mailer() = default;
  virtual common::Status SendMail(const std::string& body,
                                  const std::string& address) = 0;
};

/// RunExternal backend.
class ProcessLauncher {
 public:
  virtual ~ProcessLauncher() = default;
  virtual common::Status RunExternal(const std::string& command) = 0;
};

/// Default backend: records requests for later inspection. Thread-safe.
class CapturingMailer final : public Mailer {
 public:
  struct Mail {
    std::string body;
    std::string address;
  };

  common::Status SendMail(const std::string& body,
                          const std::string& address) override {
    std::lock_guard<std::mutex> lock(mutex_);
    mails_.push_back({body, address});
    return common::Status::OK();
  }

  std::vector<Mail> mails() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return mails_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return mails_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Mail> mails_;
};

/// Default backend: records commands instead of spawning processes.
class CapturingLauncher final : public ProcessLauncher {
 public:
  common::Status RunExternal(const std::string& command) override {
    std::lock_guard<std::mutex> lock(mutex_);
    commands_.push_back(command);
    return common::Status::OK();
  }

  std::vector<std::string> commands() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return commands_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return commands_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> commands_;
};

/// Fault-injection point honoured by FileAppendingSink (common/fault.h).
inline constexpr char kFaultActionAppend[] = "actions.file.append";

/// Appends one line per mail/command to a file (operational logging).
class FileAppendingSink final : public Mailer, public ProcessLauncher {
 public:
  explicit FileAppendingSink(std::string path) : path_(std::move(path)) {}

  common::Status SendMail(const std::string& body,
                          const std::string& address) override;
  common::Status RunExternal(const std::string& command) override;

 private:
  common::Status AppendLine(const std::string& line);

  std::mutex mutex_;
  std::string path_;
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_ACTIONS_IO_H_
