// ECA rules (paper §5): events, the condition expression language, actions,
// and rule compilation.
//
// Rules are specified as text in the paper's style:
//   Event:     Query.Commit
//   Condition: Query.Duration > 5 * Duration_LAT.Avg_Duration
//   Action:    Query.Persist(Outliers, Query_Text, Duration)
// and compiled against the object schema and the currently defined LATs
// into fast dispatchable form. The language deliberately stays small
// (paper §5: "the expressiveness of the rule language is limited to a
// relatively small set of common operations"); anything more complex is
// expected to post-process persisted tables.
#ifndef SQLCM_SQLCM_RULE_H_
#define SQLCM_SQLCM_RULE_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "obs/metrics.h"
#include "sqlcm/lat.h"
#include "sqlcm/schema.h"

namespace sqlcm::cm {

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

enum class EventKind : uint8_t {
  kQueryStart = 0,
  kQueryCommit,
  kQueryCancel,
  kQueryRollback,
  kQueryBlocked,
  kQueryBlockReleased,
  kTransactionBegin,
  kTransactionCommit,
  kTransactionRollback,
  kTimerAlarm,  // qualifier: timer name ("" = any timer)
  kLatEvict,    // qualifier: LAT name
};
inline constexpr size_t kNumEventKinds = 11;

struct EventKey {
  EventKind kind = EventKind::kQueryCommit;
  std::string qualifier;  // lower-cased timer/LAT name; empty otherwise
};

const char* EventKindName(EventKind kind);

/// Classes bound (available in context) when an event of this kind fires.
std::vector<MonitoredClass> EventBoundClasses(EventKind kind);

// ---------------------------------------------------------------------------
// Condition expressions
// ---------------------------------------------------------------------------

/// Per-evaluation context: which concrete objects are in context, plus the
/// lazily resolved LAT rows for this object combination.
struct EvalContext {
  std::array<const void*, kNumMonitoredClasses> bound = {};
  int64_t now_micros = 0;

  // kLatEvict events: the evicted row and its LAT.
  const Lat* evicted_lat = nullptr;
  const common::Row* evicted_row = nullptr;

  /// Set when a referenced LAT has no row matching the in-context object;
  /// the paper's implicit ∃ then makes the whole condition false (§5.2).
  bool lat_row_missing = false;

  /// Cache of resolved LAT rows for this evaluation.
  struct LatRowEntry {
    const Lat* lat;
    bool present;
    common::Row row;
  };
  std::vector<LatRowEntry> lat_rows;

  const void* Bound(MonitoredClass cls) const {
    return bound[static_cast<size_t>(cls)];
  }
  void Bind(MonitoredClass cls, const void* record) {
    bound[static_cast<size_t>(cls)] = record;
  }

  /// Clears all per-event state while keeping `lat_rows` capacity, so a
  /// thread-local context can be reused across events allocation-free.
  void ResetForEvent() {
    bound.fill(nullptr);
    now_micros = 0;
    evicted_lat = nullptr;
    evicted_row = nullptr;
    lat_row_missing = false;
    lat_rows.clear();
  }
};

/// Compiled condition node.
class CmExpr {
 public:
  enum class Kind : uint8_t { kLiteral, kAttrRef, kLatColRef, kUnary, kBinary };

  /// Evaluates with SQL-style three-valued logic. Missing LAT rows set
  /// ctx->lat_row_missing and yield NULL.
  common::Result<common::Value> Eval(EvalContext* ctx) const;

  /// Evaluates the whole condition as the rule predicate: NULL/FALSE/
  /// missing-LAT-row all reject.
  common::Result<bool> EvalCondition(EvalContext* ctx) const;

  /// Appends the classes referenced by attribute refs (with duplicates).
  void CollectClasses(std::vector<MonitoredClass>* classes) const;
  /// Appends the LATs referenced (with duplicates).
  void CollectLats(std::vector<const Lat*>* lats) const;
  /// Appends every (class, attribute index) referenced (with duplicates;
  /// kEvicted refs are skipped — their indexes are LAT columns).
  void CollectAttrRefs(
      std::vector<std::pair<MonitoredClass, int>>* refs) const;

  Kind kind = Kind::kLiteral;
  common::Value literal;
  // kAttrRef
  MonitoredClass cls = MonitoredClass::kQuery;
  int attr_index = -1;  // for kEvicted: column index into the evicted row
  // kLatColRef
  const Lat* lat = nullptr;
  int lat_col = -1;
  // kUnary / kBinary (operators shared with the SQL AST)
  uint8_t unary_op = 0;   // sql::UnaryOp
  uint8_t binary_op = 0;  // sql::BinaryOp
  std::unique_ptr<CmExpr> left;
  std::unique_ptr<CmExpr> right;
};

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

enum class ActionKind : uint8_t {
  kInsert,       // Object.Insert(LatName) / Insert(LatName)
  kReset,        // Reset(LatName)
  kPersist,      // Object.Persist(Table[, Attr...]) / LatName.Persist(Table)
  kSendMail,     // SendMail('text', 'address')
  kRunExternal,  // RunExternal('command')
  kCancel,       // Query.Cancel() / Blocker.Cancel() / Blocked.Cancel()
  kSetTimer,     // TimerName.Set(seconds, number_alarms)
};

const char* ActionKindName(ActionKind kind);

inline constexpr size_t kNumActionKinds = 7;

struct CompiledAction {
  ActionKind kind;
  MonitoredClass source_class = MonitoredClass::kQuery;  // object-attached
  Lat* lat = nullptr;        // kInsert/kReset target; kPersist LAT source
  bool lat_source = false;   // kPersist applied to a LAT
  bool evicted_source = false;  // kPersist/kInsert applied to Evicted
  std::string table_name;    // kPersist
  std::vector<int> attr_indexes;       // kPersist(object) column subset
  std::vector<std::string> attr_names;
  std::string text;     // kSendMail body template / kRunExternal command
  std::string address;  // kSendMail
  std::string timer_name;      // kSetTimer ("" = in-context timer)
  double timer_seconds = 0;    // kSetTimer
  int64_t timer_repeats = 0;   // kSetTimer
};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// User-facing rule specification (paper-style text fields).
struct RuleSpec {
  std::string name;
  std::string event;      // "Query.Commit", "Timer.Alarm", "MyLat.Evict", ...
  std::string condition;  // empty = always true
  std::string action;     // ';'-separated action list
  /// Evaluation-mode override for the async pipeline:
  ///   ""         auto-classify (deferrable unless paper semantics require
  ///              the query thread — Cancel, non-terminal events, unbound
  ///              class iteration)
  ///   "inline"   force synchronous evaluation on the triggering thread
  ///   "deferred" require deferral; compilation fails when the rule is not
  ///              eligible so the author learns why instead of silently
  ///              getting inline semantics
  std::string eval_mode;
  /// Per-rule override of the engine-wide SendMail/Persist rate limit
  /// (ActionRateLimiter; RULE_LANGUAGE.md "Action rate limiting"). 0 keeps
  /// the engine default; a negative max_actions disables limiting for this
  /// rule. rate_limit_window_micros applies only when rate_limit_max_actions
  /// is > 0 (0 = keep the engine default window).
  int rate_limit_max_actions = 0;
  int64_t rate_limit_window_micros = 0;
};

/// True for event kinds whose rules may be evaluated off the triggering
/// thread: terminal events whose bound record is immutable once fired.
/// Start/begin/block events describe still-live objects, and timer/evict
/// events already run outside query threads — all stay inline.
bool EventKindDeferrable(EventKind kind);

/// Pre-extracted comparison atom for the fast condition path: one probe
/// getter compared against a constant.
struct FastAtom {
  AttributeGetter getter = nullptr;
  MonitoredClass cls = MonitoredClass::kQuery;
  uint8_t op = 0;  // sql::BinaryOp (comparison subset)
  common::Value literal;
  bool attr_on_left = true;
};

/// Per-rule runtime statistics, updated lock-free by the dispatch path and
/// surfaced via the sqlcm_rule_stats system view. `action_micros` is only
/// populated when MonitorEngine's detailed timing is on (it needs an extra
/// clock read per action).
struct RuleStats {
  obs::Counter evaluations;      // times the rule was considered for an event
  obs::Counter condition_false;  // condition evaluated and rejected
  obs::Counter fires;            // condition passed, actions ran
  obs::Counter errors;           // condition or action failures
  /// SendMail/Persist actions skipped by the per-rule rate limiter
  /// (alert-storm hygiene; see ActionRateLimiter).
  obs::Counter actions_suppressed;
  obs::LatencyHistogram action_micros;
  // Span-profiling attribution (sampled traces only; see sqlcm_profile).
  // Nanosecond self-time is split between the condition window and the
  // action window so the view can show where a rule's cost goes.
  obs::Counter profiled_evals;    // evaluations covered by a sampled trace
  obs::Counter condition_nanos;   // self-time in condition evaluation
  obs::Counter action_nanos;      // self-time in action execution
};

/// Per-rule circuit breaker (quarantine). A rule whose condition or actions
/// keep failing is taken out of the dispatch path so one bad rule cannot
/// degrade every monitored query (robustness layer; see docs/ROBUSTNESS.md).
///
/// State machine:
///   closed ──(consecutive failures ≥ threshold, or windowed error rate ≥
///             threshold)──▶ open ──(cooldown elapses)──▶ half-open
///   half-open admits exactly one probe evaluation: success closes the
///   breaker, failure re-opens it and restarts the cooldown.
/// `Reinstate()` force-closes it (engine API / operator intervention).
///
/// The closed-state hot path is one relaxed atomic load; the mutex is taken
/// only to record outcomes and transition states.
class RuleBreaker {
 public:
  struct Options {
    /// Consecutive-failure trip wire.
    int consecutive_failure_threshold = 5;
    /// Windowed error-rate trip wire: over each `window_size` evaluations,
    /// trip when errors/evaluations ≥ `error_rate_threshold` (judged only
    /// once the window holds ≥ `min_window_events` outcomes).
    int window_size = 64;
    int min_window_events = 16;
    double error_rate_threshold = 0.5;
    /// How long an open breaker waits before admitting a half-open probe.
    int64_t cooldown_micros = 5'000'000;
  };

  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  RuleBreaker() = default;
  explicit RuleBreaker(Options options) : options_(options) {}

  /// Engine-level configuration applied after rule compilation; resets
  /// nothing, so it is safe on a live breaker.
  void Configure(const Options& options);

  /// True when the rule may be evaluated now. Open breakers whose cooldown
  /// has elapsed move to half-open and admit exactly one probe.
  bool Allow(int64_t now_micros);
  void OnSuccess(int64_t now_micros);
  /// Records a failed evaluation; returns true when this failure tripped
  /// (or re-tripped) the breaker.
  bool OnFailure(int64_t now_micros);
  /// Force-closes the breaker and clears the failure window.
  void Reinstate();

  State state() const { return state_.load(std::memory_order_relaxed); }
  const char* state_name() const;
  static const char* StateName(State state);

  int64_t consecutive_failures() const;
  /// Times the breaker tripped open (including half-open probe failures).
  uint64_t trips() const;
  /// Evaluations skipped because the breaker was open.
  uint64_t skipped() const;
  int64_t tripped_at_micros() const;

 private:
  bool ShouldTripLocked() const;

  std::atomic<State> state_{State::kClosed};
  mutable std::mutex mutex_;
  Options options_;
  int64_t consecutive_failures_ = 0;
  int64_t window_events_ = 0;
  int64_t window_errors_ = 0;
  bool probe_in_flight_ = false;
  int64_t tripped_at_micros_ = 0;
  uint64_t trips_ = 0;
  uint64_t skipped_ = 0;
};

/// Trailing-window rate limiter for a rule's externally visible actions
/// (SendMail / Persist): at most `max_actions` admissions per trailing
/// `window_micros`, everything beyond is suppressed (counted in
/// RuleStats::actions_suppressed and surfaced via sqlcm_rule_stats). This is
/// the alert-storm hygiene of ROADMAP item 3 — a rule whose condition
/// suddenly matches every query must not flood the mailer or fill a persist
/// table; unlike the breaker it caps *successful* actions, not failures.
///
/// Implementation: a circular buffer of the last `max_actions` admission
/// timestamps — admission is O(1) and the window is exact (no bucketing).
class ActionRateLimiter {
 public:
  struct Options {
    /// Maximum admitted actions per trailing window; 0 = unlimited
    /// (limiter disabled, Admit never takes the mutex).
    int max_actions = 0;
    int64_t window_micros = 60'000'000;
  };

  ActionRateLimiter() = default;

  /// Engine-level configuration applied after rule compilation. Clears the
  /// admission history: the window shape changed, and an empty window is
  /// the permissive interpretation a reconfiguration expects.
  void Configure(const Options& options);

  /// True when an action may run now (and records the admission); false
  /// when `max_actions` admissions already happened in the trailing window.
  bool Admit(int64_t now_micros);

  /// Total admissions rejected since construction.
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};  // hot-path gate; set by Configure
  mutable std::mutex mutex_;
  Options options_;
  std::vector<int64_t> recent_;  // circular buffer of admission timestamps
  size_t next_ = 0;              // index of the oldest admission
  std::atomic<uint64_t> suppressed_{0};
};

struct CompiledRule {
  uint64_t id = 0;
  std::string name;
  EventKey event;
  std::unique_ptr<CmExpr> condition;  // null = always true
  /// When the condition is a pure AND-chain of attribute-vs-constant
  /// comparisons (the dominant monitoring-rule shape, Figure 2), it is
  /// compiled to this flat atom list and evaluated without the recursive
  /// interpreter. Empty when the generic path must run.
  std::vector<FastAtom> fast_atoms;
  bool use_fast_condition = false;
  std::vector<CompiledAction> actions;
  /// Classes referenced by condition/actions but not bound by the event:
  /// the engine iterates over all live objects of these (paper §5.2).
  std::vector<MonitoredClass> iterate_classes;
  /// Every LAT this rule reads or writes (blocks DropLat while referenced).
  std::vector<const Lat*> referenced_lats;
  /// Probe-scope flags (paper §2.1: gather only counters active rules
  /// reference). Computed at compile time from conditions, actions and
  /// referenced LAT specs.
  bool needs_blocking_probes = false;    // Time_Blocked & friends
  bool needs_concurrency_probe = false;  // Concurrent_User_Queries
  /// Inline/deferred classification (async pipeline): true when the rule may
  /// run on a monitor worker thread after the hook returns. Decided at
  /// compile time from the event kind, actions and RuleSpec::eval_mode;
  /// surfaced as sqlcm_rule_stats.eval_mode.
  bool deferrable = false;
  /// Why a non-deferrable rule stays inline ("" when deferrable):
  /// "cancel-action" / "event-kind" / "class-iteration" / "override".
  const char* inline_reason = "";
  bool enabled = true;
  /// Mutable so the (logically const) dispatch path can update counters.
  mutable RuleStats stats;
  /// Quarantine state; configured by the engine after compilation.
  mutable RuleBreaker breaker;
  /// SendMail/Persist storm cap; configured by the engine after compilation.
  mutable ActionRateLimiter rate_limiter;
};

/// Name-based LAT lookup used during rule compilation.
class LatResolver {
 public:
  virtual ~LatResolver() = default;
  virtual Lat* FindLat(std::string_view name) const = 0;
  virtual bool IsTimerName(std::string_view name) const = 0;
};

/// Evaluates a flattened fast-atom list (short-circuit AND); used by the
/// monitor's rule dispatch when CompiledRule::use_fast_condition is set.
bool EvalFastAtoms(const std::vector<FastAtom>& atoms,
                   const EvalContext& ctx);

/// Evaluates one atom: true iff the bound object passes the comparison
/// (NULL attributes and unbound classes reject, matching the generic
/// evaluator's three-valued outcome for the same comparison).
bool EvalFastAtom(const FastAtom& atom, const EvalContext& ctx);

/// Compiles a single attr-vs-literal comparison with statically comparable
/// kinds into a FastAtom — the unit the AND-chain extractor flattens, also
/// used by the predicate index for its shared conjuncts. Returns false
/// (leaving *atom untouched) when `expr` is not that shape.
bool TryCompileFastAtom(const CmExpr& expr, FastAtom* atom);

class RuleCompiler {
 public:
  /// Compiles a rule spec; resolves class/attribute names against the
  /// object schema and LAT/timer names against `resolver`.
  static common::Result<std::unique_ptr<CompiledRule>> Compile(
      const RuleSpec& spec, const LatResolver& resolver);

  /// Parses just an event name ("Query.Commit", "MyLat.Evict", ...).
  static common::Result<EventKey> ParseEvent(std::string_view text,
                                             const LatResolver& resolver);
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_RULE_H_
