#include "sqlcm/timer.h"

#include <chrono>

#include "common/string_util.h"

namespace sqlcm::cm {

using common::Status;

Status TimerManager::CreateTimer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TimerRecord& timer : timers_) {
    if (common::EqualsIgnoreCase(timer.name, name)) {
      return Status::AlreadyExists("timer '" + name + "' already exists");
    }
  }
  TimerRecord timer;
  timer.name = name;
  timer.remaining_alarms = 0;  // disabled until Set
  timers_.push_back(std::move(timer));
  return Status::OK();
}

Status TimerManager::Set(const std::string& name, int64_t interval_micros,
                         int64_t repeats) {
  if (interval_micros <= 0 && repeats != 0) {
    return Status::InvalidArgument("timer interval must be positive");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (TimerRecord& timer : timers_) {
    if (!common::EqualsIgnoreCase(timer.name, name)) continue;
    timer.interval_micros = interval_micros;
    timer.remaining_alarms = repeats;
    timer.next_due_micros = clock_->NowMicros() + interval_micros;
    return Status::OK();
  }
  return Status::NotFound("timer '" + name + "' not found");
}

bool TimerManager::IsTimerName(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TimerRecord& timer : timers_) {
    if (common::EqualsIgnoreCase(timer.name, name)) return true;
  }
  return false;
}

std::vector<TimerRecord> TimerManager::Snapshot(int64_t now_micros) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TimerRecord> out = timers_;
  for (TimerRecord& timer : out) {
    timer.now_secs = static_cast<double>(now_micros) / 1e6;
  }
  return out;
}

size_t TimerManager::Poll(int64_t now_micros) {
  std::vector<TimerRecord> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (TimerRecord& timer : timers_) {
      if (timer.remaining_alarms == 0) continue;
      if (timer.next_due_micros > now_micros) continue;
      TimerRecord snapshot = timer;
      snapshot.now_secs = static_cast<double>(now_micros) / 1e6;
      if (drift_histogram_ != nullptr) {
        drift_histogram_->Record(now_micros - timer.next_due_micros);
      }
      due.push_back(std::move(snapshot));
      if (timer.remaining_alarms > 0) --timer.remaining_alarms;
      // Re-arm from `now` (no burst catch-up after a stall).
      timer.next_due_micros = now_micros + timer.interval_micros;
    }
  }
  for (const TimerRecord& timer : due) {
    callback_(timer);
  }
  return due.size();
}

void TimerManager::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      Poll(clock_->NowMicros());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
}

void TimerManager::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

}  // namespace sqlcm::cm
