// Engine-wide self-monitoring instruments for MonitorEngine.
//
// Answers the paper's own question — how much does the monitor cost? —
// with per-hook call counters + latency histograms, engine counters
// (events, fires, errors, fast-path hits, deferred evictions), the
// signature-computation cost distribution (§4.2) and timer firing drift.
// All instruments live here so the sqlcm_engine_stats system view can
// materialize the whole inventory from one registry.
#ifndef SQLCM_SQLCM_MONITOR_METRICS_H_
#define SQLCM_SQLCM_MONITOR_METRICS_H_

#include <array>
#include <cstddef>

#include "obs/metrics.h"
#include "sqlcm/rule.h"

namespace sqlcm::cm {

/// Instrumented MonitorHooks entry points (and lock-event callbacks).
enum class MonitorHook : size_t {
  kStatementCompiled = 0,
  kQueryStart,
  kQueryCommit,
  kQueryCancel,
  kQueryRollback,
  kTxnBegin,
  kTxnCommit,
  kTxnRollback,
  kBlocked,
  kBlockReleased,
};
inline constexpr size_t kNumMonitorHooks = 10;

const char* MonitorHookName(MonitorHook hook);

struct MonitorMetrics {
  struct HookStats {
    obs::Counter calls;
    obs::LatencyHistogram latency;  // timed only while monitoring is active
  };

  std::array<HookStats, kNumMonitorHooks> hooks;

  obs::Counter fast_path_calls;   // hook invocations with monitoring off
  obs::Counter events_processed;  // events with >= 1 registered rule
  obs::Counter rules_fired;       // rules whose actions ran
  obs::Counter errors_total;      // condition/action/persist failures
  obs::Counter deferred_events;   // LAT evictions dispatched after unwind
  obs::LatencyHistogram signature_micros;   // per-compile signature cost
  obs::LatencyHistogram timer_drift_micros;  // scheduled-vs-actual firing

  // Robustness layer (docs/ROBUSTNESS.md).
  obs::Counter breaker_trips;        // rule circuit breakers tripped open
  obs::Counter breaker_skips;        // rule evaluations skipped (quarantined)
  obs::Counter events_sampled_out;   // events shed by governor sampling
  obs::Counter actions_suppressed;   // SendMail/Persist shed by rate limiter
  obs::Counter persist_retries;      // snapshot write retries that ran
  obs::Counter persist_fallbacks;    // restores served from .bak snapshots
  obs::Gauge governor_level;         // current degradation ladder level
  obs::Counter governor_raises;      // shed-level increases
  obs::Counter governor_drops;       // shed-level decreases (recovery)

  // Deferred-evaluation pipeline (event_queue.h; docs/PERFORMANCE.md
  // §Async pipeline). queue_wait_micros measures enqueue->drain latency.
  obs::Counter queue_enqueued;      // events handed to the worker pool
  obs::Counter queue_dropped;       // kDrop full-policy discards
  obs::Counter queue_shed;          // kShed full-policy discards (sampled out)
  obs::Counter queue_batches;       // worker batch drains
  obs::Counter queue_batch_events;  // events across all drained batches
  obs::LatencyHistogram queue_wait_micros;

  // Causal tracing / profiling plane (docs/OBSERVABILITY.md §Tracing).
  // dispatch_nanos accumulates root-span durations of *sampled* events, so
  // per-rule self-times in sqlcm_profile reconcile against it.
  obs::Counter profile_events;          // root event spans recorded (sampled)
  obs::Counter profile_dispatch_nanos;  // total sampled dispatch self-time
  obs::Counter profile_checkpoint_spans;
  obs::Counter profile_checkpoint_nanos;
  obs::Counter profile_queue_spans;      // queue_wait spans (sampled)
  obs::Counter profile_queue_nanos;      // total sampled enqueue->drain wait
  obs::Counter profile_trace_overflows;  // spans dropped by per-trace cap
  obs::Counter metrics_exports;          // Prometheus dumps written

  // Shared predicate index + learned ordering (docs/PERFORMANCE.md
  // §Predicate index). memo_hits / (evals + memo_hits) is the sharing rate.
  obs::Counter predindex_evals;          // distinct predicate evaluations
  obs::Counter predindex_memo_hits;      // conjuncts answered from the memo
  obs::Counter predindex_fallbacks;      // rules replayed naively (error parity)
  obs::Counter predindex_invalidations;  // mid-event LAT-mutation flushes
  obs::Counter predindex_reorders;       // learned-order republishes
  // Per-action-kind attribution across all rules (sampled traces only).
  std::array<obs::Counter, kNumActionKinds> action_kind_spans;
  std::array<obs::Counter, kNumActionKinds> action_kind_nanos;

  obs::MetricsRegistry registry;  // names every instrument above

  MonitorMetrics();
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_MONITOR_METRICS_H_
