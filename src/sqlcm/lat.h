// Light-weight aggregation tables (paper §4.3).
//
// An in-memory GROUP-BY container over probes of one monitored class:
//   * grouping columns + aggregation functions (COUNT/SUM/AVG/STDEV/MIN/
//     MAX/FIRST/LAST), each optionally in an *aging* variant that reflects
//     only the last `t` time units, bucketed into blocks of width `Δ`
//     (storage ≤ 2t/Δ blocks per aggregate, §4.3), plus the mergeable
//     sketch aggregates QUANTILE(expr, q) and DISTINCT(expr) (sketch.h;
//     non-aging only);
//   * a maximum size (rows) with ordering columns: when an insertion
//     violates the size bound the "least important" row (the one that
//     sorts last under the declared ordering) is evicted, and the evicted
//     row is exposed as a monitored object via the evict callback;
//   * persist-to-table and seed-from-table (restart continuity).
//
// Concurrency (paper §6.1): rule evaluation and LAT updates run in the
// threads that trigger events, so the directory is split into 2^k
// latch-striped shards selected by a precomputed 64-bit group-key hash;
// each shard has its own hash map (keyed by that hash, so eviction erase
// and lookups never rehash the group key) and its own eviction heap. Rows
// keep individual latches, and the global row/byte budgets are atomics, so
// an insert holds at most one latch at a time on the non-evicting path.
// Cross-shard eviction (the rare path) is serialized by a dedicated evict
// latch which may nest shard heap latches beneath it; the hierarchy
// evict > {map, heap, row} is acyclic, so the scheme stays deadlock-free
// by construction. bench/bench_lat.cc --sweep measures the scaling (see
// docs/PERFORMANCE.md).
#ifndef SQLCM_SQLCM_LAT_H_
#define SQLCM_SQLCM_LAT_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "common/value.h"
#include "obs/metrics.h"
#include "sqlcm/schema.h"
#include "sqlcm/sketch.h"
#include "storage/table.h"

namespace sqlcm::cm {

/// Fault-injection point honoured by the Insert latch path (common/fault.h):
/// `latch_stall` makes an uncontended acquisition report as contention,
/// exercising the contention-accounting path deterministically.
inline constexpr char kFaultLatLatch[] = "lat.latch";

enum class LatAggFunc : uint8_t {
  kCount,
  kSum,
  kAvg,
  kStdev,
  kMin,
  kMax,
  kFirst,
  kLast,
  /// QUANTILE(attr, q): DDSketch-style log-bucketed histogram with a
  /// relative-error guarantee (sketch.h); NULL while no numeric value has
  /// been folded. No aging variant (per-block sketch budgets are a
  /// follow-on); LatAggColumn::quantile carries q.
  kQuantile,
  /// DISTINCT(attr): HLL-style register array (sketch.h); 0 while no
  /// non-NULL value has been folded. No aging variant.
  kDistinct,
};

const char* LatAggFuncName(LatAggFunc func);
common::Result<LatAggFunc> ParseLatAggFunc(std::string_view name);

/// True for the sketch-backed aggregates whose per-cell state is a mergeable
/// summary rather than scalar moments (QUANTILE/DISTINCT). Their v3 state
/// records carry a 10th `#sketch` codec cell (see StateColumnNames).
inline bool LatAggFuncIsSketch(LatAggFunc func) {
  return func == LatAggFunc::kQuantile || func == LatAggFunc::kDistinct;
}

/// One element of a vectorized insert (Lat::InsertBatch): the probed record
/// plus the event timestamp it carried, so batched folds see exactly the
/// clock values the per-row path would have.
struct LatBatchItem {
  const void* record = nullptr;
  int64_t now_micros = 0;
};

struct LatGroupColumn {
  std::string attribute;  // attribute of the LAT's object class
  std::string alias;      // output column name; empty -> attribute name
};

struct LatAggColumn {
  LatAggFunc func = LatAggFunc::kCount;
  std::string attribute;  // input probe; may be empty for COUNT
  std::string alias;      // output column name; empty -> FUNC_attribute
  bool aging = false;     // moving-window variant
  /// kQuantile only: the rank fraction q in [0, 1] (0.5 = median).
  double quantile = 0.5;
};

struct LatOrdering {
  std::string column;  // output column name (group or aggregate alias)
  bool descending = true;
};

struct LatSpec {
  std::string name;
  MonitoredClass object_class = MonitoredClass::kQuery;
  std::vector<LatGroupColumn> group_by;
  std::vector<LatAggColumn> aggregates;
  /// Eviction ordering; required when max_rows > 0.
  std::vector<LatOrdering> ordering;
  /// 0 = unbounded.
  size_t max_rows = 0;
  /// Alternative/additional bound on the approximate total byte footprint
  /// of stored rows (paper §4.3: size limits "in terms of the number of
  /// rows stored or the overall row size"). 0 = unbounded. Requires
  /// ordering columns, like max_rows.
  size_t max_bytes = 0;
  /// Aging parameters (apply to aggregates flagged `aging`).
  int64_t aging_window_micros = 0;  // t
  int64_t aging_block_micros = 0;   // Δ
  /// Directory shard count. 0 = automatic: the SQLCM_LAT_SHARDS environment
  /// override when set, otherwise scaled to hardware concurrency. Rounded
  /// up to a power of two and clamped to [1, 1024]. Aggregate results are
  /// independent of the shard count (only contention behaviour changes).
  size_t shard_count = 0;
  /// Per-cell byte budget for each QUANTILE sketch: when a fold pushes a
  /// cell's sketch over this, it collapses (level-up, halving resolution
  /// but widening the documented relative-error bound, sketch.h) until it
  /// fits. 0 = unbounded. Counted in LatStats::sketch_collapses.
  size_t quantile_sketch_bytes = 4096;
  /// HLL precision p for DISTINCT aggregates (2^p one-byte registers per
  /// cell; standard error ~1.04/sqrt(2^p)). Clamped to [4, 16].
  int distinct_precision = 10;
};

/// Per-LAT runtime statistics (surfaced via sqlcm_lat_stats). Latch counters
/// cover the Insert hot path only — the paper's §6.1 claim is precisely that
/// these latches are not a hotspot, and `latch_contention` measures it.
/// `upsert_micros` is populated only under MonitorEngine detailed timing.
struct LatStats {
  obs::Counter inserts;
  obs::Counter evictions;
  obs::Counter latch_acquisitions;
  obs::Counter latch_contention;  // try_lock failed, had to spin
  /// Heap maintenance skipped because the recomputed ordering key matched
  /// the previous one (common for MIN/MAX/FIRST orderings).
  obs::Counter heap_skips;
  /// Oldest aging blocks merged to keep a block deque within the §4.3
  /// ⌈2t/Δ⌉ bound (happens while shed_aging defers pruning; merged blocks
  /// are always already outside the window, so reads are unaffected).
  obs::Counter aging_merges;
  /// QUANTILE sketch level-ups forced by LatSpec::quantile_sketch_bytes
  /// (each halves the cell's bucket resolution; surfaced per LAT via
  /// sqlcm_lat_stats so budget pressure is observable).
  obs::Counter sketch_collapses;
  obs::LatencyHistogram upsert_micros;
  // Span-profiling attribution (sampled traces only; see sqlcm_profile).
  obs::Counter upsert_spans;
  obs::Counter upsert_nanos;
};

class Lat {
 public:
  /// Invoked (outside all LAT latches) with the materialized evicted row.
  using EvictCallback = std::function<void(common::Row evicted)>;

  /// Validates the spec against the object schema (attributes exist,
  /// SUM/AVG/STDEV inputs are numeric, ordering columns resolve, aging
  /// parameters sane) and pre-resolves all probe getters.
  static common::Result<std::unique_ptr<Lat>> Create(LatSpec spec);

  ~Lat() = default;
  Lat(const Lat&) = delete;
  Lat& operator=(const Lat&) = delete;

  const LatSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  /// Cached lower-cased name (event qualifiers are lower-cased; caching
  /// avoids a string allocation per eviction event).
  const std::string& lower_name() const { return lower_name_; }
  /// Resolved directory shard count (power of two).
  size_t shard_count() const { return shard_count_; }

  // -- Column metadata (group columns first, then aggregate columns) -------
  size_t num_columns() const { return column_names_.size(); }
  size_t group_width() const { return spec_.group_by.size(); }
  const std::vector<std::string>& column_names() const { return column_names_; }
  const std::vector<common::ValueKind>& column_kinds() const {
    return column_kinds_;
  }
  /// Case-insensitive; -1 when absent.
  int FindColumn(std::string_view name) const;

  void set_evict_callback(EvictCallback callback) {
    evict_callback_ = std::move(callback);
  }

  // -- Mutation --------------------------------------------------------------

  /// The Insert action (§5.3): upserts the group for `record` (a record of
  /// spec().object_class) and folds its probe values into every aggregate.
  void Insert(const void* record, int64_t now_micros);

  /// Vectorized Insert for the deferred-evaluation pipeline: upserts every
  /// item, taking each touched shard's map latch once per call (instead of
  /// once per item) and each distinct group's row latch once per call,
  /// folding that group's items in arrival order (so FIRST/LAST match a
  /// sequential replay). Aggregate results are identical to calling
  /// Insert() per item; only the latch schedule changes — with S touched
  /// shards and G distinct groups the unbounded-LAT latch-acquisition
  /// count is S + G versus 2·count for the per-row path (observable via
  /// LatStats::latch_acquisitions). Bounded LATs additionally run heap
  /// maintenance per changed group and a single budget-eviction pass at
  /// the end.
  void InsertBatch(const LatBatchItem* items, size_t count);

  /// The Reset action (§5.3): drops every row and frees memory.
  void Reset();

  // -- Reads -----------------------------------------------------------------

  /// Materializes the row whose grouping columns equal the corresponding
  /// probe values of `record` (rule-condition LAT references, §5.2).
  /// Returns false when no such group exists (the rule's implicit ∃).
  bool LookupForObject(const void* record, int64_t now_micros,
                       common::Row* out) const;

  bool LookupByKey(const common::Row& group_key, int64_t now_micros,
                   common::Row* out) const;

  /// All rows, sorted by the declared ordering when one exists.
  std::vector<common::Row> Snapshot(int64_t now_micros) const;

  size_t size() const {
    return total_rows_.load(std::memory_order_acquire);
  }

  /// Approximate bytes across all rows (maintained when a byte limit is
  /// configured; 0 otherwise).
  size_t approx_bytes() const {
    return total_bytes_.load(std::memory_order_acquire);
  }

  /// Runtime statistics; mutable through a const Lat because the insert
  /// path is logically const for readers.
  LatStats& stats() const { return stats_; }

  /// Overload shedding (LoadGovernor level 3): while set, aging-block
  /// pruning is deferred on the insert path (rotation still runs, so fresh
  /// data is never mislabelled into an expired block and reads stay
  /// correct). Expired blocks accumulate up to the ⌈2t/Δ⌉ cap, past which
  /// the oldest pair merges (counted by LatStats::aging_merges).
  void set_shed_aging(bool shed) {
    shed_aging_.store(shed, std::memory_order_relaxed);
  }
  bool shed_aging() const {
    return shed_aging_.load(std::memory_order_relaxed);
  }

  /// True when any aggregate is sketch-backed (QUANTILE/DISTINCT). Such
  /// LATs need the v3 state-snapshot codec: materialized (v1/plain-CSV)
  /// restores cannot reconstruct sketch state and are rejected by SeedFrom.
  bool HasSketchAggs() const { return has_sketch_; }

  /// Sums the live sketch footprint across all rows (for sqlcm_lat_stats):
  /// approximate bytes and the total bucket/register cell count. Takes each
  /// row latch briefly; both outputs may be null.
  void SketchFootprint(size_t* sketch_bytes, size_t* sketch_cells) const;

  /// Monotone count of Reset() calls. Federation export snapshots it per
  /// epoch: a change forces a full (mode-F) ship even when the post-reset
  /// additive counts happen to match the baseline — the delta arithmetic
  /// alone cannot distinguish that from "no change" (docs/FEDERATION.md).
  uint64_t reset_generation() const {
    return reset_generation_.load(std::memory_order_acquire);
  }

  // -- Persistence (§4.3) ------------------------------------------------------

  /// Appends every row to `table` (schema: LAT columns + trailing INT
  /// timestamp column when the table is one column wider).
  common::Status PersistTo(storage::Table* table, int64_t timestamp_micros,
                           int64_t now_micros) const;

  /// Seeds rows from previously persisted *materialized* values (legacy v1
  /// snapshots / user tables). Reconstruction is documented and
  /// deterministic but lossy:
  ///   * COUNT/SUM/MIN/MAX/FIRST/LAST seed exactly from their columns;
  ///   * the first non-aging COUNT column, when present, drives the seed
  ///     count `n` for SUM/AVG/STDEV (n = 1 when absent);
  ///   * AVG seeds sum = avg·n;
  ///   * STDEV seeds moments so the materialized value round-trips:
  ///     sum from a same-attribute non-aging AVG (avg·n) or SUM column
  ///     when one exists (0 otherwise), sumsq = s²(n−1) + sum²/n;
  ///   * aging aggregates are NOT reconstructed (their windowed history is
  ///     not present in a materialized row) — use the v2 state snapshot
  ///     (ExportState/ImportState) for lossless restarts.
  common::Status SeedFrom(const storage::Table& table, int64_t now_micros);

  // -- Raw-state persistence (v2 snapshots; lossless restart) -----------------

  /// Schema of the raw state record: the group columns, then for every
  /// aggregate column `A` the raw moments `A#count` (INT), `A#sum`,
  /// `A#sumsq` (DOUBLE), `A#any` (BOOL), `A#min`, `A#max`, `A#first`,
  /// `A#last` (STRING, kind-tagged codec) and `A#blocks` (STRING, the
  /// aging-block deque codec; empty for non-aging aggregates). Sketch
  /// aggregates (QUANTILE/DISTINCT) append a 10th `A#sketch` cell (STRING,
  /// the sketch codec from sketch.h) — such snapshots are written as v3
  /// (docs/ROBUSTNESS.md) so older readers fail cleanly instead of
  /// mis-parsing.
  std::vector<std::string> StateColumnNames() const;
  std::vector<common::ValueKind> StateColumnKinds() const;

  /// Appends one state record per group row to `table` (schema:
  /// StateColumnNames + trailing INT timestamp column when the table is
  /// one column wider). Lossless: together with ImportState every
  /// aggregate — including STDEV and mid-window aging variants — restores
  /// bit-exactly.
  common::Status ExportState(storage::Table* table,
                             int64_t timestamp_micros) const;

  /// Seeds rows from an ExportState table, restoring the raw moments and
  /// aging-block deques exactly. Rows whose group already exists live are
  /// skipped (live data wins), matching SeedFrom.
  common::Status ImportState(const storage::Table& table, int64_t now_micros);

  // -- Federation state arithmetic (delta shipping; src/fed) -----------------
  //
  // A *delta* is a state record (same schema as ExportState) whose additive
  // moments (#count/#sum/#sumsq, and the per-block count/sum/sumsq inside
  // #blocks) are increments since a baseline record, while the fold-stable
  // fields (#any/#min/#max/#first/#last and per-block min/max/any) stay
  // cumulative — folding a cumulative min/max twice is a no-op, so those
  // fields survive duplicate delivery without increment bookkeeping.
  // docs/FEDERATION.md describes the shipping protocol built on these.

  /// How a delta record relates to its baseline (returned by DiffStateRecord
  /// and consumed by CombineStateRecords; shipped in the delta container so
  /// baseline repair after a crash applies the right arithmetic).
  enum class StateDeltaMode {
    kNone,         ///< no change since baseline; nothing to ship
    kIncremental,  ///< additive moments are increments over the baseline
    kFresh,        ///< group restarted (Reset/eviction): record is cumulative
  };

  /// Computes the delta of `current` (a state record of this LAT) against
  /// `baseline` (the state record shipped for the same group last epoch, or
  /// null when the group is new). kFresh is returned when the group was
  /// reset or evicted and re-created since the baseline (any additive count
  /// went backwards): the delta then carries the full cumulative record and
  /// the new incarnation's observations count again fleet-wide — ingest is
  /// monotone by design. On kNone `*delta` is left empty.
  common::Result<StateDeltaMode> DiffStateRecord(const common::Row& current,
                                                 const common::Row* baseline,
                                                 common::Row* delta) const;

  /// Reconstructs the `current` record that produced `delta` from the
  /// baseline record it was diffed against: adds the additive increments and
  /// adopts the cumulative fields (kFresh replaces the record wholesale).
  /// Used for baseline repair after a node crash between spool-put and
  /// baseline-write. Blocks present in `base` but absent from `delta` are
  /// kept — the true current may have pruned them, but a stale expired block
  /// in a baseline never produces increments on a later diff.
  common::Result<common::Row> CombineStateRecords(const common::Row& base,
                                                  const common::Row& delta,
                                                  StateDeltaMode mode) const;

  /// Folds every state record of `table` (deltas or full exports) into the
  /// live directory: additive moments add, min/max fold by comparison,
  /// FIRST keeps the existing value once set, LAST adopts the incoming one,
  /// and aging blocks merge-join by block_start (then prune/cap against
  /// `now_micros` like the insert path). Unlike ImportState, existing groups
  /// merge rather than win — this is the aggregator's ingest primitive.
  common::Status MergeState(const storage::Table& table, int64_t now_micros);

 private:
  struct AgingBlock {
    int64_t block_start = 0;
    int64_t count = 0;
    double sum = 0;
    double sumsq = 0;
    common::Value min, max;
    bool any = false;
  };

  struct AggState {
    int64_t count = 0;
    double sum = 0;
    double sumsq = 0;
    common::Value min, max, first, last;
    bool any = false;
    /// Aging variant only; lazily allocated (a default-constructed deque
    /// allocates, and non-aging rows are the hot path).
    std::unique_ptr<std::deque<AgingBlock>> blocks;
    /// kQuantile only; lazily allocated on the first numeric fold.
    std::unique_ptr<QuantileSketch> qsketch;
    /// kDistinct only; lazily allocated on the first non-NULL fold.
    std::unique_ptr<HllSketch> hll;
  };

  /// One group row. Field guards (latch hierarchy in the file comment):
  ///   hash, group_key    immutable after publication in the shard map
  ///   next               the owning shard's map latch
  ///   aggs, ordering_cache                     the row latch
  ///   ordering_key, heap_index, approx_bytes,
  ///   evicted                                  the owning shard's heap latch
  ///   in_heap            atomic (written under the heap latch)
  struct LatRow {
    uint64_t hash = 0;
    common::Row group_key;
    std::shared_ptr<LatRow> next;  // same-hash collision chain
    std::vector<AggState> aggs;
    common::Row ordering_cache;  // last key computed by an insert
    common::Row ordering_key;    // key the heap position reflects
    size_t heap_index = SIZE_MAX;
    size_t approx_bytes = 0;  // accounted share of total_bytes_
    bool evicted = false;
    std::atomic<bool> in_heap{false};
    mutable common::SpinLatch latch;
  };

  /// One directory stripe: a hash-keyed map (collision chains run through
  /// LatRow::next) and the eviction heap over this stripe's rows. Padded so
  /// neighbouring shards' latches do not share a cache line.
  struct alignas(64) Shard {
    mutable common::SpinLatch map_latch;
    std::unordered_map<uint64_t, std::shared_ptr<LatRow>> map;
    mutable common::SpinLatch heap_latch;
    std::vector<LatRow*> heap;  // min-heap: root = least important
  };

  explicit Lat(LatSpec spec) : spec_(std::move(spec)) {}

  Shard& ShardFor(uint64_t hash) const {
    return shards_[hash & (shard_count_ - 1)];
  }
  /// 64-bit mixed hash of a group key (also the shard selector).
  uint64_t HashGroupKey(const common::Row& key) const;

  /// Walks the shard's collision chain for (hash, key); caller holds the
  /// shard map latch. Returns the chain entry or null.
  std::shared_ptr<LatRow> FindInShardLocked(const Shard& shard, uint64_t hash,
                                            const common::Row& key) const;
  /// Finds or creates+links the row for (hash, key); caller holds the shard
  /// map latch. Sets `*created` when a new row was linked.
  std::shared_ptr<LatRow> FindOrCreateLocked(Shard* shard, uint64_t hash,
                                             const common::Row& key,
                                             bool* created);
  /// Unlinks `row` from its shard's collision chain and returns the strong
  /// reference that kept it there; caller holds the shard map latch.
  static std::shared_ptr<LatRow> UnlinkLocked(Shard* shard, LatRow* row);

  common::Row GroupKeyFor(const void* record) const;
  void FoldValue(AggState* state, const LatAggColumn& col, common::Value v,
                 int64_t now_micros);
  /// Shared raw-state codec: parses the aggregate cells of a state record
  /// (starting at group_width()) into `*aggs` / appends them to `*record`.
  /// Used by Import/Export/Merge/Diff/Combine so every consumer agrees on
  /// one encoding. Members (not statics): sketch-bearing aggregates add a
  /// 10th `#sketch` cell, so the per-aggregate stride depends on the spec.
  common::Status ParseStateAggs(const common::Row& record,
                                std::vector<AggState>* aggs) const;
  void AppendStateAggs(const std::vector<AggState>& aggs,
                       common::Row* record) const;
  /// Verifies `record` has exactly the state-record width (no timestamp).
  common::Status CheckStateRecordWidth(const common::Row& record) const;
  /// Total state-record width (group columns + per-aggregate codec cells).
  size_t state_width() const { return state_width_; }
  /// Folds `src` into `dst` under fleet-merge semantics (see MergeState).
  /// Member: sketch merges honour the spec's byte budget (and count
  /// collapses in stats_).
  void FoldAggState(AggState* dst, const AggState& src);
  /// Post-merge aging hygiene: prune expired blocks, cap the deque like the
  /// insert path (merging the oldest pair when over ⌈2t/Δ⌉ + slack).
  void PruneMergedBlocks(AggState* state, int64_t now_micros);
  /// Links a reconstructed row (from SeedFrom/ImportState) into its shard
  /// unless the group already exists live, then runs the bounded-size
  /// bookkeeping. Returns false when live data won.
  bool AdoptSeededRow(std::shared_ptr<LatRow> row, int64_t now_micros);
  common::Value AggValue(const AggState& state, const LatAggColumn& col,
                         int64_t now_micros) const;
  common::Row MaterializeLocked(const LatRow& row, int64_t now_micros) const;
  common::Row OrderingKeyLocked(const LatRow& row, int64_t now_micros) const;
  static size_t ApproxRowBytesLocked(const LatRow& row);

  /// True if `a` is less important than `b` (i.e. `a` sorts later under the
  /// declared ordering and is the eviction candidate).
  bool LessImportant(const common::Row& a, const common::Row& b) const;

  /// Applies the (re)computed ordering key and byte accounting for `row`
  /// under its shard's heap latch.
  void MaintainHeap(Shard* shard, const std::shared_ptr<LatRow>& row,
                    common::Row ordering_key, size_t row_bytes);
  /// While over the row/byte budget, evicts the globally least-important
  /// row (scans shard heap roots under the evict latch). Materializes and
  /// notifies victims via the evict callback when `notify` is set.
  void EvictOverBudget(int64_t now_micros, bool notify);
  bool OverBudget() const {
    const size_t rows = total_rows_.load(std::memory_order_acquire);
    if (spec_.max_rows > 0 && rows > spec_.max_rows) return true;
    return spec_.max_bytes > 0 && rows > 1 &&
           total_bytes_.load(std::memory_order_acquire) > spec_.max_bytes;
  }

  // Heap helpers; caller holds the shard's heap_latch.
  void HeapInsertLocked(Shard* shard, LatRow* row);
  void HeapRepositionLocked(Shard* shard, LatRow* row);
  void HeapEraseLocked(Shard* shard, LatRow* row);
  void HeapSwapLocked(Shard* shard, size_t i, size_t j);
  void SiftUpLocked(Shard* shard, size_t i);
  void SiftDownLocked(Shard* shard, size_t i);

  LatSpec spec_;
  std::string lower_name_;
  std::vector<std::string> column_names_;
  std::vector<common::ValueKind> column_kinds_;
  std::vector<AttributeGetter> group_getters_;
  std::vector<AttributeGetter> agg_getters_;  // null entry for plain COUNT
  std::vector<int> ordering_columns_;          // indexes into materialized row
  EvictCallback evict_callback_;

  size_t shard_count_ = 1;  // power of two
  /// Any QUANTILE/DISTINCT aggregate in the spec (state records then use
  /// the v3 codec with `#sketch` cells and SeedFrom is rejected).
  bool has_sketch_ = false;
  /// HLL precision after clamping (single source for folds and decode
  /// validation).
  int distinct_precision_ = HllSketch::kDefaultPrecision;
  /// State-record geometry: total width and the first codec cell of each
  /// aggregate (stride 9, or 10 for sketch-bearing aggregates).
  size_t state_width_ = 0;
  std::vector<size_t> state_agg_base_;
  /// Hard cap on a per-aggregate aging-block deque: when rotation would
  /// exceed it the two oldest blocks merge (§4.3 bound ⌈2t/Δ⌉; the +3 slack
  /// guarantees merged blocks are already outside the window). 0 when the
  /// spec has no aging aggregates.
  size_t max_aging_blocks_ = 0;
  std::unique_ptr<Shard[]> shards_;

  /// Serializes cross-shard eviction and Reset; never acquired while any
  /// other LAT latch is held.
  mutable common::SpinLatch evict_latch_;
  std::atomic<size_t> total_rows_{0};
  std::atomic<size_t> total_bytes_{0};

  std::atomic<bool> shed_aging_{false};
  std::atomic<uint64_t> reset_generation_{0};
  mutable LatStats stats_;
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_LAT_H_
