// Reference model of the light-weight aggregation table (test oracle).
//
// A deliberately naive, single-threaded re-implementation of Lat used as
// the oracle in differential tests (tests/cm_lat_differential_test.cc). It
// stores the full insertion history per group and recomputes every
// aggregate from first principles on read — no shards, no latches, no
// incremental moments, no aging deques — so a bookkeeping bug in the
// production LAT cannot also hide here.
//
// Scope: the model implements the documented *read* semantics only —
// block-quantized aging windows (§4.3), least-important eviction, Reset.
// Overload shedding and checkpoint/restore are required to be invisible to
// readers, so the model deliberately ignores them: any divergence from the
// production LAT after a shed episode or a snapshot round-trip is a bug in
// the production LAT. Out of scope (rejected by Create): byte budgets and
// orderings over aging aggregates — the production LAT evicts on ordering
// keys cached at each row's last update, and only group columns and
// non-aging aggregates keep those caches always current.
#ifndef SQLCM_SQLCM_REFERENCE_LAT_H_
#define SQLCM_SQLCM_REFERENCE_LAT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sqlcm/lat.h"
#include "sqlcm/schema.h"

namespace sqlcm::cm {

class ReferenceLat {
 public:
  /// Resolves the spec against the object schema like Lat::Create (pass the
  /// same spec to both). Rejects max_bytes and aging ordering columns.
  static common::Result<std::unique_ptr<ReferenceLat>> Create(LatSpec spec);

  const LatSpec& spec() const { return spec_; }
  size_t size() const { return groups_.size(); }

  /// Records the probe values of `record` in its group's history and runs
  /// least-important eviction when the row budget is exceeded.
  void Insert(const void* record, int64_t now_micros);

  void Reset() { groups_.clear(); }

  /// Materializes the row for `group_key`, recomputing every aggregate from
  /// the stored history. Returns false when the group does not exist (never
  /// inserted, evicted, or reset away).
  bool LookupByKey(const common::Row& group_key, int64_t now_micros,
                   common::Row* out) const;

  /// All group keys currently live (unordered).
  std::vector<common::Row> LiveKeys() const;

 private:
  /// One recorded insertion: the fold timestamp plus the probe value seen
  /// by each aggregate column.
  struct Entry {
    int64_t now_micros = 0;
    std::vector<common::Value> values;
  };
  struct Group {
    std::vector<Entry> entries;
  };

  explicit ReferenceLat(LatSpec spec) : spec_(std::move(spec)) {}

  common::Value AggValueFor(const Group& group, size_t agg,
                            int64_t now_micros) const;
  common::Row OrderingKeyFor(const common::Row& key, const Group& group,
                             int64_t now_micros) const;
  bool LessImportant(const common::Row& a, const common::Row& b) const;
  void EvictOverBudget(int64_t now_micros);

  LatSpec spec_;
  std::vector<AttributeGetter> group_getters_;
  std::vector<AttributeGetter> agg_getters_;  // null entry for plain COUNT
  std::vector<int> ordering_columns_;  // indexes into the materialized row
  std::unordered_map<common::Row, Group, common::RowHasher, common::RowEq>
      groups_;
};

}  // namespace sqlcm::cm

#endif  // SQLCM_SQLCM_REFERENCE_LAT_H_
